//! # ildp-vm — the co-designed virtual machine, whole
//!
//! Facade crate re-exporting the workspace: a Rust reproduction of
//! Kim & Smith, *Dynamic Binary Translation for Accumulator-Oriented
//! Architectures* (CGO 2003). See the README for a tour and DESIGN.md for
//! the system inventory.
//!
//! * [`alpha`] — the Alpha V-ISA: machine-word encode/decode, assembler,
//!   memory, functional semantics with precise traps.
//! * [`isa`] — the accumulator-oriented I-ISA (basic and modified forms)
//!   with the co-designed VM's special instructions.
//! * [`core_vm`] — the dynamic binary translator and VM: profiling,
//!   superblock collection, strand translation, fragment chaining, the
//!   translated-code engine, precise-trap recovery, and the
//!   code-straightening-only system.
//! * [`uarch`] — trace-driven timing models: the reference out-of-order
//!   superscalar and the distributed ILDP machine.
//! * [`workloads`] — the synthetic SPEC CPU2000 INT stand-in suite.
//!
//! # Examples
//!
//! ```
//! use ildp_vm::alpha::{Assembler, Reg};
//! use ildp_vm::core_vm::{Vm, VmConfig, VmExit, NullSink};
//!
//! let mut asm = Assembler::new(0x1_0000);
//! asm.lda_imm(Reg::A0, 100);
//! let top = asm.here("top");
//! asm.subq_imm(Reg::A0, 1, Reg::A0);
//! asm.bne(Reg::A0, top);
//! asm.halt();
//! let program = asm.finish()?;
//!
//! let mut vm = Vm::new(VmConfig::default(), &program);
//! assert_eq!(vm.run(10_000, &mut NullSink), VmExit::Halted);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use alpha_isa as alpha;
pub use ildp_core as core_vm;
pub use ildp_isa as isa;
pub use ildp_uarch as uarch;
pub use spec_workloads as workloads;
