//! Inspect a translation the way the paper's Figure 2 does: print an
//! Alpha superblock side by side with its basic-ISA and modified-ISA
//! translations, including the strand (accumulator) structure, copies and
//! chaining code.
//!
//! ```sh
//! cargo run --release --example inspect_translation
//! ```

use alpha_isa::{disassemble, Assembler, Reg};
use ildp_core::{
    collect_superblock, ChainPolicy, ProfileConfig, Superblock, TranslatedCode, Translator,
};
use ildp_isa::IsaForm;

/// Builds the paper's Figure 2 example: the gzip CRC inner loop.
fn figure2_superblock() -> Superblock {
    let mut asm = Assembler::new(0x1_0000);
    let table = asm.zero_block(256 * 8);
    let buf = asm.data_block(vec![7u8; 64]);
    asm.li32(Reg::new(0), table as u32);
    asm.li32(Reg::A0, buf as u32);
    asm.lda_imm(Reg::A1, 64);
    asm.clr(Reg::new(1));
    let l1 = asm.here("L1");
    asm.ldbu(Reg::new(3), 0, Reg::A0);
    asm.subl_imm(Reg::A1, 1, Reg::A1);
    asm.lda(Reg::A0, 1, Reg::A0);
    asm.xor(Reg::new(1), Reg::new(3), Reg::new(3));
    asm.srl_imm(Reg::new(1), 8, Reg::new(1));
    asm.and_imm(Reg::new(3), 0xff, Reg::new(3));
    asm.s8addq(Reg::new(3), Reg::new(0), Reg::new(3));
    asm.ldq(Reg::new(3), 0, Reg::new(3));
    asm.xor(Reg::new(3), Reg::new(1), Reg::new(1));
    asm.bne(Reg::A1, l1);
    asm.halt();
    let program = asm.finish().expect("figure 2 assembles");

    // Execute to the loop top, then collect the hot path.
    let (mut cpu, mut mem) = program.load();
    let config = ProfileConfig::default();
    let loop_top = program
        .symbols()
        .find(|(_, n)| *n == "L1")
        .map(|(a, _)| a)
        .unwrap();
    while cpu.pc != loop_top {
        let inst = program.fetch(cpu.pc).unwrap();
        alpha_isa::step(&mut cpu, &mut mem, inst, config.align).unwrap();
    }
    collect_superblock(&mut cpu, &mut mem, &program, &config).expect("collection succeeds")
}

fn print_translation(title: &str, out: &TranslatedCode) {
    println!("--- {title} ---");
    for (inst, meta) in out.insts.iter().zip(&out.meta) {
        let tag = if meta.is_chain {
            "chain"
        } else if inst.is_copy() {
            "copy "
        } else {
            "     "
        };
        println!("  [{tag}] {inst}");
    }
    println!(
        "  ({} instructions, {} copies, {} chaining, {} strands)\n",
        out.insts.len(),
        out.stats.copies,
        out.stats.chain_insts,
        out.stats.strands
    );
}

fn main() {
    let sb = figure2_superblock();
    println!("=== Alpha superblock (paper Figure 2a) ===");
    for si in &sb.insts {
        println!("  {:#x}: {}", si.vaddr, disassemble(si.vaddr, si.inst));
    }
    println!();

    let basic = Translator {
        form: IsaForm::Basic,
        chain: ChainPolicy::SwPredDualRas,
        acc_count: 4,
        fuse_memory: false,
    }
    .translate(&sb);
    print_translation("basic I-ISA (paper Figure 2c)", &basic);

    let modified = Translator {
        form: IsaForm::Modified,
        chain: ChainPolicy::SwPredDualRas,
        acc_count: 4,
        fuse_memory: false,
    }
    .translate(&sb);
    print_translation("modified I-ISA (paper Figure 2d)", &modified);
}
