//! Design-space exploration: sweep the ILDP machine's PE count and
//! communication latency over one workload and print the V-ISA IPC
//! surface — the kind of study the paper's Figure 9 condenses.
//!
//! ```sh
//! cargo run --release --example design_space [workload] [scale]
//! ```

use ildp_core::{Translator, Vm, VmConfig};
use ildp_isa::IsaForm;
use ildp_uarch::{IldpConfig, IldpModel, TimingModel};
use spec_workloads::by_name;

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "gzip".to_string());
    let scale: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(3);
    let Some(w) = by_name(&name, scale) else {
        eprintln!(
            "unknown workload `{name}`; one of: {}",
            spec_workloads::NAMES.join(", ")
        );
        std::process::exit(1);
    };

    println!("workload: {} (scale {scale})\n", w.name);
    println!("V-ISA IPC          comm=0   comm=1   comm=2   comm=4");
    for pe_count in [2usize, 4, 6, 8, 12] {
        print!("{pe_count:>2} PEs         ");
        for comm in [0u64, 1, 2, 4] {
            let uarch = IldpConfig {
                pe_count,
                comm_latency: comm,
                ..IldpConfig::default()
            };
            let mut timing = IldpModel::new(uarch);
            let mut vm = Vm::new(
                VmConfig {
                    translator: Translator {
                        form: IsaForm::Modified,
                        ..Translator::default()
                    },
                    ..VmConfig::default()
                },
                &w.program,
            );
            vm.run(w.budget * 2, &mut timing);
            print!("   {:>6.3}", timing.finish().v_ipc());
        }
        println!();
    }
    println!(
        "\nreading: rows saturate once PE count covers the workload's strand\n\
         parallelism; the communication-latency cost shrinks when steering\n\
         keeps dependence chains local (paper §4.5)."
    );
}
