//! Precise-trap recovery demonstration (paper §2.2): run a program whose
//! hot loop eventually performs a misaligned load, under both I-ISA
//! forms, and show that the VM delivers the trap with the exact faulting
//! V-address and the exact architected register state — even though the
//! basic ISA keeps some architected values only in accumulators.
//!
//! ```sh
//! cargo run --release --example precise_traps
//! ```

use alpha_isa::{run_to_halt, AlignPolicy, Assembler, Reg, RunError, Trap};
use ildp_core::{ChainPolicy, NullSink, ProfileConfig, Translator, Vm, VmConfig, VmExit};
use ildp_isa::IsaForm;

fn build_program() -> alpha_isa::Program {
    // The loop walks an array of quadwords; on iteration 50 the address
    // becomes misaligned (base + i*8 + 4), so the trap fires well after
    // the loop has been translated and is running as a fragment.
    let mut asm = Assembler::new(0x1_0000);
    let base = asm.zero_block(64 * 1024);
    asm.li32(Reg::A0, base as u32);
    asm.clr(Reg::A1); // i
    asm.clr(Reg::V0); // checksum
    let top = asm.here("top");
    asm.s8addq(Reg::A1, Reg::A0, Reg::new(1)); // base + i*8
    asm.cmpeq_imm(Reg::A1, 50, Reg::new(3)); // the poisoned iteration
    asm.s4addq(Reg::new(3), Reg::new(1), Reg::new(1)); // +4 when i == 50
    asm.ldq(Reg::new(2), 0, Reg::new(1)); // traps at i == 50
    asm.addq(Reg::V0, Reg::new(2), Reg::V0);
    asm.addq_imm(Reg::A1, 1, Reg::A1);
    asm.cmplt_imm(Reg::A1, 100, Reg::new(3));
    asm.bne(Reg::new(3), top);
    asm.halt();
    asm.finish().expect("program assembles")
}

fn main() {
    let program = build_program();

    // Reference: the interpreter's precise trap.
    let (mut cpu, mut mem) = program.load();
    let err = run_to_halt(&mut cpu, &mut mem, &program, AlignPolicy::Enforce, 100_000)
        .expect_err("the stride must trap");
    let RunError::Trapped {
        pc: ref_pc,
        trap: ref_trap,
    } = err
    else {
        panic!("expected a trap, got {err}")
    };
    println!("interpreter trap     : {ref_trap} at V-PC {ref_pc:#x}");
    println!(
        "interpreter registers: a1={} v0={}\n",
        cpu.read(Reg::A1),
        cpu.read(Reg::V0)
    );

    for form in [IsaForm::Basic, IsaForm::Modified] {
        let config = VmConfig {
            translator: Translator {
                form,
                chain: ChainPolicy::SwPredDualRas,
                acc_count: 4,
                fuse_memory: false,
            },
            // Translate early so the trap happens in translated code.
            profile: ProfileConfig {
                threshold: 5,
                ..ProfileConfig::default()
            },
            ..VmConfig::default()
        };
        let mut vm = Vm::new(config, &program);
        let exit = vm.run(100_000, &mut NullSink);
        let VmExit::Trapped { vaddr, trap, state } = exit else {
            panic!("{form:?}: expected a trap, got {exit:?}")
        };
        assert_eq!(vaddr, ref_pc, "{form:?}: faulting V-PC must match");
        assert_eq!(trap, ref_trap, "{form:?}: trap condition must match");
        assert_eq!(
            state.as_ref(),
            &cpu.registers(),
            "{form:?}: recovered register state must match the interpreter"
        );
        assert!(matches!(trap, Trap::UnalignedAccess { .. }));
        assert!(
            vm.stats().engine.v_insts > 100,
            "{form:?}: the trap must fire inside translated code"
        );
        println!(
            "{form:?} I-ISA       : same trap, same V-PC, all 32 recovered registers identical \
             ({} V-insts ran translated before the trap)",
            vm.stats().engine.v_insts
        );
    }
    println!("\nprecise trap recovery verified for both I-ISA forms.");
}
