//! Assemble a guest program from text and run it through the co-designed
//! VM — the full user workflow: write assembly, translate dynamically,
//! measure on the ILDP machine.
//!
//! ```sh
//! cargo run --release --example assemble_and_run            # built-in demo
//! cargo run --release --example assemble_and_run guest.s    # your own file
//! ```

use alpha_isa::parse_program;
use ildp_core::{Vm, VmConfig, VmExit};
use ildp_uarch::{IldpConfig, IldpModel, TimingModel};

const DEMO: &str = "
; Collatz lengths, summed over the first 300 starting values.
        li    s0, 300         ; n
        clr   s1              ; total steps
outer:  mov   s0, t0
inner:  cmpeq t0, #1, t1
        bne   t1, done_one
        and   t0, #1, t1
        bne   t1, odd
        srl   t0, #1, t0      ; even: n/2
        br    step
odd:    addq  t0, t0, t2      ; 2n
        addq  t2, t0, t0      ; 3n
        addq  t0, #1, t0      ; 3n + 1
step:   addq  s1, #1, s1
        br    inner
done_one:
        subq  s0, #1, s0
        bne   s0, outer
        mov   s1, v0
        halt
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(path)?,
        None => DEMO.to_string(),
    };
    let program = parse_program(&source, 0x1_0000)?;
    println!(
        "assembled {} instructions, {} data segment(s)",
        program.code().len(),
        program.data_segments().len()
    );

    let mut timing = IldpModel::new(IldpConfig::default());
    let mut vm = Vm::new(VmConfig::default(), &program);
    let exit = vm.run(50_000_000, &mut timing);
    let stats = timing.finish();

    println!("exit        : {exit:?}");
    if exit == VmExit::Halted {
        println!("v0 (result) : {}", vm.cpu().read(alpha_isa::Reg::V0));
    }
    if !vm.output().is_empty() {
        println!("output      : {}", String::from_utf8_lossy(vm.output()));
    }
    println!(
        "DBT         : {} fragments, {:.2}x expansion, {:.0} insts/translated-inst overhead",
        vm.stats().fragments,
        vm.stats().dynamic_expansion(),
        vm.stats().overhead_per_translated_inst()
    );
    println!(
        "ILDP timing : {} cycles, V-ISA IPC {:.2} (native {:.2})",
        stats.cycles,
        stats.v_ipc(),
        stats.ipc()
    );
    Ok(())
}
