//! Quickstart: assemble a small Alpha program, run it through the
//! co-designed VM (dynamic binary translation to the accumulator I-ISA),
//! and measure V-ISA IPC on the ILDP timing model.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use alpha_isa::{Assembler, Reg};
use ildp_core::{Vm, VmConfig, VmExit};
use ildp_uarch::{IldpConfig, IldpModel, TimingModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Assemble a guest program: sum an array of 64-bit values.
    let mut asm = Assembler::new(0x1_0000);
    let data: Vec<u8> = (0..1024u64)
        .flat_map(|i| (i * 3 + 1).to_le_bytes())
        .collect();
    let array = asm.data_block(data);

    asm.lda_imm(Reg::A1, 200); // outer repeats
    let outer = asm.here("outer");
    asm.li32(Reg::A0, array as u32);
    asm.lda_imm(Reg::new(1), 1024); // element count
    asm.clr(Reg::V0);
    let top = asm.here("top");
    asm.ldq(Reg::new(2), 0, Reg::A0);
    asm.addq(Reg::V0, Reg::new(2), Reg::V0);
    asm.lda(Reg::A0, 8, Reg::A0);
    asm.subq_imm(Reg::new(1), 1, Reg::new(1));
    asm.bne(Reg::new(1), top);
    asm.subq_imm(Reg::A1, 1, Reg::A1);
    asm.bne(Reg::A1, outer);
    asm.halt();
    let program = asm.finish()?;

    // 2. Run it through the co-designed VM with the ILDP timing model
    //    attached (defaults: modified I-ISA, software jump prediction +
    //    dual-address RAS chaining, 4 accumulators, 8 PEs).
    let mut timing = IldpModel::new(IldpConfig::default());
    let mut vm = Vm::new(VmConfig::default(), &program);
    let exit = vm.run(10_000_000, &mut timing);
    assert_eq!(exit, VmExit::Halted);

    // 3. Inspect the results.
    let stats = timing.finish();
    let expected: u64 = (0..1024u64).map(|i| i * 3 + 1).sum();
    assert_eq!(vm.cpu().read(Reg::V0), expected, "translated code is exact");

    println!("guest result          : {}", vm.cpu().read(Reg::V0));
    println!("fragments translated  : {}", vm.stats().fragments);
    println!(
        "interpreted (cold)    : {} instructions",
        vm.stats().interpreted
    );
    println!(
        "translated (hot)      : {} V-ISA instructions -> {} I-ISA instructions ({:.2}x)",
        vm.stats().engine.v_insts,
        vm.stats().engine.executed,
        vm.stats().dynamic_expansion()
    );
    println!(
        "DBT overhead          : {:.0} Alpha instructions per translated instruction",
        vm.stats().overhead_per_translated_inst()
    );
    println!("V-ISA IPC on ILDP     : {:.2}", stats.v_ipc());
    println!("native I-ISA IPC      : {:.2}", stats.ipc());
    Ok(())
}
