//! Characterization tests: the figures' shapes depend on each synthetic
//! workload exhibiting the control-flow character of its SPEC namesake
//! (DESIGN.md §3). These pin those properties so a workload edit that
//! would silently invalidate the figures fails loudly here.

use alpha_isa::{run_to_halt, AlignPolicy, RunStats};
use spec_workloads::by_name;

fn stats(name: &str) -> RunStats {
    let w = by_name(name, 1).unwrap();
    let (mut cpu, mut mem) = w.program.load();
    run_to_halt(
        &mut cpu,
        &mut mem,
        &w.program,
        AlignPolicy::Enforce,
        w.budget,
    )
    .unwrap_or_else(|e| panic!("{name}: {e}"))
}

fn rate(n: u64, d: u64) -> f64 {
    n as f64 / d.max(1) as f64
}

#[test]
fn indirect_heavy_benchmarks_stay_indirect_heavy() {
    // gcc/perlbmk drive Figures 4 and 5: they must keep a high
    // register-indirect jump rate (jump tables, bytecode dispatch).
    for name in ["gcc", "perlbmk"] {
        let s = stats(name);
        let r = rate(s.indirect_jumps, s.instructions);
        assert!(
            r > 0.02,
            "{name}: indirect rate {r:.4} too low for a dispatch-heavy benchmark"
        );
    }
}

#[test]
fn call_heavy_benchmarks_keep_their_returns() {
    // eon/vortex/parser supply the returns that make the dual-address RAS
    // matter (Figure 4's sw_pred.ras vs no_pred gap).
    for name in ["eon", "vortex", "parser"] {
        let s = stats(name);
        let r = rate(s.indirect_jumps, s.instructions);
        assert!(
            r > 0.01,
            "{name}: return rate {r:.4} too low for a call-heavy benchmark"
        );
    }
}

#[test]
fn loop_benchmarks_have_no_indirect_jumps() {
    // gzip/mcf/gap/twolf/vpr anchor Figure 5's ≈1.00 rows: straightening
    // must not find indirect jumps to chain.
    for name in ["gzip", "mcf", "gap", "twolf", "vpr"] {
        let s = stats(name);
        assert_eq!(
            s.indirect_jumps, 0,
            "{name} must stay free of indirect jumps"
        );
    }
}

#[test]
fn memory_benchmarks_actually_load() {
    for (name, min_rate) in [("mcf", 0.25), ("bzip2", 0.15), ("gzip", 0.10)] {
        let s = stats(name);
        let r = rate(s.loads, s.instructions);
        assert!(r > min_rate, "{name}: load rate {r:.3} below {min_rate}");
    }
}

#[test]
fn branchy_benchmarks_have_unbiased_branches() {
    // twolf/vpr feed the misprediction rows of Figure 4: their
    // conditional branches must not be near-100% taken.
    for name in ["twolf", "vpr"] {
        let s = stats(name);
        let taken = rate(s.taken_branches, s.cond_branches);
        assert!(
            (0.05..0.95).contains(&taken),
            "{name}: taken rate {taken:.3} is too biased to stress the predictor"
        );
    }
}

#[test]
fn suite_spans_an_instruction_count_range() {
    // The paper's benchmarks vary in size; ours must too (the overhead
    // column of Table 2 depends on it).
    let sizes: Vec<u64> = spec_workloads::NAMES
        .iter()
        .map(|n| stats(n).instructions)
        .collect();
    let min = *sizes.iter().min().unwrap();
    let max = *sizes.iter().max().unwrap();
    assert!(min > 3_000, "smallest workload too small: {min}");
    assert!(
        max > min * 3,
        "suite sizes too uniform: {min}..{max} ({sizes:?})"
    );
}
