//! Precise-trap recovery, exercised systematically (paper §2.2).
//!
//! Parameterized programs raise traps (`gentrap`, and data-dependent
//! misaligned loads) at chosen iteration depths — before translation,
//! right at the translation threshold, and deep inside hot translated
//! code. In every case the DBT must deliver the same faulting V-PC, the
//! same trap condition, and bit-identical architected registers as pure
//! interpretation — under both I-ISA forms, three body shapes chosen to
//! stress different value categories, and reduced accumulator counts
//! (which force premature strand terminations).

use alpha_isa::{run_to_halt, AlignPolicy, Assembler, Program, Reg, RunError};
use ildp_core::{ChainPolicy, NullSink, ProfileConfig, Translator, Vm, VmConfig, VmExit};
use ildp_isa::IsaForm;

/// A loop whose body stresses strand formation (long and short chains,
/// loads, stores) and raises `gentrap` on iteration `trap_at`.
fn trapping_program(trap_at: i16, body_variant: u8) -> Program {
    let mut asm = Assembler::new(0x1_0000);
    let arena = asm.zero_block(4096);
    asm.li32(Reg::new(11), arena as u32);
    asm.clr(Reg::A1); // i
    asm.clr(Reg::V0);
    let top = asm.here("top");
    // Body: variant-dependent mix so different value categories arise.
    match body_variant {
        0 => {
            // Long single strand (gzip-like).
            asm.ldq(Reg::new(1), 0, Reg::new(11));
            asm.xor(Reg::V0, Reg::new(1), Reg::new(1));
            asm.srl_imm(Reg::new(1), 3, Reg::new(1));
            asm.and_imm(Reg::new(1), 0x7f, Reg::new(1));
            asm.s8addq(Reg::new(1), Reg::new(11), Reg::new(2));
            asm.ldq(Reg::new(3), 0, Reg::new(2));
            asm.addq(Reg::V0, Reg::new(3), Reg::V0);
            asm.stq(Reg::V0, 8, Reg::new(11));
        }
        1 => {
            // Many short strands (wide ILP).
            asm.addq_imm(Reg::A1, 3, Reg::new(1));
            asm.sll_imm(Reg::A1, 2, Reg::new(2));
            asm.subq(Reg::new(1), Reg::new(2), Reg::new(3));
            asm.mull_imm(Reg::A1, 7, Reg::new(4));
            asm.xor(Reg::new(3), Reg::new(4), Reg::new(5));
            asm.addq(Reg::V0, Reg::new(5), Reg::V0);
        }
        _ => {
            // Stores + cmovs (merging writes near the PEI).
            asm.and_imm(Reg::A1, 63, Reg::new(1));
            asm.s8addq(Reg::new(1), Reg::new(11), Reg::new(1));
            asm.cmplt_imm(Reg::A1, 100, Reg::new(2));
            asm.cmovne(Reg::new(2), Reg::A1, Reg::new(3));
            asm.stq(Reg::new(3), 0, Reg::new(1));
            asm.ldq(Reg::new(4), 0, Reg::new(1));
            asm.addq(Reg::V0, Reg::new(4), Reg::V0);
        }
    }
    // Trap trigger: gentrap when i == trap_at (a0 carries the code).
    let no_trap = asm.label("no_trap");
    asm.cmpeq_imm(Reg::A1, trap_at.max(0) as u8, Reg::new(7));
    asm.beq(Reg::new(7), no_trap);
    asm.mov(Reg::V0, Reg::A0);
    asm.gentrap();
    asm.bind(no_trap);
    asm.addq_imm(Reg::A1, 1, Reg::A1);
    asm.cmplt_imm(Reg::A1, 120, Reg::new(7));
    asm.bne(Reg::new(7), top);
    asm.halt();
    asm.finish().expect("trapping program assembles")
}

fn check_trap(trap_at: i16, variant: u8, form: IsaForm, acc_count: usize) {
    let program = trapping_program(trap_at, variant);
    let (mut rcpu, mut rmem) = program.load();
    let err = run_to_halt(
        &mut rcpu,
        &mut rmem,
        &program,
        AlignPolicy::Enforce,
        100_000,
    )
    .expect_err("the program must trap");
    let RunError::Trapped {
        pc: ref_pc,
        trap: ref_trap,
    } = err
    else {
        panic!("expected a trap, got {err}")
    };

    let config = VmConfig {
        translator: Translator {
            form,
            chain: ChainPolicy::SwPredDualRas,
            acc_count,
            fuse_memory: false,
        },
        profile: ProfileConfig {
            threshold: 3,
            ..ProfileConfig::default()
        },
        ..VmConfig::default()
    };
    let mut vm = Vm::new(config, &program);
    let exit = vm.run(100_000, &mut NullSink);
    let VmExit::Trapped { vaddr, trap, state } = exit else {
        panic!("({form:?}, {acc_count} accs, variant {variant}): expected trap, got {exit:?}")
    };
    assert_eq!(
        vaddr, ref_pc,
        "({form:?}, variant {variant}, trap_at {trap_at}): V-PC"
    );
    assert_eq!(
        trap, ref_trap,
        "({form:?}, variant {variant}, trap_at {trap_at}): condition"
    );
    assert_eq!(
        state.as_ref(),
        &rcpu.registers(),
        "({form:?}, variant {variant}, trap_at {trap_at}): architected state"
    );
    if trap_at > 20 {
        assert!(
            vm.stats().engine.v_insts > 50,
            "late traps must fire inside translated code \
             ({form:?}, variant {variant}, trap_at {trap_at})"
        );
    }
}

#[test]
fn traps_recover_exactly_in_basic_form() {
    for variant in 0..3u8 {
        for trap_at in [0i16, 1, 7, 40, 100] {
            check_trap(trap_at, variant, IsaForm::Basic, 4);
        }
    }
}

#[test]
fn traps_recover_exactly_in_modified_form() {
    for variant in 0..3u8 {
        for trap_at in [0i16, 1, 7, 40, 100] {
            check_trap(trap_at, variant, IsaForm::Modified, 4);
        }
    }
}

#[test]
fn traps_recover_under_accumulator_pressure() {
    // Two accumulators force premature strand terminations; recovery must
    // still be exact.
    for variant in 0..3u8 {
        for trap_at in [7i16, 40] {
            check_trap(trap_at, variant, IsaForm::Basic, 2);
            check_trap(trap_at, variant, IsaForm::Modified, 2);
        }
    }
}

#[test]
fn unaligned_traps_recover_in_all_workload_like_shapes() {
    // Misaligned loads at a data-dependent iteration, both forms.
    for form in [IsaForm::Basic, IsaForm::Modified] {
        let mut asm = Assembler::new(0x1_0000);
        let arena = asm.zero_block(8192);
        asm.li32(Reg::new(11), arena as u32);
        asm.clr(Reg::A1);
        asm.clr(Reg::V0);
        let top = asm.here("top");
        asm.s8addq(Reg::A1, Reg::new(11), Reg::new(1));
        asm.cmpeq_imm(Reg::A1, 77, Reg::new(2));
        asm.addq(Reg::new(1), Reg::new(2), Reg::new(1)); // +1 byte on iter 77
        asm.ldq(Reg::new(3), 0, Reg::new(1));
        asm.addq(Reg::V0, Reg::new(3), Reg::V0);
        asm.addq_imm(Reg::A1, 1, Reg::A1);
        asm.cmplt_imm(Reg::A1, 200, Reg::new(2));
        asm.bne(Reg::new(2), top);
        asm.halt();
        let program = asm.finish().unwrap();

        let (mut rcpu, mut rmem) = program.load();
        let err = run_to_halt(
            &mut rcpu,
            &mut rmem,
            &program,
            AlignPolicy::Enforce,
            100_000,
        )
        .expect_err("must trap at iteration 77");
        let RunError::Trapped { pc, trap } = err else {
            panic!("{err}")
        };

        let config = VmConfig {
            translator: Translator {
                form,
                chain: ChainPolicy::SwPredDualRas,
                acc_count: 4,
                fuse_memory: false,
            },
            profile: ProfileConfig {
                threshold: 3,
                ..ProfileConfig::default()
            },
            ..VmConfig::default()
        };
        let mut vm = Vm::new(config, &program);
        let VmExit::Trapped {
            vaddr,
            trap: t,
            state,
        } = vm.run(100_000, &mut NullSink)
        else {
            panic!("{form:?}: expected trap")
        };
        assert_eq!((vaddr, t), (pc, trap), "{form:?}");
        assert_eq!(state.as_ref(), &rcpu.registers(), "{form:?}");
        assert!(
            vm.stats().engine.v_insts > 100,
            "{form:?}: trap ran translated"
        );
    }
}

#[test]
fn unimplemented_fp_word_traps_precisely() {
    // A floating-point word decodes to `Inst::Unimplemented` (rather than
    // failing to decode) and raises a precise illegal-instruction trap:
    // faulting V-PC named, all prior architected state intact.
    use alpha_isa::{encode, Inst, Operand, OperateOp, Trap};
    let base = 0x1_0000u64;
    let addq = |ra: Reg, lit: u8, rc: Reg| {
        encode(Inst::Operate {
            op: OperateOp::Addq,
            ra,
            rb: Operand::Lit(lit),
            rc,
        })
        .unwrap()
    };
    let fp_word = (0x16u32 << 26) | 0x0842; // an ADDT-family (FLTI) encoding
    let program = Program::new(
        base,
        vec![
            addq(Reg::ZERO, 5, Reg::V0),
            addq(Reg::V0, 2, Reg::A1),
            fp_word,
        ],
    );
    let mut vm = Vm::new(VmConfig::default(), &program);
    let VmExit::Trapped { vaddr, trap, state } = vm.run(1_000, &mut NullSink) else {
        panic!("expected an illegal-instruction trap")
    };
    assert_eq!(vaddr, base + 8, "faulting V-PC");
    assert_eq!(trap, Trap::IllegalInstruction { word: fp_word });
    assert_eq!(state[Reg::V0.number() as usize], 5);
    assert_eq!(state[Reg::A1.number() as usize], 7);
}
