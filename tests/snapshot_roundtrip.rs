//! Property-based snapshot/restore correctness: any workload, either
//! I-ISA form, paused at an arbitrary fragment boundary, must resume
//! from a wire-roundtripped snapshot on a *fresh* VM (translation cache
//! cold) and reach the bit-identical final architected state of an
//! uninterrupted run — registers, memory contents, console output, and
//! retired-instruction count — with execution statistics continuing
//! cumulatively across the seam.

use ildp_core::{ChainPolicy, NullSink, Snapshot, Translator, Vm, VmConfig, VmExit};
use ildp_isa::IsaForm;
use proptest::prelude::*;
use spec_workloads::{by_name, NAMES};

fn config_for(form: IsaForm, chain: ChainPolicy) -> VmConfig {
    VmConfig {
        translator: Translator {
            form,
            chain,
            ..Translator::default()
        },
        ..VmConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn snapshot_restore_matches_uninterrupted_run(
        widx in 0usize..NAMES.len(),
        modified in any::<bool>(),
        chain_idx in 0usize..3,
        // Pause point as a fraction of the uninterrupted run, strictly
        // inside it.
        num in 1u64..8,
    ) {
        let w = by_name(NAMES[widx], 1).unwrap();
        let form = if modified { IsaForm::Modified } else { IsaForm::Basic };
        let chain = [ChainPolicy::NoPred, ChainPolicy::SwPred, ChainPolicy::SwPredDualRas][chain_idx];
        let config = config_for(form, chain);
        let budget = w.budget * 2;

        let mut whole = Vm::new(config, &w.program);
        let exit = whole.run(budget, &mut NullSink);
        prop_assert_eq!(exit, VmExit::Halted);
        let total = whole.v_instructions();

        // Pause at a boundary at (roughly) num/8 of the run, snapshot
        // through the wire format, restore onto a cold VM, and finish.
        let mut vm = Vm::new(config, &w.program);
        let exit = vm.run((total * num / 8).max(1), &mut NullSink);
        prop_assert_eq!(exit, VmExit::Budget);
        let snap = Snapshot::from_bytes(&vm.snapshot().to_bytes()).unwrap();
        let mut resumed = Vm::restore(config, &w.program, &snap).unwrap();
        prop_assert_eq!(resumed.v_instructions(), snap.v_insts);
        let exit = resumed.run(budget, &mut NullSink);
        prop_assert_eq!(exit, VmExit::Halted);

        prop_assert_eq!(resumed.cpu().registers(), whole.cpu().registers());
        prop_assert_eq!(
            resumed.memory().content_digest(),
            whole.memory().content_digest()
        );
        prop_assert_eq!(resumed.output(), whole.output());
        prop_assert_eq!(resumed.v_instructions(), total);

        // Statistics continuity: the resumed run's interpret/execute
        // split accounts for the entire timeline, so the fallback ratio
        // is still a meaningful fraction after the seam.
        let s = resumed.stats();
        prop_assert!(s.interpreted + s.engine.executed >= total);
        let ratio = s.interp_fallback_ratio();
        prop_assert!((0.0..=1.0).contains(&ratio));
    }
}
