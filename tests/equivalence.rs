//! The fundamental DBT correctness invariant, across the whole suite:
//! translated execution must compute exactly the architected state that
//! pure interpretation computes — for both I-ISA forms, every chaining
//! policy, and the code-straightening-only system.

use alpha_isa::{run_to_halt, AlignPolicy};
use ildp_core::{
    ChainPolicy, NullSink, ProfileConfig, StraightenedVm, Translator, Vm, VmConfig, VmExit,
};
use ildp_isa::IsaForm;
use spec_workloads::{suite, Workload};

fn reference_registers(w: &Workload) -> [u64; 32] {
    let (mut cpu, mut mem) = w.program.load();
    run_to_halt(
        &mut cpu,
        &mut mem,
        &w.program,
        AlignPolicy::Enforce,
        w.budget,
    )
    .unwrap_or_else(|e| panic!("{}: reference run failed: {e}", w.name));
    cpu.registers()
}

fn vm_config(form: IsaForm, chain: ChainPolicy) -> VmConfig {
    VmConfig {
        translator: Translator {
            form,
            chain,
            acc_count: 4,
            fuse_memory: false,
        },
        // A low threshold so even short test runs spend most instructions
        // in translated code.
        profile: ProfileConfig {
            threshold: 10,
            ..ProfileConfig::default()
        },
        ..VmConfig::default()
    }
}

fn check_form_chain(form: IsaForm, chain: ChainPolicy) {
    for w in suite(1) {
        let expect = reference_registers(&w);
        let mut vm = Vm::new(vm_config(form, chain), &w.program);
        let exit = vm.run(w.budget * 2, &mut NullSink);
        assert_eq!(exit, VmExit::Halted, "{} ({form:?}, {chain:?})", w.name);
        assert!(
            vm.stats().fragments > 0,
            "{}: nothing was translated",
            w.name
        );
        assert_eq!(
            vm.cpu().registers(),
            expect,
            "{} diverged under ({form:?}, {chain:?})",
            w.name
        );
        // Most hot-path work must actually run translated.
        let translated_share = vm.stats().engine.v_insts as f64
            / (vm.stats().engine.v_insts + vm.stats().interpreted) as f64;
        assert!(
            translated_share > 0.5,
            "{}: only {:.0}% of instructions ran translated",
            w.name,
            translated_share * 100.0
        );
    }
}

#[test]
fn modified_dual_ras_matches_interpreter() {
    check_form_chain(IsaForm::Modified, ChainPolicy::SwPredDualRas);
}

#[test]
fn basic_dual_ras_matches_interpreter() {
    check_form_chain(IsaForm::Basic, ChainPolicy::SwPredDualRas);
}

#[test]
fn modified_sw_pred_matches_interpreter() {
    check_form_chain(IsaForm::Modified, ChainPolicy::SwPred);
}

#[test]
fn basic_no_pred_matches_interpreter() {
    check_form_chain(IsaForm::Basic, ChainPolicy::NoPred);
}

#[test]
fn eight_accumulators_match_interpreter() {
    for w in suite(1) {
        let expect = reference_registers(&w);
        let mut config = vm_config(IsaForm::Modified, ChainPolicy::SwPredDualRas);
        config.translator.acc_count = 8;
        let mut vm = Vm::new(config, &w.program);
        let exit = vm.run(w.budget * 2, &mut NullSink);
        assert_eq!(exit, VmExit::Halted, "{} with 8 accumulators", w.name);
        assert_eq!(
            vm.cpu().registers(),
            expect,
            "{} with 8 accumulators",
            w.name
        );
    }
}

#[test]
fn straightened_code_matches_interpreter() {
    for chain in [
        ChainPolicy::NoPred,
        ChainPolicy::SwPred,
        ChainPolicy::SwPredDualRas,
    ] {
        for w in suite(1) {
            let expect = reference_registers(&w);
            let profile = ProfileConfig {
                threshold: 10,
                ..ProfileConfig::default()
            };
            let mut vm = StraightenedVm::new(chain, profile, &w.program);
            let exit = vm.run(w.budget * 2, &mut NullSink);
            assert_eq!(exit, VmExit::Halted, "{} straightened ({chain:?})", w.name);
            assert_eq!(
                vm.cpu().registers(),
                expect,
                "{} straightened diverged ({chain:?})",
                w.name
            );
        }
    }
}
