//! The Dynamo-style phase-change flush extension: correctness across
//! flushes (including stale dual-RAS entries) and the policy trigger.

use alpha_isa::{run_to_halt, AlignPolicy, Assembler, Program, Reg};
use ildp_core::{
    ChainPolicy, FlushPolicy, NullSink, ProfileConfig, Translator, Vm, VmConfig, VmExit,
};
use ildp_isa::IsaForm;

/// A two-phase program: a call-heavy phase, then a distinct arithmetic
/// phase, so an aggressive flush policy triggers between (and within)
/// phases while returns are in flight.
fn two_phase_program() -> Program {
    let mut asm = Assembler::new(0x1_0000);
    let main = asm.label("main");
    asm.br(main);

    let helper = asm.here("helper");
    asm.addq(Reg::A0, Reg::A0, Reg::V0);
    asm.xor_imm(Reg::V0, 0x11, Reg::V0);
    asm.ret();

    asm.bind(main);
    asm.entry_here();
    asm.clr(Reg::new(9));
    // Phase 1: call loop.
    asm.lda_imm(Reg::A1, 400);
    let p1 = asm.here("phase1");
    asm.mov(Reg::A1, Reg::A0);
    asm.bsr(helper);
    asm.addq(Reg::new(9), Reg::V0, Reg::new(9));
    asm.subq_imm(Reg::A1, 1, Reg::A1);
    asm.bne(Reg::A1, p1);
    // Phase 2: several distinct arithmetic loops (new hot code).
    for k in 0..6u8 {
        asm.lda_imm(Reg::A1, 300);
        let top = asm.here(format!("phase2_{k}"));
        asm.addq_imm(Reg::new(9), k + 1, Reg::new(9));
        asm.sll_imm(Reg::new(9), 1, Reg::new(1));
        asm.srl_imm(Reg::new(1), 1, Reg::new(1));
        asm.xor(Reg::new(9), Reg::new(1), Reg::new(2));
        asm.addq(Reg::new(9), Reg::new(2), Reg::new(9));
        asm.subq_imm(Reg::A1, 1, Reg::A1);
        asm.bne(Reg::A1, top);
    }
    asm.mov(Reg::new(9), Reg::V0);
    asm.halt();
    asm.finish().unwrap()
}

fn run_with_flush(form: IsaForm, policy: FlushPolicy) -> (u64, [u64; 32]) {
    let program = two_phase_program();
    let config = VmConfig {
        translator: Translator {
            form,
            chain: ChainPolicy::SwPredDualRas,
            acc_count: 4,
            fuse_memory: false,
        },
        profile: ProfileConfig {
            threshold: 5,
            ..ProfileConfig::default()
        },
        flush: Some(policy),
        ..VmConfig::default()
    };
    let mut vm = Vm::new(config, &program);
    let exit = vm.run(1_000_000, &mut NullSink);
    assert_eq!(exit, VmExit::Halted, "{form:?}");
    (vm.stats().cache_flushes, vm.cpu().registers())
}

#[test]
fn aggressive_flushing_preserves_architecture() {
    let program = two_phase_program();
    let (mut rcpu, mut rmem) = program.load();
    run_to_halt(
        &mut rcpu,
        &mut rmem,
        &program,
        AlignPolicy::Enforce,
        1_000_000,
    )
    .unwrap();
    for form in [IsaForm::Basic, IsaForm::Modified] {
        // A policy so tight that every few fragments trigger a flush.
        let (flushes, regs) = run_with_flush(
            form,
            FlushPolicy {
                window: 1_000_000,
                max_new_fragments: 2,
            },
        );
        assert!(flushes >= 2, "{form:?}: policy must have fired: {flushes}");
        assert_eq!(regs, rcpu.registers(), "{form:?} diverged across flushes");
    }
}

#[test]
fn loose_policy_never_fires() {
    let (flushes, _) = run_with_flush(IsaForm::Modified, FlushPolicy::default());
    assert_eq!(
        flushes, 0,
        "default policy must not fire on a small program"
    );
}

#[test]
fn flush_resets_cache_but_execution_recovers() {
    let program = two_phase_program();
    let config = VmConfig {
        translator: Translator::default(),
        profile: ProfileConfig {
            threshold: 5,
            ..ProfileConfig::default()
        },
        flush: Some(FlushPolicy {
            window: 1_000_000,
            max_new_fragments: 3,
        }),
        ..VmConfig::default()
    };
    let mut vm = Vm::new(config, &program);
    vm.run(1_000_000, &mut NullSink);
    // After flushing, the hot phase-2 code was re-translated: the cache
    // ends non-empty and most instructions still ran translated.
    assert!(vm.stats().cache_flushes > 0);
    assert!(vm.cache().fragments().count() > 0);
    let translated_share = vm.stats().engine.v_insts as f64
        / (vm.stats().engine.v_insts + vm.stats().interpreted) as f64;
    assert!(
        translated_share > 0.5,
        "flushing must not collapse translated coverage: {translated_share:.2}"
    );
}
