//! Property-based DBT correctness: generate random (halting) Alpha
//! programs and verify that translated execution matches pure
//! interpretation bit-for-bit — registers, memory effects (via a final
//! checksum), and console output — for both I-ISA forms.
//!
//! Program shape: a counted outer loop whose body is a random mix of ALU
//! operations, loads/stores into a private arena, conditional skips and
//! calls to one of two random leaf functions. The counted loop guarantees
//! termination; the random body exercises the classifier, strand
//! formation, accumulator assignment and chaining on shapes no
//! hand-written workload covers.

use alpha_isa::{run_to_halt, AlignPolicy, Assembler, Label, Program, Reg};
use ildp_core::{ChainPolicy, NullSink, ProfileConfig, Translator, Vm, VmConfig, VmExit};
use ildp_isa::IsaForm;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum BodyOp {
    Alu { op: u8, a: u8, b: u8, c: u8 },
    AluImm { op: u8, a: u8, lit: u8, c: u8 },
    Load { c: u8, slot: u8 },
    Store { a: u8, slot: u8 },
    SkipIf { cond: u8, a: u8 },
    Call { which: bool },
    Cmov { op: u8, a: u8, b: u8, c: u8 },
}

/// Registers the generator may use freely (t0..t7, s0..s1).
const POOL: [Reg; 10] = [
    Reg::new(1),
    Reg::new(2),
    Reg::new(3),
    Reg::new(4),
    Reg::new(5),
    Reg::new(6),
    Reg::new(7),
    Reg::new(8),
    Reg::new(9),
    Reg::new(10),
];

fn reg(i: u8) -> Reg {
    POOL[i as usize % POOL.len()]
}

fn body_op() -> impl Strategy<Value = BodyOp> {
    prop_oneof![
        4 => (0u8..8, any::<u8>(), any::<u8>(), any::<u8>())
            .prop_map(|(op, a, b, c)| BodyOp::Alu { op, a, b, c }),
        3 => (0u8..8, any::<u8>(), any::<u8>(), any::<u8>())
            .prop_map(|(op, a, lit, c)| BodyOp::AluImm { op, a, lit, c }),
        2 => (any::<u8>(), 0u8..64).prop_map(|(c, slot)| BodyOp::Load { c, slot }),
        2 => (any::<u8>(), 0u8..64).prop_map(|(a, slot)| BodyOp::Store { a, slot }),
        1 => (0u8..4, any::<u8>()).prop_map(|(cond, a)| BodyOp::SkipIf { cond, a }),
        1 => any::<bool>().prop_map(|which| BodyOp::Call { which }),
        1 => (0u8..4, any::<u8>(), any::<u8>(), any::<u8>())
            .prop_map(|(op, a, b, c)| BodyOp::Cmov { op, a, b, c }),
    ]
}

fn emit_alu(asm: &mut Assembler, op: u8, a: Reg, b: Reg, c: Reg) {
    match op {
        0 => asm.addq(a, b, c),
        1 => asm.subq(a, b, c),
        2 => asm.xor(a, b, c),
        3 => asm.and(a, b, c),
        4 => asm.bis(a, b, c),
        5 => asm.s8addq(a, b, c),
        6 => asm.cmplt(a, b, c),
        7 => asm.mull(a, b, c),
        _ => unreachable!(),
    }
}

fn emit_alu_imm(asm: &mut Assembler, op: u8, a: Reg, lit: u8, c: Reg) {
    match op {
        0 => asm.addq_imm(a, lit, c),
        1 => asm.subq_imm(a, lit, c),
        2 => asm.xor_imm(a, lit, c),
        3 => asm.and_imm(a, lit, c),
        4 => asm.sll_imm(a, lit % 63, c),
        5 => asm.srl_imm(a, lit % 63, c),
        6 => asm.cmpult_imm(a, lit, c),
        7 => asm.zapnot_imm(a, lit, c),
        _ => unreachable!(),
    }
}

fn build_program(ops: &[BodyOp], iters: i16) -> Program {
    let mut asm = Assembler::new(0x1_0000);
    let arena = asm.zero_block(64 * 8);

    let main = asm.label("main");
    asm.br(main);

    // Two leaf functions with distinct effects.
    let f1 = asm.here("f1");
    asm.addq(Reg::A0, Reg::A0, Reg::V0);
    asm.xor_imm(Reg::V0, 0x3c, Reg::V0);
    asm.ret();
    let f2 = asm.here("f2");
    asm.s8addq(Reg::A0, Reg::A0, Reg::V0);
    asm.srl_imm(Reg::V0, 2, Reg::V0);
    asm.ret();

    asm.bind(main);
    asm.entry_here();
    // Seed the register pool deterministically.
    for (k, r) in POOL.iter().enumerate() {
        asm.lda_imm(*r, (k as i16 + 3) * 257);
    }
    asm.li32(Reg::new(11), arena as u32); // s2 = arena base
    asm.lda_imm(Reg::A1, iters);
    let top = asm.here("top");
    let mut pending_skip: Option<(Label, usize)> = None;
    for (i, op) in ops.iter().enumerate() {
        if let Some((label, at)) = pending_skip {
            // Close a skip after two body ops.
            if i >= at {
                asm.bind(label);
                pending_skip = None;
            } else {
                pending_skip = Some((label, at));
            }
        }
        match *op {
            BodyOp::Alu { op, a, b, c } => emit_alu(&mut asm, op, reg(a), reg(b), reg(c)),
            BodyOp::AluImm { op, a, lit, c } => emit_alu_imm(&mut asm, op, reg(a), lit, reg(c)),
            BodyOp::Load { c, slot } => {
                asm.ldq(reg(c), (slot as i16) * 8, Reg::new(11));
            }
            BodyOp::Store { a, slot } => {
                asm.stq(reg(a), (slot as i16) * 8, Reg::new(11));
            }
            BodyOp::SkipIf { cond, a } => {
                if pending_skip.is_none() {
                    let label = asm.label(format!("skip{i}"));
                    match cond {
                        0 => asm.beq(reg(a), label),
                        1 => asm.bne(reg(a), label),
                        2 => asm.blt(reg(a), label),
                        _ => asm.bge(reg(a), label),
                    }
                    pending_skip = Some((label, i + 3));
                }
            }
            BodyOp::Call { which } => {
                asm.mov(reg(0), Reg::A0);
                asm.bsr(if which { f1 } else { f2 });
                asm.addq(Reg::new(12), Reg::V0, Reg::new(12));
            }
            BodyOp::Cmov { op, a, b, c } => {
                let (a, b, c) = (reg(a), reg(b), reg(c));
                match op {
                    0 => asm.cmoveq(a, b, c),
                    1 => asm.cmovne(a, b, c),
                    2 => asm.cmovlt(a, b, c),
                    _ => asm.cmovge(a, b, c),
                }
            }
        }
    }
    if let Some((label, _)) = pending_skip {
        asm.bind(label);
    }
    asm.subq_imm(Reg::A1, 1, Reg::A1);
    asm.bne(Reg::A1, top);
    // Checksum the arena into v0 so memory effects are observable.
    asm.li32(Reg::A0, arena as u32);
    asm.lda_imm(Reg::A2, 64);
    let sum = asm.here("sum");
    asm.ldq(Reg::new(13), 0, Reg::A0);
    asm.xor(Reg::V0, Reg::new(13), Reg::V0);
    asm.addq(Reg::V0, Reg::new(12), Reg::V0);
    asm.lda(Reg::A0, 8, Reg::A0);
    asm.subq_imm(Reg::A2, 1, Reg::A2);
    asm.bne(Reg::A2, sum);
    asm.halt();
    asm.finish().expect("generated program assembles")
}

fn check(ops: &[BodyOp], iters: i16, form: IsaForm, chain: ChainPolicy) {
    check_fuse(ops, iters, form, chain, false);
}

fn check_fuse(ops: &[BodyOp], iters: i16, form: IsaForm, chain: ChainPolicy, fuse: bool) {
    let program = build_program(ops, iters);
    let budget = 40_000 + (ops.len() as u64 + 16) * (iters as u64 + 4) * 6;
    let (mut rcpu, mut rmem) = program.load();
    run_to_halt(&mut rcpu, &mut rmem, &program, AlignPolicy::Enforce, budget)
        .expect("reference run halts");
    let config = VmConfig {
        translator: Translator {
            form,
            chain,
            acc_count: 4,
            fuse_memory: fuse,
        },
        profile: ProfileConfig {
            threshold: 4,
            ..ProfileConfig::default()
        },
        ..VmConfig::default()
    };
    let mut vm = Vm::new(config, &program);
    let exit = vm.run(budget * 2, &mut NullSink);
    assert_eq!(exit, VmExit::Halted);
    assert_eq!(
        vm.cpu().registers(),
        rcpu.registers(),
        "translated execution diverged for ops {ops:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_programs_translate_exactly_modified(
        ops in prop::collection::vec(body_op(), 4..40),
        iters in 20i16..60,
    ) {
        check(&ops, iters, IsaForm::Modified, ChainPolicy::SwPredDualRas);
    }

    #[test]
    fn random_programs_translate_exactly_basic(
        ops in prop::collection::vec(body_op(), 4..40),
        iters in 20i16..60,
    ) {
        check(&ops, iters, IsaForm::Basic, ChainPolicy::SwPredDualRas);
    }

    #[test]
    fn random_programs_translate_exactly_no_pred(
        ops in prop::collection::vec(body_op(), 4..24),
        iters in 20i16..40,
    ) {
        check(&ops, iters, IsaForm::Basic, ChainPolicy::NoPred);
    }

    #[test]
    fn random_programs_translate_exactly_fused_memory(
        ops in prop::collection::vec(body_op(), 4..40),
        iters in 20i16..60,
    ) {
        check_fuse(&ops, iters, IsaForm::Modified, ChainPolicy::SwPredDualRas, true);
        check_fuse(&ops, iters, IsaForm::Basic, ChainPolicy::SwPredDualRas, true);
    }
}
