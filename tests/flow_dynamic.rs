//! Property-based cross-validation of the static dataflow layer
//! (`ildp_verifier::flow`) against real executions: over random
//! (workload × ISA form × chain policy) cells, the per-fragment
//! summaries, the whole-cache audit, and the retired-instruction trace
//! must all agree.
//!
//! Three claims per sampled cell:
//!
//! 1. The whole-cache pass (`flow::check_cache` — F03/F04/F05 plus the
//!    worklist liveness solver) finds no violation in a cache the VM
//!    actually built and chained.
//! 2. The executed trace agrees with the static summaries
//!    (`flow::check_dynamic` — F06): every retired instruction matches
//!    its installed template, and no runtime accumulator read crosses a
//!    fragment seam unwritten.
//! 3. The aggregate [`ildp_verifier::FlowReport`] is internally
//!    consistent with summaries recomputed fragment-by-fragment, and the
//!    modified form shows zero copy-out seam traffic (its results live
//!    in the register file — there is no global communication to copy
//!    out).

use ildp_core::{ChainPolicy, TraceSink, Translator, Vm, VmConfig, VmExit};
use ildp_isa::IsaForm;
use ildp_uarch::DynInst;
use ildp_verifier::flow;
use proptest::prelude::*;
use spec_workloads::suite;

/// Records the first `cap` retired instructions.
struct SampleSink {
    buf: Vec<DynInst>,
    cap: usize,
}

impl TraceSink for SampleSink {
    fn retire(&mut self, inst: &DynInst) {
        if self.buf.len() < self.cap {
            self.buf.push(*inst);
        }
    }
}

fn forms() -> impl Strategy<Value = IsaForm> {
    prop_oneof![Just(IsaForm::Basic), Just(IsaForm::Modified)]
}

fn chains() -> impl Strategy<Value = ChainPolicy> {
    prop_oneof![
        Just(ChainPolicy::NoPred),
        Just(ChainPolicy::SwPred),
        Just(ChainPolicy::SwPredDualRas),
    ]
}

fn check_cell(workload_index: usize, form: IsaForm, chain: ChainPolicy, scale: u32) {
    let suite = suite(scale);
    let w = &suite[workload_index % suite.len()];
    let config = VmConfig {
        translator: Translator {
            form,
            chain,
            acc_count: 4,
            fuse_memory: false,
        },
        ..VmConfig::default()
    };
    let mut vm = Vm::new(config, &w.program);
    let mut sink = SampleSink {
        buf: Vec::new(),
        cap: 100_000,
    };
    let exit = vm.run(w.budget * 2, &mut sink);
    assert!(
        matches!(exit, VmExit::Halted | VmExit::Budget),
        "{}: unexpected exit {exit:?}",
        w.name
    );
    let cache = vm.cache();

    // Claim 1: the real cache is flow-clean.
    let (violations, report) = flow::check_cache(cache, Some(chain));
    assert!(
        violations.is_empty(),
        "{}:{form:?}:{chain:?}: cache flow violations: {violations:?}",
        w.name
    );

    // Claim 2: the executed trace agrees with the static summaries.
    let dynamic = flow::check_dynamic(cache, &sink.buf);
    assert!(
        dynamic.is_empty(),
        "{}:{form:?}:{chain:?}: trace/summary mismatches: {dynamic:?}",
        w.name
    );

    // Claim 3: the aggregate report matches per-fragment recomputation.
    let mut fragments = 0u64;
    let (mut copy_ins, mut copy_outs) = (0u64, 0u64);
    for frag in cache.fragments() {
        let s = flow::summarize_fragment(frag);
        assert_eq!(s.vstart, frag.vstart);
        fragments += 1;
        copy_ins += s.copy_ins.len() as u64;
        copy_outs += s.copy_outs.len() as u64;
        // Per-fragment sanity: a fragment that copies a live-in value in
        // must also use that register.
        for r in s.seam_copy_in_regs().iter() {
            assert!(s.uses.contains(r));
        }
    }
    assert_eq!(report.fragments, fragments);
    assert_eq!(report.copy_ins, copy_ins);
    assert_eq!(report.copy_outs, copy_outs);
    assert!(report.dead_copy_outs <= report.copy_outs);
    if form == IsaForm::Modified {
        // Copy-ins still occur (two-GPR-source strands pre-copy one
        // operand into the accumulator), but there is no copy-out global
        // communication: modified-form results live in the register file.
        assert_eq!(
            report.copy_outs, 0,
            "{}: modified form emitted copy-out seam traffic",
            w.name
        );
        assert_eq!(report.redundant_seam_pairs, 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn summaries_agree_with_executed_traces(
        workload_index in 0usize..16,
        form in forms(),
        chain in chains(),
    ) {
        check_cell(workload_index, form, chain, 3);
    }
}
