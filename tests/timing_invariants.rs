//! Property tests on the timing models: invariants that must hold for
//! any retired-instruction stream, however adversarial.

use ildp_uarch::{
    DynInst, IldpConfig, IldpModel, InstClass, SuperscalarConfig, SuperscalarModel, TimingModel,
};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
struct Step {
    kind: u8,
    src: u8,
    dst: u8,
    acc: u8,
    new_strand: bool,
    addr_page: u8,
    taken: bool,
}

fn step() -> impl Strategy<Value = Step> {
    (
        0u8..6,
        any::<u8>(),
        any::<u8>(),
        0u8..4,
        any::<bool>(),
        any::<u8>(),
        any::<bool>(),
    )
        .prop_map(|(kind, src, dst, acc, new_strand, addr_page, taken)| Step {
            kind,
            src,
            dst,
            acc,
            new_strand,
            addr_page,
            taken,
        })
}

/// Builds a structurally valid trace from the step descriptors.
fn trace(steps: &[Step]) -> Vec<DynInst> {
    let mut out = Vec::with_capacity(steps.len());
    let mut pc = 0x1_0000u64;
    for s in steps {
        let mut d = DynInst::alu(pc, 4);
        d.srcs[0] = Some(s.src % 32);
        d.dst = Some(s.dst % 32);
        d.acc = Some(s.acc);
        d.acc_read = !s.new_strand;
        d.acc_write = true;
        match s.kind {
            0 | 1 => {} // alu
            2 => {
                d.class = InstClass::Load;
                d.mem_addr = Some(0x100_0000 + (s.addr_page as u64) * 4096);
            }
            3 => {
                d.class = InstClass::Store;
                d.mem_addr = Some(0x100_0000 + (s.addr_page as u64) * 4096);
            }
            4 => {
                d.class = InstClass::CondBranch;
                d.taken = s.taken;
                d.next_pc = if s.taken { 0x1_0000 } else { pc + 4 };
            }
            _ => d.class = InstClass::IntMul,
        }
        let next = d.next_pc;
        out.push(d);
        pc = if next == 0x1_0000 { 0x1_0000 } else { pc + 4 };
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Retired-instruction conservation and the IPC bandwidth bound.
    #[test]
    fn superscalar_invariants(steps in prop::collection::vec(step(), 1..400)) {
        let t = trace(&steps);
        let config = SuperscalarConfig::default();
        let width = config.width as f64;
        let mut m = SuperscalarModel::new(config);
        for d in &t {
            m.retire(d);
        }
        let stats = m.finish();
        prop_assert_eq!(stats.instructions, t.len() as u64);
        prop_assert!(stats.cycles >= 1);
        prop_assert!(stats.ipc() <= width + 1e-9, "ipc {}", stats.ipc());
        prop_assert!(stats.total_mispredicts() <= stats.cond_branches
            + t.iter().filter(|d| d.class.is_indirect()).count() as u64);
    }

    /// The ILDP machine obeys the same bounds, and adding communication
    /// latency never makes execution *substantially* faster. (Strict
    /// monotonicity does not hold: the dependence-aware steering makes
    /// different placement decisions per latency, and a heuristic
    /// placement can get lucky — so the bound allows a small tolerance.)
    #[test]
    fn ildp_invariants_and_comm_near_monotonicity(steps in prop::collection::vec(step(), 1..400)) {
        let t = trace(&steps);
        let mut cycles = Vec::new();
        for comm in [0u64, 2, 8] {
            let config = IldpConfig { comm_latency: comm, ..IldpConfig::default() };
            let width = config.width as f64;
            let mut m = IldpModel::new(config);
            for d in &t {
                m.retire(d);
            }
            let stats = m.finish();
            prop_assert_eq!(stats.instructions, t.len() as u64);
            prop_assert!(stats.ipc() <= width + 1e-9);
            cycles.push(stats.cycles);
        }
        let slack = |c: u64| c + c / 4 + 64;
        prop_assert!(cycles[0] <= slack(cycles[1]), "comm 0 {} vs 2 {}", cycles[0], cycles[1]);
        prop_assert!(cycles[1] <= slack(cycles[2]), "comm 2 {} vs 8 {}", cycles[1], cycles[2]);
    }

    /// More processing elements never slow the machine down substantially
    /// (same heuristic-steering tolerance as above).
    #[test]
    fn ildp_pe_count_near_monotonicity(steps in prop::collection::vec(step(), 1..300)) {
        let t = trace(&steps);
        let mut cycles = Vec::new();
        for pe in [2usize, 4, 8] {
            let mut m = IldpModel::new(IldpConfig { pe_count: pe, ..IldpConfig::default() });
            for d in &t {
                m.retire(d);
            }
            cycles.push(m.finish().cycles);
        }
        let slack = |c: u64| c + c / 4 + 64;
        prop_assert!(cycles[1] <= slack(cycles[0]), "2PE {} vs 4PE {}", cycles[0], cycles[1]);
        prop_assert!(cycles[2] <= slack(cycles[1]), "4PE {} vs 8PE {}", cycles[1], cycles[2]);
    }

    /// Slower memory never speeds things up.
    #[test]
    fn superscalar_memory_latency_monotonicity(steps in prop::collection::vec(step(), 1..300)) {
        let t = trace(&steps);
        let mut cycles = Vec::new();
        for mem_latency in [20u64, 72, 300] {
            let mut config = SuperscalarConfig::default();
            config.latencies.memory = mem_latency;
            let mut m = SuperscalarModel::new(config);
            for d in &t {
                m.retire(d);
            }
            cycles.push(m.finish().cycles);
        }
        prop_assert!(cycles[0] <= cycles[1]);
        prop_assert!(cycles[1] <= cycles[2]);
    }
}
