//! The translation validator wired into the VM: every fragment installed
//! while running the full workload suite — under every ISA form and
//! chaining policy — passes all four static passes, the installed
//! (patched, linked) fragments audit clean against the cache, and the
//! engine's reject-on-violation mode degrades to interpretation instead
//! of installing a flagged translation.

use ildp_core::{
    ChainPolicy, InstallReview, NullSink, OnViolation, ProfileConfig, Translator, Vm, VmConfig,
    VmExit,
};
use ildp_isa::IsaForm;
use ildp_verifier::{collecting_validator, install_validator, take_report, verify_installed};
use spec_workloads::suite;

fn vm_config(form: IsaForm, chain: ChainPolicy) -> VmConfig {
    VmConfig {
        translator: Translator {
            form,
            chain,
            acc_count: 4,
            fuse_memory: false,
        },
        profile: ProfileConfig {
            threshold: 10,
            ..ProfileConfig::default()
        },
        validator: Some(install_validator),
        ..VmConfig::default()
    }
}

#[test]
fn every_installed_fragment_verifies_clean_across_the_suite() {
    for form in [IsaForm::Basic, IsaForm::Modified] {
        for chain in [
            ChainPolicy::NoPred,
            ChainPolicy::SwPred,
            ChainPolicy::SwPredDualRas,
        ] {
            for w in suite(1) {
                // `install_validator` panics (default OnViolation) on any
                // violation, so a completed run is itself the assertion.
                let mut vm = Vm::new(vm_config(form, chain), &w.program);
                let exit = vm.run(w.budget * 2, &mut NullSink);
                assert_eq!(exit, VmExit::Halted, "{} ({form:?}, {chain:?})", w.name);
                assert!(
                    vm.stats().fragments_verified > 0,
                    "{}: no fragments were verified",
                    w.name
                );
                assert_eq!(vm.stats().verify_rejected, 0);
                // The patched, chained form audits clean too.
                let cache = vm.cache();
                for frag in cache.fragments() {
                    let vs = verify_installed(cache, frag);
                    assert!(
                        vs.is_empty(),
                        "{}: installed fragment {:#x} fails audit:\n{}",
                        w.name,
                        frag.vstart,
                        vs.iter().map(|v| format!("  {v}\n")).collect::<String>()
                    );
                }
            }
        }
    }
}

#[test]
fn collecting_validator_reports_without_rejecting() {
    let w = &suite(1)[0];
    let mut config = vm_config(IsaForm::Basic, ChainPolicy::SwPredDualRas);
    config.validator = Some(collecting_validator);
    let mut vm = Vm::new(config, &w.program);
    let exit = vm.run(w.budget * 2, &mut NullSink);
    assert_eq!(exit, VmExit::Halted);
    assert!(
        take_report().is_empty(),
        "clean translations must not report"
    );
}

/// A validator that rejects everything: with `OnViolation::Reject` the VM
/// must fall back to interpretation rather than panic or install.
fn reject_all(_review: &InstallReview<'_>) -> Result<(), String> {
    Err("rejected by test".to_string())
}

#[test]
fn reject_mode_falls_back_to_interpretation() {
    let w = &suite(1)[0];
    let mut config = vm_config(IsaForm::Modified, ChainPolicy::SwPredDualRas);
    config.validator = Some(reject_all);
    config.on_violation = OnViolation::Reject;
    let mut vm = Vm::new(config, &w.program);
    let exit = vm.run(w.budget * 2, &mut NullSink);
    assert_eq!(exit, VmExit::Halted, "{} must still complete", w.name);
    let s = vm.stats();
    assert_eq!(s.fragments, 0, "nothing may be installed");
    assert!(s.verify_rejected > 0, "rejections must be counted");
    assert_eq!(s.verify_rejected, s.fragments_verified);
    assert!(
        s.interpreted > 0,
        "execution must fall back to interpretation"
    );
}

#[test]
fn verifier_time_is_accounted_separately() {
    let w = &suite(1)[0];
    let mut vm = Vm::new(
        vm_config(IsaForm::Basic, ChainPolicy::SwPredDualRas),
        &w.program,
    );
    vm.run(w.budget * 2, &mut NullSink);
    let s = vm.stats();
    assert!(s.verify_nanos > 0, "verification time must be recorded");
    assert!(s.fragments_verified >= s.fragments);
}
