//! Integration tests of fragment-chaining mechanics (paper §3.2): patch
//! application, dual-RAS hit rates, dispatch frequencies and console
//! output equivalence across the chaining policies.

use alpha_isa::{run_to_halt, AlignPolicy, Assembler, Program, Reg};
use ildp_core::{ChainPolicy, NullSink, ProfileConfig, Translator, Vm, VmConfig, VmExit};
use ildp_isa::IsaForm;

fn vm_config(chain: ChainPolicy) -> VmConfig {
    VmConfig {
        translator: Translator {
            form: IsaForm::Modified,
            chain,
            acc_count: 4,
            fuse_memory: false,
        },
        profile: ProfileConfig {
            threshold: 5,
            ..ProfileConfig::default()
        },
        ..VmConfig::default()
    }
}

/// A loop calling two functions alternately — plenty of returns and
/// cross-fragment exits.
fn call_program(iters: i16) -> Program {
    let mut asm = Assembler::new(0x1_0000);
    let main = asm.label("main");
    asm.br(main);
    let f1 = asm.here("f1");
    asm.addq_imm(Reg::A0, 3, Reg::V0);
    asm.ret();
    let f2 = asm.here("f2");
    asm.s8addq(Reg::A0, Reg::A0, Reg::V0);
    asm.ret();
    asm.bind(main);
    asm.entry_here();
    asm.lda_imm(Reg::A1, iters);
    asm.clr(Reg::new(9));
    let top = asm.here("top");
    let odd = asm.label("odd");
    let joined = asm.label("joined");
    asm.mov(Reg::A1, Reg::A0);
    asm.and_imm(Reg::A1, 1, Reg::new(1));
    asm.bne(Reg::new(1), odd);
    asm.bsr(f1);
    asm.br(joined);
    asm.bind(odd);
    asm.bsr(f2);
    asm.bind(joined);
    asm.addq(Reg::new(9), Reg::V0, Reg::new(9));
    asm.subq_imm(Reg::A1, 1, Reg::A1);
    asm.bne(Reg::A1, top);
    asm.mov(Reg::new(9), Reg::V0);
    asm.halt();
    asm.finish().unwrap()
}

#[test]
fn patching_links_hot_fragments() {
    let program = call_program(500);
    let mut vm = Vm::new(vm_config(ChainPolicy::SwPredDualRas), &program);
    let exit = vm.run(100_000, &mut NullSink);
    assert_eq!(exit, VmExit::Halted);
    // Exits between the loop body, both functions and the join point get
    // patched into direct branches once their targets are translated.
    assert!(
        vm.cache().patches_applied() >= 3,
        "only {} patches",
        vm.cache().patches_applied()
    );
    // Once chained, control flows fragment-to-fragment without the
    // translator: far more fragment entries than fragments.
    let entries: u64 = vm.cache().fragments().map(|f| f.entries).sum();
    assert!(entries > 500, "only {entries} fragment entries");
}

#[test]
fn dual_ras_predicts_almost_all_returns() {
    let program = call_program(500);
    let mut vm = Vm::new(vm_config(ChainPolicy::SwPredDualRas), &program);
    vm.run(100_000, &mut NullSink);
    let s = &vm.stats().engine;
    let total = s.ras_hits + s.ras_misses;
    assert!(total > 400, "returns must run translated: {total}");
    let hit_rate = s.ras_hits as f64 / total as f64;
    assert!(
        hit_rate > 0.95,
        "dual-RAS hit rate {hit_rate:.3} ({} / {total})",
        s.ras_hits
    );
}

#[test]
fn no_pred_dispatches_every_indirect_transfer() {
    let program = call_program(500);
    let mut no_pred = Vm::new(vm_config(ChainPolicy::NoPred), &program);
    no_pred.run(100_000, &mut NullSink);
    let mut ras = Vm::new(vm_config(ChainPolicy::SwPredDualRas), &program);
    ras.run(100_000, &mut NullSink);
    assert!(
        no_pred.stats().engine.dispatches > ras.stats().engine.dispatches * 5,
        "no_pred {} vs ras {} dispatches",
        no_pred.stats().engine.dispatches,
        ras.stats().engine.dispatches
    );
    // Same architecture regardless.
    assert_eq!(no_pred.cpu().registers(), ras.cpu().registers());
}

#[test]
fn console_output_is_preserved_by_translation() {
    // Print the alphabet from translated code.
    let mut asm = Assembler::new(0x1_0000);
    asm.lda_imm(Reg::A1, 26 * 8); // repeats to get the loop hot
    asm.clr(Reg::new(9));
    let top = asm.here("top");
    asm.and_imm(Reg::new(9), 31, Reg::A0);
    let skip = asm.label("skip");
    asm.cmplt_imm(Reg::A0, 26, Reg::new(1));
    asm.beq(Reg::new(1), skip);
    asm.addq_imm(Reg::A0, 97, Reg::A0); // 'a' + i
    asm.putchar();
    asm.bind(skip);
    asm.addq_imm(Reg::new(9), 1, Reg::new(9));
    asm.subq_imm(Reg::A1, 1, Reg::A1);
    asm.bne(Reg::A1, top);
    asm.halt();
    let program = asm.finish().unwrap();

    // Reference output: interpret and collect bytes by stepping manually.
    let (mut cpu, mut mem) = program.load();
    let mut expected = Vec::new();
    loop {
        let inst = program.fetch(cpu.pc).unwrap();
        let out = alpha_isa::step(&mut cpu, &mut mem, inst, AlignPolicy::Enforce).unwrap();
        if let Some(b) = out.output {
            expected.push(b);
        }
        if out.control == alpha_isa::Control::Halt {
            break;
        }
    }
    assert!(expected.len() > 100);

    for form in [IsaForm::Basic, IsaForm::Modified] {
        let mut config = vm_config(ChainPolicy::SwPredDualRas);
        config.translator.form = form;
        let mut vm = Vm::new(config, &program);
        let exit = vm.run(100_000, &mut NullSink);
        assert_eq!(exit, VmExit::Halted, "{form:?}");
        assert!(
            vm.stats().engine.v_insts > 500,
            "{form:?}: output must come from translated code"
        );
        assert_eq!(vm.output(), &expected[..], "{form:?} output diverged");
    }
}

#[test]
fn straightened_and_original_agree_on_checksum() {
    let program = call_program(300);
    let (mut rcpu, mut rmem) = program.load();
    run_to_halt(
        &mut rcpu,
        &mut rmem,
        &program,
        AlignPolicy::Enforce,
        100_000,
    )
    .unwrap();
    for chain in [
        ChainPolicy::NoPred,
        ChainPolicy::SwPred,
        ChainPolicy::SwPredDualRas,
    ] {
        let mut vm = ildp_core::StraightenedVm::new(
            chain,
            ProfileConfig {
                threshold: 5,
                ..ProfileConfig::default()
            },
            &program,
        );
        let exit = vm.run(100_000, &mut NullSink);
        assert_eq!(exit, VmExit::Halted, "{chain:?}");
        assert_eq!(vm.cpu().registers(), rcpu.registers(), "{chain:?}");
    }
}

#[test]
fn jump_through_zero_register_does_not_panic_the_translator() {
    // Degenerate guest: a hot loop ending in `jmp (r31)` — the target is
    // the constant 0. The translator must lower it to dispatch code (the
    // operand is an immediate, not a GPR) and the VM must deliver the
    // same access-violation trap the interpreter does.
    let mut asm = Assembler::new(0x1_0000);
    asm.lda_imm(Reg::A0, 100);
    let top = asm.here("top");
    asm.addq_imm(Reg::V0, 1, Reg::V0);
    asm.subq_imm(Reg::A0, 1, Reg::A0);
    asm.bne(Reg::A0, top);
    asm.jmp(Reg::ZERO, Reg::ZERO); // pc <- 0
    let program = asm.finish().unwrap();

    let (mut rcpu, mut rmem) = program.load();
    let err = run_to_halt(&mut rcpu, &mut rmem, &program, AlignPolicy::Enforce, 10_000)
        .expect_err("jumping to 0 must trap");
    let alpha_isa::RunError::Trapped { trap, .. } = err else {
        panic!("{err}")
    };

    for chain in [
        ChainPolicy::NoPred,
        ChainPolicy::SwPred,
        ChainPolicy::SwPredDualRas,
    ] {
        let mut vm = Vm::new(vm_config(chain), &program);
        let exit = vm.run(10_000, &mut NullSink);
        let VmExit::Trapped { vaddr, trap: t, .. } = exit else {
            panic!("{chain:?}: expected trap, got {exit:?}")
        };
        assert_eq!(vaddr, 0, "{chain:?}");
        assert_eq!(t, trap, "{chain:?}");
        assert_eq!(vm.cpu().read(Reg::V0), rcpu.read(Reg::V0), "{chain:?}");
    }
}
