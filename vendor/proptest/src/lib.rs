//! A minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the real crates-io
//! `proptest` cannot be fetched. This crate implements exactly the API
//! surface the workspace's property tests use — [`Strategy`] with
//! `prop_map`, [`any`], [`Just`], integer-range strategies, tuple
//! strategies, `prop::collection::vec`, and the `proptest!`,
//! `prop_oneof!`, `prop_assert!` and `prop_assert_eq!` macros — with
//! deterministic pseudo-random generation and **no shrinking**: a failing
//! case panics with the generating seed so it can be reproduced.

use std::fmt::Debug;
use std::ops::Range;

/// Deterministic xorshift64* generator driving all value generation.
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Creates a generator seeded from a test's name (stable across runs).
    pub fn for_test(name: &str) -> TestRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(if h == 0 { 0x9e37_79b9_7f4a_7c15 } else { h })
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// Error returned by `prop_assert!`-style macros inside a `proptest!`
/// body.
#[derive(Clone, Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Run configuration: number of generated cases per test.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Cases generated per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A value generator (the mini-proptest has no shrinking, so a strategy
/// is just a generation function).
pub trait Strategy {
    /// The generated value type.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Boxes the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A boxed strategy, as produced by [`Strategy::boxed`].
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy producing one fixed value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a full-domain default strategy (see [`any`]).
pub trait Arbitrary: Sized + Debug {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The full-domain strategy for `T` (`any::<u8>()`, `any::<bool>()`, …).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128) - (self.start as i128);
                assert!(span > 0, "empty range strategy");
                let off = (rng.next_u64() as u128 % span as u128) as i128;
                (self.start as i128 + off) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// A weighted choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T: Debug> Union<T> {
    /// Creates a union; weights must not all be zero.
    pub fn new(options: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total = options.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        Union { options, total }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total as u64) as u32;
        for (w, s) in &self.options {
            if pick < *w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights exhausted")
    }
}

/// The `prop::collection` / `prop::*` namespace used by the prelude.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::fmt::Debug;
        use std::ops::Range;

        /// A strategy for vectors with lengths drawn from `len`.
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// Generates vectors of `element` values with a length in `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S>
        where
            S::Value: Debug,
        {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.len.end - self.len.start).max(1) as u64;
                let n = self.len.start + rng.below(span) as usize;
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Builds a strategy choosing among alternatives, optionally weighted
/// (`weight => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(($weight as u32, $crate::Strategy::boxed($strat))),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$((1u32, $crate::Strategy::boxed($strat))),+])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                a, b
            )));
        }
    }};
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($config:expr;) => {};
    (
        $config:expr;
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let seed = rng.clone();
                let result = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                    $body
                    Ok(())
                })();
                if let Err(e) = result {
                    panic!(
                        "proptest {} failed at case {case} (rng {seed:?}): {e}",
                        stringify!($name)
                    );
                }
            }
        }
        $crate::__proptest_fns! { $config; $($rest)* }
    };
}

/// The property-test wrapper macro: each contained `fn name(x in strat)`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..1000 {
            let v = (3u8..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let s = (-10i32..-2).generate(&mut rng);
            assert!((-10..-2).contains(&s));
        }
    }

    #[test]
    fn oneof_respects_zero_weighted_absence() {
        let mut rng = TestRng::for_test("oneof");
        let s = prop_oneof![1 => Just(1u8), 3 => Just(2u8)];
        let mut seen = [0u32; 3];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize - 1] += 1;
        }
        assert!(seen[0] > 0 && seen[1] > 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_lengths_in_range(v in prop::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5, "len {}", v.len());
        }

        #[test]
        fn tuples_and_maps_compose(x in (0u8..4, any::<bool>()).prop_map(|(a, b)| (a, b))) {
            prop_assert!(x.0 < 4);
        }
    }
}
