//! A minimal, dependency-free stand-in for the `loom` model checker.
//!
//! The build environment has no network access, so the real crates-io
//! `loom` cannot be fetched. This crate mirrors the subset of loom's API
//! the workspace's concurrency tests are written against — [`model`],
//! `loom::thread`, and `loom::sync` — **backed by `std` primitives**.
//!
//! The honest caveat: real loom instruments every synchronization
//! operation and exhaustively enumerates the interleavings a test can
//! exhibit under the C11 memory model. This stand-in cannot do that.
//! [`model`] instead *stress-reruns* the closure many times under real
//! OS scheduling (`LOOM_STUB_ITERS` overrides the count), with spawned
//! threads racing genuinely — a probabilistic search of the same space.
//! Tests written against this crate keep the exact loom shape, so
//! substituting the real `loom` in `[workspace.dependencies]` (where
//! network access exists) upgrades them to exhaustive exploration with
//! no source changes. For the same reason the verify skill documents a
//! ThreadSanitizer invocation as the second, independent dynamic check.

/// Thread primitives, same paths as `loom::thread`.
pub mod thread {
    pub use std::thread::{current, park, sleep, spawn, yield_now, JoinHandle};
}

/// Synchronization primitives, same paths as `loom::sync`.
pub mod sync {
    pub use std::sync::{Arc, Barrier, Condvar, Mutex, MutexGuard, RwLock};

    /// Atomics, same paths as `loom::sync::atomic`.
    pub mod atomic {
        pub use std::sync::atomic::{
            fence, AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering,
        };
    }

    /// Channels (std re-export; real loom models these via its own
    /// primitives).
    pub mod mpsc {
        pub use std::sync::mpsc::{channel, Receiver, RecvError, SendError, Sender};
    }
}

/// Default number of stress iterations per [`model`] call.
pub const DEFAULT_ITERS: usize = 64;

/// Runs `f` repeatedly, letting the OS scheduler vary thread
/// interleavings between runs. Real loom explores interleavings
/// exhaustively; this stand-in samples them (`LOOM_STUB_ITERS` sets the
/// sample count). Panics inside `f` propagate, failing the test.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    let iters = std::env::var("LOOM_STUB_ITERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(DEFAULT_ITERS)
        .max(1);
    for _ in 0..iters {
        f();
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::Arc;

    #[test]
    fn model_reruns_the_body() {
        let runs = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&runs);
        super::model(move || {
            seen.fetch_add(1, Ordering::SeqCst);
        });
        assert!(runs.load(Ordering::SeqCst) >= 1);
    }

    #[test]
    fn threads_and_locks_compose() {
        super::model(|| {
            let counter = Arc::new(super::sync::Mutex::new(0u32));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let counter = Arc::clone(&counter);
                    super::thread::spawn(move || {
                        *counter.lock().unwrap() += 1;
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(*counter.lock().unwrap(), 2);
        });
    }
}
