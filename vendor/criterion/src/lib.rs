//! A minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the real crates-io
//! `criterion` cannot be fetched. This crate implements the API surface
//! the workspace's benches use — [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`Throughput`], [`black_box`] and the
//! `criterion_group!` / `criterion_main!` macros — measuring with a
//! simple calibrated wall-clock loop and reporting ns/iter (plus
//! elements/sec when a throughput is set).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Batch sizing for [`Bencher::iter_batched`] (ignored by the mini
/// implementation; every batch is one setup + one routine call).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One invocation per batch.
    PerIteration,
}

/// The per-benchmark measurement driver passed to bench closures.
pub struct Bencher {
    target_time: Duration,
    /// Measured nanoseconds per iteration, filled in by `iter*`.
    ns_per_iter: f64,
}

impl Bencher {
    /// Measures `routine` by running it in a calibrated loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: find an iteration count that runs ~target_time.
        let mut n: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.target_time || n >= 1 << 30 {
                self.ns_per_iter = elapsed.as_nanos() as f64 / n as f64;
                return;
            }
            let factor = (self.target_time.as_nanos() as f64 / elapsed.as_nanos().max(1) as f64)
                .clamp(2.0, 100.0);
            n = ((n as f64) * factor).ceil() as u64;
        }
    }

    /// Measures `routine` on fresh inputs built by `setup` (setup time is
    /// excluded from the measurement).
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut n: u64 = 1;
        loop {
            let mut elapsed = Duration::ZERO;
            for _ in 0..n {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                elapsed += start.elapsed();
            }
            if elapsed >= self.target_time || n >= 1 << 30 {
                self.ns_per_iter = elapsed.as_nanos() as f64 / n as f64;
                return;
            }
            let factor = (self.target_time.as_nanos() as f64 / elapsed.as_nanos().max(1) as f64)
                .clamp(2.0, 100.0);
            n = ((n as f64) * factor).ceil() as u64;
        }
    }
}

fn report(id: &str, ns: f64, throughput: Option<Throughput>) {
    let time = if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    };
    match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / (ns / 1e9);
            println!("{id:<40} {time:>12}/iter   {rate:>14.0} elem/s");
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / (ns / 1e9) / (1 << 20) as f64;
            println!("{id:<40} {time:>12}/iter   {rate:>14.1} MiB/s");
        }
        None => println!("{id:<40} {time:>12}/iter"),
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    target_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let ms = std::env::var("CRITERION_TARGET_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(300);
        Criterion {
            target_time: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            target_time: self.target_time,
            ns_per_iter: f64::NAN,
        };
        f(&mut b);
        report(id, b.ns_per_iter, None);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
            sample_size: None,
        }
    }
}

/// A group of related benchmarks sharing throughput annotations.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the group throughput used for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the mini harness is time-targeted,
    /// not sample-counted.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            target_time: self.criterion.target_time,
            ns_per_iter: f64::NAN,
        };
        f(&mut b);
        report(
            &format!("{}/{id}", self.name),
            b.ns_per_iter,
            self.throughput,
        );
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Declares a benchmark group function, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion {
            target_time: Duration::from_millis(5),
        };
        c.bench_function("spin", |b| b.iter(|| black_box(1u64 + 1)));
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(10));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
