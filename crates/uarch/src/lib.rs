//! # ildp-uarch — trace-driven timing models
//!
//! The microarchitecture substrate of the CGO 2003 reproduction: the two
//! machines of the paper's Table 1, built from shared components.
//!
//! * [`SuperscalarModel`] — the reference 4-wide out-of-order superscalar
//!   (128-entry ROB/window, 4 symmetric FUs, oldest-first issue) used for
//!   the "original" and "code-straightening-only" configurations.
//! * [`IldpModel`] — the distributed accumulator machine: GPR renaming,
//!   steering by accumulator number to 4/6/8 in-order single-issue PE
//!   FIFOs, replicated L1 D-cache, 0/2-cycle global communication latency.
//!
//! Shared components: a fetch front end ([`Frontend`]) with a gshare
//! direction predictor, BTB, conventional RAS and the paper's proposed
//! **dual-address RAS** (§3.2); and a two-level cache hierarchy with the
//! Table 1 geometries.
//!
//! Both models consume a stream of retired [`DynInst`] records (produced by
//! the `ildp-core` VM) through the [`TimingModel`] trait and report
//! [`TimingStats`], including the paper's metrics: V-ISA IPC and
//! mispredictions per 1,000 instructions.
//!
//! # Examples
//!
//! ```
//! use ildp_uarch::{DynInst, SuperscalarConfig, SuperscalarModel, TimingModel};
//!
//! let mut model = SuperscalarModel::new(SuperscalarConfig::default());
//! for i in 0..1_000u64 {
//!     model.retire(&DynInst::alu(0x1_0000 + (i % 64) * 4, 4));
//! }
//! let stats = model.finish();
//! assert!(stats.ipc() > 1.0 && stats.ipc() <= 4.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cache;
mod frontend;
mod ildp;
mod predictors;
mod sched;
mod superscalar;
mod trace;

pub use cache::{Cache, CacheConfig, DataHierarchy, InstHierarchy, MemoryLatencies, Replacement};
pub use frontend::{FetchOutcome, Frontend, FrontendStats};
pub use ildp::{IldpConfig, IldpModel};
pub use predictors::{
    BranchPredictors, Btb, DualAddressRas, Gshare, PredictorConfig, ReturnAddressStack,
};
pub use sched::{IssueBandwidth, MonotonicBandwidth, OccupancyRing};
pub use superscalar::{SuperscalarConfig, SuperscalarModel};
pub use trace::{DynInst, InstClass, TimingModel, TimingStats};
