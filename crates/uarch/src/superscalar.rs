//! Out-of-order superscalar timing model.
//!
//! The reference machine of the paper's Table 1 (left column): 4-wide
//! fetch/decode/retire, a 128-entry reorder buffer whose full size is also
//! the issue window, four symmetric functional units with oldest-first
//! issue, and the shared cache hierarchy. This is the "original" and
//! "code-straightening-only" simulator substrate.
//!
//! The model is trace-driven: each retired instruction's fetch, dispatch,
//! issue, completion and retire cycles are derived from dependence times
//! and resource scoreboards; wrong-path work is approximated by the
//! 3-cycle redirect penalty, as in the paper's own simulators.

use crate::cache::{CacheConfig, DataHierarchy, InstHierarchy, MemoryLatencies};
use crate::frontend::Frontend;
use crate::predictors::{BranchPredictors, PredictorConfig};
use crate::sched::{IssueBandwidth, MonotonicBandwidth, OccupancyRing};
use crate::trace::{DynInst, InstClass, TimingModel, TimingStats};

/// Configuration of the superscalar machine (paper Table 1 defaults).
#[derive(Clone, Debug)]
pub struct SuperscalarConfig {
    /// Fetch/decode/retire width in instructions per cycle.
    pub width: u32,
    /// Maximum sequential basic blocks fetched per cycle.
    pub max_fetch_blocks: u32,
    /// Reorder-buffer entries (= issue window size).
    pub rob_size: usize,
    /// Number of symmetric functional units (= issue bandwidth).
    pub fus: u32,
    /// Fetch-to-dispatch pipeline depth in cycles.
    pub front_depth: u64,
    /// Fetch redirection penalty (misfetch and mispredict).
    pub redirect_penalty: u64,
    /// Integer multiply latency.
    pub mul_latency: u64,
    /// Branch predictor complex.
    pub predictors: PredictorConfig,
    /// L1 I-cache geometry.
    pub icache: CacheConfig,
    /// L1 D-cache geometry.
    pub dcache: CacheConfig,
    /// Unified L2 geometry.
    pub l2: CacheConfig,
    /// Memory-system latencies.
    pub latencies: MemoryLatencies,
}

impl Default for SuperscalarConfig {
    fn default() -> SuperscalarConfig {
        SuperscalarConfig {
            width: 4,
            max_fetch_blocks: 3,
            rob_size: 128,
            fus: 4,
            front_depth: 2,
            redirect_penalty: 3,
            mul_latency: 7,
            predictors: PredictorConfig::default(),
            icache: CacheConfig::icache_32k(),
            dcache: CacheConfig::dcache_32k(),
            l2: CacheConfig::l2_1m(),
            latencies: MemoryLatencies::default(),
        }
    }
}

/// The out-of-order superscalar timing model. See the
/// module documentation.
///
/// # Examples
///
/// ```
/// use ildp_uarch::{DynInst, SuperscalarConfig, SuperscalarModel, TimingModel};
/// let mut model = SuperscalarModel::new(SuperscalarConfig::default());
/// for i in 0..1_000u64 {
///     model.retire(&DynInst::alu(0x1000 + (i % 32) * 4, 4));
/// }
/// let stats = model.finish();
/// assert_eq!(stats.instructions, 1_000);
/// assert!(stats.ipc() > 1.0); // independent ALU ops run wide
/// ```
#[derive(Debug)]
pub struct SuperscalarModel {
    config: SuperscalarConfig,
    frontend: Frontend,
    dcache: DataHierarchy,
    dispatch_bw: MonotonicBandwidth,
    retire_bw: MonotonicBandwidth,
    issue_bw: IssueBandwidth,
    rob: OccupancyRing,
    reg_ready: [u64; 256],
    last_retire: u64,
    last_store_complete: u64,
    instructions: u64,
    v_instructions: u64,
    prune_tick: u64,
}

impl SuperscalarModel {
    /// Creates a model from a configuration.
    pub fn new(config: SuperscalarConfig) -> SuperscalarModel {
        let frontend = Frontend::new(
            BranchPredictors::new(config.predictors),
            InstHierarchy::new(config.icache, config.l2, config.latencies),
            config.width,
            config.max_fetch_blocks,
            config.redirect_penalty,
        );
        let dcache = DataHierarchy::new(config.dcache, config.l2, config.latencies);
        SuperscalarModel {
            frontend,
            dcache,
            dispatch_bw: MonotonicBandwidth::new(config.width),
            retire_bw: MonotonicBandwidth::new(config.width),
            issue_bw: IssueBandwidth::new(config.fus),
            rob: OccupancyRing::new(config.rob_size),
            reg_ready: [0; 256],
            last_retire: 0,
            last_store_complete: 0,
            instructions: 0,
            v_instructions: 0,
            prune_tick: 0,
            config,
        }
    }

    fn exec_latency(&mut self, inst: &DynInst) -> u64 {
        match inst.class {
            InstClass::IntMul => self.config.mul_latency,
            InstClass::Load => match inst.mem_addr {
                Some(addr) => self.dcache.access(addr),
                None => self.config.latencies.l1_hit,
            },
            InstClass::Store => {
                // Stores retire through a store buffer; the cache access is
                // tracked for miss statistics but off the critical path.
                if let Some(addr) = inst.mem_addr {
                    self.dcache.access(addr);
                }
                1
            }
            _ => 1,
        }
    }
}

impl TimingModel for SuperscalarModel {
    fn retire(&mut self, inst: &DynInst) {
        let (fetch_cycle, outcome) = self.frontend.fetch(inst);

        // Dispatch: front-end depth, decode bandwidth, ROB space.
        let earliest = (fetch_cycle + self.config.front_depth).max(self.rob.earliest_insert());
        let dispatch = self.dispatch_bw.allocate(earliest);

        // Operand readiness.
        let mut ready = dispatch + 1;
        for src in inst.srcs.iter().flatten() {
            ready = ready.max(self.reg_ready[*src as usize]);
        }
        // Stores are ordered behind prior stores (memory ordering).
        if inst.class == InstClass::Store {
            ready = ready.max(self.last_store_complete);
        }

        // Issue: four symmetric FUs, any instruction class.
        let issue = self.issue_bw.allocate(ready);
        let complete = issue + self.exec_latency(inst);

        if let Some(dst) = inst.dst {
            self.reg_ready[dst as usize] = complete;
        }
        if inst.class == InstClass::Store {
            self.last_store_complete = complete;
        }

        // Branch resolution redirects fetch.
        if outcome.needs_execute_redirect() {
            self.frontend
                .resume_at(complete + self.config.redirect_penalty);
        }

        // In-order retirement.
        let retire = self
            .retire_bw
            .allocate(complete.max(self.last_retire).max(dispatch + 1));
        self.last_retire = retire;
        self.rob.push(retire);

        self.instructions += 1;
        self.v_instructions += inst.vcount as u64;

        self.prune_tick += 1;
        if self.prune_tick.is_multiple_of(4096) {
            // Nothing can issue before the ROB head's dispatch time; use a
            // conservative bound.
            self.issue_bw
                .prune_below(self.rob.earliest_insert().saturating_sub(1));
        }
    }

    fn finish(&mut self) -> TimingStats {
        let fe = self.frontend.stats();
        TimingStats {
            cycles: self.last_retire,
            instructions: self.instructions,
            v_instructions: self.v_instructions,
            cond_mispredicts: fe.cond_mispredicts,
            indirect_mispredicts: fe.indirect_mispredicts,
            return_mispredicts: fe.return_mispredicts,
            misfetches: fe.misfetches,
            cond_branches: fe.cond_branches,
            icache_misses: fe.icache_misses,
            dcache_misses: self.dcache.l1_misses(),
            l2_misses: self.dcache.l2_misses(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(insts: impl IntoIterator<Item = DynInst>) -> TimingStats {
        let mut m = SuperscalarModel::new(SuperscalarConfig::default());
        for i in insts {
            m.retire(&i);
        }
        m.finish()
    }

    #[test]
    fn independent_alu_ipc_near_width() {
        let stats = run((0..10_000u64).map(|i| DynInst::alu(0x1000 + (i % 16) * 4, 4)));
        assert!(stats.ipc() > 3.0, "ipc = {}", stats.ipc());
        assert!(stats.ipc() <= 4.0 + 1e-9);
    }

    #[test]
    fn dependent_chain_ipc_near_one() {
        let stats = run((0..10_000u64).map(|i| {
            let mut d = DynInst::alu(0x1000 + (i % 16) * 4, 4);
            d.srcs[0] = Some(1);
            d.dst = Some(1);
            d
        }));
        assert!(stats.ipc() < 1.2, "ipc = {}", stats.ipc());
        assert!(stats.ipc() > 0.8, "ipc = {}", stats.ipc());
    }

    #[test]
    fn ipc_never_exceeds_width() {
        let stats = run((0..5_000u64).map(|i| DynInst::alu(0x1000 + (i % 8) * 4, 4)));
        assert!(stats.ipc() <= 4.0 + 1e-9);
    }

    #[test]
    fn mispredicted_branches_cost_cycles() {
        // A loop whose branch alternates unpredictably vs. one always taken.
        let make = |regular: bool| {
            (0..20_000u64).map(move |i| {
                let mut d = DynInst::alu(0x1000 + (i % 4) * 4, 4);
                if i % 4 == 3 {
                    d.class = InstClass::CondBranch;
                    // Irregular pattern defeats gshare; regular is learned.
                    d.taken = if regular {
                        true
                    } else {
                        // Hash-random direction (splitmix64 finalizer):
                        // unlearnable by gshare.
                        let mut z = (i / 4).wrapping_add(0x9e37_79b9_7f4a_7c15);
                        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                        (z ^ (z >> 31)) & 1 == 1
                    };
                    d.next_pc = if d.taken { 0x1000 } else { 0x1010 };
                }
                d
            })
        };
        let regular = run(make(true));
        let irregular = run(make(false));
        assert!(
            irregular.cycles > regular.cycles * 3 / 2,
            "irregular {} vs regular {}",
            irregular.cycles,
            regular.cycles
        );
        assert!(irregular.cond_mispredicts > regular.cond_mispredicts * 5);
    }

    #[test]
    fn cache_missing_loads_slow_execution() {
        let hit = run((0..5_000u64).map(|i| {
            let mut d = DynInst::alu(0x1000 + (i % 8) * 4, 4);
            d.class = InstClass::Load;
            d.mem_addr = Some(0x10_0000); // same line: always hits
            d.dst = Some(2);
            d.srcs[0] = Some(2); // pointer chase: serialize on the load
            d
        }));
        let miss = run((0..5_000u64).map(|i| {
            let mut d = DynInst::alu(0x1000 + (i % 8) * 4, 4);
            d.class = InstClass::Load;
            // Stride larger than L2 capacity: miss to memory every time.
            d.mem_addr = Some(0x10_0000 + i * 4096 * 64);
            d.dst = Some(2);
            d.srcs[0] = Some(2);
            d
        }));
        assert!(
            miss.cycles > hit.cycles * 10,
            "miss {} vs hit {}",
            miss.cycles,
            hit.cycles
        );
        assert!(miss.dcache_misses > 4_000);
    }

    #[test]
    fn rob_limits_runahead_past_long_miss() {
        // One memory-miss load followed by thousands of independent ALU
        // ops: the ROB caps how much independent work hides the miss.
        let mut insts = Vec::new();
        let mut ld = DynInst::alu(0x1000, 4);
        ld.class = InstClass::Load;
        ld.mem_addr = Some(0xdead_0000);
        ld.dst = Some(9);
        insts.push(ld);
        for i in 0..1_000u64 {
            insts.push(DynInst::alu(0x2000 + (i % 32) * 4, 4));
        }
        // A dependent consumer at the end.
        let mut user = DynInst::alu(0x3000, 4);
        user.srcs[0] = Some(9);
        insts.push(user);
        let stats = run(insts);
        // 1002 instructions, ~82 cycles of miss latency + ~250 cycles of
        // ALU retirement: reasonable bounds assert the ROB model is active.
        assert!(stats.cycles > 260, "cycles = {}", stats.cycles);
    }

    #[test]
    fn vcount_attribution() {
        let mut m = SuperscalarModel::new(SuperscalarConfig::default());
        let mut d = DynInst::alu(0x1000, 4);
        d.vcount = 3;
        m.retire(&d);
        let stats = m.finish();
        assert_eq!(stats.instructions, 1);
        assert_eq!(stats.v_instructions, 3);
        assert!(stats.v_ipc() >= stats.ipc());
    }
}
