//! Shared instruction-fetch front end.
//!
//! Both timing models (superscalar and ILDP) use the same front end, as in
//! the paper's Table 1: per cycle it fetches up to `width` instructions
//! from at most `max_blocks` sequential basic blocks out of one I-cache
//! line, consults the branch predictors, and charges a 3-cycle redirect
//! for both misfetches (target unknown until decode) and mispredictions
//! (resolved at execute — the backend reports the resolve cycle via
//! [`Frontend::resume_at`]).

use crate::cache::InstHierarchy;
use crate::predictors::BranchPredictors;
use crate::trace::{DynInst, InstClass};

/// What the predictor complex decided about one fetched instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FetchOutcome {
    /// Not a control instruction, or predicted correctly.
    Ok,
    /// Taken-target unknown/wrong at fetch; fixed at decode (3-cycle
    /// redirect charged by the front end itself).
    Misfetch,
    /// Conditional-branch direction mispredict (resolved at execute).
    CondMispredict,
    /// Indirect-jump target mispredict (resolved at execute).
    IndirectMispredict,
    /// Return-address mispredict (resolved at execute).
    ReturnMispredict,
}

impl FetchOutcome {
    /// Whether the backend must report the resolve cycle.
    pub fn needs_execute_redirect(self) -> bool {
        matches!(
            self,
            FetchOutcome::CondMispredict
                | FetchOutcome::IndirectMispredict
                | FetchOutcome::ReturnMispredict
        )
    }
}

/// Misprediction counters accumulated by the front end.
#[derive(Clone, Copy, Default, Debug)]
pub struct FrontendStats {
    /// Conditional-branch direction mispredictions.
    pub cond_mispredicts: u64,
    /// Indirect target mispredictions.
    pub indirect_mispredicts: u64,
    /// Return mispredictions.
    pub return_mispredicts: u64,
    /// Misfetches.
    pub misfetches: u64,
    /// Conditional branches seen.
    pub cond_branches: u64,
    /// I-cache misses.
    pub icache_misses: u64,
}

/// The fetch engine. See the module documentation.
#[derive(Debug)]
pub struct Frontend {
    predictors: BranchPredictors,
    icache: InstHierarchy,
    width: u32,
    max_blocks: u32,
    redirect_penalty: u64,
    cycle: u64,
    slots: u32,
    blocks: u32,
    cur_line: u64,
    stats: FrontendStats,
}

impl Frontend {
    /// Creates a front end.
    ///
    /// `width` is the per-cycle fetch bandwidth in instructions,
    /// `max_blocks` the maximum sequential basic blocks fetched per cycle
    /// (paper: 3), and `redirect_penalty` the misfetch/mispredict
    /// redirection latency (paper: 3).
    pub fn new(
        predictors: BranchPredictors,
        icache: InstHierarchy,
        width: u32,
        max_blocks: u32,
        redirect_penalty: u64,
    ) -> Frontend {
        assert!(width > 0 && max_blocks > 0);
        Frontend {
            predictors,
            icache,
            width,
            max_blocks,
            redirect_penalty,
            cycle: 0,
            slots: width,
            blocks: max_blocks,
            cur_line: u64::MAX,
            stats: FrontendStats::default(),
        }
    }

    /// The redirect penalty in cycles.
    pub fn redirect_penalty(&self) -> u64 {
        self.redirect_penalty
    }

    /// Accumulated misprediction statistics.
    pub fn stats(&self) -> FrontendStats {
        self.stats
    }

    /// I-cache misses so far.
    pub fn icache_misses(&self) -> u64 {
        self.icache.l1i_misses()
    }

    fn new_group(&mut self) {
        self.cycle += 1;
        self.slots = self.width;
        self.blocks = self.max_blocks;
    }

    /// Redirects fetch: the next instruction cannot be fetched before
    /// `cycle`. Called by the backend when a misprediction resolves.
    pub fn resume_at(&mut self, cycle: u64) {
        if cycle > self.cycle {
            self.cycle = cycle;
            self.slots = self.width;
            self.blocks = self.max_blocks;
        }
    }

    /// Fetches the next instruction of the retired stream, returning the
    /// fetch cycle and the prediction outcome.
    pub fn fetch(&mut self, inst: &DynInst) -> (u64, FetchOutcome) {
        // Fetch-group bookkeeping: bandwidth and block limits.
        if self.slots == 0 || self.blocks == 0 {
            self.new_group();
        }
        // Crossing into a new I-cache line ends the group and may stall.
        let line_bytes = self.icache.line_bytes() as u64;
        let line = inst.pc / line_bytes;
        if line != self.cur_line {
            if self.cur_line != u64::MAX {
                self.new_group();
            }
            let before = self.icache.l1i_misses();
            let penalty = self.icache.fetch(inst.pc);
            if self.icache.l1i_misses() > before {
                self.stats.icache_misses += 1;
            }
            self.cycle += penalty;
            self.cur_line = line;
        }
        let fetch_cycle = self.cycle;
        self.slots -= 1;

        let outcome = self.predict(inst);

        match outcome {
            FetchOutcome::Ok => {
                if inst.class.is_control() {
                    if inst.taken || inst.class.is_indirect() {
                        // Taken transfer ends the fetch group; target may be
                        // on another line (handled on next fetch).
                        self.slots = 0;
                        self.cur_line = u64::MAX;
                    } else {
                        // Not-taken branch: one more basic block consumed.
                        self.blocks -= 1;
                    }
                }
            }
            FetchOutcome::Misfetch => {
                // Target fixed at decode.
                self.stats.misfetches += 1;
                self.resume_at(fetch_cycle + self.redirect_penalty);
                self.cur_line = u64::MAX;
            }
            _ => {
                // Execute-resolved mispredict; the backend calls
                // `resume_at`. Conservatively close the group.
                self.slots = 0;
                self.cur_line = u64::MAX;
            }
        }
        (fetch_cycle, outcome)
    }

    fn predict(&mut self, inst: &DynInst) -> FetchOutcome {
        let p = &mut self.predictors;
        match inst.class {
            InstClass::CondBranch => {
                self.stats.cond_branches += 1;
                let predicted_taken = p.gshare.predict(inst.pc);
                p.gshare.update(inst.pc, inst.taken);
                if predicted_taken != inst.taken {
                    self.stats.cond_mispredicts += 1;
                    return FetchOutcome::CondMispredict;
                }
                if inst.taken {
                    let pred_target = p.btb.predict(inst.pc);
                    p.btb.update(inst.pc, inst.next_pc);
                    if pred_target != Some(inst.next_pc) {
                        return FetchOutcome::Misfetch;
                    }
                }
                FetchOutcome::Ok
            }
            InstClass::Branch | InstClass::Call => {
                let pred_target = p.btb.predict(inst.pc);
                p.btb.update(inst.pc, inst.next_pc);
                if inst.class == InstClass::Call && p.config.use_ras && !p.config.dual_ras {
                    p.ras.push(inst.pc + inst.size as u64);
                }
                if pred_target != Some(inst.next_pc) {
                    return FetchOutcome::Misfetch;
                }
                FetchOutcome::Ok
            }
            InstClass::IndirectJump | InstClass::IndirectCall => {
                let pred_target = p.btb.predict(inst.pc);
                p.btb.update(inst.pc, inst.next_pc);
                if inst.class == InstClass::IndirectCall && p.config.use_ras && !p.config.dual_ras {
                    p.ras.push(inst.pc + inst.size as u64);
                }
                if pred_target != Some(inst.next_pc) {
                    self.stats.indirect_mispredicts += 1;
                    return FetchOutcome::IndirectMispredict;
                }
                FetchOutcome::Ok
            }
            InstClass::Return => {
                if !p.config.use_ras {
                    // No RAS: the BTB is all we have for returns.
                    let pred_target = p.btb.predict(inst.pc);
                    p.btb.update(inst.pc, inst.next_pc);
                    if pred_target != Some(inst.next_pc) {
                        self.stats.return_mispredicts += 1;
                        return FetchOutcome::ReturnMispredict;
                    }
                    return FetchOutcome::Ok;
                }
                if p.config.dual_ras {
                    // Dual-address RAS: prediction is correct iff the popped
                    // V-address matches the return's actual V-target.
                    match p.dual_ras.pop() {
                        Some((v, _i)) if v == inst.v_target => FetchOutcome::Ok,
                        _ => {
                            self.stats.return_mispredicts += 1;
                            FetchOutcome::ReturnMispredict
                        }
                    }
                } else {
                    match p.ras.pop() {
                        Some(t) if t == inst.next_pc => FetchOutcome::Ok,
                        _ => {
                            self.stats.return_mispredicts += 1;
                            FetchOutcome::ReturnMispredict
                        }
                    }
                }
            }
            InstClass::DualRasPush => {
                if let Some((v, i)) = inst.ras_pair {
                    p.dual_ras.push(v, i);
                }
                FetchOutcome::Ok
            }
            _ => FetchOutcome::Ok,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{CacheConfig, InstHierarchy, MemoryLatencies};
    use crate::predictors::{BranchPredictors, PredictorConfig};

    fn frontend(config: PredictorConfig) -> Frontend {
        Frontend::new(
            BranchPredictors::new(config),
            InstHierarchy::new(
                CacheConfig::icache_32k(),
                CacheConfig::l2_1m(),
                MemoryLatencies::default(),
            ),
            4,
            3,
            3,
        )
    }

    fn seq(pc: u64) -> DynInst {
        DynInst::alu(pc, 4)
    }

    #[test]
    fn bandwidth_limits_fetch_groups() {
        let mut fe = frontend(PredictorConfig::default());
        // Warm the I-cache line first.
        let (c0, _) = fe.fetch(&seq(0x1000));
        // 4-wide: next three share the cycle, the 5th starts a new one.
        let (c1, _) = fe.fetch(&seq(0x1004));
        let (c2, _) = fe.fetch(&seq(0x1008));
        let (c3, _) = fe.fetch(&seq(0x100c));
        let (c4, _) = fe.fetch(&seq(0x1010));
        assert_eq!(c0, c1);
        assert_eq!(c1, c2);
        assert_eq!(c2, c3);
        assert_eq!(c4, c3 + 1);
    }

    #[test]
    fn taken_branch_ends_group() {
        let mut fe = frontend(PredictorConfig::default());
        let mut br = DynInst::alu(0x1000, 4);
        br.class = InstClass::Branch;
        br.taken = true;
        br.next_pc = 0x1800; // same line size domain, different line
        fe.fetch(&seq(0x1000)); // warm line, group 0 — wait, use branch directly
        let mut fe = frontend(PredictorConfig::default());
        let (_, out) = fe.fetch(&br);
        // Cold BTB → misfetch.
        assert_eq!(out, FetchOutcome::Misfetch);
        // Second encounter: BTB knows the target.
        let mut fe2 = frontend(PredictorConfig::default());
        fe2.fetch(&br);
        let (_c, out2) = {
            // Re-fetch target inst then the branch again.
            fe2.fetch(&seq(0x1800));
            fe2.fetch(&br)
        };
        assert_eq!(out2, FetchOutcome::Ok);
    }

    #[test]
    fn cond_mispredict_counted_and_needs_backend() {
        let mut fe = frontend(PredictorConfig::default());
        let mut br = DynInst::alu(0x2000, 4);
        br.class = InstClass::CondBranch;
        br.taken = false; // gshare initialized weakly-taken → mispredict
        let (_, out) = fe.fetch(&br);
        assert_eq!(out, FetchOutcome::CondMispredict);
        assert!(out.needs_execute_redirect());
        assert_eq!(fe.stats().cond_mispredicts, 1);
    }

    #[test]
    fn resume_at_advances_fetch() {
        let mut fe = frontend(PredictorConfig::default());
        let (c0, _) = fe.fetch(&seq(0x1000));
        fe.resume_at(c0 + 50);
        let (c1, _) = fe.fetch(&seq(0x1004));
        assert_eq!(c1, c0 + 50);
        // resume_at never goes backwards.
        fe.resume_at(0);
        let (c2, _) = fe.fetch(&seq(0x1008));
        assert!(c2 >= c1);
    }

    #[test]
    fn dual_ras_predicts_matching_vaddr() {
        let config = PredictorConfig {
            dual_ras: true,
            ..PredictorConfig::default()
        };
        let mut fe = frontend(config);
        let mut push = DynInst::alu(0x3000, 8);
        push.class = InstClass::DualRasPush;
        push.ras_pair = Some((0x9000, 0xf100));
        fe.fetch(&push);
        let mut ret = DynInst::alu(0x3008, 2);
        ret.class = InstClass::Return;
        ret.v_target = 0x9000;
        ret.next_pc = 0xf100;
        let (_, out) = fe.fetch(&ret);
        assert_eq!(out, FetchOutcome::Ok);
        assert_eq!(fe.stats().return_mispredicts, 0);

        // A second return with nothing on the stack mispredicts.
        let (_, out2) = fe.fetch(&ret);
        assert_eq!(out2, FetchOutcome::ReturnMispredict);
    }

    #[test]
    fn conventional_ras_call_return() {
        let mut fe = frontend(PredictorConfig::default());
        let mut call = DynInst::alu(0x4000, 4);
        call.class = InstClass::Call;
        call.taken = true;
        call.next_pc = 0x5000;
        fe.fetch(&call);
        let mut ret = DynInst::alu(0x5000, 4);
        ret.class = InstClass::Return;
        ret.next_pc = 0x4004;
        let (_, out) = fe.fetch(&ret);
        assert_eq!(out, FetchOutcome::Ok);
    }

    #[test]
    fn no_ras_returns_fall_back_to_btb() {
        let config = PredictorConfig {
            use_ras: false,
            ..PredictorConfig::default()
        };
        let mut fe = frontend(config);
        let mut ret = DynInst::alu(0x6000, 4);
        ret.class = InstClass::Return;
        ret.next_pc = 0x4004;
        let (_, out) = fe.fetch(&ret);
        assert_eq!(out, FetchOutcome::ReturnMispredict); // cold BTB
        let (_, out2) = fe.fetch(&ret);
        assert_eq!(out2, FetchOutcome::Ok); // BTB trained, same target
    }
}
