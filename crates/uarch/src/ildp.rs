//! The ILDP distributed microarchitecture timing model.
//!
//! The accumulator-oriented machine of Kim & Smith (ISCA 2002), as
//! configured in the paper's Table 1 (right column): a conventional
//! pipelined front end (shared with the superscalar model), GPR renaming,
//! and **steering by accumulator number** to 4/6/8 processing elements.
//! Each PE is a single-issue in-order FIFO with a local physical
//! accumulator and a local copy of the GPR file; GPR values produced on one
//! PE become visible to the others after a global communication latency of
//! 0 or 2 cycles. A 128-entry reorder buffer retires 4 instructions per
//! cycle in order. The L1 D-cache is replicated across PEs (same latency
//! as the superscalar's cache, per the paper).

use crate::cache::{CacheConfig, DataHierarchy, InstHierarchy, MemoryLatencies};
use crate::frontend::Frontend;
use crate::predictors::{BranchPredictors, PredictorConfig};
use crate::sched::{MonotonicBandwidth, OccupancyRing};
use crate::trace::{DynInst, InstClass, TimingModel, TimingStats};

/// Configuration of the ILDP machine (paper Table 1 defaults: 8 PEs,
/// 0-cycle communication for the Figure 8 comparison; Figure 9 sweeps PE
/// count, D-cache size and communication latency).
#[derive(Clone, Debug)]
pub struct IldpConfig {
    /// Decode/rename/retire width in instructions per cycle.
    pub width: u32,
    /// Maximum sequential basic blocks fetched per cycle.
    pub max_fetch_blocks: u32,
    /// Number of processing elements (paper: 4, 6 or 8).
    pub pe_count: usize,
    /// Instruction FIFO depth per PE.
    pub fifo_depth: usize,
    /// Reorder-buffer entries.
    pub rob_size: usize,
    /// Global (inter-PE) communication latency in cycles (paper: 0 or 2).
    pub comm_latency: u64,
    /// Locality window for dependence-aware steering: a new strand is
    /// steered to the PE that produced its GPR source operand unless that
    /// PE's backlog exceeds the least-loaded PE's by more than this many
    /// cycles. This is the paper's "simple steering based on accumulator
    /// numbers": keeping a recurrence's strand on its producer's PE is
    /// what makes the machine tolerant of global wire latency (§4.5).
    pub steer_locality_window: u64,
    /// Fetch-to-dispatch pipeline depth.
    pub front_depth: u64,
    /// Fetch redirection penalty.
    pub redirect_penalty: u64,
    /// Integer multiply latency.
    pub mul_latency: u64,
    /// Branch predictor complex (dual-address RAS enabled by default:
    /// translated code relies on it).
    pub predictors: PredictorConfig,
    /// L1 I-cache geometry.
    pub icache: CacheConfig,
    /// Replicated L1 D-cache geometry (paper: 32 KB 4-way or 8 KB 2-way).
    pub dcache: CacheConfig,
    /// Unified L2 geometry.
    pub l2: CacheConfig,
    /// Memory-system latencies.
    pub latencies: MemoryLatencies,
}

impl Default for IldpConfig {
    fn default() -> IldpConfig {
        IldpConfig {
            width: 4,
            max_fetch_blocks: 3,
            pe_count: 8,
            fifo_depth: 16,
            rob_size: 128,
            comm_latency: 0,
            steer_locality_window: 8,
            front_depth: 2,
            redirect_penalty: 3,
            mul_latency: 7,
            predictors: PredictorConfig {
                dual_ras: true,
                ..PredictorConfig::default()
            },
            icache: CacheConfig::icache_32k(),
            dcache: CacheConfig::dcache_32k(),
            l2: CacheConfig::l2_1m(),
            latencies: MemoryLatencies::default(),
        }
    }
}

#[derive(Clone, Copy, Default, Debug)]
struct GprState {
    ready: u64,
    pe: usize,
}

/// The ILDP timing model. See the module documentation.
///
/// # Examples
///
/// ```
/// use ildp_uarch::{DynInst, IldpConfig, IldpModel, TimingModel};
/// let mut model = IldpModel::new(IldpConfig::default());
/// for i in 0..1_000u64 {
///     let mut d = DynInst::alu(0x1000 + (i % 16) * 2, 2);
///     d.acc = Some((i % 4) as u8); // four independent strands
///     d.acc_read = i >= 4;         // first instruction starts each strand
///     d.acc_write = true;
///     model.retire(&d);
/// }
/// let stats = model.finish();
/// assert!(stats.ipc() > 1.0);
/// ```
#[derive(Debug)]
pub struct IldpModel {
    config: IldpConfig,
    frontend: Frontend,
    dcache: DataHierarchy,
    dispatch_bw: MonotonicBandwidth,
    retire_bw: MonotonicBandwidth,
    rob: OccupancyRing,
    /// Per-PE: issue timestamp of the most recently issued instruction.
    pe_last_issue: Vec<u64>,
    /// Per-PE: FIFO occupancy ring (departure = issue time).
    pe_fifo: Vec<OccupancyRing>,
    /// Per-PE: issue time of the instruction at the FIFO tail (backlog
    /// estimate used for steering).
    pe_tail_issue: Vec<u64>,
    /// Where each logical accumulator currently lives, and when its value
    /// is ready.
    acc_pe: Vec<usize>,
    acc_ready: Vec<u64>,
    gprs: [GprState; 256],
    steer_rr: usize,
    /// Diagnostic: GPR reads whose ready time was extended by the global
    /// communication latency (cross-PE value needed hot).
    pub comm_stalled_reads: u64,
    /// Diagnostic: GPR reads satisfied locally or already cold.
    pub other_reads: u64,
    /// Instructions issued per PE (utilization accounting).
    pe_issued: Vec<u64>,
    last_retire: u64,
    last_store_complete: u64,
    instructions: u64,
    v_instructions: u64,
}

impl IldpModel {
    /// Creates a model from a configuration.
    pub fn new(config: IldpConfig) -> IldpModel {
        let frontend = Frontend::new(
            BranchPredictors::new(config.predictors),
            InstHierarchy::new(config.icache, config.l2, config.latencies),
            config.width,
            config.max_fetch_blocks,
            config.redirect_penalty,
        );
        let dcache = DataHierarchy::new(config.dcache, config.l2, config.latencies);
        IldpModel {
            frontend,
            dcache,
            dispatch_bw: MonotonicBandwidth::new(config.width),
            retire_bw: MonotonicBandwidth::new(config.width),
            rob: OccupancyRing::new(config.rob_size),
            pe_last_issue: vec![0; config.pe_count],
            pe_fifo: (0..config.pe_count)
                .map(|_| OccupancyRing::new(config.fifo_depth))
                .collect(),
            pe_tail_issue: vec![0; config.pe_count],
            acc_pe: vec![0; 16],
            acc_ready: vec![0; 16],
            gprs: [GprState::default(); 256],
            steer_rr: 0,
            comm_stalled_reads: 0,
            other_reads: 0,
            pe_issued: vec![0; config.pe_count],
            last_retire: 0,
            last_store_complete: 0,
            instructions: 0,
            v_instructions: 0,
            config,
        }
    }

    /// Steers an instruction to a PE (paper [28]: strand-continuing
    /// instructions follow their accumulator; strand-starting instructions
    /// go to the least-loaded FIFO).
    fn steer(&mut self, inst: &DynInst) -> usize {
        if let Some(acc) = inst.acc {
            let acc = acc as usize;
            if inst.acc_read {
                return self.acc_pe[acc];
            }
            // New strand: dependence-aware steering. Choose the PE with
            // the earliest *estimated issue time* for this instruction —
            // the max of the FIFO backlog and the operand arrival times,
            // where GPR sources produced on another PE pay the global
            // communication latency. This is the backlog-vs-wire-delay
            // tradeoff that makes strand steering latency tolerant
            // (paper §4.5): recurrences stay on their producer's PE while
            // independent strands still spread across the machine.
            let mut best_pe = 0;
            let mut best_est = u64::MAX;
            for pe in 0..self.config.pe_count {
                let mut est = self.pe_tail_issue[pe] + 1;
                for src in inst.srcs.iter().flatten() {
                    let g = self.gprs[*src as usize];
                    let comm = if g.pe == pe {
                        0
                    } else {
                        self.config.comm_latency
                    };
                    est = est.max(g.ready + comm);
                }
                if est < best_est {
                    best_est = est;
                    best_pe = pe;
                }
            }
            self.acc_pe[acc] = best_pe;
            return best_pe;
        }
        // Accumulator-less instructions (branches to dispatch, specials):
        // round-robin to spread front-end work.
        self.steer_rr = (self.steer_rr + 1) % self.config.pe_count;
        self.steer_rr
    }

    /// Instructions issued by each processing element, in PE order — the
    /// load-balance picture behind the steering heuristic. The sum equals
    /// the retired instruction count.
    pub fn pe_utilization(&self) -> &[u64] {
        &self.pe_issued
    }

    fn exec_latency(&mut self, inst: &DynInst) -> u64 {
        match inst.class {
            InstClass::IntMul => self.config.mul_latency,
            InstClass::Load => match inst.mem_addr {
                Some(addr) => self.dcache.access(addr),
                None => self.config.latencies.l1_hit,
            },
            InstClass::Store => {
                if let Some(addr) = inst.mem_addr {
                    self.dcache.access(addr);
                }
                1
            }
            _ => 1,
        }
    }
}

impl TimingModel for IldpModel {
    fn retire(&mut self, inst: &DynInst) {
        let (fetch_cycle, outcome) = self.frontend.fetch(inst);

        let pe = self.steer(inst);

        // Dispatch: decode width, ROB space, FIFO space on the target PE.
        let earliest = (fetch_cycle + self.config.front_depth)
            .max(self.rob.earliest_insert())
            .max(self.pe_fifo[pe].earliest_insert());
        let dispatch = self.dispatch_bw.allocate(earliest);

        // Operand readiness: local accumulator plus GPRs with
        // communication latency for cross-PE values.
        let mut ready = dispatch + 1;
        if inst.acc_read {
            if let Some(acc) = inst.acc {
                ready = ready.max(self.acc_ready[acc as usize]);
            }
        }
        for src in inst.srcs.iter().flatten() {
            let g = self.gprs[*src as usize];
            let comm = if g.pe == pe {
                0
            } else {
                self.config.comm_latency
            };
            if comm > 0 && g.ready + comm > ready {
                self.comm_stalled_reads += 1;
            } else {
                self.other_reads += 1;
            }
            ready = ready.max(g.ready + comm);
        }
        if inst.class == InstClass::Store {
            ready = ready.max(self.last_store_complete);
        }

        // In-order single issue from the PE's FIFO head.
        self.pe_issued[pe] += 1;
        let issue = ready.max(self.pe_last_issue[pe] + 1);
        self.pe_last_issue[pe] = issue;
        self.pe_fifo[pe].push(issue);
        self.pe_tail_issue[pe] = issue;

        let complete = issue + self.exec_latency(inst);

        if inst.acc_write {
            if let Some(acc) = inst.acc {
                self.acc_ready[acc as usize] = complete;
            }
        }
        if let Some(dst) = inst.dst {
            self.gprs[dst as usize] = GprState {
                ready: complete,
                pe,
            };
        }
        if inst.class == InstClass::Store {
            self.last_store_complete = complete;
        }

        if outcome.needs_execute_redirect() {
            self.frontend
                .resume_at(complete + self.config.redirect_penalty);
        }

        let retire = self
            .retire_bw
            .allocate(complete.max(self.last_retire).max(dispatch + 1));
        self.last_retire = retire;
        self.rob.push(retire);

        self.instructions += 1;
        self.v_instructions += inst.vcount as u64;
    }

    fn finish(&mut self) -> TimingStats {
        let fe = self.frontend.stats();
        TimingStats {
            cycles: self.last_retire,
            instructions: self.instructions,
            v_instructions: self.v_instructions,
            cond_mispredicts: fe.cond_mispredicts,
            indirect_mispredicts: fe.indirect_mispredicts,
            return_mispredicts: fe.return_mispredicts,
            misfetches: fe.misfetches,
            cond_branches: fe.cond_branches,
            icache_misses: fe.icache_misses,
            dcache_misses: self.dcache.l1_misses(),
            l2_misses: self.dcache.l2_misses(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strand_inst(pc: u64, acc: u8, continue_strand: bool) -> DynInst {
        let mut d = DynInst::alu(pc, 2);
        d.acc = Some(acc);
        d.acc_read = continue_strand;
        d.acc_write = true;
        d
    }

    fn run(config: IldpConfig, insts: impl IntoIterator<Item = DynInst>) -> TimingStats {
        let mut m = IldpModel::new(config);
        for i in insts {
            m.retire(&i);
        }
        m.finish()
    }

    #[test]
    fn parallel_strands_scale_with_pes() {
        // Four long dependence chains interleaved: 4 PEs can sustain ~4/cy
        // only if steering separates them.
        let insts: Vec<DynInst> = (0..40_000u64)
            .map(|i| strand_inst(0x1000 + (i % 32) * 2, (i % 4) as u8, i >= 4))
            .collect();
        let four = run(
            IldpConfig {
                pe_count: 4,
                ..IldpConfig::default()
            },
            insts.iter().copied(),
        );
        let one_strand: Vec<DynInst> = (0..40_000u64)
            .map(|i| strand_inst(0x1000 + (i % 32) * 2, 0, i >= 1))
            .collect();
        let serial = run(IldpConfig::default(), one_strand);
        assert!(
            four.ipc() > serial.ipc() * 2.5,
            "four strands {} vs one {}",
            four.ipc(),
            serial.ipc()
        );
        assert!(serial.ipc() < 1.2);
    }

    #[test]
    fn communication_latency_slows_cross_strand_values() {
        // Two producers, each pinned to its own PE by a private GPR
        // recurrence, feed one consumer: at least one edge must cross
        // PEs, so 2-cycle global communication costs cycles. (A single
        // producer/consumer pair would be co-located by the
        // dependence-aware steering and correctly see no penalty.)
        let make = || {
            (0..20_000u64).flat_map(|i| {
                let mut prod_a = strand_inst(0x1000 + (i % 8) * 8, 0, false);
                prod_a.srcs[0] = Some(7); // recurrence keeps it put
                prod_a.dst = Some(7);
                let mut prod_b = strand_inst(0x1002 + (i % 8) * 8, 1, false);
                prod_b.srcs[0] = Some(8);
                prod_b.dst = Some(8);
                let mut consumer = strand_inst(0x1004 + (i % 8) * 8, 2, false);
                consumer.srcs[0] = Some(7);
                consumer.srcs[1] = Some(8);
                consumer.dst = Some(9);
                [prod_a, prod_b, consumer]
            })
        };
        let zero = run(
            IldpConfig {
                comm_latency: 0,
                ..IldpConfig::default()
            },
            make(),
        );
        let two = run(
            IldpConfig {
                comm_latency: 2,
                ..IldpConfig::default()
            },
            make(),
        );
        assert!(
            two.cycles > zero.cycles,
            "2-cycle comm must not be free: {} vs {}",
            two.cycles,
            zero.cycles
        );
    }

    #[test]
    fn ipc_bounded_by_width() {
        let insts =
            (0..10_000u64).map(|i| strand_inst(0x1000 + (i % 64) * 2, (i % 8) as u8, false));
        let stats = run(IldpConfig::default(), insts);
        assert!(stats.ipc() <= 4.0 + 1e-9);
        assert!(stats.ipc() > 2.0);
    }

    #[test]
    fn fifo_depth_backpressures_dispatch() {
        // A single stalled strand (long loads) fills its FIFO; dispatch of
        // that strand stalls but the model must still make progress.
        let insts: Vec<DynInst> = (0..2_000u64)
            .map(|i| {
                let mut d = strand_inst(0x1000 + (i % 8) * 2, 0, true);
                d.class = InstClass::Load;
                d.mem_addr = Some(0x100_0000 + i * 64 * 4096);
                d
            })
            .collect();
        let shallow = run(
            IldpConfig {
                fifo_depth: 2,
                ..IldpConfig::default()
            },
            insts.iter().copied(),
        );
        assert!(shallow.ipc() < 0.5);
        assert_eq!(shallow.instructions, 2_000);
    }

    #[test]
    fn pe_utilization_sums_and_spreads() {
        let insts: Vec<DynInst> = (0..10_000u64)
            .map(|i| strand_inst(0x1000 + (i % 64) * 2, (i % 4) as u8, false))
            .collect();
        let mut m = IldpModel::new(IldpConfig::default());
        for d in &insts {
            m.retire(d);
        }
        let util = m.pe_utilization().to_vec();
        assert_eq!(util.iter().sum::<u64>(), insts.len() as u64);
        // Independent strands must not pile onto one PE.
        let max = *util.iter().max().unwrap();
        assert!(
            max < insts.len() as u64 / 2,
            "steering collapsed onto one PE: {util:?}"
        );
    }

    #[test]
    fn replicated_small_dcache_misses_more() {
        let insts: Vec<DynInst> = (0..30_000u64)
            .map(|i| {
                let mut d = strand_inst(0x1000 + (i % 16) * 2, (i % 4) as u8, false);
                d.class = InstClass::Load;
                // 16 KB working set: fits in 32 KB, thrashes 8 KB.
                d.mem_addr = Some(0x20_0000 + (i * 64) % (16 * 1024));
                d
            })
            .collect();
        let big = run(IldpConfig::default(), insts.iter().copied());
        let small = run(
            IldpConfig {
                dcache: CacheConfig::dcache_8k(),
                ..IldpConfig::default()
            },
            insts.iter().copied(),
        );
        assert!(
            small.dcache_misses > big.dcache_misses * 5,
            "8KB {} vs 32KB {}",
            small.dcache_misses,
            big.dcache_misses
        );
    }
}
