//! Branch prediction structures (paper Table 1 and §3.2).

mod btb;
mod gshare;
mod ras;

pub use btb::Btb;
pub use gshare::Gshare;
pub use ras::{DualAddressRas, ReturnAddressStack};

/// Configuration for the front-end prediction structures.
#[derive(Clone, Copy, Debug)]
pub struct PredictorConfig {
    /// gshare table entries (power of two).
    pub gshare_entries: usize,
    /// gshare global-history length in bits.
    pub history_bits: u32,
    /// BTB total entries.
    pub btb_entries: usize,
    /// BTB associativity.
    pub btb_ways: usize,
    /// Return address stack depth.
    pub ras_depth: usize,
    /// Whether a return address stack is present at all (Figure 6 compares
    /// with/without RAS).
    pub use_ras: bool,
    /// Whether the RAS is the dual-address flavor (translated code only).
    pub dual_ras: bool,
}

impl Default for PredictorConfig {
    /// Paper Table 1: 16K-entry 12-bit-history gshare, 512-entry 4-way BTB,
    /// 8-entry RAS.
    fn default() -> PredictorConfig {
        PredictorConfig {
            gshare_entries: 16 * 1024,
            history_bits: 12,
            btb_entries: 512,
            btb_ways: 4,
            ras_depth: 8,
            use_ras: true,
            dual_ras: false,
        }
    }
}

/// The complete front-end predictor complex: direction, target, and return
/// address prediction, with misprediction accounting.
#[derive(Clone, Debug)]
pub struct BranchPredictors {
    /// Direction predictor.
    pub gshare: Gshare,
    /// Target buffer.
    pub btb: Btb,
    /// Conventional RAS (used when `config.dual_ras` is false).
    pub ras: ReturnAddressStack,
    /// Dual-address RAS (used when `config.dual_ras` is true).
    pub dual_ras: DualAddressRas,
    /// The active configuration.
    pub config: PredictorConfig,
}

impl BranchPredictors {
    /// Creates the predictor complex from a configuration.
    pub fn new(config: PredictorConfig) -> BranchPredictors {
        BranchPredictors {
            gshare: Gshare::new(config.gshare_entries, config.history_bits),
            btb: Btb::new(config.btb_entries, config.btb_ways),
            ras: ReturnAddressStack::new(config.ras_depth),
            dual_ras: DualAddressRas::new(config.ras_depth),
            config,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table1() {
        let c = PredictorConfig::default();
        assert_eq!(c.gshare_entries, 16384);
        assert_eq!(c.history_bits, 12);
        assert_eq!(c.btb_entries, 512);
        assert_eq!(c.btb_ways, 4);
        assert_eq!(c.ras_depth, 8);
    }

    #[test]
    fn complex_constructs() {
        let p = BranchPredictors::new(PredictorConfig::default());
        assert!(p.config.use_ras);
    }
}
