//! Branch target buffer.

/// A set-associative branch target buffer (paper Table 1: 512 entries,
/// 4-way). Predicts the target address of taken branches and indirect
/// jumps; entries are tagged by full PC and replaced LRU.
///
/// # Examples
///
/// ```
/// use ildp_uarch::Btb;
/// let mut btb = Btb::new(512, 4);
/// assert_eq!(btb.predict(0x1000), None);
/// btb.update(0x1000, 0x2000);
/// assert_eq!(btb.predict(0x1000), Some(0x2000));
/// ```
#[derive(Clone, Debug)]
pub struct Btb {
    sets: Vec<Vec<BtbEntry>>,
    ways: usize,
    set_mask: u64,
}

#[derive(Clone, Copy, Debug)]
struct BtbEntry {
    pc: u64,
    target: u64,
    lru: u64,
}

impl Btb {
    /// Creates a BTB with `entries` total entries and `ways` associativity.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a power-of-two multiple of `ways`.
    pub fn new(entries: usize, ways: usize) -> Btb {
        assert!(
            ways > 0 && entries.is_multiple_of(ways),
            "entries must divide by ways"
        );
        let sets = entries / ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Btb {
            sets: vec![Vec::with_capacity(ways); sets],
            ways,
            set_mask: (sets - 1) as u64,
        }
    }

    fn set_of(&self, pc: u64) -> usize {
        ((pc >> 1) & self.set_mask) as usize
    }

    /// Predicted target for the control instruction at `pc`, if present.
    pub fn predict(&self, pc: u64) -> Option<u64> {
        self.sets[self.set_of(pc)]
            .iter()
            .find(|e| e.pc == pc)
            .map(|e| e.target)
    }

    /// Installs/updates the resolved target for `pc`.
    pub fn update(&mut self, pc: u64, target: u64) {
        let set_idx = self.set_of(pc);
        let ways = self.ways;
        let set = &mut self.sets[set_idx];
        let stamp = set.iter().map(|e| e.lru).max().unwrap_or(0) + 1;
        if let Some(e) = set.iter_mut().find(|e| e.pc == pc) {
            e.target = target;
            e.lru = stamp;
            return;
        }
        if set.len() < ways {
            set.push(BtbEntry {
                pc,
                target,
                lru: stamp,
            });
            return;
        }
        let victim = set
            .iter_mut()
            .min_by_key(|e| e.lru)
            .expect("set is non-empty");
        *victim = BtbEntry {
            pc,
            target,
            lru: stamp,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut btb = Btb::new(64, 4);
        assert_eq!(btb.predict(0x44), None);
        btb.update(0x44, 0x100);
        assert_eq!(btb.predict(0x44), Some(0x100));
        btb.update(0x44, 0x200);
        assert_eq!(btb.predict(0x44), Some(0x200));
    }

    #[test]
    fn lru_replacement_within_set() {
        let mut btb = Btb::new(8, 2); // 4 sets, 2 ways
                                      // These three PCs map to the same set (stride = sets*4 = 16).
        btb.update(0x00, 1);
        btb.update(0x10, 2);
        assert_eq!(btb.predict(0x00), Some(1));
        // Touch 0x00 so 0x10 is LRU, then insert a third.
        btb.update(0x00, 1);
        btb.update(0x20, 3);
        assert_eq!(btb.predict(0x10), None, "LRU entry evicted");
        assert_eq!(btb.predict(0x00), Some(1));
        assert_eq!(btb.predict(0x20), Some(3));
    }

    #[test]
    fn conflicting_sets_do_not_interfere() {
        let mut btb = Btb::new(8, 2);
        btb.update(0x00, 1);
        btb.update(0x04, 2); // different set
        assert_eq!(btb.predict(0x00), Some(1));
        assert_eq!(btb.predict(0x04), Some(2));
    }
}
