//! Return address stacks: the conventional single-address RAS and the
//! paper's proposed dual-address RAS.

/// A conventional hardware return-address stack (paper Table 1: 8
/// entries). Calls push the fall-through address; returns pop and predict.
/// The stack wraps on overflow, silently overwriting the oldest entry, as
/// real hardware does.
///
/// # Examples
///
/// ```
/// use ildp_uarch::ReturnAddressStack;
/// let mut ras = ReturnAddressStack::new(8);
/// ras.push(0x1004);
/// assert_eq!(ras.pop(), Some(0x1004));
/// assert_eq!(ras.pop(), None);
/// ```
#[derive(Clone, Debug)]
pub struct ReturnAddressStack {
    entries: Vec<u64>,
    top: usize,
    live: usize,
}

impl ReturnAddressStack {
    /// Creates a RAS with `depth` entries.
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0`.
    pub fn new(depth: usize) -> ReturnAddressStack {
        assert!(depth > 0, "RAS depth must be positive");
        ReturnAddressStack {
            entries: vec![0; depth],
            top: 0,
            live: 0,
        }
    }

    /// Pushes a return address (a call was fetched).
    pub fn push(&mut self, addr: u64) {
        self.top = (self.top + 1) % self.entries.len();
        self.entries[self.top] = addr;
        self.live = (self.live + 1).min(self.entries.len());
    }

    /// Pops the predicted return address (a return was fetched).
    ///
    /// Returns `None` when the stack is empty (prediction unavailable —
    /// counted as a misprediction by callers).
    pub fn pop(&mut self) -> Option<u64> {
        if self.live == 0 {
            return None;
        }
        let addr = self.entries[self.top];
        self.top = (self.top + self.entries.len() - 1) % self.entries.len();
        self.live -= 1;
        Some(addr)
    }
}

/// The paper's **dual-address RAS** (§3.2): each entry pairs a V-ISA return
/// address with the corresponding I-ISA (translated-code) return address.
///
/// A translated call executes `push-dual-address-RAS`, pushing both. When a
/// translated return is fetched, the stack pops a pair; fetch is redirected
/// to the popped I-ISA address, and the V-ISA half is later compared
/// against the return instruction's actual register value. On mismatch the
/// hardware squashes and control continues at the dispatch branch that
/// follows the return.
///
/// # Examples
///
/// ```
/// use ildp_uarch::DualAddressRas;
/// let mut ras = DualAddressRas::new(8);
/// ras.push(0x1_0004, 0xF000_0010);
/// let (v, i) = ras.pop().unwrap();
/// assert_eq!((v, i), (0x1_0004, 0xF000_0010));
/// ```
#[derive(Clone, Debug)]
pub struct DualAddressRas {
    entries: Vec<(u64, u64)>,
    top: usize,
    live: usize,
}

impl DualAddressRas {
    /// Creates a dual-address RAS with `depth` entries.
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0`.
    pub fn new(depth: usize) -> DualAddressRas {
        assert!(depth > 0, "RAS depth must be positive");
        DualAddressRas {
            entries: vec![(0, 0); depth],
            top: 0,
            live: 0,
        }
    }

    /// Pushes a (V-ISA, I-ISA) return-address pair.
    pub fn push(&mut self, v_addr: u64, i_addr: u64) {
        self.top = (self.top + 1) % self.entries.len();
        self.entries[self.top] = (v_addr, i_addr);
        self.live = (self.live + 1).min(self.entries.len());
    }

    /// Pops the predicted pair, or `None` if empty.
    pub fn pop(&mut self) -> Option<(u64, u64)> {
        if self.live == 0 {
            return None;
        }
        let pair = self.entries[self.top];
        self.top = (self.top + self.entries.len() - 1) % self.entries.len();
        self.live -= 1;
        Some(pair)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut ras = ReturnAddressStack::new(4);
        ras.push(1);
        ras.push(2);
        ras.push(3);
        assert_eq!(ras.pop(), Some(3));
        assert_eq!(ras.pop(), Some(2));
        assert_eq!(ras.pop(), Some(1));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn overflow_wraps_and_loses_oldest() {
        let mut ras = ReturnAddressStack::new(2);
        ras.push(1);
        ras.push(2);
        ras.push(3); // overwrites 1
        assert_eq!(ras.pop(), Some(3));
        assert_eq!(ras.pop(), Some(2));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn deep_recursion_mispredicts_after_depth() {
        // Classic RAS behavior: recursion deeper than the stack loses the
        // outermost frames.
        let mut ras = ReturnAddressStack::new(8);
        for i in 0..12u64 {
            ras.push(i);
        }
        let mut correct = 0;
        for i in (0..12u64).rev() {
            if ras.pop() == Some(i) {
                correct += 1;
            }
        }
        assert_eq!(correct, 8);
    }

    #[test]
    fn dual_ras_pairs() {
        let mut ras = DualAddressRas::new(4);
        ras.push(10, 100);
        ras.push(20, 200);
        assert_eq!(ras.pop(), Some((20, 200)));
        assert_eq!(ras.pop(), Some((10, 100)));
        assert_eq!(ras.pop(), None);
    }
}
