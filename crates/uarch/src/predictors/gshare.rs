//! Gshare conditional-branch direction predictor.

/// A gshare predictor: a table of 2-bit saturating counters indexed by
/// `pc ⊕ global_history` (paper Table 1: 16K entries, 12-bit global
/// history).
///
/// # Examples
///
/// ```
/// use ildp_uarch::Gshare;
/// let mut p = Gshare::new(16 * 1024, 12);
/// let pc = 0x1000;
/// // Train an always-taken branch.
/// for _ in 0..4 { p.update(pc, true); }
/// assert!(p.predict(pc));
/// ```
#[derive(Clone, Debug)]
pub struct Gshare {
    counters: Vec<u8>,
    history: u64,
    history_mask: u64,
    index_mask: u64,
}

impl Gshare {
    /// Creates a predictor with `entries` 2-bit counters (must be a power
    /// of two) and `history_bits` of global history.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or `history_bits > 32`.
    pub fn new(entries: usize, history_bits: u32) -> Gshare {
        assert!(entries.is_power_of_two(), "entries must be a power of two");
        assert!(history_bits <= 32, "history too long");
        Gshare {
            counters: vec![2; entries], // weakly taken
            history: 0,
            history_mask: (1u64 << history_bits) - 1,
            index_mask: (entries - 1) as u64,
        }
    }

    fn index(&self, pc: u64) -> usize {
        // Instructions are at least 2-byte aligned (translated I-ISA code
        // uses 16-bit encodings), so index by pc >> 1 to keep adjacent
        // branches on distinct counters.
        (((pc >> 1) ^ self.history) & self.index_mask) as usize
    }

    /// Predicts the direction of the branch at `pc`.
    pub fn predict(&self, pc: u64) -> bool {
        self.counters[self.index(pc)] >= 2
    }

    /// Updates the counter and global history with the resolved direction.
    pub fn update(&mut self, pc: u64, taken: bool) {
        let idx = self.index(pc);
        let c = &mut self.counters[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        self.history = ((self.history << 1) | taken as u64) & self.history_mask;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_biased_branch() {
        let mut p = Gshare::new(1024, 8);
        for _ in 0..8 {
            p.update(0x40, false);
        }
        assert!(!p.predict(0x40));
    }

    #[test]
    fn history_separates_correlated_paths() {
        let mut p = Gshare::new(1024, 4);
        // Alternating pattern T,N,T,N at a single PC: with history the
        // predictor converges; count accuracy over the last 64 of 128.
        let mut correct = 0;
        for i in 0..128 {
            let taken = i % 2 == 0;
            let pred = p.predict(0x80);
            if i >= 64 && pred == taken {
                correct += 1;
            }
            p.update(0x80, taken);
        }
        assert!(correct >= 60, "only {correct}/64 correct");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = Gshare::new(1000, 8);
    }
}
