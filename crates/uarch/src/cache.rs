//! Set-associative caches and the simulated memory hierarchy.
//!
//! Parameters follow the paper's Table 1: a 32 KB direct-mapped I-cache
//! with 128-byte lines, a 32 KB 4-way (or 8 KB 2-way, replicated) L1
//! D-cache with 64-byte lines and 2-cycle latency, a 1 MB 4-way unified L2
//! with 128-byte lines and 8-cycle latency, and 72-cycle memory.

/// Replacement policy for a cache.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Replacement {
    /// Least-recently-used (paper: I-cache).
    Lru,
    /// Pseudo-random (paper: D-cache and L2).
    Random,
}

/// Geometry and policy of one cache level.
#[derive(Clone, Copy, Debug)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: usize,
    /// Associativity (1 = direct-mapped).
    pub ways: usize,
    /// Replacement policy.
    pub replacement: Replacement,
}

impl CacheConfig {
    /// Paper Table 1 I-cache: 32 KB direct-mapped, 128-byte lines, LRU.
    pub fn icache_32k() -> CacheConfig {
        CacheConfig {
            size_bytes: 32 * 1024,
            line_bytes: 128,
            ways: 1,
            replacement: Replacement::Lru,
        }
    }

    /// Paper Table 1 D-cache: 32 KB 4-way, 64-byte lines, random.
    pub fn dcache_32k() -> CacheConfig {
        CacheConfig {
            size_bytes: 32 * 1024,
            line_bytes: 64,
            ways: 4,
            replacement: Replacement::Random,
        }
    }

    /// Paper Table 1 replicated ILDP D-cache: 8 KB 2-way, 64-byte lines.
    pub fn dcache_8k() -> CacheConfig {
        CacheConfig {
            size_bytes: 8 * 1024,
            line_bytes: 64,
            ways: 2,
            replacement: Replacement::Random,
        }
    }

    /// Paper Table 1 L2: 1 MB 4-way, 128-byte lines, random.
    pub fn l2_1m() -> CacheConfig {
        CacheConfig {
            size_bytes: 1024 * 1024,
            line_bytes: 128,
            ways: 4,
            replacement: Replacement::Random,
        }
    }

    fn sets(&self) -> usize {
        self.size_bytes / (self.line_bytes * self.ways)
    }
}

/// A single cache level tracking only tags (timing simulation carries no
/// data).
#[derive(Clone, Debug)]
pub struct Cache {
    config: CacheConfig,
    /// `tags[set][way]`: line tag or `u64::MAX` when invalid.
    tags: Vec<u64>,
    lru: Vec<u64>,
    ways: usize,
    set_mask: u64,
    line_shift: u32,
    stamp: u64,
    rng: u64,
    accesses: u64,
    misses: u64,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is not a power-of-two set count or the line
    /// size is not a power of two.
    pub fn new(config: CacheConfig) -> Cache {
        assert!(
            config.line_bytes.is_power_of_two(),
            "line size power of two"
        );
        let sets = config.sets();
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Cache {
            config,
            tags: vec![u64::MAX; sets * config.ways],
            lru: vec![0; sets * config.ways],
            ways: config.ways,
            set_mask: (sets - 1) as u64,
            line_shift: config.line_bytes.trailing_zeros(),
            stamp: 0,
            rng: 0x9e37_79b9_7f4a_7c15,
            accesses: 0,
            misses: 0,
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accesses to date.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Misses to date.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    fn next_random(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Accesses the line containing `addr`; returns `true` on hit. On a
    /// miss the line is filled (victim chosen by the replacement policy).
    pub fn access(&mut self, addr: u64) -> bool {
        self.accesses += 1;
        self.stamp += 1;
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let base = set * self.ways;
        let ways = &mut self.tags[base..base + self.ways];
        if let Some(way) = ways.iter().position(|&t| t == line) {
            self.lru[base + way] = self.stamp;
            return true;
        }
        self.misses += 1;
        // Prefer an invalid way; otherwise use the policy.
        let victim = if let Some(way) = ways.iter().position(|&t| t == u64::MAX) {
            way
        } else {
            match self.config.replacement {
                Replacement::Lru => {
                    let lrus = &self.lru[base..base + self.ways];
                    (0..self.ways).min_by_key(|&w| lrus[w]).unwrap()
                }
                Replacement::Random => (self.next_random() as usize) % self.ways,
            }
        };
        self.tags[base + victim] = line;
        self.lru[base + victim] = self.stamp;
        false
    }

    /// Whether the line containing `addr` is currently resident (no state
    /// change).
    pub fn probe(&self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let base = set * self.ways;
        self.tags[base..base + self.ways].contains(&line)
    }
}

/// Latencies of the memory system (paper Table 1).
#[derive(Clone, Copy, Debug)]
pub struct MemoryLatencies {
    /// L1 D-cache hit latency in cycles.
    pub l1_hit: u64,
    /// L2 hit latency in cycles.
    pub l2_hit: u64,
    /// Main-memory access latency in cycles.
    pub memory: u64,
}

impl Default for MemoryLatencies {
    fn default() -> MemoryLatencies {
        MemoryLatencies {
            l1_hit: 2,
            l2_hit: 8,
            memory: 72,
        }
    }
}

/// The L1D + unified L2 + memory data hierarchy.
///
/// The ILDP machine replicates the L1 D-cache across PEs; replication only
/// changes port contention (not modeled — the paper grants both machines
/// the same D-cache latency), so one tag array suffices for hit/miss
/// accounting.
#[derive(Clone, Debug)]
pub struct DataHierarchy {
    l1: Cache,
    l2: Cache,
    latencies: MemoryLatencies,
}

impl DataHierarchy {
    /// Creates a hierarchy from L1/L2 geometries and latencies.
    pub fn new(l1: CacheConfig, l2: CacheConfig, latencies: MemoryLatencies) -> DataHierarchy {
        DataHierarchy {
            l1: Cache::new(l1),
            l2: Cache::new(l2),
            latencies,
        }
    }

    /// Performs a data access and returns its total latency in cycles.
    pub fn access(&mut self, addr: u64) -> u64 {
        if self.l1.access(addr) {
            self.latencies.l1_hit
        } else if self.l2.access(addr) {
            self.latencies.l1_hit + self.latencies.l2_hit
        } else {
            self.latencies.l1_hit + self.latencies.l2_hit + self.latencies.memory
        }
    }

    /// L1 miss count.
    pub fn l1_misses(&self) -> u64 {
        self.l1.misses()
    }

    /// L2 miss count.
    pub fn l2_misses(&self) -> u64 {
        self.l2.misses()
    }
}

/// The instruction-fetch hierarchy: L1I backed by the same L2/memory
/// latency parameters.
#[derive(Clone, Debug)]
pub struct InstHierarchy {
    l1i: Cache,
    l2: Cache,
    latencies: MemoryLatencies,
}

impl InstHierarchy {
    /// Creates an instruction hierarchy.
    pub fn new(l1i: CacheConfig, l2: CacheConfig, latencies: MemoryLatencies) -> InstHierarchy {
        InstHierarchy {
            l1i: Cache::new(l1i),
            l2: Cache::new(l2),
            latencies,
        }
    }

    /// Fetch-accesses the line at `addr`; returns the added miss penalty in
    /// cycles (0 on an L1I hit).
    pub fn fetch(&mut self, addr: u64) -> u64 {
        if self.l1i.access(addr) {
            0
        } else if self.l2.access(addr) {
            self.latencies.l2_hit
        } else {
            self.latencies.l2_hit + self.latencies.memory
        }
    }

    /// The I-cache line size in bytes.
    pub fn line_bytes(&self) -> usize {
        self.l1i.config().line_bytes
    }

    /// L1I miss count.
    pub fn l1i_misses(&self) -> u64 {
        self.l1i.misses()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_mapped_conflict() {
        let mut c = Cache::new(CacheConfig {
            size_bytes: 256,
            line_bytes: 64,
            ways: 1,
            replacement: Replacement::Lru,
        }); // 4 sets
        assert!(!c.access(0)); // cold miss
        assert!(c.access(0)); // hit
        assert!(!c.access(256)); // same set, conflict
        assert!(!c.access(0)); // evicted
        assert_eq!(c.misses(), 3);
        assert_eq!(c.accesses(), 4);
    }

    #[test]
    fn lru_keeps_hot_line_in_set() {
        let mut c = Cache::new(CacheConfig {
            size_bytes: 256,
            line_bytes: 64,
            ways: 2,
            replacement: Replacement::Lru,
        }); // 2 sets, 2 ways
            // Set 0 lines: 0, 128, 256 ...
        c.access(0);
        c.access(128);
        c.access(0); // make 128 LRU
        c.access(256); // evicts 128
        assert!(c.probe(0));
        assert!(!c.probe(128));
        assert!(c.probe(256));
    }

    #[test]
    fn working_set_within_capacity_all_hits_after_warmup() {
        let mut c = Cache::new(CacheConfig::dcache_32k());
        let lines: Vec<u64> = (0..256).map(|i| i * 64).collect();
        for &a in &lines {
            c.access(a);
        }
        let misses_after_warmup = c.misses();
        for _ in 0..10 {
            for &a in &lines {
                assert!(c.access(a), "line {a:#x} should stay resident");
            }
        }
        assert_eq!(c.misses(), misses_after_warmup);
    }

    #[test]
    fn hierarchy_latencies() {
        let mut h = DataHierarchy::new(
            CacheConfig::dcache_32k(),
            CacheConfig::l2_1m(),
            MemoryLatencies::default(),
        );
        // Cold: miss everywhere.
        assert_eq!(h.access(0x1_0000), 2 + 8 + 72);
        // Now hot in L1.
        assert_eq!(h.access(0x1_0000), 2);
        // A different address in the same L2 line (128B) but a different L1
        // line (64B): L1 miss, L2 hit.
        assert_eq!(h.access(0x1_0040), 2 + 8);
    }

    #[test]
    fn inst_hierarchy_penalties() {
        let mut h = InstHierarchy::new(
            CacheConfig::icache_32k(),
            CacheConfig::l2_1m(),
            MemoryLatencies::default(),
        );
        assert_eq!(h.fetch(0x2000), 8 + 72);
        assert_eq!(h.fetch(0x2000), 0);
        assert_eq!(h.line_bytes(), 128);
        assert_eq!(h.l1i_misses(), 1);
    }

    #[test]
    fn probe_does_not_mutate() {
        let c = Cache::new(CacheConfig::dcache_8k());
        assert!(!c.probe(0x40));
        assert_eq!(c.accesses(), 0);
    }
}
