//! Small scheduling primitives shared by the timing models.

use std::collections::HashMap;

/// Allocates slots on a resource with fixed per-cycle bandwidth for
/// *monotonically non-decreasing* requests (dispatch, retire).
#[derive(Clone, Debug)]
pub struct MonotonicBandwidth {
    per_cycle: u32,
    cycle: u64,
    used: u32,
}

impl MonotonicBandwidth {
    /// Creates a limiter with `per_cycle` slots per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `per_cycle == 0`.
    pub fn new(per_cycle: u32) -> MonotonicBandwidth {
        assert!(per_cycle > 0);
        MonotonicBandwidth {
            per_cycle,
            cycle: 0,
            used: 0,
        }
    }

    /// Returns the earliest cycle `>= earliest` with a free slot, and
    /// consumes that slot. Requests must be non-decreasing in `earliest`
    /// relative to previously *returned* cycles minus bandwidth effects;
    /// in practice: call in program order.
    pub fn allocate(&mut self, earliest: u64) -> u64 {
        if earliest > self.cycle {
            self.cycle = earliest;
            self.used = 0;
        } else if self.used >= self.per_cycle {
            self.cycle += 1;
            self.used = 0;
        }
        self.used += 1;
        self.cycle
    }
}

/// Allocates slots on a resource with fixed per-cycle bandwidth for
/// arbitrary-order requests (out-of-order issue onto functional units).
#[derive(Clone, Debug)]
pub struct IssueBandwidth {
    per_cycle: u32,
    used: HashMap<u64, u32>,
    low_water: u64,
}

impl IssueBandwidth {
    /// Creates a limiter with `per_cycle` slots per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `per_cycle == 0`.
    pub fn new(per_cycle: u32) -> IssueBandwidth {
        assert!(per_cycle > 0);
        IssueBandwidth {
            per_cycle,
            used: HashMap::new(),
            low_water: 0,
        }
    }

    /// Returns the earliest cycle `>= earliest` with a free slot, and
    /// consumes it.
    pub fn allocate(&mut self, earliest: u64) -> u64 {
        let mut c = earliest.max(self.low_water);
        loop {
            let e = self.used.entry(c).or_insert(0);
            if *e < self.per_cycle {
                *e += 1;
                return c;
            }
            c += 1;
        }
    }

    /// Declares that no future request will target a cycle below `cycle`,
    /// allowing stale bookkeeping to be dropped (call periodically with the
    /// oldest possible issue cycle, e.g. the ROB-head dispatch time).
    pub fn prune_below(&mut self, cycle: u64) {
        if cycle > self.low_water {
            self.low_water = cycle;
            if self.used.len() > 4096 {
                self.used.retain(|&c, _| c >= cycle);
            }
        }
    }
}

/// A ring of completion/retire timestamps used to model a fixed-capacity
/// in-order window (ROB, issue FIFO).
#[derive(Clone, Debug)]
pub struct OccupancyRing {
    times: Vec<u64>,
    head: usize,
    len: usize,
}

impl OccupancyRing {
    /// Creates a ring modelling a structure with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> OccupancyRing {
        assert!(capacity > 0);
        OccupancyRing {
            times: vec![0; capacity],
            head: 0,
            len: 0,
        }
    }

    /// The earliest cycle at which a new entry can be inserted: 0 while the
    /// structure has free entries, otherwise the departure time of the
    /// oldest entry (+1, since the slot frees the next cycle).
    pub fn earliest_insert(&self) -> u64 {
        if self.len < self.times.len() {
            0
        } else {
            self.times[self.head] + 1
        }
    }

    /// Inserts an entry that will depart (retire/issue) at `departs_at`.
    pub fn push(&mut self, departs_at: u64) {
        if self.len == self.times.len() {
            self.head = (self.head + 1) % self.times.len();
        } else {
            self.len += 1;
        }
        let tail = (self.head + self.len - 1) % self.times.len();
        self.times[tail] = departs_at;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_bandwidth_packs_cycles() {
        let mut bw = MonotonicBandwidth::new(2);
        assert_eq!(bw.allocate(5), 5);
        assert_eq!(bw.allocate(5), 5);
        assert_eq!(bw.allocate(5), 6);
        assert_eq!(bw.allocate(6), 6);
        assert_eq!(bw.allocate(6), 7);
        assert_eq!(bw.allocate(100), 100);
    }

    #[test]
    fn issue_bandwidth_handles_out_of_order() {
        let mut bw = IssueBandwidth::new(1);
        assert_eq!(bw.allocate(10), 10);
        assert_eq!(bw.allocate(3), 3);
        assert_eq!(bw.allocate(3), 4);
        assert_eq!(bw.allocate(10), 11);
    }

    #[test]
    fn issue_bandwidth_prune_is_safe() {
        let mut bw = IssueBandwidth::new(2);
        bw.allocate(1);
        bw.prune_below(5);
        // New requests below the low-water mark are clamped up.
        assert_eq!(bw.allocate(0), 5);
    }

    #[test]
    fn occupancy_ring_models_full_window() {
        let mut rob = OccupancyRing::new(2);
        assert_eq!(rob.earliest_insert(), 0);
        rob.push(10);
        rob.push(20);
        // Full: next insert must wait for the oldest to depart.
        assert_eq!(rob.earliest_insert(), 11);
        rob.push(30); // displaces the entry departing at 10
        assert_eq!(rob.earliest_insert(), 21);
    }
}
