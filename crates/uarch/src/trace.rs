//! Dynamic-instruction trace records.
//!
//! The timing models are *trace-driven*: the functional VM (in `ildp-core`)
//! executes instructions and streams one [`DynInst`] record per retired
//! instruction into a [`TimingModel`]. A record carries everything the
//! microarchitecture needs — fetch PC and size, class, register names,
//! accumulator/strand steering metadata, memory address, and the resolved
//! control-flow outcome.
//!
//! Wrong-path execution is approximated by redirect penalties (the paper's
//! own simulators charge a 3-cycle fetch redirection for both misfetch and
//! misprediction).

/// Instruction classification for timing purposes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum InstClass {
    /// Single-cycle integer ALU operation.
    IntAlu,
    /// Integer multiply (longer latency).
    IntMul,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Conditional branch (direction predicted by gshare).
    CondBranch,
    /// Direct unconditional branch (target known at decode).
    Branch,
    /// Direct call (`BSR`): a [`InstClass::Branch`] that pushes the RAS.
    Call,
    /// Register-indirect jump (target predicted by BTB).
    IndirectJump,
    /// Register-indirect call (`JSR`): pushes the RAS.
    IndirectCall,
    /// Subroutine return (target predicted by the RAS).
    Return,
    /// `push-dual-address-RAS` special instruction (not a control
    /// transfer; updates the dual RAS).
    DualRasPush,
    /// No-operation (occupies fetch/retire bandwidth only).
    Nop,
}

impl InstClass {
    /// Whether this class is a control-transfer instruction.
    pub const fn is_control(self) -> bool {
        matches!(
            self,
            InstClass::CondBranch
                | InstClass::Branch
                | InstClass::Call
                | InstClass::IndirectJump
                | InstClass::IndirectCall
                | InstClass::Return
        )
    }

    /// Whether the target is register-indirect (unknown at decode).
    pub const fn is_indirect(self) -> bool {
        matches!(
            self,
            InstClass::IndirectJump | InstClass::IndirectCall | InstClass::Return
        )
    }
}

/// One retired dynamic instruction, as consumed by the timing models.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DynInst {
    /// Fetch address.
    pub pc: u64,
    /// Encoded size in bytes (4 for Alpha; 2/4/8 for the I-ISA).
    pub size: u8,
    /// Timing class.
    pub class: InstClass,
    /// Source register names (µarch-neutral identifiers).
    pub srcs: [Option<u8>; 3],
    /// Destination register name, if any.
    pub dst: Option<u8>,
    /// Accumulator (strand) number, for ILDP steering.
    pub acc: Option<u8>,
    /// Whether the instruction reads its accumulator (strand continuation).
    pub acc_read: bool,
    /// Whether the instruction writes its accumulator.
    pub acc_write: bool,
    /// Effective memory address, for loads/stores.
    pub mem_addr: Option<u64>,
    /// Address of the next instruction actually executed.
    pub next_pc: u64,
    /// Resolved direction for conditional branches.
    pub taken: bool,
    /// For [`InstClass::Return`] under the dual-address RAS: the V-ISA
    /// target value the hardware compares against the popped pair. For
    /// [`InstClass::DualRasPush`]: unused (see `ras_pair`).
    pub v_target: u64,
    /// For [`InstClass::DualRasPush`]: the pushed (V-ISA, I-ISA)
    /// return-address pair. For [`InstClass::Call`]/[`InstClass::IndirectCall`]
    /// on a conventional RAS machine the pushed value is `pc + size`.
    pub ras_pair: Option<(u64, u64)>,
    /// Number of V-ISA instructions this record retires (for V-IPC
    /// attribution; chaining overhead instructions carry 0).
    pub vcount: u16,
    /// Whether this instruction is fragment-chaining overhead (software
    /// jump prediction, dispatch transfers, RAS pushes) rather than a
    /// translation of source work. Lets trace consumers attribute seam
    /// overhead without re-deriving fragment metadata.
    pub is_chain: bool,
}

impl DynInst {
    /// A convenience constructor with every optional field empty: a
    /// sequential single-cycle ALU instruction.
    pub fn alu(pc: u64, size: u8) -> DynInst {
        DynInst {
            pc,
            size,
            class: InstClass::IntAlu,
            srcs: [None; 3],
            dst: None,
            acc: None,
            acc_read: false,
            acc_write: false,
            mem_addr: None,
            next_pc: pc + size as u64,
            taken: false,
            v_target: 0,
            ras_pair: None,
            vcount: 1,
            is_chain: false,
        }
    }
}

/// Statistics accumulated by a timing model over a trace.
#[derive(Clone, Copy, Default, PartialEq, Debug)]
pub struct TimingStats {
    /// Total cycles from first fetch to last retire.
    pub cycles: u64,
    /// Instructions retired (native to the simulated ISA).
    pub instructions: u64,
    /// V-ISA instructions retired (`vcount` sum).
    pub v_instructions: u64,
    /// Conditional-branch direction mispredictions.
    pub cond_mispredicts: u64,
    /// Indirect-jump target mispredictions (BTB).
    pub indirect_mispredicts: u64,
    /// Return-address mispredictions (RAS / dual RAS).
    pub return_mispredicts: u64,
    /// Taken-branch target misfetches (BTB cold misses).
    pub misfetches: u64,
    /// Conditional branches executed.
    pub cond_branches: u64,
    /// Instruction-cache misses.
    pub icache_misses: u64,
    /// Data-cache (L1) misses.
    pub dcache_misses: u64,
    /// Unified L2 misses.
    pub l2_misses: u64,
}

impl TimingStats {
    /// Native instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// V-ISA instructions per cycle — the paper's headline metric
    /// (Figures 6, 8, 9).
    pub fn v_ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.v_instructions as f64 / self.cycles as f64
        }
    }

    /// Total branch/jump mispredictions.
    pub fn total_mispredicts(&self) -> u64 {
        self.cond_mispredicts + self.indirect_mispredicts + self.return_mispredicts
    }

    /// Mispredictions per 1,000 instructions — the paper's Figure 4 metric.
    pub fn mispredicts_per_kilo_inst(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.total_mispredicts() as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// Mispredictions per 1,000 **V-ISA** instructions: the undiluted form
    /// of the Figure 4 metric — chaining code inflates the executed
    /// instruction count, so normalizing by source work keeps the
    /// configurations comparable.
    pub fn mispredicts_per_kilo_v_inst(&self) -> f64 {
        if self.v_instructions == 0 {
            0.0
        } else {
            self.total_mispredicts() as f64 * 1000.0 / self.v_instructions as f64
        }
    }
}

/// A cycle-accounting processor model fed one retired instruction at a
/// time.
///
/// Implementations: the out-of-order superscalar
/// ([`crate::SuperscalarModel`]) and the distributed ILDP machine
/// ([`crate::IldpModel`]).
pub trait TimingModel {
    /// Consumes the next retired instruction in program order.
    fn retire(&mut self, inst: &DynInst);

    /// Finishes the run and returns accumulated statistics.
    fn finish(&mut self) -> TimingStats;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_predicates() {
        assert!(InstClass::Return.is_control());
        assert!(InstClass::Return.is_indirect());
        assert!(InstClass::Branch.is_control());
        assert!(!InstClass::Branch.is_indirect());
        assert!(!InstClass::DualRasPush.is_control());
        assert!(!InstClass::Load.is_control());
    }

    #[test]
    fn stats_rates() {
        let stats = TimingStats {
            cycles: 100,
            instructions: 200,
            v_instructions: 150,
            cond_mispredicts: 3,
            indirect_mispredicts: 2,
            return_mispredicts: 1,
            ..TimingStats::default()
        };
        assert!((stats.ipc() - 2.0).abs() < 1e-12);
        assert!((stats.v_ipc() - 1.5).abs() < 1e-12);
        assert_eq!(stats.total_mispredicts(), 6);
        assert!((stats.mispredicts_per_kilo_inst() - 30.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_do_not_divide_by_zero() {
        let stats = TimingStats::default();
        assert_eq!(stats.ipc(), 0.0);
        assert_eq!(stats.v_ipc(), 0.0);
        assert_eq!(stats.mispredicts_per_kilo_inst(), 0.0);
    }

    #[test]
    fn alu_constructor_defaults() {
        let d = DynInst::alu(0x100, 4);
        assert_eq!(d.next_pc, 0x104);
        assert_eq!(d.class, InstClass::IntAlu);
        assert_eq!(d.vcount, 1);
    }
}
