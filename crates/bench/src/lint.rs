//! Shared machinery for the lint family (`vlint`, `chaoslint`,
//! `replaylint`, `flowlint`, driven together by `lintall`).
//!
//! Every lint binary reports failures through one JSON schema so CI and
//! the verify skill can parse all four uniformly:
//!
//! ```json
//! {
//!   "tool": "<vlint|chaoslint|replaylint|flowlint>",
//!   "scale": 10,
//!   "<extra>": 123,            // tool-specific counters, 0+ of them
//!   "failures": [
//!     {"cell": "<workload:form:chain or gate name>",
//!      "details": ["<human-readable finding>", ...]}
//!   ]
//! }
//! ```
//!
//! A lint prints its report only on failure (`failures` non-empty) and
//! exits non-zero; `lintall` aggregates the exit statuses.

use crate::{harness_scale, json_escape};
use ildp_core::ChainPolicy;
use ildp_isa::IsaForm;
use spec_workloads::{by_name, Workload, NAMES};

/// One failing unit in a lint report: the `--repro`-addressable cell (or
/// gate name) plus its findings.
#[derive(Clone, Debug)]
pub struct LintFailure {
    /// Cell spec (`workload:form:chain`) or gate name.
    pub cell: String,
    /// Human-readable findings for this cell.
    pub details: Vec<String>,
}

/// The shared failure report emitted by every lint binary.
#[derive(Clone, Debug)]
pub struct LintReport {
    /// Tool name (`vlint`, `chaoslint`, `replaylint`, `flowlint`).
    pub tool: &'static str,
    /// Workload scale the run used.
    pub scale: u32,
    /// Tool-specific counters, emitted as extra top-level JSON keys in
    /// order (e.g. chaoslint's `injections`/`undetected`).
    pub extras: Vec<(&'static str, u64)>,
    /// The failing cells; empty means the lint passed.
    pub failures: Vec<LintFailure>,
}

impl LintReport {
    /// A fresh report for `tool` at the current harness scale.
    pub fn new(tool: &'static str) -> LintReport {
        LintReport {
            tool,
            scale: harness_scale(),
            extras: Vec::new(),
            failures: Vec::new(),
        }
    }

    /// Appends a tool-specific counter (top-level JSON key).
    pub fn extra(&mut self, key: &'static str, value: u64) -> &mut Self {
        self.extras.push((key, value));
        self
    }

    /// Records a failing cell with its findings.
    pub fn fail(&mut self, cell: impl Into<String>, details: Vec<String>) {
        self.failures.push(LintFailure {
            cell: cell.into(),
            details,
        });
    }

    /// Whether the lint passed (no failures recorded).
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// Renders the shared JSON schema (single line).
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"tool\":\"{}\",\"scale\":{}", self.tool, self.scale);
        for (key, value) in &self.extras {
            out.push_str(&format!(",\"{key}\":{value}"));
        }
        out.push_str(",\"failures\":[");
        for (k, f) in self.failures.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            let details: Vec<String> = f
                .details
                .iter()
                .map(|d| format!("\"{}\"", json_escape(d)))
                .collect();
            out.push_str(&format!(
                "{{\"cell\":\"{}\",\"details\":[{}]}}",
                json_escape(&f.cell),
                details.join(",")
            ));
        }
        out.push_str("]}");
        out
    }

    /// Prints the failure report and per-cell repro lines, then exits
    /// non-zero, if any failure was recorded. No output when clean.
    pub fn finish_or_exit(&self) {
        if self.is_clean() {
            return;
        }
        println!("{}: FAILURE REPORT", self.tool);
        println!("{}", self.to_json());
        for f in &self.failures {
            println!("rerun: {} --repro {}", self.tool, f.cell);
        }
        std::process::exit(1);
    }
}

/// Short name of an ISA form, as used in cell specs.
pub fn form_name(form: IsaForm) -> &'static str {
    match form {
        IsaForm::Basic => "basic",
        IsaForm::Modified => "modified",
    }
}

/// Formats a `workload:form:chain` cell spec.
pub fn cell_spec(workload: &str, form: IsaForm, chain: ChainPolicy) -> String {
    format!("{workload}:{}:{}", form_name(form), chain.label())
}

/// Parses a `workload:form:chain` cell spec back into its parts,
/// instantiating the workload at `scale`.
pub fn parse_cell_spec(s: &str, scale: u32) -> Result<(Workload, IsaForm, ChainPolicy), String> {
    let parts: Vec<&str> = s.split(':').collect();
    let [workload, form, chain] = parts[..] else {
        return Err(format!("bad cell spec {s:?}: want workload:form:chain"));
    };
    if !NAMES.contains(&workload) {
        return Err(format!("unknown workload {workload:?}"));
    }
    let form = match form {
        "basic" => IsaForm::Basic,
        "modified" => IsaForm::Modified,
        other => return Err(format!("unknown ISA form {other:?}")),
    };
    let chain = match chain {
        "no_pred" => ChainPolicy::NoPred,
        "sw_pred.no_ras" => ChainPolicy::SwPred,
        "sw_pred.ras" => ChainPolicy::SwPredDualRas,
        other => return Err(format!("unknown chain policy {other:?}")),
    };
    Ok((by_name(workload, scale).unwrap(), form, chain))
}

/// Every ISA form, in matrix order.
pub const ALL_FORMS: [IsaForm; 2] = [IsaForm::Basic, IsaForm::Modified];

/// Every chain policy, in matrix order.
pub const ALL_CHAINS: [ChainPolicy; 3] = [
    ChainPolicy::NoPred,
    ChainPolicy::SwPred,
    ChainPolicy::SwPredDualRas,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_schema() {
        let mut rep = LintReport::new("vlint");
        rep.scale = 7;
        rep.extra("injections", 12);
        assert!(rep.is_clean());
        rep.fail("wl:basic:no_pred", vec!["bad \"thing\"".to_string()]);
        let json = rep.to_json();
        assert_eq!(
            json,
            "{\"tool\":\"vlint\",\"scale\":7,\"injections\":12,\
             \"failures\":[{\"cell\":\"wl:basic:no_pred\",\
             \"details\":[\"bad \\\"thing\\\"\"]}]}"
        );
    }

    #[test]
    fn cell_spec_round_trips() {
        for form in ALL_FORMS {
            for chain in ALL_CHAINS {
                let spec = cell_spec(NAMES[0], form, chain);
                let (w, f, c) = parse_cell_spec(&spec, 1).unwrap();
                assert_eq!(w.name, NAMES[0]);
                assert_eq!(f, form);
                assert_eq!(c, chain);
            }
        }
    }

    #[test]
    fn bad_cell_specs_are_rejected() {
        assert!(parse_cell_spec("nope", 1).is_err());
        assert!(parse_cell_spec("nope:basic:no_pred", 1).is_err());
        assert!(parse_cell_spec(&format!("{}:weird:no_pred", NAMES[0]), 1).is_err());
        assert!(parse_cell_spec(&format!("{}:basic:weird", NAMES[0]), 1).is_err());
    }
}
