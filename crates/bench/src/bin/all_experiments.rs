//! Runs every table/figure binary's experiment in sequence — the one-shot
//! regeneration entry point recorded in EXPERIMENTS.md.
//!
//! `ILDP_SCALE` controls the workload scale (default 10).

use std::process::Command;

fn main() {
    let bins = [
        "table1_params",
        "table2_stats",
        "fig4_chaining",
        "fig5_expansion",
        "fig6_straightening",
        "fig7_usage",
        "fig8_ipc",
        "fig9_sweep",
        "ablation_fusion",
        "ablation_sweep",
    ];
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    for bin in bins {
        println!("\n######## {bin} ########\n");
        let status = Command::new(dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
    }
}
