//! `vlint` — translation-validation lint over the full workload suite.
//!
//! Runs every workload under every (chain policy × ISA form)
//! configuration with the verifier's collecting validator installed, so
//! every translated fragment is checked by all four static passes at
//! install time; after each run the installed (patched, linked)
//! fragments are audited again against the cache. Prints a per-cell
//! summary and exits non-zero if any fragment violates any rule.
//!
//! Usage: `cargo run --release -p ildp-bench --bin vlint`
//! (`ILDP_SCALE` scales the workloads, default 10.)

use ildp_bench::harness_scale;
use ildp_core::{ChainPolicy, NullSink, Translator, Vm, VmConfig, VmExit};
use ildp_isa::IsaForm;
use ildp_verifier::{take_report, verify_installed, Violation};
use spec_workloads::suite;

fn main() {
    let scale = harness_scale();
    let suite = suite(scale);
    let chains = [
        ChainPolicy::NoPred,
        ChainPolicy::SwPred,
        ChainPolicy::SwPredDualRas,
    ];
    let forms = [IsaForm::Basic, IsaForm::Modified];

    let mut total_fragments = 0u64;
    let mut total_violations = 0usize;

    for w in &suite {
        for &form in &forms {
            for &chain in &chains {
                let config = VmConfig {
                    translator: Translator {
                        form,
                        chain,
                        acc_count: 4,
                        fuse_memory: false,
                    },
                    validator: Some(ildp_verifier::collecting_validator),
                    ..VmConfig::default()
                };
                let mut vm = Vm::new(config, &w.program);
                let exit = vm.run(w.budget * 2, &mut NullSink);
                if let VmExit::Trapped { vaddr, trap, .. } = exit {
                    panic!("{}: unexpected trap at {vaddr:#x}: {trap}", w.name);
                }
                let mut violations: Vec<Violation> = take_report();
                let cache = vm.cache();
                for frag in cache.fragments() {
                    violations.extend(verify_installed(cache, frag));
                }
                let fragments = vm.stats().fragments_verified;
                total_fragments += fragments;
                total_violations += violations.len();
                println!(
                    "{:<10} {:>8} {:<14} {:>4} fragments  {:>3} violations",
                    w.name,
                    format!("{form:?}").to_lowercase(),
                    chain.label(),
                    fragments,
                    violations.len(),
                );
                for v in &violations {
                    println!("    {v}");
                }
            }
        }
    }

    println!(
        "\nvlint: {total_fragments} fragment translations checked, \
         {total_violations} violations"
    );
    if total_violations > 0 {
        std::process::exit(1);
    }
}
