//! `vlint` — translation-validation lint over the full workload suite.
//!
//! Runs every workload under every (chain policy × ISA form)
//! configuration with the verifier's collecting validator installed, so
//! every translated fragment is checked by all four static passes at
//! install time; after each run the installed (patched, linked)
//! fragments are audited again against the cache. Prints a per-cell
//! summary and exits non-zero if any fragment violates any rule; on
//! failure it also emits the shared lint JSON schema (see
//! `ildp_bench::lint`) naming each violating cell as
//! `workload:form:chain`, which `--repro <cell>` re-runs alone.
//!
//! Usage: `cargo run --release -p ildp-bench --bin vlint`
//! (`ILDP_SCALE` scales the workloads, default 10.)

use ildp_bench::harness_scale;
use ildp_bench::lint::{cell_spec, parse_cell_spec, LintReport, ALL_CHAINS, ALL_FORMS};
use ildp_core::{ChainPolicy, NullSink, Translator, Vm, VmConfig, VmExit};
use ildp_isa::IsaForm;
use ildp_verifier::{take_report, verify_installed, Violation};
use spec_workloads::{suite, Workload};

/// Runs one cell and returns (fragments verified, violations).
fn run_cell(workload: &Workload, form: IsaForm, chain: ChainPolicy) -> (u64, Vec<Violation>) {
    let config = VmConfig {
        translator: Translator {
            form,
            chain,
            acc_count: 4,
            fuse_memory: false,
        },
        validator: Some(ildp_verifier::collecting_validator),
        // The collecting validator files violations in a thread-local
        // report; translation must stay on this thread to read it back.
        async_translate: false,
        ..VmConfig::default()
    };
    let mut vm = Vm::new(config, &workload.program);
    let exit = vm.run(workload.budget * 2, &mut NullSink);
    if let VmExit::Trapped { vaddr, trap, .. } = exit {
        panic!("{}: unexpected trap at {vaddr:#x}: {trap}", workload.name);
    }
    let mut violations: Vec<Violation> = take_report();
    let cache = vm.cache();
    for frag in cache.fragments() {
        violations.extend(verify_installed(cache, frag));
    }
    (vm.stats().fragments_verified, violations)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = harness_scale();
    let mut report = LintReport::new("vlint");
    if let Some(pos) = args.iter().position(|a| a == "--repro") {
        let Some(spec) = args.get(pos + 1) else {
            eprintln!("vlint: --repro needs workload:form:chain");
            std::process::exit(2);
        };
        let (workload, form, chain) = match parse_cell_spec(spec, scale) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("vlint: {e}");
                std::process::exit(2);
            }
        };
        println!("vlint: re-running cell {spec}");
        let (fragments, violations) = run_cell(&workload, form, chain);
        println!(
            "{fragments} fragments verified, {} violations",
            violations.len()
        );
        for v in &violations {
            println!("    {v}");
        }
        if !violations.is_empty() {
            report.fail(
                spec.clone(),
                violations.iter().map(|v| v.to_string()).collect(),
            );
        }
        report.finish_or_exit();
        return;
    }
    if !args.is_empty() {
        eprintln!("vlint: unknown arguments {args:?}");
        eprintln!("usage: vlint [--repro workload:form:chain]");
        std::process::exit(2);
    }

    let suite = suite(scale);
    let mut total_fragments = 0u64;
    let mut total_violations = 0usize;

    for w in &suite {
        for &form in &ALL_FORMS {
            for &chain in &ALL_CHAINS {
                let (fragments, violations) = run_cell(w, form, chain);
                total_fragments += fragments;
                total_violations += violations.len();
                println!(
                    "{:<10} {:>8} {:<14} {:>4} fragments  {:>3} violations",
                    w.name,
                    format!("{form:?}").to_lowercase(),
                    chain.label(),
                    fragments,
                    violations.len(),
                );
                for v in &violations {
                    println!("    {v}");
                }
                if !violations.is_empty() {
                    report.fail(
                        cell_spec(w.name, form, chain),
                        violations.iter().map(|v| v.to_string()).collect(),
                    );
                }
            }
        }
    }

    println!(
        "\nvlint: {total_fragments} fragment translations checked, \
         {total_violations} violations"
    );
    report.extra("fragments_verified", total_fragments);
    report.finish_or_exit();
}
