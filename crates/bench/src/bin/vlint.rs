//! `vlint` — translation-validation lint over the full workload suite.
//!
//! Runs every workload under every (chain policy × ISA form)
//! configuration with the verifier's collecting validator installed, so
//! every translated fragment is checked by all four static passes at
//! install time; after each run the installed (patched, linked)
//! fragments are audited again against the cache. Prints a per-cell
//! summary and exits non-zero if any fragment violates any rule; on
//! failure it also emits a structured JSON report naming each violating
//! cell as `workload:form:chain`, which `--repro <cell>` re-runs alone.
//!
//! Usage: `cargo run --release -p ildp-bench --bin vlint`
//! (`ILDP_SCALE` scales the workloads, default 10.)

use ildp_bench::{harness_scale, json_escape};
use ildp_core::{ChainPolicy, NullSink, Translator, Vm, VmConfig, VmExit};
use ildp_isa::IsaForm;
use ildp_verifier::{take_report, verify_installed, Violation};
use spec_workloads::{by_name, suite, Workload, NAMES};

/// One verification cell: workload × form × chain, `--repro`-addressable.
struct Cell<'w> {
    workload: &'w Workload,
    form: IsaForm,
    chain: ChainPolicy,
}

impl Cell<'_> {
    fn spec(&self) -> String {
        let form = match self.form {
            IsaForm::Basic => "basic",
            IsaForm::Modified => "modified",
        };
        format!("{}:{}:{}", self.workload.name, form, self.chain.label())
    }
}

fn parse_spec(s: &str, scale: u32) -> Result<(Workload, IsaForm, ChainPolicy), String> {
    let parts: Vec<&str> = s.split(':').collect();
    let [workload, form, chain] = parts[..] else {
        return Err(format!("bad cell spec {s:?}: want workload:form:chain"));
    };
    if !NAMES.contains(&workload) {
        return Err(format!("unknown workload {workload:?}"));
    }
    let form = match form {
        "basic" => IsaForm::Basic,
        "modified" => IsaForm::Modified,
        other => return Err(format!("unknown ISA form {other:?}")),
    };
    let chain = match chain {
        "no_pred" => ChainPolicy::NoPred,
        "sw_pred.no_ras" => ChainPolicy::SwPred,
        "sw_pred.ras" => ChainPolicy::SwPredDualRas,
        other => return Err(format!("unknown chain policy {other:?}")),
    };
    Ok((by_name(workload, scale).unwrap(), form, chain))
}

/// Runs one cell and returns (fragments verified, violations).
fn run_cell(cell: &Cell<'_>) -> (u64, Vec<Violation>) {
    let config = VmConfig {
        translator: Translator {
            form: cell.form,
            chain: cell.chain,
            acc_count: 4,
            fuse_memory: false,
        },
        validator: Some(ildp_verifier::collecting_validator),
        // The collecting validator files violations in a thread-local
        // report; translation must stay on this thread to read it back.
        async_translate: false,
        ..VmConfig::default()
    };
    let mut vm = Vm::new(config, &cell.workload.program);
    let exit = vm.run(cell.workload.budget * 2, &mut NullSink);
    if let VmExit::Trapped { vaddr, trap, .. } = exit {
        panic!(
            "{}: unexpected trap at {vaddr:#x}: {trap}",
            cell.workload.name
        );
    }
    let mut violations: Vec<Violation> = take_report();
    let cache = vm.cache();
    for frag in cache.fragments() {
        violations.extend(verify_installed(cache, frag));
    }
    (vm.stats().fragments_verified, violations)
}

fn emit_failure_report(failing: &[(String, Vec<Violation>)]) {
    println!("vlint: FAILURE REPORT");
    let items: Vec<String> = failing
        .iter()
        .map(|(spec, violations)| {
            let vs: Vec<String> = violations
                .iter()
                .map(|v| format!("\"{}\"", json_escape(&v.to_string())))
                .collect();
            format!(
                "{{\"cell\":\"{}\",\"violations\":[{}]}}",
                json_escape(spec),
                vs.join(",")
            )
        })
        .collect();
    println!(
        "{{\"tool\":\"vlint\",\"scale\":{},\"failures\":[{}]}}",
        harness_scale(),
        items.join(",")
    );
    for (spec, _) in failing {
        println!("rerun: vlint --repro {spec}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = harness_scale();
    if let Some(pos) = args.iter().position(|a| a == "--repro") {
        let Some(spec) = args.get(pos + 1) else {
            eprintln!("vlint: --repro needs workload:form:chain");
            std::process::exit(2);
        };
        let (workload, form, chain) = match parse_spec(spec, scale) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("vlint: {e}");
                std::process::exit(2);
            }
        };
        let cell = Cell {
            workload: &workload,
            form,
            chain,
        };
        println!("vlint: re-running cell {}", cell.spec());
        let (fragments, violations) = run_cell(&cell);
        println!(
            "{fragments} fragments verified, {} violations",
            violations.len()
        );
        for v in &violations {
            println!("    {v}");
        }
        if !violations.is_empty() {
            emit_failure_report(&[(cell.spec(), violations)]);
            std::process::exit(1);
        }
        return;
    }
    if !args.is_empty() {
        eprintln!("vlint: unknown arguments {args:?}");
        eprintln!("usage: vlint [--repro workload:form:chain]");
        std::process::exit(2);
    }

    let suite = suite(scale);
    let chains = [
        ChainPolicy::NoPred,
        ChainPolicy::SwPred,
        ChainPolicy::SwPredDualRas,
    ];
    let forms = [IsaForm::Basic, IsaForm::Modified];

    let mut total_fragments = 0u64;
    let mut total_violations = 0usize;
    let mut failing: Vec<(String, Vec<Violation>)> = Vec::new();

    for w in &suite {
        for &form in &forms {
            for &chain in &chains {
                let cell = Cell {
                    workload: w,
                    form,
                    chain,
                };
                let (fragments, violations) = run_cell(&cell);
                total_fragments += fragments;
                total_violations += violations.len();
                println!(
                    "{:<10} {:>8} {:<14} {:>4} fragments  {:>3} violations",
                    w.name,
                    format!("{form:?}").to_lowercase(),
                    chain.label(),
                    fragments,
                    violations.len(),
                );
                for v in &violations {
                    println!("    {v}");
                }
                if !violations.is_empty() {
                    failing.push((cell.spec(), violations));
                }
            }
        }
    }

    println!(
        "\nvlint: {total_fragments} fragment translations checked, \
         {total_violations} violations"
    );
    if total_violations > 0 {
        emit_failure_report(&failing);
        std::process::exit(1);
    }
}
