//! `chaoslint` — fault-injection sweep over the full workload suite.
//!
//! Runs every workload under every (chain policy × ISA form)
//! configuration with a capacity-bounded, fuel-limited VM while the
//! [`ildp_bench::chaos`] harness deterministically corrupts the
//! translation cache at chunk boundaries: severed and misdirected direct
//! links, poisoned branch targets, corrupted entry shapes, cache-epoch
//! flips, and external stores into translated source pages. Every
//! structural corruption must be flagged by the C01–C07 installed-fragment
//! audit and healed by precise invalidation, and every run must halt with
//! the architected state of a pure interpreter.
//!
//! Usage: `cargo run --release -p ildp-bench --bin chaoslint`
//! (`ILDP_SCALE` scales the workloads, default 10; `ILDP_CHAOS_SEEDS`
//! seeds per cell, default 1.)

use ildp_bench::chaos::{chaos_cell, ChaosReport};
use ildp_bench::harness_scale;
use ildp_core::ChainPolicy;
use ildp_isa::IsaForm;
use spec_workloads::suite;

fn main() {
    let scale = harness_scale();
    let seeds: u64 = std::env::var("ILDP_CHAOS_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let suite = suite(scale);
    let chains = [
        ChainPolicy::NoPred,
        ChainPolicy::SwPred,
        ChainPolicy::SwPredDualRas,
    ];
    let forms = [IsaForm::Basic, IsaForm::Modified];

    let mut total = ChaosReport::default();
    let mut divergences = Vec::new();
    let mut cell_index = 0u64;
    for w in &suite {
        for &form in &forms {
            for &chain in &chains {
                let mut cell_total = ChaosReport::default();
                for s in 0..seeds {
                    cell_index += 1;
                    match chaos_cell(w, form, chain, cell_index * 1000 + s) {
                        Ok(report) => cell_total.merge(&report),
                        Err(msg) => divergences.push(msg),
                    }
                }
                total.merge(&cell_total);
                println!(
                    "{:<10} {:>8} {:<14} {:>4} injected  {:>3} healed  {:>2} undetected",
                    w.name,
                    format!("{form:?}").to_lowercase(),
                    chain.label(),
                    cell_total.injections,
                    cell_total.healed,
                    cell_total.undetected,
                );
            }
        }
    }

    println!(
        "\nchaoslint: {} injections ({} link-clear, {} link-poison, \
         {} target-poison, {} vpc, {} epoch-flip, {} code-write), \
         {} fragments healed, {} undetected, {} divergences",
        total.injections,
        total.link_clears,
        total.link_poisons,
        total.target_poisons,
        total.vpc_corruptions,
        total.epoch_flips,
        total.code_writes,
        total.healed,
        total.undetected,
        divergences.len(),
    );
    for msg in &divergences {
        println!("    {msg}");
    }
    if !divergences.is_empty() || total.undetected > 0 {
        std::process::exit(1);
    }
    if total.injections < 500 {
        println!(
            "chaoslint: only {} injections (< 500); raise ILDP_CHAOS_SEEDS",
            total.injections
        );
        std::process::exit(1);
    }
}
