//! `chaoslint` — fault-injection sweep over the full workload suite.
//!
//! Runs every workload under every (chain policy × ISA form)
//! configuration with a capacity-bounded, fuel-limited VM while the
//! [`ildp_bench::chaos`] harness deterministically corrupts the
//! translation cache at chunk boundaries: severed and misdirected direct
//! links, poisoned branch targets, corrupted entry shapes, cache-epoch
//! flips, and external stores into translated source pages. Every
//! structural corruption must be flagged by the C01–C07 installed-fragment
//! audit and healed by precise invalidation, and every run must halt with
//! the architected state of a pure interpreter.
//!
//! Every cell is recorded: a failure prints the exact cell spec
//! (`workload:form:chain:seed`) and a structured JSON failure report, and
//! `--repro <spec>` re-runs precisely that cell (with record→replay
//! verification). `--seed <n>` runs the whole sweep with that single seed
//! per cell instead of the default schedule. A failing spec feeds
//! straight into `triage --chaos <spec>`.
//!
//! Usage: `cargo run --release -p ildp-bench --bin chaoslint`
//! (`ILDP_SCALE` scales the workloads, default 10; `ILDP_CHAOS_SEEDS`
//! seeds per cell, default 1.)

use ildp_bench::chaos::{chaos_cell_recorded, chaos_replay, CellSpec, ChaosReport};
use ildp_bench::harness_scale;
use ildp_bench::lint::LintReport;
use ildp_core::ChainPolicy;
use ildp_isa::IsaForm;
use spec_workloads::suite;

/// A failed cell: the spec that reproduces it and what went wrong.
struct Failure {
    cell: CellSpec,
    error: String,
}

fn emit_failure_report(failures: &[Failure], total: &ChaosReport) {
    let mut report = LintReport::new("chaoslint");
    report
        .extra("injections", total.injections)
        .extra("undetected", total.undetected);
    for f in failures {
        report.fail(f.cell.to_string(), vec![f.error.clone()]);
    }
    println!("chaoslint: FAILURE REPORT");
    println!("{}", report.to_json());
    for f in failures {
        println!("rerun: chaoslint --repro {}", f.cell);
        println!("triage: triage --chaos {} -o fail.repro", f.cell);
    }
}

/// Re-runs exactly one recorded cell, then verifies the recorded envelope
/// replays to the identical tally.
fn run_repro(spec: &CellSpec) -> i32 {
    let w = spec.workload(harness_scale());
    println!("chaoslint: re-running cell {spec}");
    let (res, log) = chaos_cell_recorded(&w, spec.form, spec.chain, spec.seed, spec.delay);
    let report = match res {
        Ok(r) => r,
        Err(e) => {
            emit_failure_report(
                &[Failure {
                    cell: spec.clone(),
                    error: e,
                }],
                &ChaosReport::default(),
            );
            return 1;
        }
    };
    println!(
        "cell passed: {} injections, {} healed, {} undetected",
        report.injections, report.healed, report.undetected
    );
    match chaos_replay(&w, spec.form, spec.chain, &log, spec.delay) {
        Ok(replayed) if replayed == report => {
            println!("record/replay verified: replayed tally identical");
            0
        }
        Ok(_) => {
            println!("chaoslint: replayed tally DIFFERS from recorded run");
            1
        }
        Err(e) => {
            println!("chaoslint: replay failed where recording passed: {e}");
            1
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed_override: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--repro" => {
                let spec = args.get(i + 1).map(|s| CellSpec::parse(s));
                match spec {
                    Some(Ok(spec)) => std::process::exit(run_repro(&spec)),
                    Some(Err(e)) => {
                        eprintln!("chaoslint: {e}");
                        std::process::exit(2);
                    }
                    None => {
                        eprintln!("chaoslint: --repro needs workload:form:chain:seed[:dDELAY]");
                        std::process::exit(2);
                    }
                }
            }
            "--seed" => {
                match args.get(i + 1).and_then(|s| s.parse::<u64>().ok()) {
                    Some(s) => seed_override = Some(s),
                    None => {
                        eprintln!("chaoslint: --seed needs a number");
                        std::process::exit(2);
                    }
                }
                i += 2;
            }
            other => {
                eprintln!("chaoslint: unknown argument {other:?}");
                eprintln!(
                    "usage: chaoslint [--seed <n>] [--repro workload:form:chain:seed[:dDELAY]]"
                );
                std::process::exit(2);
            }
        }
    }

    let scale = harness_scale();
    let seeds: u64 = std::env::var("ILDP_CHAOS_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let suite = suite(scale);
    let chains = [
        ChainPolicy::NoPred,
        ChainPolicy::SwPred,
        ChainPolicy::SwPredDualRas,
    ];
    let forms = [IsaForm::Basic, IsaForm::Modified];

    let mut total = ChaosReport::default();
    let mut failures = Vec::new();
    let mut cell_index = 0u64;
    for w in &suite {
        for &form in &forms {
            for &chain in &chains {
                let mut cell_total = ChaosReport::default();
                for s in 0..seeds {
                    cell_index += 1;
                    let seed = seed_override.unwrap_or(cell_index * 1000 + s);
                    let spec = CellSpec {
                        workload: w.name.to_string(),
                        form,
                        chain,
                        seed,
                        delay: None,
                    };
                    match chaos_cell_recorded(w, form, chain, seed, None).0 {
                        Ok(report) => cell_total.merge(&report),
                        Err(error) => failures.push(Failure { cell: spec, error }),
                    }
                }
                total.merge(&cell_total);
                println!(
                    "{:<10} {:>8} {:<14} {:>4} injected  {:>3} healed  {:>2} undetected",
                    w.name,
                    format!("{form:?}").to_lowercase(),
                    chain.label(),
                    cell_total.injections,
                    cell_total.healed,
                    cell_total.undetected,
                );
            }
        }
    }

    // Delayed-install cells: translations park for a seed-varied number of
    // retired instructions before their safe-point install, and the
    // injection mix adds staged-translation drops — late, dropped and
    // after-demotion installs must all contain cleanly.
    for w in &suite {
        for &form in &forms {
            let chain = ChainPolicy::SwPredDualRas;
            let mut cell_total = ChaosReport::default();
            for s in 0..seeds {
                cell_index += 1;
                let seed = seed_override.unwrap_or(cell_index * 1000 + s);
                let delay = Some(64 + (seed % 7) * 37);
                let spec = CellSpec {
                    workload: w.name.to_string(),
                    form,
                    chain,
                    seed,
                    delay,
                };
                match chaos_cell_recorded(w, form, chain, seed, delay).0 {
                    Ok(report) => cell_total.merge(&report),
                    Err(error) => failures.push(Failure { cell: spec, error }),
                }
            }
            total.merge(&cell_total);
            println!(
                "{:<10} {:>8} {:<14} {:>4} injected  {:>3} healed  {:>2} undetected  ({} staged drops)",
                w.name,
                format!("{form:?}").to_lowercase(),
                "delayed",
                cell_total.injections,
                cell_total.healed,
                cell_total.undetected,
                cell_total.staged_drops,
            );
        }
    }

    println!(
        "\nchaoslint: {} injections ({} link-clear, {} link-poison, \
         {} target-poison, {} vpc, {} epoch-flip, {} code-write, \
         {} staged-drop), {} fragments healed, {} undetected, \
         {} divergences",
        total.injections,
        total.link_clears,
        total.link_poisons,
        total.target_poisons,
        total.vpc_corruptions,
        total.epoch_flips,
        total.code_writes,
        total.staged_drops,
        total.healed,
        total.undetected,
        failures.len(),
    );
    if !failures.is_empty() || total.undetected > 0 {
        emit_failure_report(&failures, &total);
        std::process::exit(1);
    }
    if total.injections < 500 {
        println!(
            "chaoslint: only {} injections (< 500); raise ILDP_CHAOS_SEEDS",
            total.injections
        );
        std::process::exit(1);
    }
}
