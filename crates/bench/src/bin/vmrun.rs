//! `vmrun` — run a workload through the co-designed VM with configurable
//! translator, chaining, machine parameters and timing model, printing
//! the full statistics block. The exploration tool behind the figures.
//!
//! ```text
//! vmrun gzip --form basic --chain sw_pred --accs 8 --pe 6 --comm 2
//! vmrun perlbmk --timing superscalar-straightened
//! vmrun mcf --fuse --dump-fragments
//! vmrun --list
//! ```

use ildp_core::{
    ChainPolicy, FlushPolicy, NullSink, ProfileConfig, StraightenedVm, Translator, Vm, VmConfig,
    VmExit,
};
use ildp_isa::IsaForm;
use ildp_uarch::{
    IldpConfig, IldpModel, SuperscalarConfig, SuperscalarModel, TimingModel, TimingStats,
};
use spec_workloads::by_name;

struct Options {
    workload: String,
    form: IsaForm,
    chain: ChainPolicy,
    accs: usize,
    scale: u32,
    fuse: bool,
    flush: bool,
    timing: String,
    pe: usize,
    comm: u64,
    dump_fragments: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: vmrun <workload> [--form basic|modified] [--chain no_pred|sw_pred|ras]\n\
         \u{20}            [--accs N] [--scale N] [--fuse] [--flush] [--pe N] [--comm N]\n\
         \u{20}            [--timing ildp|superscalar-straightened|none] [--dump-fragments]\n\
         \u{20}      vmrun --list"
    );
    std::process::exit(2);
}

fn parse() -> Options {
    let mut opts = Options {
        workload: String::new(),
        form: IsaForm::Modified,
        chain: ChainPolicy::SwPredDualRas,
        accs: 4,
        scale: 10,
        fuse: false,
        flush: false,
        timing: "ildp".to_string(),
        pe: 8,
        comm: 0,
        dump_fragments: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match arg.as_str() {
            "--list" => {
                for n in spec_workloads::NAMES {
                    println!("{n}");
                }
                std::process::exit(0);
            }
            "--form" => {
                opts.form = match value("--form").as_str() {
                    "basic" => IsaForm::Basic,
                    "modified" => IsaForm::Modified,
                    other => {
                        eprintln!("unknown form `{other}`");
                        usage()
                    }
                }
            }
            "--chain" => {
                opts.chain = match value("--chain").as_str() {
                    "no_pred" => ChainPolicy::NoPred,
                    "sw_pred" => ChainPolicy::SwPred,
                    "ras" => ChainPolicy::SwPredDualRas,
                    other => {
                        eprintln!("unknown chain policy `{other}`");
                        usage()
                    }
                }
            }
            "--accs" => opts.accs = value("--accs").parse().unwrap_or_else(|_| usage()),
            "--scale" => opts.scale = value("--scale").parse().unwrap_or_else(|_| usage()),
            "--pe" => opts.pe = value("--pe").parse().unwrap_or_else(|_| usage()),
            "--comm" => opts.comm = value("--comm").parse().unwrap_or_else(|_| usage()),
            "--timing" => opts.timing = value("--timing"),
            "--fuse" => opts.fuse = true,
            "--flush" => opts.flush = true,
            "--dump-fragments" => opts.dump_fragments = true,
            w if !w.starts_with('-') && opts.workload.is_empty() => opts.workload = w.to_string(),
            other => {
                eprintln!("unknown argument `{other}`");
                usage()
            }
        }
    }
    if opts.workload.is_empty() {
        usage();
    }
    if opts.accs == 0 || opts.accs > 16 {
        eprintln!("--accs must be between 1 and 16 (paper evaluates 4 and 8)");
        std::process::exit(2);
    }
    if opts.pe == 0 || opts.pe > 64 {
        eprintln!("--pe must be between 1 and 64 (paper evaluates 4, 6 and 8)");
        std::process::exit(2);
    }
    opts
}

fn print_timing(stats: &TimingStats) {
    println!("--- timing ---");
    println!("cycles                : {}", stats.cycles);
    println!("instructions          : {}", stats.instructions);
    println!("V-ISA instructions    : {}", stats.v_instructions);
    println!(
        "IPC (native / V-ISA)  : {:.3} / {:.3}",
        stats.ipc(),
        stats.v_ipc()
    );
    println!(
        "mispredicts/1k V-inst : {:.2} (cond {}, indirect {}, return {})",
        stats.mispredicts_per_kilo_v_inst(),
        stats.cond_mispredicts,
        stats.indirect_mispredicts,
        stats.return_mispredicts
    );
    println!(
        "cache misses          : I {} / D {} / L2 {}",
        stats.icache_misses, stats.dcache_misses, stats.l2_misses
    );
}

fn main() {
    let opts = parse();
    let Some(w) = by_name(&opts.workload, opts.scale) else {
        eprintln!("unknown workload `{}`; try --list", opts.workload);
        std::process::exit(2);
    };

    if opts.timing == "superscalar-straightened" {
        let mut model = SuperscalarModel::new(SuperscalarConfig::default());
        let mut vm = StraightenedVm::new(opts.chain, ProfileConfig::default(), &w.program);
        let exit = vm.run(w.budget * 2, &mut model);
        println!("exit                  : {exit:?}");
        let s = vm.stats();
        println!("fragments             : {}", s.fragments);
        println!(
            "relative inst count   : {:.3}",
            s.relative_instruction_count()
        );
        println!("dual-RAS hits/misses  : {}/{}", s.ras_hits, s.ras_misses);
        print_timing(&model.finish());
        return;
    }

    let config = VmConfig {
        translator: Translator {
            form: opts.form,
            chain: opts.chain,
            acc_count: opts.accs,
            fuse_memory: opts.fuse,
        },
        flush: opts.flush.then(FlushPolicy::default),
        ..VmConfig::default()
    };
    let mut vm = Vm::new(config, &w.program);

    let mut pe_utilization: Option<Vec<u64>> = None;
    let (exit, timing): (VmExit, Option<TimingStats>) = match opts.timing.as_str() {
        "ildp" => {
            let mut model = IldpModel::new(IldpConfig {
                pe_count: opts.pe,
                comm_latency: opts.comm,
                ..IldpConfig::default()
            });
            let exit = vm.run(w.budget * 2, &mut model);
            pe_utilization = Some(model.pe_utilization().to_vec());
            (exit, Some(model.finish()))
        }
        "none" => (vm.run(w.budget * 2, &mut NullSink), None),
        other => {
            eprintln!("unknown timing model `{other}`");
            usage()
        }
    };

    println!("workload              : {} (scale {})", w.name, opts.scale);
    println!("exit                  : {exit:?}");
    let s = vm.stats();
    println!("--- DBT ---");
    println!(
        "fragments             : {} ({} flushes)",
        s.fragments, s.cache_flushes
    );
    println!("interpreted           : {}", s.interpreted);
    println!("translated V-insts    : {}", s.engine.v_insts);
    println!(
        "executed I-insts      : {} ({:.2}x expansion)",
        s.engine.executed,
        s.dynamic_expansion()
    );
    println!("copies                : {:.1}%", s.copy_pct());
    println!("chain instructions    : {}", s.engine.chain_executed);
    println!("dispatches            : {}", s.engine.dispatches);
    println!(
        "arch dual-RAS         : {} hits / {} misses",
        s.engine.ras_hits, s.engine.ras_misses
    );
    println!("strands / terminations: {} / {}", s.strands, s.terminations);
    println!("static code ratio     : {:.2}x", s.static_code_ratio());
    println!(
        "DBT overhead          : {:.0} insts per translated inst",
        s.overhead_per_translated_inst()
    );
    if let Some(t) = timing {
        print_timing(&t);
        if let Some(util) = pe_utilization {
            let total: u64 = util.iter().sum::<u64>().max(1);
            let shares: Vec<String> = util
                .iter()
                .map(|&n| format!("{:.0}%", n as f64 * 100.0 / total as f64))
                .collect();
            println!("PE utilization        : [{}]", shares.join(" "));
        }
    }
    if opts.dump_fragments {
        println!("--- fragments ---");
        for f in vm.cache().fragments() {
            println!(
                "  {:>4?} v {:#x} i {:#x}: {} insts, {} entries, {} bytes",
                f.id,
                f.vstart,
                f.istart,
                f.insts.len(),
                f.entries,
                f.size_bytes()
            );
        }
    }
}
