//! Figure 6: performance impact of code straightening and the hardware
//! RAS — IPC of the original program with and without a RAS versus the
//! straightened version without RAS and with the dual-address RAS.
//!
//! Paper shape: straightened-without-RAS loses to the original (chaining
//! overhead eats the straightening benefit); straightened with the
//! dual-address RAS is about level with the original-with-RAS.

use ildp_bench::{harness_scale, run_original, run_straightened, Table};
use ildp_core::ChainPolicy;
use spec_workloads::suite;

fn main() {
    let scale = harness_scale();
    let mut table = Table::new(
        "Figure 6 — IPC: straightening and RAS",
        &["orig.no_ras", "orig.ras", "straight.no_ras", "straight.ras"],
    );
    for w in suite(scale) {
        let o_no = run_original(&w, false).timing;
        let o_ras = run_original(&w, true).timing;
        let s_no = run_straightened(&w, ChainPolicy::SwPred).timing;
        let s_ras = run_straightened(&w, ChainPolicy::SwPredDualRas).timing;
        table.row(
            w.name,
            &[o_no.ipc(), o_ras.ipc(), s_no.v_ipc(), s_ras.v_ipc()],
        );
    }
    print!("{}", table.render());
    let avg = table.averages();
    println!(
        "\nshape check: straight.ras/orig.ras = {:.3} (paper: ≈1.0); \
         straight.no_ras/orig.no_ras = {:.3} (paper: <1.0)",
        avg[3] / avg[1],
        avg[2] / avg[0]
    );
}
