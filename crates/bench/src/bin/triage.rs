//! `triage` — divergence triage and `.repro` bundle tooling.
//!
//! Three modes:
//!
//! * `triage --chaos workload:form:chain:seed[:dDELAY] [-o out.repro]`
//!   — records that chaos cell (`:dN` selects the delayed-install
//!   variant, parking translations N retired instructions); if it
//!   fails, bisects to the first divergent fragment execution and
//!   (with `-o`) writes the minimized `.repro` bundle.
//! * `triage --sabotage workload:form:chain:vstart:slot:xor [-o out.repro]`
//!   — plants a standing translator-miscompile rule (XOR `xor` into the
//!   first immediate at/after `slot` of the fragment installed at
//!   `vstart`), runs, and triages the resulting divergence.
//! * `triage --repro path` — replays a `.repro` bundle and exits 0 iff
//!   the reproduced divergence is identical to the bundled expectation.
//!
//! `vstart`, `slot`, and `xor` accept decimal or `0x` hex.
//! (`ILDP_SCALE` scales the workloads, default 10.)

use ildp_bench::chaos::{chaos_cell_recorded, CellSpec};
use ildp_bench::harness_scale;
use ildp_bench::triage::{paced_run_events, triage_run, ReproBundle, TriageResult};
use ildp_core::{ReplayLog, Sabotage};

fn parse_u64(s: &str) -> Result<u64, String> {
    let r = match s.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse(),
    };
    r.map_err(|_| format!("bad number {s:?}"))
}

fn usage() -> ! {
    eprintln!(
        "usage: triage --chaos workload:form:chain:seed[:dDELAY] [-o out.repro]\n\
         \x20      triage --sabotage workload:form:chain:vstart:slot:xor [-o out.repro]\n\
         \x20      triage --repro path"
    );
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("triage: {msg}");
    std::process::exit(2);
}

/// Prints a triage verdict and optionally writes the bundle.
fn deliver(result: TriageResult, out: Option<&str>) -> i32 {
    print!("{}", result.divergence);
    println!(
        "entry checkpoint at v_insts {} ({} events kept, {} sabotage rules)",
        result.bundle.snapshot.v_insts,
        result.bundle.log.events.len(),
        result.bundle.log.sabotage.len()
    );
    if let Some(path) = out {
        let bytes = result.bundle.to_bytes();
        if let Err(e) = std::fs::write(path, &bytes) {
            eprintln!("triage: writing {path}: {e}");
            return 1;
        }
        println!("wrote {} bytes to {path}", bytes.len());
        println!("replay: triage --repro {path}");
    }
    1
}

fn run_chaos(spec: &str, out: Option<&str>) -> i32 {
    let spec = CellSpec::parse(spec).unwrap_or_else(|e| fail(&e));
    let w = spec.workload(harness_scale());
    println!("triage: recording chaos cell {spec}");
    let (res, log) = chaos_cell_recorded(&w, spec.form, spec.chain, spec.seed, spec.delay);
    match res {
        Ok(report) => {
            println!(
                "cell passed ({} injections, {} healed): nothing to triage",
                report.injections, report.healed
            );
            return 0;
        }
        Err(e) => println!("cell failed: {e}"),
    }
    let interval = (w.budget / 128).max(100);
    match triage_run(
        &w.program,
        spec.form,
        spec.chain,
        &log,
        interval,
        &spec.workload,
    ) {
        Ok(Some(result)) => deliver(result, out),
        Ok(None) => {
            // The cell can fail on tally grounds (audit-escaped
            // corruption) while the architected state still matches.
            println!(
                "architected state matches the reference end-to-end; no divergence to localize"
            );
            1
        }
        Err(e) => {
            eprintln!("triage: {e}");
            1
        }
    }
}

fn run_sabotage(spec: &str, out: Option<&str>) -> i32 {
    let parts: Vec<&str> = spec.split(':').collect();
    let [workload, form, chain, vstart, slot, xor] = parts[..] else {
        fail("--sabotage wants workload:form:chain:vstart:slot:xor");
    };
    let cell =
        CellSpec::parse(&format!("{workload}:{form}:{chain}:0")).unwrap_or_else(|e| fail(&e));
    let rule = Sabotage {
        vstart: parse_u64(vstart).unwrap_or_else(|e| fail(&e)),
        slot: parse_u64(slot).unwrap_or_else(|e| fail(&e)) as u32,
        imm_xor: parse_u64(xor).unwrap_or_else(|e| fail(&e)) as u16,
    };
    let w = cell.workload(harness_scale());
    let log = ReplayLog {
        seed: 0,
        sabotage: vec![rule],
        events: paced_run_events(w.budget * 2, 500),
    };
    println!(
        "triage: sabotaging fragment at {:#x} (slot {}, xor {:#x}) in {}",
        rule.vstart, rule.slot, rule.imm_xor, cell
    );
    let interval = (w.budget / 128).max(100);
    match triage_run(
        &w.program,
        cell.form,
        cell.chain,
        &log,
        interval,
        &cell.workload,
    ) {
        Ok(Some(result)) => deliver(result, out),
        Ok(None) => {
            println!("sabotage did not change the architected outcome (dead immediate?)");
            0
        }
        Err(e) => {
            eprintln!("triage: {e}");
            1
        }
    }
}

fn run_repro(path: &str) -> i32 {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => fail(&format!("reading {path}: {e}")),
    };
    let bundle = match ReproBundle::from_bytes(&bytes) {
        Ok(b) => b,
        Err(e) => fail(&format!("{path}: {e}")),
    };
    println!(
        "triage: replaying {path} ({}, entry checkpoint at v_insts {})",
        bundle.workload, bundle.snapshot.v_insts
    );
    match bundle.replay() {
        Ok(Some(found)) if found == bundle.expected => {
            println!("reproduced the bundled divergence exactly:");
            print!("{found}");
            0
        }
        Ok(Some(found)) => {
            println!("divergence found, but it DIFFERS from the bundled expectation");
            println!("expected:");
            print!("{}", bundle.expected);
            println!("found:");
            print!("{found}");
            1
        }
        Ok(None) => {
            println!("no divergence reproduced — the failure appears fixed in this build");
            1
        }
        Err(e) => {
            eprintln!("triage: {e}");
            1
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode: Option<(&str, String)> = None;
    let mut out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            m @ ("--chaos" | "--sabotage" | "--repro") => {
                let Some(v) = args.get(i + 1) else { usage() };
                if mode.is_some() {
                    fail("choose exactly one of --chaos, --sabotage, --repro");
                }
                mode = Some((
                    match m {
                        "--chaos" => "chaos",
                        "--sabotage" => "sabotage",
                        _ => "repro",
                    },
                    v.clone(),
                ));
                i += 2;
            }
            "-o" | "--out" => {
                let Some(v) = args.get(i + 1) else { usage() };
                out = Some(v.clone());
                i += 2;
            }
            _ => usage(),
        }
    }
    let code = match mode {
        Some(("chaos", spec)) => run_chaos(&spec, out.as_deref()),
        Some(("sabotage", spec)) => run_sabotage(&spec, out.as_deref()),
        Some(("repro", path)) => run_repro(&path),
        _ => usage(),
    };
    std::process::exit(code);
}
