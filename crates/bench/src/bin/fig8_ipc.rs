//! Figure 8: IPC comparison — the conventional superscalar running the
//! original program, the code-straightened version, and the ILDP machine
//! running dynamically translated basic- and modified-ISA code (all in
//! V-ISA instructions per cycle), plus the ILDP machine's native I-ISA
//! IPC.
//!
//! Configuration per the paper: 8 PEs, 32 KB L1D, 0-cycle global
//! communication. Paper shape: modified beats basic; modified lands
//! within ~15% of the straightened superscalar; native I-ISA IPC is much
//! higher than V-ISA IPC (offset by the instruction expansion).

use ildp_bench::{harness_scale, run_ildp, run_original, run_straightened, IldpParams, Table};
use ildp_core::ChainPolicy;
use ildp_isa::IsaForm;
use spec_workloads::suite;

fn main() {
    let scale = harness_scale();
    let mut table = Table::new(
        "Figure 8 — IPC comparison (V-ISA IPC; last column native I-ISA)",
        &[
            "original",
            "straightened",
            "ILDP basic",
            "ILDP modified",
            "native I-IPC",
        ],
    );
    for w in suite(scale) {
        let original = run_original(&w, true).timing;
        let straightened = run_straightened(&w, ChainPolicy::SwPredDualRas).timing;
        let basic = run_ildp(&w, IsaForm::Basic, IldpParams::default()).timing;
        let modified = run_ildp(&w, IsaForm::Modified, IldpParams::default()).timing;
        table.row(
            w.name,
            &[
                original.ipc(),
                straightened.v_ipc(),
                basic.v_ipc(),
                modified.v_ipc(),
                modified.ipc(),
            ],
        );
    }
    print!("{}", table.render());
    let avg = table.averages();
    println!(
        "\nshape check: modified/straightened = {:.3} (paper ≈0.85), \
         modified > basic: {}",
        avg[3] / avg[1],
        avg[3] > avg[2]
    );
}
