//! `flowlint` — whole-cache dataflow lint over the full workload suite.
//!
//! Two phases:
//!
//! 1. **Clean matrix**: every workload under every (ISA form × chain
//!    policy) runs with the collecting flow validator installed (rules
//!    F01–F04 on each fresh translation); after the run the installed
//!    cache is audited as a whole (`flow::check_cache`: F03/F04/F05 over
//!    patched fragments + the worklist liveness solver) and a bounded
//!    sample of the retired-instruction trace is cross-checked against
//!    the static summaries (`flow::check_dynamic`: F06). Must be
//!    violation-free, and prints the per-cell seam opportunity report
//!    (dead/redundant cross-fragment communication).
//! 2. **Seeded detection**: every F01–F06 seeded miscompile from the
//!    shared corpus (`ildp_bench::miscompile`) must be detected by the
//!    rule that owns it.
//!
//! Exits non-zero with the shared lint JSON schema on any violation or
//! undetected seed. `--repro workload:form:chain` re-runs one matrix
//! cell alone.
//!
//! Usage: `cargo run --release -p ildp-bench --bin flowlint`
//! (`ILDP_SCALE` scales the workloads, default 10.)

use ildp_bench::harness_scale;
use ildp_bench::lint::{cell_spec, parse_cell_spec, LintReport, ALL_CHAINS, ALL_FORMS};
use ildp_bench::miscompile::{flow_cache_seeds, flow_translation_seeds};
use ildp_core::{ChainPolicy, TraceSink, Translator, Vm, VmConfig, VmExit};
use ildp_isa::IsaForm;
use ildp_uarch::DynInst;
use ildp_verifier::{flow, take_report, FlowReport, Violation};
use spec_workloads::{suite, Workload};

/// Records the first `cap` retired instructions for the F06 cross-check.
struct SampleSink {
    buf: Vec<DynInst>,
    cap: usize,
}

impl TraceSink for SampleSink {
    fn retire(&mut self, inst: &DynInst) {
        if self.buf.len() < self.cap {
            self.buf.push(*inst);
        }
    }
}

/// Retired-trace sample size per cell for the dynamic cross-check.
const TRACE_SAMPLE: usize = 200_000;

/// Runs one matrix cell; returns (violations, seam report).
fn run_cell(
    workload: &Workload,
    form: IsaForm,
    chain: ChainPolicy,
) -> (Vec<Violation>, FlowReport) {
    let config = VmConfig {
        translator: Translator {
            form,
            chain,
            acc_count: 4,
            fuse_memory: false,
        },
        validator: Some(ildp_verifier::collecting_flow_validator),
        // The collecting validator files violations in a thread-local
        // report; translation must stay on this thread to read it back.
        async_translate: false,
        ..VmConfig::default()
    };
    let mut vm = Vm::new(config, &workload.program);
    let mut sink = SampleSink {
        buf: Vec::new(),
        cap: TRACE_SAMPLE,
    };
    let exit = vm.run(workload.budget * 2, &mut sink);
    if let VmExit::Trapped { vaddr, trap, .. } = exit {
        panic!("{}: unexpected trap at {vaddr:#x}: {trap}", workload.name);
    }
    let mut violations = take_report();
    let cache = vm.cache();
    let (cache_violations, seam) = flow::check_cache(cache, Some(chain));
    violations.extend(cache_violations);
    violations.extend(flow::check_dynamic(cache, &sink.buf));
    (violations, seam)
}

fn print_cell(spec: &str, violations: &[Violation], seam: &FlowReport) {
    println!(
        "{spec:<40} {:>4} fragments {:>4} edges  dead {:>3} redundant {:>3}  {:>3} violations",
        seam.fragments,
        seam.resolved_edges,
        seam.dead_copy_outs,
        seam.redundant_seam_pairs,
        violations.len(),
    );
    for v in violations {
        println!("    {v}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = harness_scale();
    let mut report = LintReport::new("flowlint");

    if let Some(pos) = args.iter().position(|a| a == "--repro") {
        let Some(spec) = args.get(pos + 1) else {
            eprintln!("flowlint: --repro needs workload:form:chain");
            std::process::exit(2);
        };
        let (workload, form, chain) = match parse_cell_spec(spec, scale) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("flowlint: {e}");
                std::process::exit(2);
            }
        };
        println!("flowlint: re-running cell {spec}");
        let (violations, seam) = run_cell(&workload, form, chain);
        print_cell(spec, &violations, &seam);
        if !violations.is_empty() {
            report.fail(
                spec.clone(),
                violations.iter().map(|v| v.to_string()).collect(),
            );
        }
        report.finish_or_exit();
        return;
    }
    if !args.is_empty() {
        eprintln!("flowlint: unknown arguments {args:?}");
        eprintln!("usage: flowlint [--repro workload:form:chain]");
        std::process::exit(2);
    }

    // Phase 1: the clean matrix.
    let suite = suite(scale);
    let mut total = FlowReport::default();
    for w in &suite {
        for &form in &ALL_FORMS {
            for &chain in &ALL_CHAINS {
                let spec = cell_spec(w.name, form, chain);
                let (violations, seam) = run_cell(w, form, chain);
                total.merge(&seam);
                print_cell(&spec, &violations, &seam);
                if !violations.is_empty() {
                    report.fail(spec, violations.iter().map(|v| v.to_string()).collect());
                }
            }
        }
    }

    // Phase 2: seeded-miscompile detection, one failure entry per
    // undetected seed.
    let mut seeds = 0u64;
    let mut undetected = 0u64;
    for seed in flow_translation_seeds() {
        seeds += 1;
        let (sb, code, _tr) = seed.build();
        let mut vs = Vec::new();
        flow::check_translation(&sb, &code, &mut vs);
        let caught = vs.iter().any(|v| v.rule == seed.rule);
        println!(
            "seed {:<55} [{}] {}",
            seed.name,
            seed.rule,
            if caught { "detected" } else { "UNDETECTED" }
        );
        if !caught {
            undetected += 1;
            report.fail(
                format!("seed:{}:{}", seed.rule, seed.name),
                vec![format!(
                    "seeded {} miscompile not detected; rules that fired: {:?}",
                    seed.rule,
                    vs.iter().map(|v| v.rule).collect::<Vec<_>>()
                )],
            );
        }
    }
    for seed in flow_cache_seeds() {
        seeds += 1;
        let vs = (seed.run)();
        let caught = vs.iter().any(|v| v.rule == seed.rule);
        println!(
            "seed {:<55} [{}] {}",
            seed.name,
            seed.rule,
            if caught { "detected" } else { "UNDETECTED" }
        );
        if !caught {
            undetected += 1;
            report.fail(
                format!("seed:{}:{}", seed.rule, seed.name),
                vec![format!(
                    "seeded {} miscompile not detected; rules that fired: {:?}",
                    seed.rule,
                    vs.iter().map(|v| v.rule).collect::<Vec<_>>()
                )],
            );
        }
    }

    println!(
        "\nflowlint: {} fragments, {} resolved edges, {} boundary exits; \
         {} copy-ins, {} copy-outs, {} dead copy-outs, {} redundant seam pairs; \
         {seeds} seeds, {undetected} undetected",
        total.fragments,
        total.resolved_edges,
        total.boundary_exits,
        total.copy_ins,
        total.copy_outs,
        total.dead_copy_outs,
        total.redundant_seam_pairs,
    );
    report
        .extra("fragments", total.fragments)
        .extra("resolved_edges", total.resolved_edges)
        .extra("dead_copy_outs", total.dead_copy_outs)
        .extra("redundant_seam_pairs", total.redundant_seam_pairs)
        .extra("seeds", seeds)
        .extra("undetected", undetected);
    report.finish_or_exit();
    println!("flowlint: clean");
}
