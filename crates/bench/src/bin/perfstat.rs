//! Functional-engine throughput snapshot → `BENCH_engine.json`, and the
//! multi-VM scaling harness → `BENCH_throughput.json`.
//!
//! Default mode runs the whole workload suite under the functional
//! engine (no timing model, `NullSink`) and emits a machine-readable
//! JSON report — guest (V-ISA) instructions per second, dispatch counts,
//! dual-RAS hit rate, and the install-time translation-validator
//! overhead (fragments verified per second) — so successive PRs have a
//! perf trajectory to compare against. Each workload (and the aggregate)
//! also carries a `seam_report` from the whole-cache dataflow pass
//! (`ildp_verifier::flow`): dead and redundant cross-fragment
//! communication counts that quantify the region re-formation
//! opportunity.
//!
//! `--throughput` instead runs the multi-VM harness
//! ([`ildp_bench::throughput`]): N VMs per (workload × ISA form) cell on
//! a sweep of OS thread counts with asynchronous translation, plus the
//! shared warm-start store section. `--check` additionally enforces the
//! warm-start gate (nonzero reuse ≥ 90%, zero retranslations, zero
//! reverifications) and exits non-zero on violation.
//!
//! Both JSON schemas are documented in `crates/bench/src/report.rs`.
//!
//! Usage: `cargo run --release -p ildp-bench --bin perfstat -- \
//! [--throughput [--check]] [<out.json>]`
//! (`ILDP_SCALE` scales the workloads, default 30 — or 5 for
//! `--throughput`; `PERFSTAT_REPS` repetitions per workload, default 3;
//! `ILDP_VMS` VM instances per throughput cell, default 8.)

use ildp_bench::throughput::{run_throughput, ThroughputOptions};
use ildp_core::{ChainPolicy, NullSink, Translator, Vm, VmConfig, VmExit};
use ildp_verifier::flow::{self, FlowReport};
use ildp_verifier::{collecting_validator, take_report};
use spec_workloads::suite;
use std::fmt::Write as _;
use std::time::Instant;

struct Row {
    name: &'static str,
    wall_s: f64,
    v_insts: u64,
    executed: u64,
    interpreted: u64,
    dispatches: u64,
    ras_hits: u64,
    ras_misses: u64,
    fragment_entries: u64,
    fragments: u64,
    fragments_verified: u64,
    verify_nanos: u64,
    evictions: u64,
    smc_invalidations: u64,
    demotions: u64,
    warmup_interpreted: u64,
    /// Whole-cache dataflow summary of the final rep's installed cache:
    /// per-seam dead/redundant cross-fragment communication counts (the
    /// region re-formation opportunity report; see DESIGN.md §10).
    seam: FlowReport,
}

fn run_workload(w: &spec_workloads::Workload, reps: u32) -> Row {
    let config = VmConfig {
        translator: Translator {
            chain: ChainPolicy::SwPredDualRas,
            ..Translator::default()
        },
        validator: Some(collecting_validator),
        // The collecting validator files violations thread-locally, and
        // the single-VM trajectory numbers should isolate engine speed
        // from pipeline timing; `--throughput` measures async mode.
        async_translate: false,
        ..VmConfig::default()
    };
    let mut row = Row {
        name: w.name,
        wall_s: 0.0,
        v_insts: 0,
        executed: 0,
        interpreted: 0,
        dispatches: 0,
        ras_hits: 0,
        ras_misses: 0,
        fragment_entries: 0,
        fragments: 0,
        fragments_verified: 0,
        verify_nanos: 0,
        evictions: 0,
        smc_invalidations: 0,
        demotions: 0,
        warmup_interpreted: 0,
        seam: FlowReport::default(),
    };
    for _ in 0..reps {
        let mut vm = Vm::new(config, &w.program);
        let start = Instant::now();
        let exit = vm.run(w.budget * 2, &mut NullSink);
        row.wall_s += start.elapsed().as_secs_f64();
        match exit {
            VmExit::Halted | VmExit::Budget => {}
            VmExit::Trapped { vaddr, trap, .. } => {
                panic!("{}: unexpected trap at {vaddr:#x}: {trap}", w.name)
            }
            VmExit::Fault { error } => {
                panic!("{}: runtime fault: {error}", w.name)
            }
        }
        let s = vm.stats();
        row.v_insts += s.engine.v_insts;
        row.executed += s.engine.executed;
        row.interpreted += s.interpreted;
        row.dispatches += s.engine.dispatches;
        row.ras_hits += s.engine.ras_hits;
        row.ras_misses += s.engine.ras_misses;
        row.fragment_entries += s.engine.fragment_entries;
        row.fragments += s.fragments;
        row.fragments_verified += s.fragments_verified;
        row.verify_nanos += s.verify_nanos;
        row.evictions += s.evictions;
        row.smc_invalidations += s.smc_invalidations;
        row.demotions += s.demotions;
        row.warmup_interpreted += s.warmup_interpreted;
        let violations = take_report();
        assert!(
            violations.is_empty(),
            "{}: {} verifier violations during a perf run",
            w.name,
            violations.len()
        );
        // Whole-cache dataflow pass over the installed cache (last rep
        // wins — every rep installs the same fragments deterministically):
        // the seam report feeds the region re-formation roadmap item.
        let (flow_violations, seam) =
            flow::check_cache(vm.cache(), Some(ChainPolicy::SwPredDualRas));
        assert!(
            flow_violations.is_empty(),
            "{}: {} flow violations during a perf run",
            w.name,
            flow_violations.len()
        );
        row.seam = seam;
    }
    row
}

/// Runs the multi-VM harness and writes `BENCH_throughput.json` (schema
/// in `report.rs`). With `check`, enforces the warm-start gate.
fn throughput_main(out_path: &str, check: bool) {
    let opts = ThroughputOptions {
        scale: std::env::var("ILDP_SCALE")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(5),
        vms: std::env::var("ILDP_VMS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(8),
        ..ThroughputOptions::default()
    };
    let report = run_throughput(&opts);

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"multi_vm_throughput\",");
    let _ = writeln!(json, "  \"scale\": {},", report.scale);
    let _ = writeln!(json, "  \"vms_per_cell\": {},", report.vms);
    let _ = writeln!(json, "  \"pool_workers\": {},", report.pool_workers);
    let _ = writeln!(
        json,
        "  \"throughput_metric\": \"guest_insts / max per-thread cpu seconds (cpu critical path)\","
    );
    let _ = writeln!(json, "  \"scaling_ratio\": {:.3},", report.scaling_ratio());
    let _ = writeln!(json, "  \"scaling\": [");
    for (k, r) in report.scaling.iter().enumerate() {
        let comma = if k + 1 < report.scaling.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(
            json,
            "    {{\"threads\": {}, \"runs\": {}, \"guest_insts\": {}, \
             \"guest_insts_per_sec\": {:.0}, \"cpu_critical_path_seconds\": {:.4}, \
             \"cpu_total_seconds\": {:.4}, \"wall_seconds\": {:.4}, \
             \"translate_stall_seconds\": {:.6}, \"translate_wall_seconds\": {:.6}, \
             \"async_installs\": {}, \"async_dropped\": {}}}{comma}",
            r.threads,
            r.runs,
            r.total_guest_insts,
            r.guest_insts_per_sec,
            r.cpu_critical_path_seconds,
            r.cpu_total_seconds,
            r.wall_seconds,
            r.translate_stall_seconds,
            r.translate_wall_seconds,
            r.async_installs,
            r.async_dropped,
        );
    }
    let _ = writeln!(json, "  ],");
    let w = &report.warm;
    let _ = writeln!(json, "  \"warm_start\": {{");
    let _ = writeln!(json, "    \"cold_runs\": {},", w.cold_runs);
    let _ = writeln!(json, "    \"cold_fragments\": {},", w.cold_fragments);
    let _ = writeln!(json, "    \"warm_runs\": {},", w.warm_runs);
    let _ = writeln!(json, "    \"warm_hits\": {},", w.warm_hits);
    let _ = writeln!(json, "    \"warm_misses\": {},", w.warm_misses);
    let _ = writeln!(json, "    \"reuse_rate\": {:.4},", w.reuse_rate());
    let _ = writeln!(json, "    \"retranslations\": {},", w.retranslations());
    let _ = writeln!(json, "    \"reverifications\": {}", w.reverifications);
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");

    std::fs::write(out_path, &json).expect("write report");
    println!("{json}");
    println!(
        "wrote {out_path}: scaling {:.2}x across {:?} threads, warm reuse {:.1}%",
        report.scaling_ratio(),
        report.scaling.iter().map(|r| r.threads).collect::<Vec<_>>(),
        w.reuse_rate() * 100.0
    );

    if check {
        let mut bad = Vec::new();
        if w.warm_hits == 0 {
            bad.push("warm-start hit rate is 0 for a repeated-program run".to_string());
        }
        if w.reuse_rate() < 0.9 {
            bad.push(format!("warm reuse rate {:.4} < 0.9", w.reuse_rate()));
        }
        if w.retranslations() > 0 {
            bad.push(format!(
                "{} warm retranslations (want 0)",
                w.retranslations()
            ));
        }
        if w.reverifications > 0 {
            bad.push(format!(
                "{} warm reverifications (want 0)",
                w.reverifications
            ));
        }
        if !bad.is_empty() {
            for b in &bad {
                println!("perfstat --check: FAIL: {b}");
            }
            std::process::exit(1);
        }
        println!("perfstat --check: warm-start gate passed");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut throughput = false;
    let mut check = false;
    let mut out: Option<String> = None;
    for a in &args {
        match a.as_str() {
            "--throughput" => throughput = true,
            "--check" => check = true,
            other if !other.starts_with('-') => out = Some(other.to_string()),
            other => {
                eprintln!("perfstat: unknown argument {other:?}");
                eprintln!("usage: perfstat [--throughput [--check]] [out.json]");
                std::process::exit(2);
            }
        }
    }
    if throughput {
        let out_path = out.unwrap_or_else(|| "BENCH_throughput.json".to_string());
        throughput_main(&out_path, check);
        return;
    }
    let out_path = out.unwrap_or_else(|| "BENCH_engine.json".to_string());
    let scale: u32 = std::env::var("ILDP_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);
    let reps: u32 = std::env::var("PERFSTAT_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);

    let rows: Vec<Row> = suite(scale).iter().map(|w| run_workload(w, reps)).collect();

    let total_wall: f64 = rows.iter().map(|r| r.wall_s).sum();
    let total_v: u64 = rows.iter().map(|r| r.v_insts).sum();
    let total_hits: u64 = rows.iter().map(|r| r.ras_hits).sum();
    let total_misses: u64 = rows.iter().map(|r| r.ras_misses).sum();
    let agg_ips = total_v as f64 / total_wall.max(1e-9);
    let ras_rate = total_hits as f64 / (total_hits + total_misses).max(1) as f64;
    let total_verified: u64 = rows.iter().map(|r| r.fragments_verified).sum();
    let verify_wall: f64 = rows.iter().map(|r| r.verify_nanos).sum::<u64>() as f64 * 1e-9;
    let verified_per_s = total_verified as f64 / verify_wall.max(1e-9);
    let total_interp: u64 = rows.iter().map(|r| r.interpreted).sum();
    let total_evictions: u64 = rows.iter().map(|r| r.evictions).sum();
    let total_smc: u64 = rows.iter().map(|r| r.smc_invalidations).sum();
    let total_demotions: u64 = rows.iter().map(|r| r.demotions).sum();
    // Steady-state fallback: exclude the warmup phase (everything
    // interpreted before the first install), matching
    // `VmStats::interp_fallback_ratio` — short workloads otherwise
    // report an inflated ratio dominated by profiling warmup.
    let total_warmup: u64 = rows.iter().map(|r| r.warmup_interpreted).sum();
    let steady = total_interp.saturating_sub(total_warmup);
    let interp_fallback = steady as f64 / (steady + total_v).max(1) as f64;
    let mut total_seam = FlowReport::default();
    for r in &rows {
        total_seam.merge(&r.seam);
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"engine_functional\",");
    let _ = writeln!(json, "  \"mode\": \"null_sink\",");
    let _ = writeln!(json, "  \"scale\": {scale},");
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(json, "  \"guest_insts_per_sec\": {agg_ips:.0},");
    let _ = writeln!(json, "  \"total_guest_insts\": {total_v},");
    let _ = writeln!(json, "  \"total_wall_seconds\": {total_wall:.4},");
    let _ = writeln!(json, "  \"ras_hit_rate\": {ras_rate:.4},");
    let _ = writeln!(json, "  \"fragments_verified\": {total_verified},");
    let _ = writeln!(json, "  \"verify_wall_seconds\": {verify_wall:.6},");
    let _ = writeln!(json, "  \"fragments_verified_per_s\": {verified_per_s:.0},");
    let _ = writeln!(json, "  \"evictions\": {total_evictions},");
    let _ = writeln!(json, "  \"smc_invalidations\": {total_smc},");
    let _ = writeln!(json, "  \"demotions\": {total_demotions},");
    let _ = writeln!(json, "  \"interp_fallback_ratio\": {interp_fallback:.6},");
    let _ = writeln!(json, "  \"seam_report\": {{{}}},", total_seam.json_fields());
    let _ = writeln!(json, "  \"workloads\": [");
    for (k, r) in rows.iter().enumerate() {
        let ips = r.v_insts as f64 / r.wall_s.max(1e-9);
        let row_steady = r.interpreted.saturating_sub(r.warmup_interpreted);
        let comma = if k + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"guest_insts_per_sec\": {ips:.0}, \
             \"v_insts\": {}, \"executed\": {}, \"interpreted\": {}, \
             \"dispatches\": {}, \"ras_hits\": {}, \"ras_misses\": {}, \
             \"fragment_entries\": {}, \"fragments\": {}, \
             \"fragments_verified\": {}, \"verify_wall_seconds\": {:.6}, \
             \"evictions\": {}, \"smc_invalidations\": {}, \
             \"demotions\": {}, \"interp_fallback_ratio\": {:.6}, \
             \"wall_seconds\": {:.4}, \"seam_report\": {{{}}}}}{comma}",
            r.name,
            r.v_insts,
            r.executed,
            r.interpreted,
            r.dispatches,
            r.ras_hits,
            r.ras_misses,
            r.fragment_entries,
            r.fragments,
            r.fragments_verified,
            r.verify_nanos as f64 * 1e-9,
            r.evictions,
            r.smc_invalidations,
            r.demotions,
            row_steady as f64 / (row_steady + r.v_insts).max(1) as f64,
            r.wall_s,
            r.seam.json_fields(),
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");

    std::fs::write(&out_path, &json).expect("write report");
    println!("{json}");
    println!("wrote {out_path}: {agg_ips:.2e} guest insts/sec over {total_wall:.2}s");
    println!(
        "seam report: {} fragments, {} resolved edges, {} dead copy-outs, \
         {} redundant seam pairs (region re-formation opportunities)",
        total_seam.fragments,
        total_seam.resolved_edges,
        total_seam.dead_copy_outs,
        total_seam.redundant_seam_pairs,
    );
}
