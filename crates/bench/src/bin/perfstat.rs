//! Functional-engine throughput snapshot → `BENCH_engine.json`.
//!
//! Runs the whole workload suite under the functional engine (no timing
//! model, `NullSink`) and emits a machine-readable JSON report — guest
//! (V-ISA) instructions per second, dispatch counts, dual-RAS hit rate,
//! and the install-time translation-validator overhead (fragments
//! verified per second) — so successive PRs have a perf trajectory to
//! compare against.
//!
//! Usage: `cargo run --release -p ildp-bench --bin perfstat [-- <out.json>]`
//! (`ILDP_SCALE` scales the workloads, default 30; `PERFSTAT_REPS`
//! repetitions per workload, default 3.)

use ildp_core::{ChainPolicy, NullSink, Translator, Vm, VmConfig, VmExit};
use ildp_verifier::{collecting_validator, take_report};
use spec_workloads::suite;
use std::fmt::Write as _;
use std::time::Instant;

struct Row {
    name: &'static str,
    wall_s: f64,
    v_insts: u64,
    executed: u64,
    interpreted: u64,
    dispatches: u64,
    ras_hits: u64,
    ras_misses: u64,
    fragment_entries: u64,
    fragments: u64,
    fragments_verified: u64,
    verify_nanos: u64,
    evictions: u64,
    smc_invalidations: u64,
    demotions: u64,
}

fn run_workload(w: &spec_workloads::Workload, reps: u32) -> Row {
    let config = VmConfig {
        translator: Translator {
            chain: ChainPolicy::SwPredDualRas,
            ..Translator::default()
        },
        validator: Some(collecting_validator),
        ..VmConfig::default()
    };
    let mut row = Row {
        name: w.name,
        wall_s: 0.0,
        v_insts: 0,
        executed: 0,
        interpreted: 0,
        dispatches: 0,
        ras_hits: 0,
        ras_misses: 0,
        fragment_entries: 0,
        fragments: 0,
        fragments_verified: 0,
        verify_nanos: 0,
        evictions: 0,
        smc_invalidations: 0,
        demotions: 0,
    };
    for _ in 0..reps {
        let mut vm = Vm::new(config, &w.program);
        let start = Instant::now();
        let exit = vm.run(w.budget * 2, &mut NullSink);
        row.wall_s += start.elapsed().as_secs_f64();
        match exit {
            VmExit::Halted | VmExit::Budget => {}
            VmExit::Trapped { vaddr, trap, .. } => {
                panic!("{}: unexpected trap at {vaddr:#x}: {trap}", w.name)
            }
            VmExit::Fault { error } => {
                panic!("{}: runtime fault: {error}", w.name)
            }
        }
        let s = vm.stats();
        row.v_insts += s.engine.v_insts;
        row.executed += s.engine.executed;
        row.interpreted += s.interpreted;
        row.dispatches += s.engine.dispatches;
        row.ras_hits += s.engine.ras_hits;
        row.ras_misses += s.engine.ras_misses;
        row.fragment_entries += s.engine.fragment_entries;
        row.fragments += s.fragments;
        row.fragments_verified += s.fragments_verified;
        row.verify_nanos += s.verify_nanos;
        row.evictions += s.evictions;
        row.smc_invalidations += s.smc_invalidations;
        row.demotions += s.demotions;
        let violations = take_report();
        assert!(
            violations.is_empty(),
            "{}: {} verifier violations during a perf run",
            w.name,
            violations.len()
        );
    }
    row
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_engine.json".to_string());
    let scale: u32 = std::env::var("ILDP_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);
    let reps: u32 = std::env::var("PERFSTAT_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);

    let rows: Vec<Row> = suite(scale).iter().map(|w| run_workload(w, reps)).collect();

    let total_wall: f64 = rows.iter().map(|r| r.wall_s).sum();
    let total_v: u64 = rows.iter().map(|r| r.v_insts).sum();
    let total_hits: u64 = rows.iter().map(|r| r.ras_hits).sum();
    let total_misses: u64 = rows.iter().map(|r| r.ras_misses).sum();
    let agg_ips = total_v as f64 / total_wall.max(1e-9);
    let ras_rate = total_hits as f64 / (total_hits + total_misses).max(1) as f64;
    let total_verified: u64 = rows.iter().map(|r| r.fragments_verified).sum();
    let verify_wall: f64 = rows.iter().map(|r| r.verify_nanos).sum::<u64>() as f64 * 1e-9;
    let verified_per_s = total_verified as f64 / verify_wall.max(1e-9);
    let total_interp: u64 = rows.iter().map(|r| r.interpreted).sum();
    let total_evictions: u64 = rows.iter().map(|r| r.evictions).sum();
    let total_smc: u64 = rows.iter().map(|r| r.smc_invalidations).sum();
    let total_demotions: u64 = rows.iter().map(|r| r.demotions).sum();
    let interp_fallback = total_interp as f64 / (total_interp + total_v).max(1) as f64;

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"engine_functional\",");
    let _ = writeln!(json, "  \"mode\": \"null_sink\",");
    let _ = writeln!(json, "  \"scale\": {scale},");
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(json, "  \"guest_insts_per_sec\": {agg_ips:.0},");
    let _ = writeln!(json, "  \"total_guest_insts\": {total_v},");
    let _ = writeln!(json, "  \"total_wall_seconds\": {total_wall:.4},");
    let _ = writeln!(json, "  \"ras_hit_rate\": {ras_rate:.4},");
    let _ = writeln!(json, "  \"fragments_verified\": {total_verified},");
    let _ = writeln!(json, "  \"verify_wall_seconds\": {verify_wall:.6},");
    let _ = writeln!(json, "  \"fragments_verified_per_s\": {verified_per_s:.0},");
    let _ = writeln!(json, "  \"evictions\": {total_evictions},");
    let _ = writeln!(json, "  \"smc_invalidations\": {total_smc},");
    let _ = writeln!(json, "  \"demotions\": {total_demotions},");
    let _ = writeln!(json, "  \"interp_fallback_ratio\": {interp_fallback:.6},");
    let _ = writeln!(json, "  \"workloads\": [");
    for (k, r) in rows.iter().enumerate() {
        let ips = r.v_insts as f64 / r.wall_s.max(1e-9);
        let comma = if k + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"guest_insts_per_sec\": {ips:.0}, \
             \"v_insts\": {}, \"executed\": {}, \"interpreted\": {}, \
             \"dispatches\": {}, \"ras_hits\": {}, \"ras_misses\": {}, \
             \"fragment_entries\": {}, \"fragments\": {}, \
             \"fragments_verified\": {}, \"verify_wall_seconds\": {:.6}, \
             \"evictions\": {}, \"smc_invalidations\": {}, \
             \"demotions\": {}, \"interp_fallback_ratio\": {:.6}, \
             \"wall_seconds\": {:.4}}}{comma}",
            r.name,
            r.v_insts,
            r.executed,
            r.interpreted,
            r.dispatches,
            r.ras_hits,
            r.ras_misses,
            r.fragment_entries,
            r.fragments,
            r.fragments_verified,
            r.verify_nanos as f64 * 1e-9,
            r.evictions,
            r.smc_invalidations,
            r.demotions,
            r.interpreted as f64 / (r.interpreted + r.v_insts).max(1) as f64,
            r.wall_s,
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");

    std::fs::write(&out_path, &json).expect("write report");
    println!("{json}");
    println!("wrote {out_path}: {agg_ips:.2e} guest insts/sec over {total_wall:.2}s");
}
