//! `replaylint` — snapshot/restore and record/replay conformance lint.
//!
//! Three gates, over the full workload suite:
//!
//! 1. **snapshot roundtrip** — every workload × both ISA forms runs to a
//!    mid-run fragment boundary, snapshots (through the wire format), and
//!    restores onto a fresh VM; the resumed run must reach the exact
//!    final architected state (registers, memory digest, console output,
//!    retired count) of an uninterrupted run, with statistics continuing
//!    cumulatively across the seam.
//! 2. **record→replay equality** — one recorded chaos cell per workload
//!    (plus one delayed-install cell) must replay from its envelope to
//!    the identical tally.
//! 3. **async record→scheduled replay** — every workload × both ISA
//!    forms runs with the background translation pipeline enabled; its
//!    recorded install/drop events drive a synchronous VM through
//!    [`Vm::set_install_schedule`], which must reach the bit-identical
//!    architected state, event log, and statistics (wall-clock nanos
//!    excepted).
//! 4. **triage bundle roundtrip** — a seeded miscompile must triage to a
//!    `.repro` bundle that survives its wire format and replays to the
//!    identical divergence.
//!
//! Exits non-zero with a structured JSON failure report on any violation.
//!
//! Usage: `cargo run --release -p ildp-bench --bin replaylint`
//! (`ILDP_SCALE` scales the workloads, default 10.)

use ildp_bench::chaos::{cell_config, chaos_cell_recorded, chaos_replay, interp_reference};
use ildp_bench::harness_scale;
use ildp_bench::lint::{form_name, LintReport};
use ildp_bench::triage::{paced_run_events, triage_run, ReproBundle};
use ildp_core::{ChainPolicy, NullSink, ReplayLog, Sabotage, Snapshot, Vm, VmConfig, VmExit};
use ildp_isa::IsaForm;
use spec_workloads::{suite, Workload};

/// Runs `w` to a mid-run boundary, snapshots through the wire format,
/// restores, and requires the resumed run to finish exactly like an
/// uninterrupted one.
fn snapshot_roundtrip(w: &Workload, form: IsaForm) -> Result<(), String> {
    let cell = format!("{}:{}", w.name, form_name(form));
    let config = VmConfig {
        translator: ildp_core::Translator {
            form,
            ..ildp_core::Translator::default()
        },
        ..VmConfig::default()
    };
    let budget = w.budget * 2;
    let reference = interp_reference(&w.program, budget).map_err(|e| format!("{cell}: {e}"))?;

    // The uninterrupted baseline.
    let mut whole = Vm::new(config, &w.program);
    let whole_exit = whole.run(budget, &mut NullSink);
    if whole_exit != VmExit::Halted {
        return Err(format!("{cell}: baseline run exited {whole_exit:?}"));
    }

    // Pause at (roughly) the midpoint, snapshot, wire-roundtrip, restore.
    let mut vm = Vm::new(config, &w.program);
    let exit = vm.run((reference.insts / 2).max(1), &mut NullSink);
    if exit != VmExit::Budget {
        return Err(format!("{cell}: reached {exit:?} before the midpoint"));
    }
    let snap = vm.snapshot();
    let snap = Snapshot::from_bytes(&snap.to_bytes())
        .map_err(|e| format!("{cell}: snapshot wire roundtrip: {e}"))?;
    let mut resumed =
        Vm::restore(config, &w.program, &snap).map_err(|e| format!("{cell}: restore: {e}"))?;
    let exit = resumed.run(budget, &mut NullSink);
    if exit != VmExit::Halted {
        return Err(format!("{cell}: resumed run exited {exit:?}"));
    }

    if resumed.cpu().registers() != whole.cpu().registers() {
        return Err(format!("{cell}: resumed GPR file diverged"));
    }
    if resumed.memory().content_digest() != whole.memory().content_digest() {
        return Err(format!("{cell}: resumed memory diverged"));
    }
    if resumed.output() != whole.output() {
        return Err(format!("{cell}: resumed console output diverged"));
    }
    if resumed.v_instructions() != whole.v_instructions() {
        return Err(format!(
            "{cell}: resumed retired {} instructions, uninterrupted {}",
            resumed.v_instructions(),
            whole.v_instructions()
        ));
    }
    // Statistics must continue cumulatively across the seam: the resumed
    // run's interpret/execute split covers the whole timeline, so the
    // fallback ratio stays meaningful after restore.
    let s = resumed.stats();
    let total = s.interpreted + s.engine.executed;
    if total < resumed.v_instructions() {
        return Err(format!(
            "{cell}: stats lost continuity across restore \
             (interpreted {} + executed {} < {} retired)",
            s.interpreted,
            s.engine.executed,
            resumed.v_instructions()
        ));
    }
    let ratio = s.interp_fallback_ratio();
    if !(0.0..=1.0).contains(&ratio) {
        return Err(format!("{cell}: fallback ratio {ratio} out of range"));
    }
    Ok(())
}

/// One recorded chaos cell must replay to the identical tally.
fn record_replay(w: &Workload, seed: u64, delay: Option<u64>) -> Result<(), String> {
    let (form, chain) = (IsaForm::Modified, ChainPolicy::SwPredDualRas);
    let cell = format!("{}:{}:{}:{}", w.name, form_name(form), chain.label(), seed);
    let (res, log) = chaos_cell_recorded(w, form, chain, seed, delay);
    let report = res.map_err(|e| format!("{cell}: recorded run failed: {e}"))?;
    let replayed = chaos_replay(w, form, chain, &log, delay)
        .map_err(|e| format!("{cell}: replay failed where recording passed: {e}"))?;
    if replayed != report {
        return Err(format!("{cell}: replayed tally differs from recorded run"));
    }
    Ok(())
}

/// A run recorded with the background pipeline enabled must replay
/// bit-identically on a synchronous VM driven by the recorded install
/// schedule — the triage path for truly asynchronous runs.
fn async_schedule_replay(w: &Workload, form: IsaForm) -> Result<(), String> {
    let cell = format!("{}:{}:async", w.name, form_name(form));
    let config = VmConfig {
        translator: ildp_core::Translator {
            form,
            ..ildp_core::Translator::default()
        },
        ..VmConfig::default()
    };
    let budget = w.budget * 2;
    let mut recorded = Vm::new(config, &w.program);
    let exit = recorded.run(budget, &mut NullSink);
    if exit != VmExit::Halted {
        return Err(format!("{cell}: recorded run exited {exit:?}"));
    }
    let events = recorded.take_bg_events();

    let mut replayed = Vm::new(
        VmConfig {
            async_translate: false,
            ..config
        },
        &w.program,
    );
    replayed.set_install_schedule(&events);
    let exit = replayed.run(budget, &mut NullSink);
    if exit != VmExit::Halted {
        return Err(format!("{cell}: scheduled replay exited {exit:?}"));
    }
    if replayed.cpu().registers() != recorded.cpu().registers() {
        return Err(format!("{cell}: replayed GPR file diverged"));
    }
    if replayed.memory().content_digest() != recorded.memory().content_digest() {
        return Err(format!("{cell}: replayed memory diverged"));
    }
    if replayed.output() != recorded.output() {
        return Err(format!("{cell}: replayed console output diverged"));
    }
    if replayed.v_instructions() != recorded.v_instructions() {
        return Err(format!(
            "{cell}: replayed retired {} instructions, recorded {}",
            replayed.v_instructions(),
            recorded.v_instructions()
        ));
    }
    if replayed.bg_events() != events.as_slice() {
        return Err(format!(
            "{cell}: replayed install/drop event log differs from the recording"
        ));
    }
    // Statistics must match bit-for-bit once wall-clock timing (the one
    // nondeterministic quantity) is masked out.
    let mut want = recorded.stats().clone();
    let mut got = replayed.stats().clone();
    for s in [&mut want, &mut got] {
        s.verify_nanos = 0;
        s.translate_stall_nanos = 0;
        s.translate_wall_nanos = 0;
    }
    if got != want {
        return Err(format!(
            "{cell}: replayed statistics differ from the recording"
        ));
    }
    Ok(())
}

/// A seeded miscompile must produce a bundle that replays to the exact
/// bundled divergence.
fn triage_bundle_roundtrip(w: &Workload) -> Result<(), String> {
    let (form, chain) = (IsaForm::Modified, ChainPolicy::SwPredDualRas);
    let budget = w.budget * 2;
    let mut vm = Vm::new(cell_config(form, chain), &w.program);
    vm.run(budget, &mut NullSink);
    let mut vstarts: Vec<u64> = vm.cache().fragments().map(|f| f.vstart).collect();
    vstarts.sort_unstable();
    let interval = (w.budget / 128).max(100);
    for vs in vstarts {
        let log = ReplayLog {
            seed: 0,
            sabotage: vec![Sabotage {
                vstart: vs,
                slot: 0,
                imm_xor: 1,
            }],
            events: paced_run_events(budget, 500),
        };
        let Some(result) = triage_run(&w.program, form, chain, &log, interval, w.name)
            .map_err(|e| format!("{}: triage: {e}", w.name))?
        else {
            continue; // dead immediate; try the next fragment
        };
        let bundle = ReproBundle::from_bytes(&result.bundle.to_bytes())
            .map_err(|e| format!("{}: bundle wire roundtrip: {e}", w.name))?;
        if bundle != result.bundle {
            return Err(format!("{}: bundle changed across wire roundtrip", w.name));
        }
        let replayed = bundle
            .replay()
            .map_err(|e| format!("{}: bundle replay: {e}", w.name))?
            .ok_or_else(|| format!("{}: bundle replay found no divergence", w.name))?;
        if replayed != bundle.expected {
            return Err(format!(
                "{}: bundle replay diverged from the bundled expectation",
                w.name
            ));
        }
        return Ok(());
    }
    Err(format!(
        "{}: no sabotage candidate produced a divergence",
        w.name
    ))
}

fn main() {
    let scale = harness_scale();
    let suite = suite(scale);
    let mut report = LintReport::new("replaylint");
    let mut checks = 0u64;

    for w in &suite {
        for form in [IsaForm::Basic, IsaForm::Modified] {
            checks += 1;
            match snapshot_roundtrip(w, form) {
                Ok(()) => println!(
                    "{:<10} {:>8} snapshot roundtrip ok",
                    w.name,
                    form_name(form)
                ),
                Err(e) => {
                    println!("FAIL {e}");
                    report.fail(format!("{}:{}:snapshot", w.name, form_name(form)), vec![e]);
                }
            }
        }
        checks += 1;
        match record_replay(w, 4242, None) {
            Ok(()) => println!("{:<10} record/replay ok", w.name),
            Err(e) => {
                println!("FAIL {e}");
                report.fail(format!("{}:record_replay", w.name), vec![e]);
            }
        }
        checks += 1;
        match record_replay(w, 4242, Some(96)) {
            Ok(()) => println!("{:<10} record/replay (delayed install) ok", w.name),
            Err(e) => {
                println!("FAIL {e}");
                report.fail(format!("{}:record_replay_delayed", w.name), vec![e]);
            }
        }
        for form in [IsaForm::Basic, IsaForm::Modified] {
            checks += 1;
            match async_schedule_replay(w, form) {
                Ok(()) => println!(
                    "{:<10} {:>8} async record/scheduled replay ok",
                    w.name,
                    form_name(form)
                ),
                Err(e) => {
                    println!("FAIL {e}");
                    report.fail(format!("{}:{}:async", w.name, form_name(form)), vec![e]);
                }
            }
        }
    }
    // One triage bundle roundtrip (gzip): the full failing-run → bisect →
    // localize → bundle → replay pipeline.
    checks += 1;
    match triage_bundle_roundtrip(&suite[0]) {
        Ok(()) => println!("{:<10} triage bundle roundtrip ok", suite[0].name),
        Err(e) => {
            println!("FAIL {e}");
            report.fail(format!("{}:triage_bundle", suite[0].name), vec![e]);
        }
    }

    println!(
        "\nreplaylint: {checks} checks, {} failures",
        report.failures.len()
    );
    report.extra("checks", checks);
    report.finish_or_exit();
}
