//! `replaylint` — snapshot/restore and record/replay conformance lint.
//!
//! Three gates, over the full workload suite:
//!
//! 1. **snapshot roundtrip** — every workload × both ISA forms runs to a
//!    mid-run fragment boundary, snapshots (through the wire format), and
//!    restores onto a fresh VM; the resumed run must reach the exact
//!    final architected state (registers, memory digest, console output,
//!    retired count) of an uninterrupted run, with statistics continuing
//!    cumulatively across the seam.
//! 2. **record→replay equality** — one recorded chaos cell per workload
//!    must replay from its envelope to the identical tally.
//! 3. **triage bundle roundtrip** — a seeded miscompile must triage to a
//!    `.repro` bundle that survives its wire format and replays to the
//!    identical divergence.
//!
//! Exits non-zero with a structured JSON failure report on any violation.
//!
//! Usage: `cargo run --release -p ildp-bench --bin replaylint`
//! (`ILDP_SCALE` scales the workloads, default 10.)

use ildp_bench::chaos::{cell_config, chaos_cell_recorded, chaos_replay, interp_reference};
use ildp_bench::triage::{paced_run_events, triage_run, ReproBundle};
use ildp_bench::{harness_scale, json_escape};
use ildp_core::{ChainPolicy, NullSink, ReplayLog, Sabotage, Snapshot, Vm, VmConfig, VmExit};
use ildp_isa::IsaForm;
use spec_workloads::{suite, Workload};

fn form_name(form: IsaForm) -> &'static str {
    match form {
        IsaForm::Basic => "basic",
        IsaForm::Modified => "modified",
    }
}

/// Runs `w` to a mid-run boundary, snapshots through the wire format,
/// restores, and requires the resumed run to finish exactly like an
/// uninterrupted one.
fn snapshot_roundtrip(w: &Workload, form: IsaForm) -> Result<(), String> {
    let cell = format!("{}:{}", w.name, form_name(form));
    let config = VmConfig {
        translator: ildp_core::Translator {
            form,
            ..ildp_core::Translator::default()
        },
        ..VmConfig::default()
    };
    let budget = w.budget * 2;
    let reference = interp_reference(&w.program, budget).map_err(|e| format!("{cell}: {e}"))?;

    // The uninterrupted baseline.
    let mut whole = Vm::new(config, &w.program);
    let whole_exit = whole.run(budget, &mut NullSink);
    if whole_exit != VmExit::Halted {
        return Err(format!("{cell}: baseline run exited {whole_exit:?}"));
    }

    // Pause at (roughly) the midpoint, snapshot, wire-roundtrip, restore.
    let mut vm = Vm::new(config, &w.program);
    let exit = vm.run((reference.insts / 2).max(1), &mut NullSink);
    if exit != VmExit::Budget {
        return Err(format!("{cell}: reached {exit:?} before the midpoint"));
    }
    let snap = vm.snapshot();
    let snap = Snapshot::from_bytes(&snap.to_bytes())
        .map_err(|e| format!("{cell}: snapshot wire roundtrip: {e}"))?;
    let mut resumed =
        Vm::restore(config, &w.program, &snap).map_err(|e| format!("{cell}: restore: {e}"))?;
    let exit = resumed.run(budget, &mut NullSink);
    if exit != VmExit::Halted {
        return Err(format!("{cell}: resumed run exited {exit:?}"));
    }

    if resumed.cpu().registers() != whole.cpu().registers() {
        return Err(format!("{cell}: resumed GPR file diverged"));
    }
    if resumed.memory().content_digest() != whole.memory().content_digest() {
        return Err(format!("{cell}: resumed memory diverged"));
    }
    if resumed.output() != whole.output() {
        return Err(format!("{cell}: resumed console output diverged"));
    }
    if resumed.v_instructions() != whole.v_instructions() {
        return Err(format!(
            "{cell}: resumed retired {} instructions, uninterrupted {}",
            resumed.v_instructions(),
            whole.v_instructions()
        ));
    }
    // Statistics must continue cumulatively across the seam: the resumed
    // run's interpret/execute split covers the whole timeline, so the
    // fallback ratio stays meaningful after restore.
    let s = resumed.stats();
    let total = s.interpreted + s.engine.executed;
    if total < resumed.v_instructions() {
        return Err(format!(
            "{cell}: stats lost continuity across restore \
             (interpreted {} + executed {} < {} retired)",
            s.interpreted,
            s.engine.executed,
            resumed.v_instructions()
        ));
    }
    let ratio = s.interp_fallback_ratio();
    if !(0.0..=1.0).contains(&ratio) {
        return Err(format!("{cell}: fallback ratio {ratio} out of range"));
    }
    Ok(())
}

/// One recorded chaos cell must replay to the identical tally.
fn record_replay(w: &Workload, seed: u64) -> Result<(), String> {
    let (form, chain) = (IsaForm::Modified, ChainPolicy::SwPredDualRas);
    let cell = format!("{}:{}:{}:{}", w.name, form_name(form), chain.label(), seed);
    let (res, log) = chaos_cell_recorded(w, form, chain, seed);
    let report = res.map_err(|e| format!("{cell}: recorded run failed: {e}"))?;
    let replayed = chaos_replay(w, form, chain, &log)
        .map_err(|e| format!("{cell}: replay failed where recording passed: {e}"))?;
    if replayed != report {
        return Err(format!("{cell}: replayed tally differs from recorded run"));
    }
    Ok(())
}

/// A seeded miscompile must produce a bundle that replays to the exact
/// bundled divergence.
fn triage_bundle_roundtrip(w: &Workload) -> Result<(), String> {
    let (form, chain) = (IsaForm::Modified, ChainPolicy::SwPredDualRas);
    let budget = w.budget * 2;
    let mut vm = Vm::new(cell_config(form, chain), &w.program);
    vm.run(budget, &mut NullSink);
    let mut vstarts: Vec<u64> = vm.cache().fragments().map(|f| f.vstart).collect();
    vstarts.sort_unstable();
    let interval = (w.budget / 128).max(100);
    for vs in vstarts {
        let log = ReplayLog {
            seed: 0,
            sabotage: vec![Sabotage {
                vstart: vs,
                slot: 0,
                imm_xor: 1,
            }],
            events: paced_run_events(budget, 500),
        };
        let Some(result) = triage_run(&w.program, form, chain, &log, interval, w.name)
            .map_err(|e| format!("{}: triage: {e}", w.name))?
        else {
            continue; // dead immediate; try the next fragment
        };
        let bundle = ReproBundle::from_bytes(&result.bundle.to_bytes())
            .map_err(|e| format!("{}: bundle wire roundtrip: {e}", w.name))?;
        if bundle != result.bundle {
            return Err(format!("{}: bundle changed across wire roundtrip", w.name));
        }
        let replayed = bundle
            .replay()
            .map_err(|e| format!("{}: bundle replay: {e}", w.name))?
            .ok_or_else(|| format!("{}: bundle replay found no divergence", w.name))?;
        if replayed != bundle.expected {
            return Err(format!(
                "{}: bundle replay diverged from the bundled expectation",
                w.name
            ));
        }
        return Ok(());
    }
    Err(format!(
        "{}: no sabotage candidate produced a divergence",
        w.name
    ))
}

fn main() {
    let scale = harness_scale();
    let suite = suite(scale);
    let mut failures: Vec<String> = Vec::new();
    let mut checks = 0u64;

    for w in &suite {
        for form in [IsaForm::Basic, IsaForm::Modified] {
            checks += 1;
            match snapshot_roundtrip(w, form) {
                Ok(()) => println!(
                    "{:<10} {:>8} snapshot roundtrip ok",
                    w.name,
                    form_name(form)
                ),
                Err(e) => {
                    println!("FAIL {e}");
                    failures.push(e);
                }
            }
        }
        checks += 1;
        match record_replay(w, 4242) {
            Ok(()) => println!("{:<10} record/replay ok", w.name),
            Err(e) => {
                println!("FAIL {e}");
                failures.push(e);
            }
        }
    }
    // One triage bundle roundtrip (gzip): the full failing-run → bisect →
    // localize → bundle → replay pipeline.
    checks += 1;
    match triage_bundle_roundtrip(&suite[0]) {
        Ok(()) => println!("{:<10} triage bundle roundtrip ok", suite[0].name),
        Err(e) => {
            println!("FAIL {e}");
            failures.push(e);
        }
    }

    println!("\nreplaylint: {checks} checks, {} failures", failures.len());
    if !failures.is_empty() {
        println!("replaylint: FAILURE REPORT");
        let items: Vec<String> = failures
            .iter()
            .map(|f| format!("\"{}\"", json_escape(f)))
            .collect();
        println!(
            "{{\"tool\":\"replaylint\",\"scale\":{scale},\"failures\":[{}]}}",
            items.join(",")
        );
        std::process::exit(1);
    }
}
