//! Figure 5: relative dynamic instruction count of straightened + chained
//! code versus the original Alpha program.
//!
//! Paper shape: benchmarks with frequent indirect jumps (`perlbmk`,
//! `gcc`-like) expand noticeably even with software prediction and the
//! dual-address RAS; call-by-`BSR` benchmarks barely expand.

use ildp_bench::{harness_scale, run_straightened, Table};
use ildp_core::ChainPolicy;
use spec_workloads::suite;

fn main() {
    let scale = harness_scale();
    let mut table = Table::new(
        "Figure 5 — relative instruction count (straightened / original)",
        &["no_pred", "sw_pred.no_ras", "sw_pred.ras"],
    );
    for w in suite(scale) {
        let rows: Vec<f64> = [
            ChainPolicy::NoPred,
            ChainPolicy::SwPred,
            ChainPolicy::SwPredDualRas,
        ]
        .iter()
        .map(|&chain| {
            run_straightened(&w, chain)
                .straighten
                .expect("straightened stats")
                .relative_instruction_count()
        })
        .collect();
        table.row(w.name, &rows);
    }
    print!("{}", table.render());
}
