//! Ablation: superblock-formation parameters.
//!
//! The paper reports that a maximum superblock size of 50 "is not large
//! enough to provide performance benefits from code straightening" and
//! settles on 200 with a hot threshold of 50. This sweep regenerates that
//! observation: ILDP V-ISA IPC (modified form) across maximum superblock
//! sizes and thresholds.

use ildp_bench::{harness_scale, Table};
use ildp_core::{ProfileConfig, Translator, Vm, VmConfig};
use ildp_isa::IsaForm;
use ildp_uarch::{IldpConfig, IldpModel, TimingModel};
use spec_workloads::{suite, Workload};

fn run(w: &Workload, max_superblock: usize, threshold: u32) -> f64 {
    let mut model = IldpModel::new(IldpConfig::default());
    let config = VmConfig {
        translator: Translator {
            form: IsaForm::Modified,
            ..Translator::default()
        },
        profile: ProfileConfig {
            threshold,
            max_superblock,
            ..ProfileConfig::default()
        },
        ..VmConfig::default()
    };
    let mut vm = Vm::new(config, &w.program);
    vm.run(w.budget * 2, &mut model);
    model.finish().v_ipc()
}

fn main() {
    let scale = harness_scale();
    let mut size_table = Table::new(
        "Ablation — maximum superblock size (threshold 50)",
        &["max 25", "max 50", "max 100", "max 200 (paper)", "max 400"],
    )
    .precision(3);
    for w in suite(scale) {
        let row: Vec<f64> = [25usize, 50, 100, 200, 400]
            .iter()
            .map(|&m| run(&w, m, 50))
            .collect();
        size_table.row(w.name, &row);
    }
    print!("{}", size_table.render());

    let mut thr_table = Table::new(
        "Ablation — hot threshold (max superblock 200)",
        &["thr 5", "thr 20", "thr 50 (paper)", "thr 200"],
    )
    .precision(3);
    for w in suite(scale) {
        let row: Vec<f64> = [5u32, 20, 50, 200]
            .iter()
            .map(|&t| run(&w, 200, t))
            .collect();
        thr_table.row(w.name, &row);
    }
    print!("{}", thr_table.render());
}
