//! `lintall` — runs the whole lint family and aggregates exit status.
//!
//! Invokes the sibling `vlint`, `chaoslint`, `replaylint`, and
//! `flowlint` binaries (from this executable's own directory, so a
//! release build drives release lints) and exits non-zero if any of
//! them fails. Each tool reports failures in the shared JSON schema
//! documented in `ildp_bench::lint`.
//!
//! Usage: `cargo run --release -p ildp-bench --bin lintall`
//! (`ILDP_SCALE` applies to every tool, default 10.)

use std::process::Command;

/// The lint family, in execution order.
const TOOLS: [&str; 4] = ["vlint", "chaoslint", "replaylint", "flowlint"];

fn main() {
    let exe = std::env::current_exe().expect("current executable path");
    let dir = exe.parent().expect("executable directory").to_path_buf();
    let mut failed: Vec<&str> = Vec::new();
    for tool in TOOLS {
        let path = dir.join(tool);
        if !path.exists() {
            eprintln!(
                "lintall: {tool} not found at {} — build it first \
                 (cargo build --release -p ildp-bench --bins)",
                path.display()
            );
            failed.push(tool);
            continue;
        }
        println!("==== {tool} ====");
        let status = Command::new(&path).status();
        match status {
            Ok(s) if s.success() => println!("==== {tool}: PASS ====\n"),
            Ok(s) => {
                println!("==== {tool}: FAIL ({s}) ====\n");
                failed.push(tool);
            }
            Err(e) => {
                println!("==== {tool}: failed to run: {e} ====\n");
                failed.push(tool);
            }
        }
    }
    if failed.is_empty() {
        println!("lintall: all {} lints passed", TOOLS.len());
    } else {
        println!("lintall: FAILED: {}", failed.join(", "));
        std::process::exit(1);
    }
}
