//! Table 2: translated-instruction statistics per benchmark for both
//! I-ISA forms — relative dynamic instruction count, percentage of copy
//! instructions, relative static instruction bytes — plus the §4.2
//! translation overhead (Alpha instructions of DBT work per translated
//! Alpha instruction).
//!
//! Paper averages: dynamic B 1.60 / M 1.36; copies B 17.7% / M 3.1%;
//! static bytes B 1.17 / M 1.07; overhead ≈ 1,125.

use ildp_bench::{harness_scale, run_dbt_functional, Table};
use ildp_isa::IsaForm;
use spec_workloads::suite;

fn main() {
    let scale = harness_scale();
    let mut table = Table::new(
        "Table 2 — translated instruction statistics",
        &[
            "dyn B", "dyn M", "copy% B", "copy% M", "bytes B", "bytes M", "DBT inst",
        ],
    );
    for w in suite(scale) {
        let basic = run_dbt_functional(&w, IsaForm::Basic);
        let modified = run_dbt_functional(&w, IsaForm::Modified);
        // Static byte expansion: translated bytes over 4 bytes per source
        // instruction.
        let static_ratio =
            |s: &ildp_core::VmStats, bytes: f64| bytes / (4.0 * s.translated_src_insts as f64);
        // Total code bytes come from the emitted sizes; recompute from the
        // per-form size model via emitted counts is not enough, so the VM
        // exposes translated code bytes through its cache. Here we use
        // the emitted static instruction bytes already accumulated.
        let _ = static_ratio;
        table.row(
            w.name,
            &[
                basic.dynamic_expansion(),
                modified.dynamic_expansion(),
                basic.copy_pct(),
                modified.copy_pct(),
                basic.static_code_ratio(),
                modified.static_code_ratio(),
                basic.overhead_per_translated_inst(),
            ],
        );
    }
    print!("{}", table.render());
    let avg = table.averages();
    println!(
        "\npaper averages: dyn B 1.60 / M 1.36; copy% B 17.7 / M 3.1; \
         bytes B 1.17 / M 1.07; DBT ≈1125"
    );
    println!(
        "measured:       dyn B {:.2} / M {:.2}; copy% B {:.1} / M {:.1}; \
         bytes B {:.2} / M {:.2}; DBT ≈{:.0}",
        avg[0], avg[1], avg[2], avg[3], avg[4], avg[5], avg[6]
    );
}
