//! Figure 7: output register value usage ("globalness") statistics over
//! dynamic instructions in superblocks, for the basic and modified ISA
//! forms.
//!
//! Paper shape: for the modified ISA about 25% of dynamic values are
//! global (live-out + communication); adding the basic ISA's forced
//! copies (`local→global`, `no user→global`) raises the share needing GPR
//! writes to about 40%.

use ildp_bench::{harness_scale, run_dbt_functional, Table};
use ildp_core::UsageCat;
use ildp_isa::IsaForm;
use spec_workloads::suite;

fn pct(stats: &ildp_core::VmStats, cats: &[UsageCat]) -> f64 {
    let total = stats.engine.categories_total();
    if total == 0 {
        return 0.0;
    }
    let n: u64 = cats.iter().map(|c| stats.engine.category(*c)).sum();
    n as f64 * 100.0 / total as f64
}

/// Static global share under oracle boundaries (no saves at side exits),
/// the paper's [28] comparison point.
fn oracle_global_pct(stats: &ildp_core::VmStats) -> f64 {
    let total = stats.oracle_categories.total();
    if total == 0 {
        return 0.0;
    }
    let global: u64 = stats
        .oracle_categories
        .iter()
        .filter(|(c, _)| c.is_global())
        .map(|(_, n)| n)
        .sum();
    global as f64 * 100.0 / total as f64
}

fn main() {
    let scale = harness_scale();
    let columns = [
        "no user", "local", "temp", "global", "local>g", "nouser>g", "spill",
    ];
    for form in [IsaForm::Basic, IsaForm::Modified] {
        let mut table = Table::new(
            format!("Figure 7 — output register usage, {form:?} ISA (% of values)"),
            &columns,
        )
        .precision(1);
        let mut global_with_copies = Vec::new();
        let mut oracle = Vec::new();
        for w in suite(scale) {
            let s = run_dbt_functional(&w, form);
            oracle.push(oracle_global_pct(&s));
            let row = [
                pct(&s, &[UsageCat::NoUser]),
                pct(&s, &[UsageCat::Local]),
                pct(&s, &[UsageCat::Temp]),
                pct(&s, &[UsageCat::LiveOut, UsageCat::Communication]),
                pct(&s, &[UsageCat::LocalToGlobal]),
                pct(&s, &[UsageCat::NoUserToGlobal]),
                pct(&s, &[UsageCat::Spill]),
            ];
            global_with_copies.push(row[3] + row[4] + row[5] + row[6]);
            table.row(w.name, &row);
        }
        print!("{}", table.render());
        let avg: f64 = global_with_copies.iter().sum::<f64>() / global_with_copies.len() as f64;
        let oracle_avg: f64 = oracle.iter().sum::<f64>() / oracle.len() as f64;
        println!(
            "total needing GPR availability: {avg:.1}% \
             (paper: ≈40% basic incl. copies, ≈25% modified); \
             oracle boundaries: {oracle_avg:.1}% static (paper [28]: ≈20%)\n"
        );
    }
}
