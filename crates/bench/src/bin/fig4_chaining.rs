//! Figure 4: branch/jump mispredictions per 1,000 instructions for the
//! chaining implementations — `original` vs `no_pred` vs `sw_pred.no_ras`
//! vs `sw_pred.ras` — on the conventional superscalar.
//!
//! Paper shape: `no_pred` is worst (every indirect jump funnels through
//! one dispatch-code BTB entry); software prediction roughly halves it
//! but stays well above the original; the dual-address RAS brings it back
//! to nearly the original level.

use ildp_bench::{harness_scale, run_original, run_straightened, Table};
use ildp_core::ChainPolicy;
use spec_workloads::suite;

fn main() {
    let scale = harness_scale();
    let mut table = Table::new(
        "Figure 4 — mispredictions per 1,000 V-ISA instructions",
        &["original", "no_pred", "sw_pred.no_ras", "sw_pred.ras"],
    );
    for w in suite(scale) {
        let original = run_original(&w, true).timing;
        let no_pred = run_straightened(&w, ChainPolicy::NoPred).timing;
        let sw = run_straightened(&w, ChainPolicy::SwPred).timing;
        let ras = run_straightened(&w, ChainPolicy::SwPredDualRas).timing;
        table.row(
            w.name,
            &[
                original.mispredicts_per_kilo_v_inst(),
                no_pred.mispredicts_per_kilo_v_inst(),
                sw.mispredicts_per_kilo_v_inst(),
                ras.mispredicts_per_kilo_v_inst(),
            ],
        );
    }
    print!("{}", table.render());
    let avg = table.averages();
    println!(
        "\nshape check: no_pred {:.1} > sw_pred {:.1} > ras {:.1} vs original {:.1}",
        avg[1], avg[2], avg[3], avg[0]
    );
}
