//! Figure 9: ILDP IPC sensitivity to machine parameters — accumulator
//! count, replicated L1 D-cache size, global communication latency, and
//! processing-element count (modified ISA).
//!
//! Paper shape: 8 accumulators gain ≈11% over 4; the quarter-size D-cache
//! barely matters at SPEC test scale; 2-cycle global communication costs
//! only ≈3.4%; 6 PEs lose ≈5% to 8 PEs while 4 PEs lag by ≈18%.

use ildp_bench::{harness_scale, run_ildp, IldpParams, Table};
use ildp_isa::IsaForm;
use spec_workloads::suite;

fn main() {
    let scale = harness_scale();
    let configs: [(&str, IldpParams); 6] = [
        (
            "8acc/8PE/32K/0c",
            IldpParams {
                acc_count: 8,
                ..IldpParams::default()
            },
        ),
        ("4acc/8PE/32K/0c", IldpParams::default()),
        (
            "4acc/8PE/8K/0c",
            IldpParams {
                big_dcache: false,
                ..IldpParams::default()
            },
        ),
        (
            "4acc/8PE/32K/2c",
            IldpParams {
                comm_latency: 2,
                ..IldpParams::default()
            },
        ),
        (
            "4acc/6PE/32K/0c",
            IldpParams {
                pe_count: 6,
                ..IldpParams::default()
            },
        ),
        (
            "4acc/4PE/32K/0c",
            IldpParams {
                pe_count: 4,
                ..IldpParams::default()
            },
        ),
    ];
    let names: Vec<&str> = configs.iter().map(|(n, _)| *n).collect();
    let mut table = Table::new("Figure 9 — ILDP IPC over machine parameters", &names);
    for w in suite(scale) {
        let row: Vec<f64> = configs
            .iter()
            .map(|(_, p)| run_ildp(&w, IsaForm::Modified, *p).timing.v_ipc())
            .collect();
        table.row(w.name, &row);
    }
    print!("{}", table.render());
    let avg = table.averages();
    println!(
        "\nshape check vs baseline (4acc/8PE/32K/0c = {:.3}):\n\
         \u{20}  8 accumulators: {:+.1}% (paper +11%)\n\
         \u{20}  8KB D-cache:    {:+.1}% (paper ≈0%)\n\
         \u{20}  2-cycle comm:   {:+.1}% (paper -3.4%)\n\
         \u{20}  6 PEs:          {:+.1}% (paper -5%)\n\
         \u{20}  4 PEs:          {:+.1}% (paper -18%)",
        avg[1],
        (avg[0] / avg[1] - 1.0) * 100.0,
        (avg[2] / avg[1] - 1.0) * 100.0,
        (avg[3] / avg[1] - 1.0) * 100.0,
        (avg[4] / avg[1] - 1.0) * 100.0,
        (avg[5] / avg[1] - 1.0) * 100.0,
    );
}
