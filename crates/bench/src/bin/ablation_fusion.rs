//! Ablation: the fused-memory extension (paper §4.5).
//!
//! The paper points at the memory-op decomposition as the largest
//! contributor to instruction-count expansion and suggests not splitting
//! loads as a future optimization ("this puts more pressure on decoding
//! hardware but nonetheless reduces pressure on fetch and reorder buffer
//! mechanisms"). This ablation measures exactly that trade: dynamic
//! expansion and ILDP V-ISA IPC with and without fusion, both forms.

use ildp_bench::{harness_scale, Table};
use ildp_core::{ChainPolicy, Translator, Vm, VmConfig};
use ildp_isa::IsaForm;
use ildp_uarch::{IldpConfig, IldpModel, TimingModel};
use spec_workloads::{suite, Workload};

fn run(w: &Workload, form: IsaForm, fuse: bool) -> (f64, f64) {
    let mut model = IldpModel::new(IldpConfig::default());
    let config = VmConfig {
        translator: Translator {
            form,
            chain: ChainPolicy::SwPredDualRas,
            acc_count: 4,
            fuse_memory: fuse,
        },
        ..VmConfig::default()
    };
    let mut vm = Vm::new(config, &w.program);
    vm.run(w.budget * 2, &mut model);
    let stats = model.finish();
    (vm.stats().dynamic_expansion(), stats.v_ipc())
}

fn main() {
    let scale = harness_scale();
    let mut table = Table::new(
        "Ablation — fused displaced memory ops (paper §4.5)",
        &[
            "exp M split",
            "exp M fused",
            "ipc M split",
            "ipc M fused",
            "ipc B split",
            "ipc B fused",
        ],
    );
    for w in suite(scale) {
        let (m_exp_s, m_ipc_s) = run(&w, IsaForm::Modified, false);
        let (m_exp_f, m_ipc_f) = run(&w, IsaForm::Modified, true);
        let (_, b_ipc_s) = run(&w, IsaForm::Basic, false);
        let (_, b_ipc_f) = run(&w, IsaForm::Basic, true);
        table.row(
            w.name,
            &[m_exp_s, m_exp_f, m_ipc_s, m_ipc_f, b_ipc_s, b_ipc_f],
        );
    }
    print!("{}", table.render());
    let avg = table.averages();
    println!(
        "\nfusion cuts modified-form expansion {:.2} -> {:.2} and changes V-IPC {:+.1}%",
        avg[0],
        avg[1],
        (avg[3] / avg[2] - 1.0) * 100.0
    );
}
