//! Table 1: the microarchitecture parameters of the two simulated
//! machines, as configured in `ildp-uarch` defaults.

use ildp_uarch::{IldpConfig, SuperscalarConfig};

fn main() {
    let ss = SuperscalarConfig::default();
    let ildp = IldpConfig::default();
    println!("== Table 1 — microarchitecture parameters ==\n");
    println!("                         superscalar            ILDP");
    println!(
        "branch prediction        {}K-entry {}-bit gshare, {}-entry RAS, {}-entry {}-way BTB",
        ss.predictors.gshare_entries / 1024,
        ss.predictors.history_bits,
        ss.predictors.ras_depth,
        ss.predictors.btb_entries,
        ss.predictors.btb_ways
    );
    println!(
        "redirect latency         {} cycles (misfetch and mispredict)",
        ss.redirect_penalty
    );
    println!(
        "I-cache                  {} KB direct-mapped, {}-byte lines",
        ss.icache.size_bytes / 1024,
        ss.icache.line_bytes
    );
    println!(
        "D-cache                  {} KB {}-way, {}-cycle    {} KB {}-way (replicated option: 8 KB 2-way)",
        ss.dcache.size_bytes / 1024,
        ss.dcache.ways,
        ss.latencies.l1_hit,
        ildp.dcache.size_bytes / 1024,
        ildp.dcache.ways
    );
    println!(
        "L2                       {} MB {}-way, {}-cycle; memory {}-cycle",
        ss.l2.size_bytes / 1024 / 1024,
        ss.l2.ways,
        ss.latencies.l2_hit,
        ss.latencies.memory
    );
    println!(
        "reorder buffer           {} entries             {} entries",
        ss.rob_size, ildp.rob_size
    );
    println!(
        "decode/retire width      {}                       {}",
        ss.width, ildp.width
    );
    println!(
        "issue                    {}-wide OoO window {}   {} in-order PE FIFOs",
        ss.fus, ss.rob_size, ildp.pe_count
    );
    println!(
        "communication latency    0                       {} cycles (0 or 2 evaluated)",
        ildp.comm_latency
    );
}
