//! Experiment runners: one function per simulated configuration.

use ildp_core::{
    trace_original, ChainPolicy, ProfileConfig, StraightenStats, StraightenedVm, Translator, Vm,
    VmConfig, VmExit, VmStats,
};
use ildp_isa::IsaForm;
use ildp_uarch::{
    CacheConfig, IldpConfig, IldpModel, PredictorConfig, SuperscalarConfig, SuperscalarModel,
    TimingModel, TimingStats,
};
use spec_workloads::Workload;

/// Result of one (workload × configuration) cell.
#[derive(Clone, Debug)]
pub struct CellResult {
    /// Timing statistics from the processor model.
    pub timing: TimingStats,
    /// DBT statistics (absent for original-program runs).
    pub vm: Option<VmStats>,
    /// Straightened-system statistics, when that system ran.
    pub straighten: Option<StraightenStats>,
}

fn expect_clean(name: &str, exit: &VmExit) {
    match exit {
        VmExit::Halted | VmExit::Budget => {}
        VmExit::Trapped { vaddr, trap, .. } => {
            panic!("{name}: unexpected trap at {vaddr:#x}: {trap}")
        }
        VmExit::Fault { error } => {
            panic!("{name}: runtime fault: {error}")
        }
    }
}

/// Runs the **original** Alpha program on the conventional superscalar
/// (the paper's "original" simulator). `use_ras` toggles the hardware
/// return-address stack (Figure 6's with/without-RAS bars).
pub fn run_original(w: &Workload, use_ras: bool) -> CellResult {
    let config = SuperscalarConfig {
        predictors: PredictorConfig {
            use_ras,
            ..PredictorConfig::default()
        },
        ..SuperscalarConfig::default()
    };
    let mut model = SuperscalarModel::new(config);
    let (exit, _count) = trace_original(&w.program, w.budget * 2, &mut model);
    expect_clean(w.name, &exit);
    CellResult {
        timing: model.finish(),
        vm: None,
        straighten: None,
    }
}

/// Runs the **code-straightening-only** system on the superscalar model
/// with the given chaining policy (Figures 4, 5, 6).
pub fn run_straightened(w: &Workload, chain: ChainPolicy) -> CellResult {
    let predictors = PredictorConfig {
        // Returns exist in the trace only under the dual-RAS policy; the
        // other policies lower returns to compare-and-branch/dispatch.
        dual_ras: chain.uses_dual_ras(),
        use_ras: chain.uses_dual_ras(),
        ..PredictorConfig::default()
    };
    let config = SuperscalarConfig {
        predictors,
        ..SuperscalarConfig::default()
    };
    let mut model = SuperscalarModel::new(config);
    let mut vm = StraightenedVm::new(chain, ProfileConfig::default(), &w.program);
    let exit = vm.run(w.budget * 2, &mut model);
    expect_clean(w.name, &exit);
    CellResult {
        timing: model.finish(),
        vm: None,
        straighten: Some(*vm.stats()),
    }
}

/// ILDP machine parameters for one Figure 8/9 configuration.
#[derive(Clone, Copy, Debug)]
pub struct IldpParams {
    /// Logical accumulators (4 or 8).
    pub acc_count: usize,
    /// Processing elements (4, 6 or 8).
    pub pe_count: usize,
    /// Replicated L1 D-cache: `true` = 32 KB 4-way, `false` = 8 KB 2-way.
    pub big_dcache: bool,
    /// Global communication latency in cycles (0 or 2).
    pub comm_latency: u64,
}

impl Default for IldpParams {
    /// The Figure 8 configuration: 8 PEs, 32 KB L1D, 0-cycle global
    /// communication, four logical accumulators.
    fn default() -> IldpParams {
        IldpParams {
            acc_count: 4,
            pe_count: 8,
            big_dcache: true,
            comm_latency: 0,
        }
    }
}

/// Runs the full co-designed VM (DBT + ILDP timing model).
pub fn run_ildp(w: &Workload, form: IsaForm, params: IldpParams) -> CellResult {
    let uarch = IldpConfig {
        pe_count: params.pe_count,
        comm_latency: params.comm_latency,
        dcache: if params.big_dcache {
            CacheConfig::dcache_32k()
        } else {
            CacheConfig::dcache_8k()
        },
        ..IldpConfig::default()
    };
    let vm_config = VmConfig {
        translator: Translator {
            form,
            chain: ChainPolicy::SwPredDualRas,
            acc_count: params.acc_count,
            fuse_memory: false,
        },
        // The paper's figures model translation as an in-line pipeline
        // stage; synchronous mode keeps the reported statistics exactly
        // reproducible run-to-run.
        async_translate: false,
        ..VmConfig::default()
    };
    let mut model = IldpModel::new(uarch);
    let mut vm = Vm::new(vm_config, &w.program);
    let exit = vm.run(w.budget * 2, &mut model);
    expect_clean(w.name, &exit);
    CellResult {
        timing: model.finish(),
        vm: Some(vm.stats().clone()),
        straighten: None,
    }
}

/// Runs the DBT functionally only (no timing model), for Table 2 and
/// Figure 7 statistics.
pub fn run_dbt_functional(w: &Workload, form: IsaForm) -> VmStats {
    let vm_config = VmConfig {
        translator: Translator {
            form,
            chain: ChainPolicy::SwPredDualRas,
            acc_count: 4,
            fuse_memory: false,
        },
        // Table 2 / Figure 7 statistics must be bit-reproducible.
        async_translate: false,
        ..VmConfig::default()
    };
    let mut vm = Vm::new(vm_config, &w.program);
    let exit = vm.run(w.budget * 2, &mut ildp_core::NullSink);
    expect_clean(w.name, &exit);
    vm.stats().clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec_workloads::by_name;

    #[test]
    fn original_run_produces_timing() {
        let w = by_name("gzip", 1).unwrap();
        let r = run_original(&w, true);
        assert!(r.timing.instructions > 10_000);
        assert!(r.timing.ipc() > 0.2 && r.timing.ipc() <= 4.0);
    }

    #[test]
    fn straightened_run_produces_timing_and_stats() {
        let w = by_name("eon", 1).unwrap();
        let r = run_straightened(&w, ChainPolicy::SwPredDualRas);
        let s = r.straighten.unwrap();
        assert!(s.fragments > 0);
        assert!(r.timing.v_instructions > 1_000);
    }

    #[test]
    fn ildp_run_produces_v_ipc() {
        let w = by_name("gzip", 1).unwrap();
        let r = run_ildp(&w, IsaForm::Modified, IldpParams::default());
        assert!(r.timing.v_ipc() > 0.2, "v-ipc {}", r.timing.v_ipc());
        assert!(
            r.timing.ipc() >= r.timing.v_ipc(),
            "native I-IPC must be at least V-IPC"
        );
        assert!(r.vm.unwrap().fragments > 0);
    }

    #[test]
    fn functional_dbt_stats_have_expansion() {
        let w = by_name("crafty", 1).unwrap();
        let basic = run_dbt_functional(&w, IsaForm::Basic);
        let modified = run_dbt_functional(&w, IsaForm::Modified);
        assert!(basic.dynamic_expansion() > modified.dynamic_expansion());
    }
}
