//! Shared seeded-miscompile corpus and injection machinery.
//!
//! One place holds the exemplar superblocks (the paper's Figure 2 loop
//! plus return/call/cmov/two-source blocks covering every exit flavor)
//! and the per-rule tampering functions that turn a correct translation
//! into a specific miscompile. The verifier's A/P/C/E detection tests
//! (`crates/bench/tests/seeded_miscompiles.rs`) and `flowlint`'s F-rule
//! detection phase both draw from here, so every rule family exercises
//! the same injection machinery.

use alpha_isa::{BranchOp, Inst, JumpKind, MemOp, Operand, OperateOp, Reg};
use ildp_core::{
    ChainPolicy, CollectedFlow, IMeta, SbEnd, SbInst, Superblock, TranslatedCode, TranslationCache,
    Translator, DISPATCH_IADDR,
};
use ildp_isa::{ASrc, Acc, IInst, ITarget, IsaForm};
use ildp_verifier::{flow, Violation};

fn r(n: u8) -> Reg {
    Reg::new(n)
}

fn seq(vaddr: u64, inst: Inst) -> SbInst {
    SbInst {
        vaddr,
        inst,
        flow: CollectedFlow::Sequential,
    }
}

/// The paper's Figure 2 inner loop: loads, ALU work, a backward taken
/// branch ending the block.
pub fn fig2_superblock() -> Superblock {
    let base = 0x1_0000u64;
    let mk = |i: u64, inst: Inst| seq(base + i * 4, inst);
    let mut insts = vec![
        mk(
            0,
            Inst::Mem {
                op: MemOp::Ldbu,
                ra: r(3),
                rb: r(16),
                disp: 0,
            },
        ),
        mk(
            1,
            Inst::Operate {
                op: OperateOp::Subl,
                ra: r(17),
                rb: Operand::Lit(1),
                rc: r(17),
            },
        ),
        mk(
            2,
            Inst::Mem {
                op: MemOp::Lda,
                ra: r(16),
                rb: r(16),
                disp: 1,
            },
        ),
        mk(
            3,
            Inst::Operate {
                op: OperateOp::Xor,
                ra: r(1),
                rb: Operand::Reg(r(3)),
                rc: r(3),
            },
        ),
        mk(
            4,
            Inst::Operate {
                op: OperateOp::Srl,
                ra: r(1),
                rb: Operand::Lit(8),
                rc: r(1),
            },
        ),
        mk(
            5,
            Inst::Operate {
                op: OperateOp::And,
                ra: r(3),
                rb: Operand::Lit(0xff),
                rc: r(3),
            },
        ),
        mk(
            6,
            Inst::Operate {
                op: OperateOp::S8addq,
                ra: r(3),
                rb: Operand::Reg(r(0)),
                rc: r(3),
            },
        ),
        mk(
            7,
            Inst::Mem {
                op: MemOp::Ldq,
                ra: r(3),
                rb: r(3),
                disp: 0,
            },
        ),
        mk(
            8,
            Inst::Operate {
                op: OperateOp::Xor,
                ra: r(3),
                rb: Operand::Reg(r(1)),
                rc: r(1),
            },
        ),
    ];
    insts.push(SbInst {
        vaddr: base + 9 * 4,
        inst: Inst::Branch {
            op: BranchOp::Bne,
            ra: r(17),
            disp: -10,
        },
        flow: CollectedFlow::CondTaken {
            taken_target: base,
            fallthrough: base + 10 * 4,
        },
    });
    Superblock {
        start: base,
        insts,
        end: SbEnd::BackwardTakenBranch {
            target: base,
            fallthrough: base + 10 * 4,
        },
    }
}

/// A block ending in a return (exercises every indirect-exit flavor).
pub fn ret_superblock() -> Superblock {
    let base = 0x2_0000u64;
    let insts = vec![
        seq(
            base,
            Inst::Operate {
                op: OperateOp::Addq,
                ra: r(1),
                rb: Operand::Lit(8),
                rc: r(1),
            },
        ),
        SbInst {
            vaddr: base + 4,
            inst: Inst::Jump {
                kind: JumpKind::Ret,
                ra: r(31),
                rb: r(26),
                hint: 0,
            },
            flow: CollectedFlow::Indirect {
                kind: JumpKind::Ret,
                target: 0x3_0000,
            },
        },
    ];
    Superblock {
        start: base,
        insts,
        end: SbEnd::IndirectJump,
    }
}

/// A block ending in an indirect call (`jsr`): return-address save plus
/// software target prediction.
pub fn jsr_superblock() -> Superblock {
    let base = 0x4_0000u64;
    let insts = vec![
        seq(
            base,
            Inst::Operate {
                op: OperateOp::Addq,
                ra: r(9),
                rb: Operand::Lit(1),
                rc: r(9),
            },
        ),
        SbInst {
            vaddr: base + 4,
            inst: Inst::Jump {
                kind: JumpKind::Jsr,
                ra: r(26),
                rb: r(27),
                hint: 0,
            },
            flow: CollectedFlow::Indirect {
                kind: JumpKind::Jsr,
                target: 0x5_0000,
            },
        },
    ];
    Superblock {
        start: base,
        insts,
        end: SbEnd::IndirectJump,
    }
}

/// A block containing conditional-move and store traffic plus a halt.
pub fn cmov_store_superblock() -> Superblock {
    let base = 0x6_0000u64;
    let insts = vec![
        seq(
            base,
            Inst::Operate {
                op: OperateOp::Cmoveq,
                ra: r(2),
                rb: Operand::Reg(r(3)),
                rc: r(4),
            },
        ),
        seq(
            base + 4,
            Inst::Mem {
                op: MemOp::Stq,
                ra: r(4),
                rb: r(30),
                disp: 16,
            },
        ),
        seq(
            base + 8,
            Inst::CallPal {
                func: alpha_isa::PalFunc::Halt,
            },
        ),
    ];
    Superblock {
        start: base,
        insts,
        end: SbEnd::Halt,
    }
}

/// Two live-in GPR sources force a planned copy-from-GPR.
pub fn two_gpr_superblock() -> Superblock {
    let base = 0x7_0000u64;
    let insts = vec![seq(
        base,
        Inst::Operate {
            op: OperateOp::Addq,
            ra: r(1),
            rb: Operand::Reg(r(2)),
            rc: r(3),
        },
    )];
    Superblock {
        start: base,
        insts,
        end: SbEnd::Cycle { next: base + 4 },
    }
}

/// Every corpus superblock, for clean-matrix sweeps.
pub fn corpus() -> Vec<Superblock> {
    vec![
        fig2_superblock(),
        ret_superblock(),
        jsr_superblock(),
        cmov_store_superblock(),
        two_gpr_superblock(),
    ]
}

/// Translates `sb` under the standard 4-accumulator translator.
pub fn translate(
    sb: &Superblock,
    form: IsaForm,
    chain: ChainPolicy,
) -> (TranslatedCode, Translator) {
    let tr = Translator {
        form,
        chain,
        acc_count: 4,
        fuse_memory: false,
    };
    (tr.translate(sb), tr)
}

/// One seeded miscompile at the translation level: a correct translation
/// of a corpus superblock plus a tamper that a specific rule must catch.
pub struct SeededMiscompile {
    /// The rule expected to fire.
    pub rule: &'static str,
    /// Short descriptive label for reports.
    pub name: &'static str,
    /// Builds the source superblock.
    pub superblock: fn() -> Superblock,
    /// ISA form to translate under.
    pub form: IsaForm,
    /// Chain policy to translate under.
    pub chain: ChainPolicy,
    /// Injects the miscompile into the translation.
    pub tamper: fn(&mut TranslatedCode),
}

impl SeededMiscompile {
    /// Translates, tampers, and returns the superblock + poisoned code
    /// plus the translator used.
    pub fn build(&self) -> (Superblock, TranslatedCode, Translator) {
        let sb = (self.superblock)();
        let (mut code, tr) = translate(&sb, self.form, self.chain);
        (self.tamper)(&mut code);
        (sb, code, tr)
    }
}

fn find<F: Fn(&IInst) -> bool>(code: &TranslatedCode, pred: F, what: &str) -> usize {
    code.insts
        .iter()
        .position(pred)
        .unwrap_or_else(|| panic!("corpus translation lacks {what}"))
}

/// Seeded miscompiles for the single-fragment verifier families
/// (A/P/C/E), one per representative rule.
pub fn verifier_seeds() -> Vec<SeededMiscompile> {
    vec![
        SeededMiscompile {
            rule: "A01",
            name: "wrong accumulator on an op",
            superblock: fig2_superblock,
            form: IsaForm::Modified,
            chain: ChainPolicy::SwPredDualRas,
            tamper: |code| {
                let k = find(code, |i| matches!(i, IInst::Op { .. }), "an op");
                if let IInst::Op { acc, .. } = &mut code.insts[k] {
                    *acc = Acc::new((acc.index() as u8 + 1) % 4);
                }
            },
        },
        SeededMiscompile {
            rule: "A05",
            name: "wrong pre-copy source register",
            superblock: two_gpr_superblock,
            form: IsaForm::Basic,
            chain: ChainPolicy::SwPredDualRas,
            tamper: |code| {
                let k = find(
                    code,
                    |i| matches!(i, IInst::CopyFromGpr { .. }),
                    "a copy-from-GPR",
                );
                if let IInst::CopyFromGpr { src, .. } = &mut code.insts[k] {
                    *src = Reg::new(13);
                }
            },
        },
        SeededMiscompile {
            rule: "P01",
            name: "dropped modified-form destination",
            superblock: fig2_superblock,
            form: IsaForm::Modified,
            chain: ChainPolicy::SwPredDualRas,
            tamper: |code| {
                let k = find(
                    code,
                    |i| matches!(i, IInst::Op { dst: Some(_), .. }),
                    "an op with a destination",
                );
                if let IInst::Op { dst, .. } = &mut code.insts[k] {
                    *dst = None;
                }
            },
        },
        SeededMiscompile {
            rule: "P04",
            name: "missing recovery entry",
            superblock: fig2_superblock,
            form: IsaForm::Basic,
            chain: ChainPolicy::SwPredDualRas,
            tamper: |code| {
                let (&k, _) = code
                    .recovery
                    .iter()
                    .find(|(_, es)| !es.is_empty())
                    .expect("basic-form fig2 has recovery state at the ldq");
                code.recovery.get_mut(&k).unwrap().pop();
            },
        },
        SeededMiscompile {
            rule: "P05",
            name: "spurious recovery table in modified form",
            superblock: fig2_superblock,
            form: IsaForm::Modified,
            chain: ChainPolicy::SwPredDualRas,
            tamper: |code| {
                let k = find(code, |i| i.is_pei(), "a PEI");
                code.recovery
                    .entry(k as u32)
                    .or_default()
                    .push(ildp_core::RecoveryEntry {
                        reg: Reg::new(3),
                        acc: Acc::new(0),
                    });
            },
        },
        SeededMiscompile {
            rule: "C02",
            name: "broken software-prediction compare",
            superblock: jsr_superblock,
            form: IsaForm::Modified,
            chain: ChainPolicy::SwPred,
            tamper: |code| {
                let k = find(
                    code,
                    |i| {
                        matches!(
                            i,
                            IInst::Op {
                                op: OperateOp::Cmpeq,
                                ..
                            }
                        )
                    },
                    "the sw-pred compare",
                );
                if let IInst::Op { op, .. } = &mut code.insts[k] {
                    *op = OperateOp::Cmpule;
                }
            },
        },
        SeededMiscompile {
            rule: "C03",
            name: "wrong dual-RAS return address",
            superblock: jsr_superblock,
            form: IsaForm::Modified,
            chain: ChainPolicy::SwPredDualRas,
            tamper: |code| {
                let k = find(
                    code,
                    |i| matches!(i, IInst::PushDualRas { .. }),
                    "a dual-RAS push",
                );
                if let IInst::PushDualRas { iret, .. } = &mut code.insts[k] {
                    *iret = ITarget::Addr(0);
                }
            },
        },
        SeededMiscompile {
            rule: "C04",
            name: "unbacked predicted return",
            superblock: ret_superblock,
            form: IsaForm::Modified,
            chain: ChainPolicy::SwPredDualRas,
            tamper: |code| {
                let k = find(
                    code,
                    |i| matches!(i, IInst::Dispatch { .. }),
                    "the dispatch fallback",
                );
                if let IInst::Dispatch { src, .. } = &mut code.insts[k] {
                    *src = ASrc::Gpr(Reg::new(7));
                }
            },
        },
        SeededMiscompile {
            rule: "E03",
            name: "wrong symbolic exit target",
            superblock: fig2_superblock,
            form: IsaForm::Modified,
            chain: ChainPolicy::SwPredDualRas,
            tamper: |code| {
                let k = find(
                    code,
                    |i| matches!(i, IInst::CallTranslator { .. }),
                    "a call-translator exit",
                );
                if let IInst::CallTranslator { vtarget } = &mut code.insts[k] {
                    *vtarget += 4;
                }
            },
        },
        SeededMiscompile {
            rule: "E01",
            name: "wrong copy-out destination",
            superblock: fig2_superblock,
            form: IsaForm::Basic,
            chain: ChainPolicy::SwPredDualRas,
            tamper: |code| {
                let k = find(
                    code,
                    |i| matches!(i, IInst::CopyToGpr { .. }),
                    "a copy-to-GPR",
                );
                if let IInst::CopyToGpr { dst, .. } = &mut code.insts[k] {
                    *dst = Reg::new(9);
                }
            },
        },
        SeededMiscompile {
            rule: "E04",
            name: "wrong store displacement",
            superblock: cmov_store_superblock,
            form: IsaForm::Modified,
            chain: ChainPolicy::SwPredDualRas,
            tamper: |code| {
                let k = find(code, |i| matches!(i, IInst::Store { .. }), "a store");
                if let IInst::Store { disp, .. } = &mut code.insts[k] {
                    *disp += 8;
                }
            },
        },
    ]
}

/// Seeded miscompiles for the translation-level flow rules (F01–F04,
/// checked by `flow::check_translation`).
pub fn flow_translation_seeds() -> Vec<SeededMiscompile> {
    vec![
        SeededMiscompile {
            rule: "F01",
            name: "global communication never reaches the register",
            superblock: fig2_superblock,
            form: IsaForm::Basic,
            chain: ChainPolicy::SwPredDualRas,
            tamper: |code| {
                // Retarget a copy-out so its global value's register is
                // never defined in the fragment.
                let k = find(
                    code,
                    |i| matches!(i, IInst::CopyToGpr { .. }),
                    "a copy-to-GPR",
                );
                if let IInst::CopyToGpr { dst, .. } = &mut code.insts[k] {
                    *dst = Reg::new(25);
                }
            },
        },
        SeededMiscompile {
            rule: "F02",
            name: "copy-in of a register the source never supplies",
            superblock: two_gpr_superblock,
            form: IsaForm::Basic,
            chain: ChainPolicy::SwPredDualRas,
            tamper: |code| {
                let k = find(
                    code,
                    |i| matches!(i, IInst::CopyFromGpr { .. }),
                    "a copy-from-GPR",
                );
                if let IInst::CopyFromGpr { src, .. } = &mut code.insts[k] {
                    *src = Reg::new(13);
                }
            },
        },
        SeededMiscompile {
            rule: "F03",
            name: "accumulator read before any write in the fragment",
            superblock: fig2_superblock,
            form: IsaForm::Basic,
            chain: ChainPolicy::SwPredDualRas,
            tamper: |code| {
                // A copy-out of an accumulator no instruction has written
                // yet: its live range would cross the fragment seam.
                code.insts.insert(
                    1,
                    IInst::CopyToGpr {
                        acc: Acc::new(3),
                        dst: Reg::new(25),
                    },
                );
            },
        },
        SeededMiscompile {
            rule: "F04",
            name: "exit arm targeting a V-address outside the superblock",
            superblock: fig2_superblock,
            form: IsaForm::Modified,
            chain: ChainPolicy::SwPredDualRas,
            tamper: |code| {
                let k = find(
                    code,
                    |i| matches!(i, IInst::CallTranslator { .. }),
                    "a call-translator exit",
                );
                if let IInst::CallTranslator { vtarget } = &mut code.insts[k] {
                    *vtarget += 0x9990;
                }
            },
        },
        SeededMiscompile {
            rule: "F04",
            name: "unreachable exit arm after the terminal transfer",
            superblock: fig2_superblock,
            form: IsaForm::Modified,
            chain: ChainPolicy::SwPredDualRas,
            tamper: |code| {
                code.insts.push(IInst::CallTranslator { vtarget: 0x1_0000 });
                code.meta.push(IMeta::chain(0x1_0000));
            },
        },
    ]
}

/// One seeded miscompile at the cache or trace level: builds a poisoned
/// installed cache (or trace) and returns the violations the checker
/// found. The named rule must be among them.
pub struct CacheSeed {
    /// The rule expected to fire.
    pub rule: &'static str,
    /// Short descriptive label for reports.
    pub name: &'static str,
    /// Builds the poisoned state and runs the whole-cache / dynamic
    /// checker over it.
    pub run: fn() -> Vec<Violation>,
}

fn leaf(vstart: u64) -> (Vec<IInst>, Vec<IMeta>) {
    let insts = vec![IInst::SetVpcBase { vaddr: vstart }, IInst::Halt];
    let meta = insts.iter().map(|_| IMeta::chain(vstart)).collect();
    (insts, meta)
}

fn install(cache: &mut TranslationCache, vstart: u64, insts: Vec<IInst>) -> ildp_core::FragmentId {
    let meta = insts.iter().map(|_| IMeta::chain(vstart)).collect();
    cache.install(
        vstart,
        IsaForm::Modified,
        insts,
        meta,
        1,
        std::collections::HashMap::new(),
    )
}

/// Seeded miscompiles for the installed-cache and dynamic flow rules
/// (F04 link poison, F05 push poison, F06 trace mismatch).
pub fn flow_cache_seeds() -> Vec<CacheSeed> {
    vec![
        CacheSeed {
            rule: "F04",
            name: "resolved link redirected to a wrong but valid entry",
            run: || {
                let mut cache = TranslationCache::new();
                let aid = install(
                    &mut cache,
                    0x1000,
                    vec![
                        IInst::SetVpcBase { vaddr: 0x1000 },
                        IInst::CallTranslator { vtarget: 0x2000 },
                    ],
                );
                let (b, _) = leaf(0x2000);
                install(&mut cache, 0x2000, b);
                let (c, _) = leaf(0x3000);
                let cid = install(&mut cache, 0x3000, c);
                let c_start = cache.fragment(cid).istart;
                let fa = cache.fragment_mut(aid);
                fa.insts[1] = IInst::Branch {
                    target: ITarget::Addr(c_start),
                };
                fa.links[1] = Some(cid);
                flow::check_cache(&cache, None).0
            },
        },
        CacheSeed {
            rule: "F05",
            name: "dual-RAS push resolved to the wrong fragment",
            run: || {
                let mut cache = TranslationCache::new();
                let aid = install(
                    &mut cache,
                    0x1000,
                    vec![
                        IInst::PushDualRas {
                            vret: 0x2000,
                            iret: ITarget::Addr(DISPATCH_IADDR),
                        },
                        IInst::Halt,
                    ],
                );
                let (b, _) = leaf(0x2000);
                install(&mut cache, 0x2000, b);
                let (c, _) = leaf(0x3000);
                let cid = install(&mut cache, 0x3000, c);
                let c_start = cache.fragment(cid).istart;
                if let IInst::PushDualRas { iret, .. } = &mut cache.fragment_mut(aid).insts[0] {
                    *iret = ITarget::Addr(c_start);
                }
                flow::check_cache(&cache, Some(ChainPolicy::SwPredDualRas)).0
            },
        },
        CacheSeed {
            rule: "F05",
            name: "dual-RAS push under a non-dual-RAS policy",
            run: || {
                let mut cache = TranslationCache::new();
                install(
                    &mut cache,
                    0x1000,
                    vec![
                        IInst::PushDualRas {
                            vret: 0x2000,
                            iret: ITarget::Addr(DISPATCH_IADDR),
                        },
                        IInst::Halt,
                    ],
                );
                flow::check_cache(&cache, Some(ChainPolicy::SwPred)).0
            },
        },
        CacheSeed {
            rule: "F06",
            name: "retired trace disagreeing with the installed summary",
            run: || {
                let mut cache = TranslationCache::new();
                let fid = install(
                    &mut cache,
                    0x1000,
                    vec![
                        IInst::SetVpcBase { vaddr: 0x1000 },
                        IInst::CopyFromGpr {
                            acc: Acc::new(0),
                            src: Reg::new(2),
                        },
                        IInst::CopyToGpr {
                            acc: Acc::new(0),
                            dst: Reg::new(3),
                        },
                        IInst::Halt,
                    ],
                );
                let trace = cache.fragment(fid).templates.clone();
                if let IInst::CopyFromGpr { src, .. } = &mut cache.fragment_mut(fid).insts[1] {
                    *src = Reg::new(7);
                }
                flow::check_dynamic(&cache, &trace)
            },
        },
        CacheSeed {
            rule: "F06",
            name: "runtime accumulator read crossing a fragment seam",
            run: || {
                let mut cache = TranslationCache::new();
                let fid = install(
                    &mut cache,
                    0x1000,
                    vec![
                        IInst::SetVpcBase { vaddr: 0x1000 },
                        IInst::CopyFromGpr {
                            acc: Acc::new(0),
                            src: Reg::new(2),
                        },
                        IInst::CopyToGpr {
                            acc: Acc::new(0),
                            dst: Reg::new(3),
                        },
                        IInst::Halt,
                    ],
                );
                let templates = cache.fragment(fid).templates.clone();
                // Entry, then the copy-out retires without the
                // accumulator having been written since fragment entry.
                let trace = vec![templates[0], templates[2]];
                flow::check_dynamic(&cache, &trace)
            },
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_translates_under_every_configuration() {
        for sb in corpus() {
            for form in [IsaForm::Basic, IsaForm::Modified] {
                for chain in [
                    ChainPolicy::NoPred,
                    ChainPolicy::SwPred,
                    ChainPolicy::SwPredDualRas,
                ] {
                    let (code, _) = translate(&sb, form, chain);
                    assert!(!code.insts.is_empty());
                }
            }
        }
    }
}
