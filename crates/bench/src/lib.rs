//! # ildp-bench — experiment harness
//!
//! Reusable experiment runners behind the per-figure binaries. Each
//! function runs one (workload × configuration) cell of the paper's
//! evaluation and returns the timing/translation statistics the figures
//! and tables are built from. See DESIGN.md §4 for the experiment index
//! and EXPERIMENTS.md for paper-vs-measured results.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chaos;
pub mod lint;
pub mod miscompile;
pub mod report;
pub mod runners;
pub mod throughput;
pub mod triage;

pub use report::*;
pub use runners::*;

/// Default workload scale for harness runs (`ILDP_SCALE` overrides).
pub fn harness_scale() -> u32 {
    std::env::var("ILDP_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10)
}
