//! Automatic divergence triage: from a failing recorded run to a
//! minimized, deterministic `.repro` bundle.
//!
//! Given a program, a recorded nondeterministic envelope
//! ([`ReplayLog`] — run budgets, injection schedule, and standing
//! [`Sabotage`] miscompile rules), the engine:
//!
//! 1. **monitors** — replays the envelope while taking periodic
//!    checkpoints ([`Snapshot`]) at fragment boundaries, then compares
//!    the final architected state against an instruction-accurate
//!    reference interpreter ([`RefInterp`]);
//! 2. **bisects** — on divergence, binary-searches the checkpoints for
//!    the last one whose architected state still matches the reference
//!    (divergence is assumed persistent: corrupted architected state does
//!    not self-correct, which holds for translator miscompiles);
//! 3. **localizes** — restores a fresh VM from that last-good checkpoint
//!    and runs boundary-by-boundary in lockstep with a reference started
//!    *from the same checkpoint* (valid precisely because the checkpoint
//!    was verified good), reporting the first divergent fragment
//!    execution and the register/memory diff at its exit boundary.
//!
//! The result is packaged as a [`ReproBundle`] — program slice, entry
//! checkpoint, trimmed envelope, and expected divergence — whose
//! [`replay`](ReproBundle::replay) re-runs the identical localization
//! procedure, so the reported divergence reproduces bit-identically from
//! the bundle alone.
//!
//! Count-anchored lockstep relies on [`Vm::v_instructions`] being a pure
//! function of the architected position: architectural NOPs are excluded
//! from the count in every execution mode (interpreted, collected, and
//! translated), so the reference can advance to exactly the VM's count
//! and compare state, no matter how much of either timeline ran
//! translated.

use crate::chaos::{apply_event, audit_and_heal, cell_config, ChaosReport};
use alpha_isa::{step, AlignPolicy, Control, CpuState, DecodeCache, Memory, Program};
use ildp_core::wire::Cursor;
use ildp_core::{
    wire, ChainPolicy, NullSink, ReplayEvent, ReplayLog, Sabotage, Snapshot, SnapshotError, Vm,
    VmConfig, VmExit,
};
use ildp_isa::{ASrc, IInst, IsaForm};
use std::collections::HashSet;
use std::fmt;

/// Magic number of the `.repro` bundle wire format (`"ILPB"`).
pub const REPRO_MAGIC: u32 = 0x4250_4C49;

/// Current `.repro` bundle format version.
pub const REPRO_VERSION: u32 = 1;

/// An instruction-accurate reference interpreter that can start either
/// from program entry or from a verified-good checkpoint, and advance to
/// an exact retired-instruction count for lockstep comparison.
pub struct RefInterp {
    decoded: DecodeCache,
    cpu: CpuState,
    mem: Memory,
    output: Vec<u8>,
    v: u64,
    halted: bool,
}

impl RefInterp {
    /// A reference positioned at program entry.
    pub fn from_start(program: &Program) -> RefInterp {
        let (cpu, mem) = program.load();
        RefInterp {
            decoded: DecodeCache::new(program),
            cpu,
            mem,
            output: Vec::new(),
            v: 0,
            halted: false,
        }
    }

    /// A reference positioned at a checkpoint. Only sound when the
    /// checkpoint's architected state is known to match the reference
    /// timeline — the triage engine guarantees this by bisecting to the
    /// last checkpoint it verified against a from-start reference.
    pub fn from_snapshot(program: &Program, snap: &Snapshot) -> RefInterp {
        RefInterp {
            decoded: DecodeCache::new(program),
            cpu: CpuState::with_registers(snap.pc, &snap.regs),
            mem: snap.to_memory(),
            output: snap.output.clone(),
            v: snap.v_insts,
            halted: false,
        }
    }

    /// Steps until exactly `target` instructions have retired (or the
    /// program halts first — check [`halted`](RefInterp::halted)).
    pub fn advance_to(&mut self, target: u64) -> Result<(), String> {
        while self.v < target && !self.halted {
            let pc = self.cpu.pc;
            let inst = self
                .decoded
                .fetch(pc)
                .map_err(|t| format!("reference fetch trap at {pc:#x}: {t}"))?;
            let outcome = step(&mut self.cpu, &mut self.mem, inst, AlignPolicy::Enforce)
                .map_err(|t| format!("reference trap at {pc:#x}: {t}"))?;
            // Mirror `Vm::v_instructions`: architectural NOPs retire but
            // never count, in any execution mode.
            if !inst.is_nop() {
                self.v += 1;
            }
            if let Some(b) = outcome.output {
                self.output.push(b);
            }
            if outcome.control == Control::Halt {
                self.halted = true;
            }
        }
        Ok(())
    }

    /// Instructions retired so far.
    pub fn v(&self) -> u64 {
        self.v
    }

    /// Whether the program has halted.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Current architected register file.
    pub fn regs(&self) -> [u64; 32] {
        self.cpu.registers()
    }

    /// Current architected pc.
    pub fn pc(&self) -> u64 {
        self.cpu.pc
    }

    /// Order-independent digest of current memory contents.
    pub fn mem_digest(&self) -> u64 {
        self.mem.content_digest()
    }

    /// Console output so far.
    pub fn output(&self) -> &[u8] {
        &self.output
    }
}

/// XORs `rule.imm_xor` into the first immediate operand at or after
/// `rule.slot` (wrapping) of a fragment's code — the modelled translator
/// miscompile. Structurally the fragment stays valid (C01–C07 still
/// pass); semantically it is wrong. Returns whether an immediate was
/// found.
fn sabotage_insts(insts: &mut [IInst], rule: &Sabotage) -> bool {
    let n = insts.len();
    if n == 0 {
        return false;
    }
    for k in 0..n {
        let i = (rule.slot as usize + k) % n;
        match &mut insts[i] {
            IInst::Op {
                rhs: ASrc::Imm(imm),
                ..
            }
            | IInst::AddHigh { imm, .. } => {
                *imm = (*imm as u16 ^ rule.imm_xor) as i16;
                return true;
            }
            _ => {}
        }
    }
    false
}

/// Paces a run as a series of `Run` budget pauses `pace` retired
/// V-instructions apart, ending at `budget`. A standing sabotage rule
/// lands at the first pause after its victim fragment installs, so
/// pacing the envelope this finely makes the landing time a property of
/// the *log* (and therefore of any bundle trimmed from it) rather than
/// of whatever checkpoint interval a triage run happens to choose.
pub fn paced_run_events(budget: u64, pace: u64) -> Vec<ReplayEvent> {
    let pace = pace.max(1);
    let mut events: Vec<ReplayEvent> = (1..=budget / pace)
        .map(|k| ReplayEvent::Run { budget: k * pace })
        .collect();
    if !budget.is_multiple_of(pace) || events.is_empty() {
        events.push(ReplayEvent::Run { budget });
    }
    events
}

/// Drives a VM through a recorded envelope: applies standing sabotage
/// rules at every pause (the first pause after a matching fragment
/// installs corrupts it, tracked per cache slot so retranslations are
/// re-corrupted), and applies the logged injection events once the run
/// has reached their recorded anchor.
pub struct LogDriver<'a, 'p> {
    /// The driven VM.
    pub vm: Vm<'p>,
    log: &'a ReplayLog,
    pos: usize,
    corrupted: HashSet<u32>,
    report: ChaosReport,
}

impl<'a, 'p> LogDriver<'a, 'p> {
    /// Wraps a VM (fresh or restored) for log-driven execution. When the
    /// envelope carries background-install events (it was recorded from
    /// an asynchronous or delayed-install run), the VM is switched to the
    /// recorded install schedule so translations land at the logged
    /// count anchors regardless of this build's translation mode.
    pub fn new(mut vm: Vm<'p>, log: &'a ReplayLog) -> LogDriver<'a, 'p> {
        let has_bg = log.events.iter().any(|ev| {
            matches!(
                ev,
                ReplayEvent::BgInstall { .. } | ReplayEvent::BgDrop { .. }
            )
        });
        if has_bg {
            vm.set_install_schedule(&log.events);
        }
        let mut d = LogDriver {
            vm,
            log,
            pos: 0,
            corrupted: HashSet::new(),
            report: ChaosReport::default(),
        };
        d.apply_sabotage();
        d
    }

    /// Injection tally accumulated while draining events.
    pub fn report(&self) -> ChaosReport {
        self.report
    }

    fn apply_sabotage(&mut self) {
        for rule in &self.log.sabotage {
            let Some(id) = self.vm.cache().lookup(rule.vstart) else {
                continue;
            };
            if self.corrupted.contains(&id.0) {
                continue;
            }
            let f = self.vm.cache_mut().fragment_mut(id);
            if sabotage_insts(&mut f.insts, rule) {
                self.corrupted.insert(id.0);
            }
        }
    }

    /// Applies every event whose governing `Run` anchor the VM has
    /// reached. In the recorded timeline events fired at the pause ending
    /// `Run {{ budget }}`, i.e. at the first boundary with
    /// `v_insts >= budget`; replay applies them at the first *pause* past
    /// that point, which is the same boundary when the caller paces runs
    /// by the same budgets, and a deterministic refinement when stepping
    /// boundary-by-boundary.
    fn drain_events(&mut self) {
        while let Some(&ReplayEvent::Run { budget }) = self.log.events.get(self.pos) {
            if budget > self.vm.v_instructions() {
                break;
            }
            self.pos += 1;
            while let Some(ev) = self.log.events.get(self.pos) {
                match ev {
                    ReplayEvent::Run { .. } => break,
                    ReplayEvent::AuditHeal => {
                        let flagged = audit_and_heal(&mut self.vm, &mut self.report);
                        // Healed slots may be retranslated later; let the
                        // standing rules re-corrupt the new slot.
                        self.corrupted.retain(|id| !flagged.contains(id));
                    }
                    other => {
                        apply_event(&mut self.vm, other, &mut self.report);
                    }
                }
                self.pos += 1;
            }
        }
    }

    /// Runs to the first fragment boundary at or past `target`, then
    /// applies sabotage rules and any newly-anchored events.
    pub fn run_to(&mut self, target: u64) -> VmExit {
        let exit = self.vm.run(target, &mut NullSink);
        self.apply_sabotage();
        self.drain_events();
        exit
    }

    /// Advances exactly one fragment boundary.
    pub fn step(&mut self) -> VmExit {
        let v = self.vm.v_instructions();
        self.run_to(v + 1)
    }

    /// Replays the envelope's own run schedule to completion, pausing
    /// additionally every `interval` retired instructions to take a
    /// checkpoint. Returns the checkpoints (the first is the pre-run
    /// state) and the final exit.
    pub fn run_monitored(&mut self, interval: u64) -> (Vec<Snapshot>, VmExit) {
        let interval = interval.max(1);
        let mut cps = vec![self.vm.snapshot()];
        let mut next_cp = self.vm.v_instructions() + interval;
        let mut exit = VmExit::Budget;
        let budgets: Vec<u64> = self
            .log
            .events
            .iter()
            .filter_map(|ev| match ev {
                ReplayEvent::Run { budget } => Some(*budget),
                _ => None,
            })
            .collect();
        for budget in budgets {
            loop {
                let v = self.vm.v_instructions();
                if v >= budget {
                    break;
                }
                while next_cp <= v {
                    next_cp += interval;
                }
                exit = self.run_to(budget.min(next_cp));
                if exit != VmExit::Budget {
                    return (cps, exit);
                }
                if self.vm.v_instructions() >= next_cp {
                    cps.push(self.vm.snapshot());
                }
            }
        }
        (cps, exit)
    }
}

/// One architected register mismatch.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RegDiff {
    /// Register index (0–31).
    pub index: u8,
    /// The reference interpreter's value.
    pub expected: u64,
    /// The VM's value.
    pub actual: u64,
}

/// The first observed divergence between the VM and the reference, at a
/// fragment boundary.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Divergence {
    /// Retired-instruction count of the divergent boundary.
    pub v_insts: u64,
    /// V-address the divergent fragment execution entered at (the
    /// architected pc at the last matching boundary).
    pub entry_vstart: u64,
    /// Whether a translated fragment was installed at that entry when it
    /// executed (`false` means the step was interpreted — an injected
    /// fault corrupted architected state some other way).
    pub entry_translated: bool,
    /// Reference pc at the boundary (meaningful when `pc_compared`).
    pub pc_expected: u64,
    /// VM pc at the boundary.
    pub pc_actual: u64,
    /// Whether pc participated in the comparison (only at mid-run
    /// boundaries; halt pc conventions differ between engines).
    pub pc_compared: bool,
    /// Mismatched registers, ascending by index.
    pub regs: Vec<RegDiff>,
    /// Reference memory digest at the boundary.
    pub mem_expected: u64,
    /// VM memory digest at the boundary.
    pub mem_actual: u64,
    /// Whether console output diverged.
    pub output_diverged: bool,
    /// Whether the VM stopped abnormally (trap/fault) at this boundary.
    pub abnormal_exit: bool,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "first divergence at v_insts {} (fragment entered at {:#x}, {})",
            self.v_insts,
            self.entry_vstart,
            if self.entry_translated {
                "translated"
            } else {
                "interpreted"
            }
        )?;
        if self.abnormal_exit {
            writeln!(f, "  vm stopped abnormally (trap or structural fault)")?;
        }
        if self.pc_compared && self.pc_expected != self.pc_actual {
            writeln!(
                f,
                "  pc: expected {:#x}, got {:#x}",
                self.pc_expected, self.pc_actual
            )?;
        }
        for d in &self.regs {
            writeln!(
                f,
                "  r{}: expected {:#x}, got {:#x}",
                d.index, d.expected, d.actual
            )?;
        }
        if self.mem_expected != self.mem_actual {
            writeln!(
                f,
                "  memory digest: expected {:#x}, got {:#x}",
                self.mem_expected, self.mem_actual
            )?;
        }
        if self.output_diverged {
            writeln!(f, "  console output diverged")?;
        }
        Ok(())
    }
}

/// Compares the VM's architected state against the reference at a common
/// retired count. `compare_pc` is set only at mid-run boundaries.
fn state_diff(
    vm: &Vm<'_>,
    reference: &RefInterp,
    compare_pc: bool,
) -> Option<(Vec<RegDiff>, bool, bool)> {
    let vr = vm.cpu().registers();
    let rr = reference.regs();
    let regs: Vec<RegDiff> = (0..32)
        .filter(|&i| vr[i] != rr[i])
        .map(|i| RegDiff {
            index: i as u8,
            expected: rr[i],
            actual: vr[i],
        })
        .collect();
    let mem = vm.memory().content_digest() != reference.mem_digest();
    let out = vm.output() != reference.output();
    let pc = compare_pc && vm.cpu().pc != reference.pc();
    if regs.is_empty() && !mem && !out && !pc {
        None
    } else {
        Some((regs, mem, out))
    }
}

fn divergence_at(
    vm: &Vm<'_>,
    reference: &RefInterp,
    entry_vstart: u64,
    entry_translated: bool,
    compare_pc: bool,
    abnormal: bool,
    diff: (Vec<RegDiff>, bool, bool),
) -> Divergence {
    let (regs, _, out) = diff;
    Divergence {
        v_insts: vm.v_instructions(),
        entry_vstart,
        entry_translated,
        pc_expected: reference.pc(),
        pc_actual: vm.cpu().pc,
        pc_compared: compare_pc,
        regs,
        mem_expected: reference.mem_digest(),
        mem_actual: vm.memory().content_digest(),
        output_diverged: out,
        abnormal_exit: abnormal,
    }
}

/// Restores a VM from a verified-good checkpoint and single-steps
/// fragment boundaries in lockstep with a reference started from the
/// same checkpoint, until the first divergent boundary (or `max_v`
/// retired instructions). Returns `None` if the timelines agree to a
/// clean common halt.
pub fn localize(
    program: &Program,
    config: VmConfig,
    snap: &Snapshot,
    log: &ReplayLog,
    max_v: u64,
) -> Result<Option<Divergence>, String> {
    let vm = Vm::restore(config, program, snap).map_err(|e| format!("restore failed: {e}"))?;
    let mut driver = LogDriver::new(vm, log);
    let mut reference = RefInterp::from_snapshot(program, snap);
    loop {
        let v0 = driver.vm.v_instructions();
        if v0 >= max_v {
            return Err(format!(
                "localization exceeded {max_v} instructions without reproducing the divergence"
            ));
        }
        let entry = driver.vm.cpu().pc;
        let translated = driver.vm.cache().lookup(entry).is_some();
        let exit = driver.step();
        let v1 = driver.vm.v_instructions();
        reference.advance_to(v1)?;
        let abnormal = matches!(exit, VmExit::Trapped { .. } | VmExit::Fault { .. });
        // The reference halting short of the VM's count is itself a
        // divergence (the VM ran past the architected halt).
        if reference.v() < v1 {
            let diff =
                state_diff(&driver.vm, &reference, false).unwrap_or((Vec::new(), false, false));
            return Ok(Some(divergence_at(
                &driver.vm, &reference, entry, translated, false, abnormal, diff,
            )));
        }
        let compare_pc = exit == VmExit::Budget;
        if let Some(diff) = state_diff(&driver.vm, &reference, compare_pc) {
            return Ok(Some(divergence_at(
                &driver.vm, &reference, entry, translated, compare_pc, abnormal, diff,
            )));
        }
        if abnormal {
            // Architected state agrees but the VM cannot continue while
            // the reference can: report the stop itself.
            return Ok(Some(divergence_at(
                &driver.vm,
                &reference,
                entry,
                translated,
                false,
                true,
                (Vec::new(), false, false),
            )));
        }
        if exit == VmExit::Halted {
            return Ok(if reference.halted() {
                None
            } else {
                // VM halted early: count agreement was checked above, so
                // the reference must be able to continue — divergent.
                Some(divergence_at(
                    &driver.vm,
                    &reference,
                    entry,
                    translated,
                    false,
                    false,
                    (Vec::new(), false, false),
                ))
            });
        }
    }
}

/// A triage verdict: the localized first divergence plus the bundle that
/// reproduces it.
pub struct TriageResult {
    /// The first divergent fragment execution, localized from the last
    /// good checkpoint.
    pub divergence: Divergence,
    /// Self-contained reproduction artifact.
    pub bundle: ReproBundle,
}

/// Monitors a log-driven run, and on divergence from the reference
/// bisects checkpoints and localizes the first divergent fragment
/// execution. Returns `None` when the run matches the reference
/// end-to-end. `workload` is a provenance label stored in the bundle.
pub fn triage_run(
    program: &Program,
    form: IsaForm,
    chain: ChainPolicy,
    log: &ReplayLog,
    interval: u64,
    workload: &str,
) -> Result<Option<TriageResult>, String> {
    // Phase A: monitored run with periodic checkpoints.
    let vm = Vm::new(cell_config(form, chain), program);
    let mut driver = LogDriver::new(vm, log);
    let (cps, exit) = driver.run_monitored(interval);
    let v_final = driver.vm.v_instructions();
    let mut reference = RefInterp::from_start(program);
    reference.advance_to(v_final)?;
    let abnormal = matches!(exit, VmExit::Trapped { .. } | VmExit::Fault { .. });
    let clean = !abnormal
        && reference.v() == v_final
        && state_diff(&driver.vm, &reference, exit == VmExit::Budget).is_none()
        && (exit != VmExit::Halted || reference.halted());
    if clean {
        return Ok(None);
    }
    // Phase B: bisect the checkpoints for the last one whose architected
    // state matches a from-start reference. Assumes divergence persists
    // once present (miscompiled state does not self-correct), which makes
    // "checkpoint diverged" monotone over the run.
    let diverged = |snap: &Snapshot| -> Result<bool, String> {
        let mut r = RefInterp::from_start(program);
        r.advance_to(snap.v_insts)?;
        Ok(r.v() < snap.v_insts
            || r.regs() != snap.regs
            || r.pc() != snap.pc
            || r.mem_digest() != snap.mem_digest()
            || r.output() != snap.output.as_slice())
    };
    // cps[0] is the pre-run state and always good; partition in (0, n).
    let (mut good, mut bad) = (0usize, cps.len());
    while bad - good > 1 {
        let mid = good + (bad - good) / 2;
        if diverged(&cps[mid])? {
            bad = mid;
        } else {
            good = mid;
        }
    }
    let mut entry = cps[good].clone();
    // The wall-clock diagnostics in VmStats are not part of the
    // deterministic envelope; zero them so identical failures produce
    // byte-identical bundles.
    entry.stats.verify_nanos = 0;
    entry.stats.translate_stall_nanos = 0;
    entry.stats.translate_wall_nanos = 0;
    let entry = &entry;
    // Phase C: lockstep localization from the last good checkpoint. The
    // trimmed log keeps the standing sabotage rules and every event not
    // yet reflected in the checkpoint.
    let trimmed = log.trimmed_to(entry.v_insts);
    let max_v = v_final.max(entry.v_insts) * 2 + 10_000;
    let config = cell_config(form, chain);
    let Some(divergence) = localize(program, config, entry, &trimmed, max_v)? else {
        return Err(
            "final state diverged but lockstep from the last good checkpoint found no \
             divergent boundary"
                .to_string(),
        );
    };
    let bundle = ReproBundle {
        form,
        chain,
        workload: workload.to_string(),
        code_base: program.code_base(),
        entry_pc: program.entry(),
        initial_sp: program.initial_sp(),
        code: program.code().to_vec(),
        snapshot: entry.clone(),
        log: trimmed,
        expected: divergence.clone(),
    };
    Ok(Some(TriageResult { divergence, bundle }))
}

/// A self-contained reproduction artifact: the program slice (code only —
/// the entry checkpoint carries all initialized memory), the last-good
/// checkpoint, the trimmed envelope, and the divergence the consumer must
/// reproduce.
#[derive(Clone, PartialEq, Debug)]
pub struct ReproBundle {
    /// I-ISA form of the failing cell.
    pub form: IsaForm,
    /// Chain policy of the failing cell.
    pub chain: ChainPolicy,
    /// Workload name, for provenance only.
    pub workload: String,
    /// V-address the code slice loads at.
    pub code_base: u64,
    /// Program entry pc.
    pub entry_pc: u64,
    /// Initial stack pointer.
    pub initial_sp: u64,
    /// The code words.
    pub code: Vec<u32>,
    /// The last-good checkpoint localization starts from.
    pub snapshot: Snapshot,
    /// Envelope trimmed to the checkpoint (sabotage rules kept).
    pub log: ReplayLog,
    /// The divergence a replay must reproduce exactly.
    pub expected: Divergence,
}

impl ReproBundle {
    /// Reconstructs the program slice. Data segments are deliberately
    /// absent ([`ildp_core::program_digest`] excludes them): the
    /// checkpoint's dirty pages carry every byte that matters.
    pub fn program(&self) -> Program {
        Program::new(self.code_base, self.code.clone())
            .with_entry(self.entry_pc)
            .with_initial_sp(self.initial_sp)
    }

    /// The cell configuration the bundle replays under.
    pub fn config(&self) -> VmConfig {
        cell_config(self.form, self.chain)
    }

    /// Re-runs the localization procedure the bundle was produced by and
    /// returns the divergence it finds, which must equal
    /// [`expected`](ReproBundle::expected) — the procedure is
    /// deterministic, so a mismatch means the build under test behaves
    /// differently from the one that produced the bundle.
    pub fn replay(&self) -> Result<Option<Divergence>, String> {
        let program = self.program();
        let max_v = self.expected.v_insts.max(self.snapshot.v_insts) * 2 + 10_000;
        localize(&program, self.config(), &self.snapshot, &self.log, max_v)
    }

    /// Serializes into the enveloped wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut p = Vec::new();
        wire::put_u8(&mut p, matches!(self.form, IsaForm::Modified) as u8);
        wire::put_u8(
            &mut p,
            match self.chain {
                ChainPolicy::NoPred => 0,
                ChainPolicy::SwPred => 1,
                ChainPolicy::SwPredDualRas => 2,
            },
        );
        wire::put_bytes(&mut p, self.workload.as_bytes());
        wire::put_u64(&mut p, self.code_base);
        wire::put_u64(&mut p, self.entry_pc);
        wire::put_u64(&mut p, self.initial_sp);
        wire::put_u32(&mut p, self.code.len() as u32);
        for &w in &self.code {
            wire::put_u32(&mut p, w);
        }
        wire::put_bytes(&mut p, &self.snapshot.to_bytes());
        wire::put_bytes(&mut p, &self.log.to_bytes());
        put_divergence(&mut p, &self.expected);
        wire::seal(REPRO_MAGIC, REPRO_VERSION, &p)
    }

    /// Deserializes an artifact written by [`to_bytes`](ReproBundle::to_bytes).
    pub fn from_bytes(bytes: &[u8]) -> Result<ReproBundle, SnapshotError> {
        let (version, payload) = wire::open(REPRO_MAGIC, bytes)?;
        if version != REPRO_VERSION {
            return Err(SnapshotError::BadVersion { version });
        }
        let mut c = Cursor::new(payload);
        let form = if c.take_u8()? != 0 {
            IsaForm::Modified
        } else {
            IsaForm::Basic
        };
        let chain = match c.take_u8()? {
            0 => ChainPolicy::NoPred,
            1 => ChainPolicy::SwPred,
            2 => ChainPolicy::SwPredDualRas,
            v => return Err(SnapshotError::BadVersion { version: v as u32 }),
        };
        let workload = String::from_utf8_lossy(c.take_bytes()?).into_owned();
        let code_base = c.take_u64()?;
        let entry_pc = c.take_u64()?;
        let initial_sp = c.take_u64()?;
        let n = c.take_u32()? as usize;
        let mut code = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            code.push(c.take_u32()?);
        }
        let snapshot = Snapshot::from_bytes(c.take_bytes()?)?;
        let log = ReplayLog::from_bytes(c.take_bytes()?)?;
        let expected = take_divergence(&mut c)?;
        Ok(ReproBundle {
            form,
            chain,
            workload,
            code_base,
            entry_pc,
            initial_sp,
            code,
            snapshot,
            log,
            expected,
        })
    }
}

fn put_divergence(p: &mut Vec<u8>, d: &Divergence) {
    wire::put_u64(p, d.v_insts);
    wire::put_u64(p, d.entry_vstart);
    wire::put_u8(p, d.entry_translated as u8);
    wire::put_u64(p, d.pc_expected);
    wire::put_u64(p, d.pc_actual);
    wire::put_u8(p, d.pc_compared as u8);
    wire::put_u32(p, d.regs.len() as u32);
    for r in &d.regs {
        wire::put_u8(p, r.index);
        wire::put_u64(p, r.expected);
        wire::put_u64(p, r.actual);
    }
    wire::put_u64(p, d.mem_expected);
    wire::put_u64(p, d.mem_actual);
    wire::put_u8(p, d.output_diverged as u8);
    wire::put_u8(p, d.abnormal_exit as u8);
}

fn take_divergence(c: &mut Cursor<'_>) -> Result<Divergence, SnapshotError> {
    let v_insts = c.take_u64()?;
    let entry_vstart = c.take_u64()?;
    let entry_translated = c.take_u8()? != 0;
    let pc_expected = c.take_u64()?;
    let pc_actual = c.take_u64()?;
    let pc_compared = c.take_u8()? != 0;
    let n = c.take_u32()? as usize;
    let mut regs = Vec::with_capacity(n.min(32));
    for _ in 0..n {
        regs.push(RegDiff {
            index: c.take_u8()?,
            expected: c.take_u64()?,
            actual: c.take_u64()?,
        });
    }
    Ok(Divergence {
        v_insts,
        entry_vstart,
        entry_translated,
        pc_expected,
        pc_actual,
        pc_compared,
        regs,
        mem_expected: c.take_u64()?,
        mem_actual: c.take_u64()?,
        output_diverged: c.take_u8()? != 0,
        abnormal_exit: c.take_u8()? != 0,
    })
}
