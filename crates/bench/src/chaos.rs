//! Deterministic fault injection against the resilient-cache machinery.
//!
//! The harness corrupts an actively-running VM's translation cache in the
//! ways a hostile environment could — severed and misdirected direct
//! links, poisoned branch targets, corrupted entry shapes, cache-epoch
//! flips, and stores into translated source pages — then requires the VM
//! to *contain* every fault: the C01–C07 installed-fragment audit must
//! flag each structural corruption so it can be healed by precise
//! invalidation, and the run must still retire to the architecturally
//! identical final state a pure interpreter computes.
//!
//! Everything is seeded ([`XorShift`]) and wall-clock free, so a failing
//! seed replays exactly — and every cell also *records* its
//! nondeterministic envelope as a [`ReplayLog`] (the run budgets and the
//! injection schedule), so a failure replays from seed + log with no
//! generator in the loop ([`chaos_replay`]) and feeds straight into the
//! divergence-triage engine (`crate::triage`).

use alpha_isa::{step, AlignPolicy, Control, DecodeCache, Program};
use ildp_core::{
    ChainPolicy, FragmentId, NullSink, OnViolation, ProfileConfig, ReplayEvent, ReplayLog,
    Translator, Vm, VmConfig, VmExit,
};
use ildp_isa::{IInst, ITarget, IsaForm};
use ildp_verifier::verify_installed;
use spec_workloads::{by_name, Workload, XorShift, NAMES};
use std::collections::BTreeSet;
use std::fmt;

/// Architected end state of a pure-interpreter reference run.
pub struct Reference {
    /// Final GPR file.
    pub regs: [u64; 32],
    /// Order-independent digest of final memory contents.
    pub mem_digest: u64,
    /// Console output, in emission order.
    pub output: Vec<u8>,
    /// Instructions retired to the halt.
    pub insts: u64,
}

/// Interprets `program` to a clean halt (within `budget` instructions),
/// capturing the architected end state the VM under fault injection must
/// reproduce.
pub fn interp_reference(program: &Program, budget: u64) -> Result<Reference, String> {
    let decoded = DecodeCache::new(program);
    let (mut cpu, mut mem) = program.load();
    let mut output = Vec::new();
    let mut insts = 0u64;
    loop {
        if insts >= budget {
            return Err(format!("reference exhausted {budget} instructions"));
        }
        let pc = cpu.pc;
        let inst = decoded
            .fetch(pc)
            .map_err(|t| format!("reference fetch trap at {pc:#x}: {t}"))?;
        let outcome = step(&mut cpu, &mut mem, inst, AlignPolicy::Enforce)
            .map_err(|t| format!("reference trap at {pc:#x}: {t}"))?;
        insts += 1;
        if let Some(b) = outcome.output {
            output.push(b);
        }
        if outcome.control == Control::Halt {
            return Ok(Reference {
                regs: cpu.registers(),
                mem_digest: mem.content_digest(),
                output,
                insts,
            });
        }
    }
}

/// Tally of one chaos cell (workload × form × chain × seed).
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct ChaosReport {
    /// Total faults injected.
    pub injections: u64,
    /// Direct links severed (must surface as C07).
    pub link_clears: u64,
    /// Direct links misdirected to a bogus fragment id (C07).
    pub link_poisons: u64,
    /// Branch/push targets retargeted off any fragment entry (C06).
    pub target_poisons: u64,
    /// Entry `SetVpcBase` corruptions (C01).
    pub vpc_corruptions: u64,
    /// Cache-epoch flips (benign: stale dual-RAS links fall back to
    /// dispatch).
    pub epoch_flips: u64,
    /// External writes into translated source pages (SMC response).
    pub code_writes: u64,
    /// Fragments invalidated by the audit-and-heal pass.
    pub healed: u64,
    /// Parked (delayed-install) translations dropped before their install
    /// point — the translation that never arrives.
    pub staged_drops: u64,
    /// Structurally corrupted fragments the audit FAILED to flag. Any
    /// non-zero value is a detector gap.
    pub undetected: u64,
}

impl ChaosReport {
    /// Folds another cell's tally into this one.
    pub fn merge(&mut self, other: &ChaosReport) {
        self.injections += other.injections;
        self.link_clears += other.link_clears;
        self.link_poisons += other.link_poisons;
        self.target_poisons += other.target_poisons;
        self.vpc_corruptions += other.vpc_corruptions;
        self.epoch_flips += other.epoch_flips;
        self.code_writes += other.code_writes;
        self.healed += other.healed;
        self.staged_drops += other.staged_drops;
        self.undetected += other.undetected;
    }
}

/// A fragment slot carrying a live direct link, as an injection victim.
fn pick_linked_site(vm: &Vm, rng: &mut XorShift) -> Option<(FragmentId, usize)> {
    let sites: Vec<(FragmentId, usize)> = vm
        .cache()
        .fragments()
        .flat_map(|f| {
            f.links
                .iter()
                .enumerate()
                .filter(|(_, l)| l.is_some())
                .map(|(k, _)| (f.id, k))
                .collect::<Vec<_>>()
        })
        .collect();
    if sites.is_empty() {
        return None;
    }
    Some(sites[(rng.next_u64() as usize) % sites.len()])
}

/// Any live fragment, as an injection victim.
fn pick_fragment(vm: &Vm, rng: &mut XorShift) -> Option<FragmentId> {
    let ids: Vec<FragmentId> = vm.cache().fragments().map(|f| f.id).collect();
    if ids.is_empty() {
        return None;
    }
    Some(ids[(rng.next_u64() as usize) % ids.len()])
}

/// Audits every live fragment with the verifier's C01–C07 installed
/// checks and heals flagged ones by precise invalidation. Returns the
/// flagged ids.
pub fn audit_and_heal(vm: &mut Vm, report: &mut ChaosReport) -> BTreeSet<u32> {
    let flagged: Vec<FragmentId> = {
        let cache = vm.cache();
        cache
            .fragments()
            .filter(|f| !verify_installed(cache, f).is_empty())
            .map(|f| f.id)
            .collect()
    };
    for &id in &flagged {
        if vm.invalidate_fragment(id).is_some() {
            report.healed += 1;
        }
    }
    flagged.iter().map(|id| id.0).collect()
}

/// Applies one recorded event to a live VM, updating the tally. Cache
/// corruptions address their fragment by entry V-address; an event whose
/// fragment is gone (or whose slot is inapplicable) is a no-op, which
/// replays deterministically too. Returns the corrupted fragment's id
/// for structural faults that landed — the victim the C01–C07 audit must
/// flag — and `None` for benign or landed-nowhere events.
/// [`ReplayEvent::Run`] is the caller's job and is ignored here.
pub fn apply_event(vm: &mut Vm, ev: &ReplayEvent, report: &mut ChaosReport) -> Option<FragmentId> {
    match *ev {
        ReplayEvent::Run { .. } => None,
        ReplayEvent::AuditHeal => {
            audit_and_heal(vm, report);
            None
        }
        ReplayEvent::LinkClear {
            fragment_vstart,
            slot,
        } => {
            // Sever a direct link out from under its patched branch.
            let id = vm.cache().lookup(fragment_vstart)?;
            let f = vm.cache_mut().fragment_mut(id);
            let link = f.links.get_mut(slot as usize)?;
            *link = None;
            report.link_clears += 1;
            report.injections += 1;
            Some(id)
        }
        ReplayEvent::LinkPoison {
            fragment_vstart,
            slot,
        } => {
            // Misdirect a link to a fragment id that never existed.
            let id = vm.cache().lookup(fragment_vstart)?;
            let f = vm.cache_mut().fragment_mut(id);
            let link = f.links.get_mut(slot as usize)?;
            *link = Some(FragmentId(u32::MAX - 1));
            report.link_poisons += 1;
            report.injections += 1;
            Some(id)
        }
        ReplayEvent::TargetPoison {
            fragment_vstart,
            slot,
        } => {
            // Retarget a resolved transfer off any fragment entry.
            // Entries are 8-aligned, so entry+2 can never be one.
            let id = vm.cache().lookup(fragment_vstart)?;
            let f = vm.cache_mut().fragment_mut(id);
            match f.insts.get_mut(slot as usize)? {
                IInst::Branch { target } | IInst::CondBranch { target, .. } => {
                    if let ITarget::Addr(a) = target {
                        *target = ITarget::Addr(*a + 2);
                    } else {
                        return None;
                    }
                }
                IInst::PushDualRas { iret, .. } => {
                    if let ITarget::Addr(a) = iret {
                        *iret = ITarget::Addr(*a + 2);
                    } else {
                        return None;
                    }
                }
                _ => return None,
            }
            report.target_poisons += 1;
            report.injections += 1;
            Some(id)
        }
        ReplayEvent::VpcCorrupt { fragment_vstart } => {
            // Corrupt the entry shape: SetVpcBase names the wrong
            // V-address.
            let id = vm.cache().lookup(fragment_vstart)?;
            let f = vm.cache_mut().fragment_mut(id);
            let vstart = f.vstart;
            if let Some(IInst::SetVpcBase { vaddr }) = f.insts.first_mut() {
                *vaddr = vstart ^ 0x40;
                report.vpc_corruptions += 1;
                report.injections += 1;
                Some(id)
            } else {
                None
            }
        }
        ReplayEvent::EpochFlip => {
            // Flip the cache epoch: every engine dual-RAS direct link
            // turns stale and must fall back to dispatch.
            vm.cache_mut().force_epoch_bump();
            report.epoch_flips += 1;
            report.injections += 1;
            None
        }
        ReplayEvent::CodeWrite { addr, len } => {
            // External store into a translated source page: the SMC
            // response must invalidate precisely and keep running.
            vm.notify_code_write(addr, len);
            report.code_writes += 1;
            report.injections += 1;
            None
        }
        ReplayEvent::StagedDrop { fragment_vstart } => {
            // Kill a parked translation before its install point: the
            // region must simply keep interpreting (and may re-heat).
            if vm.drop_staged(fragment_vstart) {
                report.staged_drops += 1;
                report.injections += 1;
            }
            None
        }
        // Background install/drop decisions are not injections: the VM
        // re-derives (or, under an install schedule, replays) them itself
        // at their count anchors.
        ReplayEvent::BgInstall { .. } | ReplayEvent::BgDrop { .. } => None,
    }
}

/// Injects one round of faults (one to three), recording each applied
/// event. Each structural fault is audited and healed immediately —
/// injections must not interfere with each other's detectability — and a
/// structural victim the audit missed is counted as `undetected`.
/// `delayed` cells add a seventh fault kind: dropping a parked
/// (delayed-install) translation before it lands.
fn inject_round(
    vm: &mut Vm,
    rng: &mut XorShift,
    report: &mut ChaosReport,
    events: &mut Vec<ReplayEvent>,
    delayed: bool,
) {
    let rounds = 1 + rng.next_u64() % 3;
    let kinds = if delayed { 7 } else { 6 };
    for _ in 0..rounds {
        let vstart_of = |vm: &Vm, id: FragmentId| vm.cache().fragment(id).vstart;
        let ev = match rng.next_u64() % kinds {
            0 => pick_linked_site(vm, rng).map(|(id, k)| ReplayEvent::LinkClear {
                fragment_vstart: vstart_of(vm, id),
                slot: k as u32,
            }),
            1 => pick_linked_site(vm, rng).map(|(id, k)| ReplayEvent::LinkPoison {
                fragment_vstart: vstart_of(vm, id),
                slot: k as u32,
            }),
            2 => pick_linked_site(vm, rng).map(|(id, k)| ReplayEvent::TargetPoison {
                fragment_vstart: vstart_of(vm, id),
                slot: k as u32,
            }),
            3 => pick_fragment(vm, rng).map(|id| ReplayEvent::VpcCorrupt {
                fragment_vstart: vstart_of(vm, id),
            }),
            4 => Some(ReplayEvent::EpochFlip),
            5 => pick_fragment(vm, rng).map(|id| {
                let f = vm.cache().fragment(id);
                let page = f.src_pages[(rng.next_u64() as usize) % f.src_pages.len()];
                let addr = (page << ildp_core::SMC_PAGE_SHIFT) + (rng.next_u64() & 0xff8);
                ReplayEvent::CodeWrite { addr, len: 8 }
            }),
            _ => {
                let staged = vm.staged_vstarts();
                if staged.is_empty() {
                    None
                } else {
                    Some(ReplayEvent::StagedDrop {
                        fragment_vstart: staged[(rng.next_u64() as usize) % staged.len()],
                    })
                }
            }
        };
        let Some(ev) = ev else { continue };
        // The structurally corrupted fragment, which the audit below must
        // flag. Events that land nowhere are still recorded: they replay
        // as the same no-op.
        let victim = apply_event(vm, &ev, report);
        events.push(ev);
        events.push(ReplayEvent::AuditHeal);
        let flagged = audit_and_heal(vm, report);
        if let Some(v) = victim {
            if !flagged.contains(&v.0) && vm.cache().try_fragment(v).is_some() {
                report.undetected += 1;
            }
        }
    }
}

/// The VM configuration every chaos cell runs under: install-time
/// validation with rejection, and a cache budget plus fuel watchdog tight
/// enough that eviction and preemption actually bind at harness scales
/// (fragments encode to ~50–100 bytes). Background translation is pinned
/// off — chaos cells are seeded and wall-clock free; the
/// background-pipeline timing dimension is exercised deterministically by
/// the delayed-install cells ([`VmConfig::install_delay`]) instead.
pub fn cell_config(form: IsaForm, chain: ChainPolicy) -> VmConfig {
    VmConfig {
        translator: Translator {
            form,
            chain,
            acc_count: 4,
            fuse_memory: false,
        },
        profile: ProfileConfig {
            threshold: 10,
            ..ProfileConfig::default()
        },
        validator: Some(ildp_verifier::install_validator),
        on_violation: OnViolation::Reject,
        cache_budget: Some(256),
        fuel: Some(2_000),
        async_translate: false,
        ..VmConfig::default()
    }
}

/// Names one chaos cell — workload × ISA form × chain policy × seed,
/// optionally with a deterministic install delay — in a form both
/// printable on failure and parseable back from a `--repro` argument:
/// `gzip:modified:sw_pred.ras:7001` or `gzip:modified:sw_pred.ras:7001:d64`
/// for a delayed-install cell.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CellSpec {
    /// Workload name, as in [`spec_workloads::NAMES`].
    pub workload: String,
    /// I-ISA form under test.
    pub form: IsaForm,
    /// Chain policy under test.
    pub chain: ChainPolicy,
    /// Cell seed.
    pub seed: u64,
    /// Deterministic install delay in retired V-ISA instructions
    /// ([`VmConfig::install_delay`]); `Some` marks a delayed-install cell.
    pub delay: Option<u64>,
}

impl fmt::Display for CellSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let form = match self.form {
            IsaForm::Basic => "basic",
            IsaForm::Modified => "modified",
        };
        write!(
            f,
            "{}:{}:{}:{}",
            self.workload,
            form,
            self.chain.label(),
            self.seed
        )?;
        if let Some(d) = self.delay {
            write!(f, ":d{d}")?;
        }
        Ok(())
    }
}

impl CellSpec {
    /// Parses the `workload:form:chain:seed[:dDELAY]` shape printed by
    /// [`Display`](fmt::Display).
    pub fn parse(s: &str) -> Result<CellSpec, String> {
        let parts: Vec<&str> = s.split(':').collect();
        let (workload, form, chain, seed, delay) = match parts[..] {
            [w, f, c, s] => (w, f, c, s, None),
            [w, f, c, s, d] => {
                let n = d
                    .strip_prefix('d')
                    .and_then(|n| n.parse::<u64>().ok())
                    .ok_or_else(|| format!("bad delay {d:?}: want dNNN"))?;
                (w, f, c, s, Some(n))
            }
            _ => {
                return Err(format!(
                    "bad cell spec {s:?}: want workload:form:chain:seed[:dDELAY]"
                ))
            }
        };
        if !NAMES.contains(&workload) {
            return Err(format!("unknown workload {workload:?}"));
        }
        let form = match form {
            "basic" => IsaForm::Basic,
            "modified" => IsaForm::Modified,
            other => return Err(format!("unknown ISA form {other:?}")),
        };
        let chain = match chain {
            "no_pred" => ChainPolicy::NoPred,
            "sw_pred.no_ras" => ChainPolicy::SwPred,
            "sw_pred.ras" => ChainPolicy::SwPredDualRas,
            other => return Err(format!("unknown chain policy {other:?}")),
        };
        let seed = seed
            .parse::<u64>()
            .map_err(|_| format!("bad seed {seed:?}"))?;
        Ok(CellSpec {
            workload: workload.to_string(),
            form,
            chain,
            seed,
            delay,
        })
    }

    /// Builds the workload this cell runs at the given harness scale.
    pub fn workload(&self, scale: u32) -> Workload {
        by_name(&self.workload, scale).expect("validated at parse")
    }

    /// The VM configuration this cell runs under.
    pub fn config(&self) -> VmConfig {
        VmConfig {
            install_delay: self.delay,
            ..cell_config(self.form, self.chain)
        }
    }
}

/// Checks a finished cell run against the pure-interpreter reference:
/// clean halt, identical GPR file, output, and memory, and zero
/// audit-escaped corruptions.
fn check_outcome(
    vm: &Vm<'_>,
    exit: VmExit,
    reference: &Reference,
    report: ChaosReport,
    cell: &str,
) -> Result<ChaosReport, String> {
    match exit {
        VmExit::Halted => {}
        other => return Err(format!("{cell}: expected clean halt, got {other:?}")),
    }
    if vm.cpu().registers() != reference.regs {
        return Err(format!("{cell}: final GPR file diverged"));
    }
    if vm.output() != reference.output.as_slice() {
        return Err(format!("{cell}: console output diverged"));
    }
    if vm.memory().content_digest() != reference.mem_digest {
        return Err(format!("{cell}: final memory diverged"));
    }
    if report.undetected > 0 {
        return Err(format!(
            "{cell}: {} structural corruption(s) escaped the C01–C07 audit",
            report.undetected
        ));
    }
    Ok(report)
}

/// Runs one chaos cell — a capacity-bounded, fuel-limited VM over the
/// workload with faults injected at every chunk boundary, compared
/// against the pure-interpreter reference — while recording the full
/// nondeterministic envelope. A `delay` makes it a delayed-install cell:
/// translations park for that many retired instructions before
/// installing, the injection mix adds staged-translation drops, and every
/// install/drop decision is recorded as a count-anchored event. Returns
/// the tally (or a description of the divergence) *and* the [`ReplayLog`]
/// that reproduces the run exactly, pass or fail.
pub fn chaos_cell_recorded(
    w: &Workload,
    form: IsaForm,
    chain: ChainPolicy,
    seed: u64,
    delay: Option<u64>,
) -> (Result<ChaosReport, String>, ReplayLog) {
    let mut log = ReplayLog {
        seed,
        ..ReplayLog::default()
    };
    let budget = w.budget * 2;
    let reference = match interp_reference(&w.program, budget) {
        Ok(r) => r,
        Err(e) => return (Err(format!("{}: {e}", w.name)), log),
    };
    let config = VmConfig {
        install_delay: delay,
        ..cell_config(form, chain)
    };
    let mut vm = Vm::new(config, &w.program);
    let mut rng = XorShift::new(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1);
    let mut report = ChaosReport::default();
    // Pace the injection boundaries off the reference run's retire count
    // so every round lands while the workload is still executing.
    let chunks = 12u64;
    let mut exit = VmExit::Budget;
    for c in 1..=chunks {
        let target = (reference.insts * c / (chunks + 1)).max(1);
        log.events.push(ReplayEvent::Run { budget: target });
        exit = vm.run(target, &mut NullSink);
        // Count-anchored install/drop decisions made during this run
        // chunk ride along in the log, before this boundary's injections.
        log.events.append(&mut vm.take_bg_events());
        match exit {
            VmExit::Budget => inject_round(
                &mut vm,
                &mut rng,
                &mut report,
                &mut log.events,
                delay.is_some(),
            ),
            _ => break,
        }
    }
    if exit == VmExit::Budget {
        log.events.push(ReplayEvent::Run { budget });
        exit = vm.run(budget, &mut NullSink);
        log.events.append(&mut vm.take_bg_events());
    }
    let cell = format!("{} {form:?} {} seed {seed}", w.name, chain.label());
    (check_outcome(&vm, exit, &reference, report, &cell), log)
}

/// Runs one chaos cell and returns the tally, or a description of the
/// divergence. Recording-free wrapper around [`chaos_cell_recorded`].
pub fn chaos_cell(
    w: &Workload,
    form: IsaForm,
    chain: ChainPolicy,
    seed: u64,
    delay: Option<u64>,
) -> Result<ChaosReport, String> {
    chaos_cell_recorded(w, form, chain, seed, delay).0
}

/// Re-runs a chaos cell from its recorded envelope: no generator in the
/// loop, just the logged budgets and injections in order. Produces the
/// same outcome *and the same tally* as the recorded run — including
/// `undetected`, which is recomputed by correlating each structural event
/// with the [`ReplayEvent::AuditHeal`] that follows it. Delayed-install
/// cells replay on the same deterministic `delay`, re-deriving the
/// recorded install/drop decisions at the same count anchors (the logged
/// [`ReplayEvent::BgInstall`]/[`ReplayEvent::BgDrop`] events are the
/// recorded ground truth; `StagedDrop` injections replay as events).
pub fn chaos_replay(
    w: &Workload,
    form: IsaForm,
    chain: ChainPolicy,
    log: &ReplayLog,
    delay: Option<u64>,
) -> Result<ChaosReport, String> {
    let budget = w.budget * 2;
    let reference = interp_reference(&w.program, budget).map_err(|e| format!("{}: {e}", w.name))?;
    let config = VmConfig {
        install_delay: delay,
        ..cell_config(form, chain)
    };
    let mut vm = Vm::new(config, &w.program);
    let mut report = ChaosReport::default();
    let mut exit = VmExit::Budget;
    // The structural victim of the most recent injection, awaiting its
    // audit — mirrors the record-side undetected check.
    let mut pending_victim: Option<FragmentId> = None;
    for ev in &log.events {
        match *ev {
            ReplayEvent::Run { budget } => {
                exit = vm.run(budget, &mut NullSink);
                if exit != VmExit::Budget {
                    // Recorded runs stop scheduling after a non-budget
                    // exit; a faithful replay reaches it on the same Run.
                    break;
                }
            }
            ReplayEvent::AuditHeal => {
                let flagged = audit_and_heal(&mut vm, &mut report);
                if let Some(v) = pending_victim.take() {
                    if !flagged.contains(&v.0) && vm.cache().try_fragment(v).is_some() {
                        report.undetected += 1;
                    }
                }
            }
            // Recorded background decisions: the replaying VM re-derives
            // them deterministically from the same delay anchors, so they
            // are informational here — and must not clobber the victim of
            // a preceding structural injection.
            ReplayEvent::BgInstall { .. } | ReplayEvent::BgDrop { .. } => {}
            _ => pending_victim = apply_event(&mut vm, ev, &mut report),
        }
    }
    let cell = format!(
        "{} {form:?} {} replay of seed {}",
        w.name,
        chain.label(),
        log.seed
    );
    check_outcome(&vm, exit, &reference, report, &cell)
}
