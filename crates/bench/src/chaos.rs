//! Deterministic fault injection against the resilient-cache machinery.
//!
//! The harness corrupts an actively-running VM's translation cache in the
//! ways a hostile environment could — severed and misdirected direct
//! links, poisoned branch targets, corrupted entry shapes, cache-epoch
//! flips, and stores into translated source pages — then requires the VM
//! to *contain* every fault: the C01–C07 installed-fragment audit must
//! flag each structural corruption so it can be healed by precise
//! invalidation, and the run must still retire to the architecturally
//! identical final state a pure interpreter computes.
//!
//! Everything is seeded ([`XorShift`]) and wall-clock free, so a failing
//! seed replays exactly.

use alpha_isa::{step, AlignPolicy, Control, DecodeCache, Program};
use ildp_core::{
    ChainPolicy, FragmentId, NullSink, OnViolation, ProfileConfig, Translator, Vm, VmConfig, VmExit,
};
use ildp_isa::{IInst, ITarget, IsaForm};
use ildp_verifier::verify_installed;
use spec_workloads::{Workload, XorShift};
use std::collections::BTreeSet;

/// Architected end state of a pure-interpreter reference run.
pub struct Reference {
    /// Final GPR file.
    pub regs: [u64; 32],
    /// Order-independent digest of final memory contents.
    pub mem_digest: u64,
    /// Console output, in emission order.
    pub output: Vec<u8>,
    /// Instructions retired to the halt.
    pub insts: u64,
}

/// Interprets `program` to a clean halt (within `budget` instructions),
/// capturing the architected end state the VM under fault injection must
/// reproduce.
pub fn interp_reference(program: &Program, budget: u64) -> Result<Reference, String> {
    let decoded = DecodeCache::new(program);
    let (mut cpu, mut mem) = program.load();
    let mut output = Vec::new();
    let mut insts = 0u64;
    loop {
        if insts >= budget {
            return Err(format!("reference exhausted {budget} instructions"));
        }
        let pc = cpu.pc;
        let inst = decoded
            .fetch(pc)
            .map_err(|t| format!("reference fetch trap at {pc:#x}: {t}"))?;
        let outcome = step(&mut cpu, &mut mem, inst, AlignPolicy::Enforce)
            .map_err(|t| format!("reference trap at {pc:#x}: {t}"))?;
        insts += 1;
        if let Some(b) = outcome.output {
            output.push(b);
        }
        if outcome.control == Control::Halt {
            return Ok(Reference {
                regs: cpu.registers(),
                mem_digest: mem.content_digest(),
                output,
                insts,
            });
        }
    }
}

/// Tally of one chaos cell (workload × form × chain × seed).
#[derive(Clone, Copy, Default, Debug)]
pub struct ChaosReport {
    /// Total faults injected.
    pub injections: u64,
    /// Direct links severed (must surface as C07).
    pub link_clears: u64,
    /// Direct links misdirected to a bogus fragment id (C07).
    pub link_poisons: u64,
    /// Branch/push targets retargeted off any fragment entry (C06).
    pub target_poisons: u64,
    /// Entry `SetVpcBase` corruptions (C01).
    pub vpc_corruptions: u64,
    /// Cache-epoch flips (benign: stale dual-RAS links fall back to
    /// dispatch).
    pub epoch_flips: u64,
    /// External writes into translated source pages (SMC response).
    pub code_writes: u64,
    /// Fragments invalidated by the audit-and-heal pass.
    pub healed: u64,
    /// Structurally corrupted fragments the audit FAILED to flag. Any
    /// non-zero value is a detector gap.
    pub undetected: u64,
}

impl ChaosReport {
    /// Folds another cell's tally into this one.
    pub fn merge(&mut self, other: &ChaosReport) {
        self.injections += other.injections;
        self.link_clears += other.link_clears;
        self.link_poisons += other.link_poisons;
        self.target_poisons += other.target_poisons;
        self.vpc_corruptions += other.vpc_corruptions;
        self.epoch_flips += other.epoch_flips;
        self.code_writes += other.code_writes;
        self.healed += other.healed;
        self.undetected += other.undetected;
    }
}

/// A fragment slot carrying a live direct link, as an injection victim.
fn pick_linked_site(vm: &Vm, rng: &mut XorShift) -> Option<(FragmentId, usize)> {
    let sites: Vec<(FragmentId, usize)> = vm
        .cache()
        .fragments()
        .flat_map(|f| {
            f.links
                .iter()
                .enumerate()
                .filter(|(_, l)| l.is_some())
                .map(|(k, _)| (f.id, k))
                .collect::<Vec<_>>()
        })
        .collect();
    if sites.is_empty() {
        return None;
    }
    Some(sites[(rng.next_u64() as usize) % sites.len()])
}

/// Any live fragment, as an injection victim.
fn pick_fragment(vm: &Vm, rng: &mut XorShift) -> Option<FragmentId> {
    let ids: Vec<FragmentId> = vm.cache().fragments().map(|f| f.id).collect();
    if ids.is_empty() {
        return None;
    }
    Some(ids[(rng.next_u64() as usize) % ids.len()])
}

/// Audits every live fragment with the verifier's C01–C07 installed
/// checks and heals flagged ones by precise invalidation. Returns the
/// flagged ids.
fn audit_and_heal(vm: &mut Vm, report: &mut ChaosReport) -> BTreeSet<u32> {
    let flagged: Vec<FragmentId> = {
        let cache = vm.cache();
        cache
            .fragments()
            .filter(|f| !verify_installed(cache, f).is_empty())
            .map(|f| f.id)
            .collect()
    };
    for &id in &flagged {
        if vm.invalidate_fragment(id).is_some() {
            report.healed += 1;
        }
    }
    flagged.iter().map(|id| id.0).collect()
}

/// Injects one round of faults (one to three). Each structural fault is
/// audited and healed immediately — injections must not interfere with
/// each other's detectability — and a structural victim the audit missed
/// is counted as `undetected`.
fn inject_round(vm: &mut Vm, rng: &mut XorShift, report: &mut ChaosReport) {
    let rounds = 1 + rng.next_u64() % 3;
    for _ in 0..rounds {
        // The structurally corrupted fragment, which the audit below must
        // flag.
        let mut victim: Option<FragmentId> = None;
        match rng.next_u64() % 6 {
            0 => {
                // Sever a direct link out from under its patched branch.
                if let Some((id, k)) = pick_linked_site(vm, rng) {
                    vm.cache_mut().fragment_mut(id).links[k] = None;
                    report.link_clears += 1;
                    report.injections += 1;
                    victim = Some(id);
                }
            }
            1 => {
                // Misdirect a link to a fragment id that never existed.
                if let Some((id, k)) = pick_linked_site(vm, rng) {
                    vm.cache_mut().fragment_mut(id).links[k] = Some(FragmentId(u32::MAX - 1));
                    report.link_poisons += 1;
                    report.injections += 1;
                    victim = Some(id);
                }
            }
            2 => {
                // Retarget a resolved transfer off any fragment entry.
                // Entries are 8-aligned, so entry+2 can never be one.
                if let Some((id, k)) = pick_linked_site(vm, rng) {
                    let f = vm.cache_mut().fragment_mut(id);
                    match &mut f.insts[k] {
                        IInst::Branch { target } | IInst::CondBranch { target, .. } => {
                            if let ITarget::Addr(a) = target {
                                *target = ITarget::Addr(*a + 2);
                            }
                        }
                        IInst::PushDualRas { iret, .. } => {
                            if let ITarget::Addr(a) = iret {
                                *iret = ITarget::Addr(*a + 2);
                            }
                        }
                        _ => continue,
                    }
                    report.target_poisons += 1;
                    report.injections += 1;
                    victim = Some(id);
                }
            }
            3 => {
                // Corrupt the entry shape: SetVpcBase names the wrong
                // V-address.
                if let Some(id) = pick_fragment(vm, rng) {
                    let f = vm.cache_mut().fragment_mut(id);
                    let vstart = f.vstart;
                    if let Some(IInst::SetVpcBase { vaddr }) = f.insts.first_mut() {
                        *vaddr = vstart ^ 0x40;
                        report.vpc_corruptions += 1;
                        report.injections += 1;
                        victim = Some(id);
                    }
                }
            }
            4 => {
                // Flip the cache epoch: every engine dual-RAS direct link
                // turns stale and must fall back to dispatch.
                vm.cache_mut().force_epoch_bump();
                report.epoch_flips += 1;
                report.injections += 1;
            }
            _ => {
                // External store into a translated source page: the SMC
                // response must invalidate precisely and keep running.
                if let Some(id) = pick_fragment(vm, rng) {
                    let f = vm.cache().fragment(id);
                    let page = f.src_pages[(rng.next_u64() as usize) % f.src_pages.len()];
                    let addr = (page << ildp_core::SMC_PAGE_SHIFT) + (rng.next_u64() & 0xff8);
                    vm.notify_code_write(addr, 8);
                    report.code_writes += 1;
                    report.injections += 1;
                }
            }
        }
        let flagged = audit_and_heal(vm, report);
        if let Some(v) = victim {
            if !flagged.contains(&v.0) && vm.cache().try_fragment(v).is_some() {
                report.undetected += 1;
            }
        }
    }
}

/// Runs one chaos cell: a capacity-bounded, fuel-limited VM over the
/// workload with faults injected at every chunk boundary, compared against
/// the pure-interpreter reference. Returns the tally, or a description of
/// the divergence.
pub fn chaos_cell(
    w: &Workload,
    form: IsaForm,
    chain: ChainPolicy,
    seed: u64,
) -> Result<ChaosReport, String> {
    let budget = w.budget * 2;
    let reference = interp_reference(&w.program, budget).map_err(|e| format!("{}: {e}", w.name))?;
    let config = VmConfig {
        translator: Translator {
            form,
            chain,
            acc_count: 4,
            fuse_memory: false,
        },
        profile: ProfileConfig {
            threshold: 10,
            ..ProfileConfig::default()
        },
        validator: Some(ildp_verifier::install_validator),
        on_violation: OnViolation::Reject,
        // Tight enough that both the clock hand and the fuel watchdog
        // actually bind at harness scales (fragments encode to ~50–100
        // bytes), so eviction and preemption run under fault injection.
        cache_budget: Some(256),
        fuel: Some(2_000),
        ..VmConfig::default()
    };
    let mut vm = Vm::new(config, &w.program);
    let mut rng = XorShift::new(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1);
    let mut report = ChaosReport::default();
    // Pace the injection boundaries off the reference run's retire count
    // so every round lands while the workload is still executing.
    let chunks = 12u64;
    let mut exit = VmExit::Budget;
    for c in 1..=chunks {
        let target = (reference.insts * c / (chunks + 1)).max(1);
        exit = vm.run(target, &mut NullSink);
        match exit {
            VmExit::Budget => inject_round(&mut vm, &mut rng, &mut report),
            _ => break,
        }
    }
    if exit == VmExit::Budget {
        exit = vm.run(budget, &mut NullSink);
    }
    let cell = format!("{} {form:?} {} seed {seed}", w.name, chain.label());
    match exit {
        VmExit::Halted => {}
        other => return Err(format!("{cell}: expected clean halt, got {other:?}")),
    }
    if vm.cpu().registers() != reference.regs {
        return Err(format!("{cell}: final GPR file diverged"));
    }
    if vm.output() != reference.output.as_slice() {
        return Err(format!("{cell}: console output diverged"));
    }
    if vm.memory().content_digest() != reference.mem_digest {
        return Err(format!("{cell}: final memory diverged"));
    }
    if report.undetected > 0 {
        return Err(format!(
            "{cell}: {} structural corruption(s) escaped the C01–C07 audit",
            report.undetected
        ));
    }
    Ok(report)
}
