//! Multi-VM throughput harness: N concurrent guests on M OS threads.
//!
//! Models the warehouse-scale deployment the background translation
//! pipeline and the shared warm-start fragment store exist for:
//!
//! * **scaling** — N VM instances per (workload × ISA form) cell drain a
//!   shared work queue on M OS threads, every VM using the default
//!   asynchronous translation pipeline (one shared
//!   [`ildp_core::TranslatePool`] serves them all). Aggregate guest
//!   throughput is reported as total retired V-instructions divided by
//!   the **CPU critical path** — the largest per-thread CPU time — so
//!   the number measures how the work parallelizes even on a machine
//!   with fewer physical cores than harness threads (wall-clock seconds
//!   are reported alongside, unmassaged).
//! * **warm start** — per (workload × ISA form) cell, one cold VM
//!   translates, verifies, and publishes every fragment into a shared
//!   [`FragmentStore`]; N−1 warm VMs then run the same program against
//!   that store and must install the pre-verified artifacts without a
//!   single retranslation or reverification, finishing in the identical
//!   architected state.
//!
//! Per-thread CPU time comes from `/proc/thread-self/schedstat`
//! (nanoseconds on-cpu), falling back to `utime+stime` ticks from
//! `/proc/thread-self/stat`; on non-Linux systems it degrades to zero
//! and the aggregate falls back to wall-clock.

use ildp_core::{
    ChainPolicy, FragmentStore, NullSink, TranslatePool, Translator, Vm, VmConfig, VmExit,
};
use ildp_isa::IsaForm;
use ildp_verifier::{collecting_validator, take_report};
use spec_workloads::{suite, Workload};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Harness parameters for one throughput measurement.
#[derive(Clone, Debug)]
pub struct ThroughputOptions {
    /// Workload scale factor (`suite(scale)`).
    pub scale: u32,
    /// VM instances per (workload × ISA form) cell.
    pub vms: usize,
    /// OS thread counts to sweep for the scaling section.
    pub threads: Vec<usize>,
}

impl Default for ThroughputOptions {
    /// Eight VMs per cell swept over 1, 2 and 4 harness threads at a
    /// small scale (`ILDP_SCALE` overrides the scale at the callers).
    fn default() -> ThroughputOptions {
        ThroughputOptions {
            scale: 5,
            vms: 8,
            threads: vec![1, 2, 4],
        }
    }
}

/// One point of the thread-scaling sweep.
#[derive(Clone, Copy, Debug)]
pub struct ScalingRun {
    /// Harness OS threads draining the VM work queue.
    pub threads: usize,
    /// VM runs completed (N × workloads × forms).
    pub runs: u64,
    /// Total retired guest V-instructions across every VM.
    pub total_guest_insts: u64,
    /// Wall-clock seconds for the whole sweep point.
    pub wall_seconds: f64,
    /// Largest per-thread CPU seconds — the parallel critical path.
    pub cpu_critical_path_seconds: f64,
    /// Summed CPU seconds across all harness threads.
    pub cpu_total_seconds: f64,
    /// `total_guest_insts / cpu_critical_path_seconds` (falls back to
    /// wall-clock when per-thread CPU accounting is unavailable).
    pub guest_insts_per_sec: f64,
    /// Guest-visible translation stall (blocking waits on the pipeline
    /// plus synchronous fallbacks), summed across VMs.
    pub translate_stall_seconds: f64,
    /// Worker-side translation wall time, summed across VMs.
    pub translate_wall_seconds: f64,
    /// Background translations installed at safe points.
    pub async_installs: u64,
    /// Background translations discarded as stale.
    pub async_dropped: u64,
}

/// Warm-start section totals across every (workload × ISA form) cell.
#[derive(Clone, Copy, Debug, Default)]
pub struct WarmStart {
    /// Cold (publishing) VM runs.
    pub cold_runs: u64,
    /// Fragments the cold VMs translated, verified and published.
    pub cold_fragments: u64,
    /// Warm VM runs against the populated store.
    pub warm_runs: u64,
    /// Fragment installs served from the store without retranslation.
    pub warm_hits: u64,
    /// Store lookups that missed and fell back to translation.
    pub warm_misses: u64,
    /// Fragments the warm VMs verified (must be zero: artifacts are
    /// published pre-verified).
    pub reverifications: u64,
}

impl WarmStart {
    /// Fraction of warm-VM fragment installs served from the store.
    pub fn reuse_rate(&self) -> f64 {
        let total = self.warm_hits + self.warm_misses;
        if total == 0 {
            0.0
        } else {
            self.warm_hits as f64 / total as f64
        }
    }

    /// Warm-VM translations that ran anyway (store misses).
    pub fn retranslations(&self) -> u64 {
        self.warm_misses
    }
}

/// The full throughput report: scaling sweep plus warm-start section.
#[derive(Clone, Debug)]
pub struct ThroughputReport {
    /// Workload scale the harness ran at.
    pub scale: u32,
    /// VM instances per cell.
    pub vms: usize,
    /// Worker threads in the shared translation pool.
    pub pool_workers: usize,
    /// One entry per swept thread count.
    pub scaling: Vec<ScalingRun>,
    /// Warm-start totals.
    pub warm: WarmStart,
}

impl ThroughputReport {
    /// Throughput ratio between the largest and smallest swept thread
    /// counts (the `1 → 4` scaling headline when the default sweep ran).
    pub fn scaling_ratio(&self) -> f64 {
        let first = self.scaling.first().map_or(0.0, |r| r.guest_insts_per_sec);
        let last = self.scaling.last().map_or(0.0, |r| r.guest_insts_per_sec);
        if first <= 0.0 {
            0.0
        } else {
            last / first
        }
    }
}

/// Nanoseconds of CPU time consumed by the calling thread, from
/// `/proc/thread-self/schedstat` (first field), falling back to
/// `utime+stime` from `/proc/thread-self/stat` at the conventional
/// 100 Hz tick. Returns 0 when neither source is available.
pub fn thread_cpu_nanos() -> u64 {
    if let Ok(s) = std::fs::read_to_string("/proc/thread-self/schedstat") {
        if let Some(n) = s.split_whitespace().next().and_then(|f| f.parse().ok()) {
            return n;
        }
    }
    if let Ok(s) = std::fs::read_to_string("/proc/thread-self/stat") {
        // Fields resume after the parenthesized comm; utime and stime are
        // the 12th and 13th fields past it.
        if let Some(rest) = s.rsplit(") ").next() {
            let f: Vec<&str> = rest.split_whitespace().collect();
            if f.len() > 12 {
                let utime: u64 = f[11].parse().unwrap_or(0);
                let stime: u64 = f[12].parse().unwrap_or(0);
                return (utime + stime) * 10_000_000;
            }
        }
    }
    0
}

fn throughput_config(form: IsaForm) -> VmConfig {
    VmConfig {
        translator: Translator {
            form,
            chain: ChainPolicy::SwPredDualRas,
            acc_count: 4,
            fuse_memory: false,
        },
        ..VmConfig::default()
    }
}

struct ThreadTally {
    cpu_nanos: u64,
    runs: u64,
    guest_insts: u64,
    stall_nanos: u64,
    translate_nanos: u64,
    async_installs: u64,
    async_dropped: u64,
}

fn scaling_point(suite: &[Workload], vms: usize, threads: usize) -> ScalingRun {
    // N replicas of every (workload × form) cell, longest budgets first
    // so the tail of the queue cannot strand one thread with the big job.
    let mut jobs: Vec<(usize, IsaForm)> = Vec::new();
    for _ in 0..vms {
        for (i, _) in suite.iter().enumerate() {
            for form in [IsaForm::Basic, IsaForm::Modified] {
                jobs.push((i, form));
            }
        }
    }
    jobs.sort_by_key(|&(i, _)| std::cmp::Reverse(suite[i].budget));
    let queue = Mutex::new(VecDeque::from(jobs));
    let tallies = Mutex::new(Vec::<ThreadTally>::new());

    let t0 = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..threads.max(1) {
            s.spawn(|| {
                let mut t = ThreadTally {
                    cpu_nanos: 0,
                    runs: 0,
                    guest_insts: 0,
                    stall_nanos: 0,
                    translate_nanos: 0,
                    async_installs: 0,
                    async_dropped: 0,
                };
                loop {
                    let job = queue.lock().expect("queue poisoned").pop_front();
                    let Some((i, form)) = job else { break };
                    let w = &suite[i];
                    let mut vm = Vm::new(throughput_config(form), &w.program);
                    let exit = vm.run(w.budget * 2, &mut NullSink);
                    assert!(
                        matches!(exit, VmExit::Halted | VmExit::Budget),
                        "{}: throughput run exited {exit:?}",
                        w.name
                    );
                    t.runs += 1;
                    t.guest_insts += vm.v_instructions();
                    let st = vm.stats();
                    t.stall_nanos += st.translate_stall_nanos;
                    t.translate_nanos += st.translate_wall_nanos;
                    t.async_installs += st.async_installs;
                    t.async_dropped += st.async_dropped;
                }
                t.cpu_nanos = thread_cpu_nanos();
                tallies.lock().expect("tallies poisoned").push(t);
            });
        }
    });
    let wall_seconds = t0.elapsed().as_secs_f64();

    let tallies = tallies.into_inner().expect("tallies poisoned");
    let critical = tallies.iter().map(|t| t.cpu_nanos).max().unwrap_or(0) as f64 * 1e-9;
    let total_insts: u64 = tallies.iter().map(|t| t.guest_insts).sum();
    let denom = if critical > 0.0 {
        critical
    } else {
        wall_seconds
    };
    ScalingRun {
        threads,
        runs: tallies.iter().map(|t| t.runs).sum(),
        total_guest_insts: total_insts,
        wall_seconds,
        cpu_critical_path_seconds: critical,
        cpu_total_seconds: tallies.iter().map(|t| t.cpu_nanos).sum::<u64>() as f64 * 1e-9,
        guest_insts_per_sec: total_insts as f64 / denom.max(1e-9),
        translate_stall_seconds: tallies.iter().map(|t| t.stall_nanos).sum::<u64>() as f64 * 1e-9,
        translate_wall_seconds: tallies.iter().map(|t| t.translate_nanos).sum::<u64>() as f64
            * 1e-9,
        async_installs: tallies.iter().map(|t| t.async_installs).sum(),
        async_dropped: tallies.iter().map(|t| t.async_dropped).sum(),
    }
}

fn warm_cell(w: &Workload, form: IsaForm, warm_vms: usize, totals: &mut WarmStart) {
    let store = Arc::new(FragmentStore::new());
    // Cold VM: translate synchronously, verify every fragment, publish.
    let cold_config = VmConfig {
        validator: Some(collecting_validator),
        async_translate: false,
        ..throughput_config(form)
    };
    let mut cold = Vm::new(cold_config, &w.program);
    cold.attach_store(Arc::clone(&store));
    let exit = cold.run(w.budget * 2, &mut NullSink);
    assert!(
        matches!(exit, VmExit::Halted | VmExit::Budget),
        "{}: cold run exited {exit:?}",
        w.name
    );
    let violations = take_report();
    assert!(
        violations.is_empty(),
        "{}: cold run produced verifier violations",
        w.name
    );
    totals.cold_runs += 1;
    totals.cold_fragments += cold.stats().warm_stores;

    for _ in 0..warm_vms {
        let mut warm = Vm::new(cold_config, &w.program);
        warm.attach_store(Arc::clone(&store));
        let exit = warm.run(w.budget * 2, &mut NullSink);
        assert!(
            matches!(exit, VmExit::Halted | VmExit::Budget),
            "{}: warm run exited {exit:?}",
            w.name
        );
        // The warm VM installed pre-verified artifacts; its validator
        // must never have fired.
        let violations = take_report();
        assert!(violations.is_empty(), "{}: warm run verified code", w.name);
        assert_eq!(
            warm.cpu().registers(),
            cold.cpu().registers(),
            "{}: warm-start run diverged architecturally",
            w.name
        );
        assert_eq!(
            warm.output(),
            cold.output(),
            "{}: warm output diverged",
            w.name
        );
        let st = warm.stats();
        totals.warm_runs += 1;
        totals.warm_hits += st.warm_hits;
        totals.warm_misses += st.warm_misses;
        totals.reverifications += st.fragments_verified;
    }
}

/// Runs the full throughput harness: the thread-scaling sweep followed
/// by the warm-start section.
pub fn run_throughput(opts: &ThroughputOptions) -> ThroughputReport {
    let suite = suite(opts.scale);
    let scaling = opts
        .threads
        .iter()
        .map(|&m| scaling_point(&suite, opts.vms, m))
        .collect();
    let mut warm = WarmStart::default();
    for w in &suite {
        for form in [IsaForm::Basic, IsaForm::Modified] {
            warm_cell(w, form, opts.vms.saturating_sub(1), &mut warm);
        }
    }
    ThroughputReport {
        scale: opts.scale,
        vms: opts.vms,
        pool_workers: TranslatePool::global().workers(),
        scaling,
        warm,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_smoke() {
        let opts = ThroughputOptions {
            scale: 1,
            vms: 2,
            threads: vec![1, 2],
        };
        let report = run_throughput(&opts);
        assert_eq!(report.scaling.len(), 2);
        for point in &report.scaling {
            assert_eq!(point.runs, (2 * 2 * suite(1).len()) as u64);
            assert!(point.total_guest_insts > 0);
            assert!(point.guest_insts_per_sec > 0.0);
        }
        // Every warm VM must have reused the cold VM's published
        // fragments without translating or verifying anything itself.
        assert!(report.warm.cold_fragments > 0);
        assert!(report.warm.warm_hits > 0);
        assert_eq!(report.warm.warm_misses, 0, "warm-start store missed");
        assert_eq!(report.warm.reverifications, 0);
        assert!((report.warm.reuse_rate() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn cpu_accounting_reads_something() {
        // Burn a little CPU so the counter is visibly nonzero on Linux.
        let mut x = 0u64;
        for i in 0..2_000_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        assert!(x != 1);
        // On non-Linux this may be 0 (documented fallback); on Linux the
        // schedstat/stat sources must parse.
        let _ = thread_cpu_nanos();
    }
}
