//! Plain-text report formatting for the experiment binaries, and the
//! schema reference for the JSON artifacts `perfstat` emits.
//!
//! # `BENCH_engine.json` (perfstat default mode)
//!
//! Single-VM functional-engine trajectory, synchronous translation:
//!
//! ```json
//! {
//!   "bench": "engine_functional",     // artifact discriminator
//!   "mode": "null_sink",              // no timing model attached
//!   "scale": 30, "reps": 3,           // ILDP_SCALE / PERFSTAT_REPS
//!   "guest_insts_per_sec": 0,         // total_guest_insts / total wall
//!   "total_guest_insts": 0, "total_wall_seconds": 0.0,
//!   "ras_hit_rate": 0.0,              // dual-RAS hits / (hits+misses)
//!   "fragments_verified": 0, "verify_wall_seconds": 0.0,
//!   "fragments_verified_per_s": 0,
//!   "evictions": 0, "smc_invalidations": 0, "demotions": 0,
//!   "interp_fallback_ratio": 0.0,     // steady-state, warmup excluded
//!   "seam_report": { /* whole-cache dataflow, see below */ },
//!   "workloads": [ { "name": "...", /* same fields per workload */ } ]
//! }
//! ```
//!
//! ## `seam_report` (aggregate and per-workload)
//!
//! The whole-cache dataflow pass (`ildp_verifier::flow`) over the final
//! installed cache — the optimization-opportunity counts that feed
//! region re-formation (ROADMAP item 5, DESIGN.md §10):
//!
//! ```json
//! { "fragments": 0,            // live fragments analyzed
//!   "resolved_edges": 0,       // chained seams in the fragment graph
//!   "boundary_exits": 0,       // exits treated as all-live boundaries
//!   "copy_ins": 0,             // static copy-from-GPR instructions
//!   "copy_outs": 0,            // static copy-to-GPR instructions
//!   "dead_copy_outs": 0,       // copy-outs provably dead at the copy
//!   "redundant_seam_pairs": 0  // copy-out→copy-in of the same register
//!                              // across a resolved seam
//! }
//! ```
//!
//! # Lint failure reports
//!
//! All four lint binaries (`vlint`, `chaoslint`, `replaylint`,
//! `flowlint`) emit one shared single-line JSON schema on failure, built
//! by [`crate::lint::LintReport`]:
//!
//! ```json
//! { "tool": "vlint", "scale": 10,
//!   /* tool-specific counters as extra top-level integer keys */
//!   "failures": [ { "cell": "gzip:basic:sw_pred.ras",
//!                   "details": ["V01 ..."] } ]
//! }
//! ```
//!
//! A failing `cell` feeds back into that tool's `--repro` flag; the
//! `lintall` binary runs the family in sequence and aggregates exit
//! status.
//!
//! # `BENCH_throughput.json` (`perfstat --throughput`)
//!
//! Multi-VM scaling sweep (asynchronous translation, shared pool) plus
//! the warm-start store section:
//!
//! ```json
//! {
//!   "bench": "multi_vm_throughput",
//!   "scale": 5,                       // ILDP_SCALE (default 5 here)
//!   "vms_per_cell": 8,                // ILDP_VMS
//!   "pool_workers": 1,                // shared TranslatePool width
//!   "throughput_metric": "...",       // how guest_insts_per_sec divides
//!   "scaling_ratio": 0.0,             // ips(max threads) / ips(1 thread)
//!   "scaling": [
//!     { "threads": 1, "runs": 0, "guest_insts": 0,
//!       "guest_insts_per_sec": 0,     // insts / cpu critical path
//!       "cpu_critical_path_seconds": 0.0,  // max per-thread CPU
//!       "cpu_total_seconds": 0.0, "wall_seconds": 0.0,
//!       "translate_stall_seconds": 0.0,    // guest-visible stall
//!       "translate_wall_seconds": 0.0,     // worker-side translate time
//!       "async_installs": 0, "async_dropped": 0 }
//!   ],
//!   "warm_start": {
//!     "cold_runs": 0, "cold_fragments": 0,  // published artifacts
//!     "warm_runs": 0, "warm_hits": 0, "warm_misses": 0,
//!     "reuse_rate": 0.0,              // hits / (hits+misses), gate ≥0.9
//!     "retranslations": 0,            // warm translations ran (gate 0)
//!     "reverifications": 0            // warm verifier calls (gate 0)
//!   }
//! }
//! ```
//!
//! The scaling section divides by the **CPU critical path** (largest
//! per-thread CPU time) rather than wall clock, so the sweep measures
//! parallel decomposition even when the host has fewer physical cores
//! than harness threads; `wall_seconds` is reported unmassaged next to
//! it.

/// Escapes a string for embedding in a JSON string literal (the lint
/// binaries emit structured failure reports without a JSON dependency).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A simple fixed-width table printer: benchmark rows, named numeric
/// columns, and an arithmetic-mean footer (the paper reports averages).
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<(String, Vec<f64>)>,
    precision: usize,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Table {
        Table {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            precision: 2,
        }
    }

    /// Sets the number of digits after the decimal point (default 2).
    pub fn precision(mut self, p: usize) -> Table {
        self.precision = p;
        self
    }

    /// Appends a benchmark row.
    ///
    /// # Panics
    ///
    /// Panics if the value count does not match the column count.
    pub fn row(&mut self, name: &str, values: &[f64]) {
        assert_eq!(values.len(), self.columns.len(), "column count mismatch");
        self.rows.push((name.to_string(), values.to_vec()));
    }

    /// Column-wise arithmetic means.
    pub fn averages(&self) -> Vec<f64> {
        let n = self.rows.len().max(1) as f64;
        (0..self.columns.len())
            .map(|c| self.rows.iter().map(|(_, v)| v[c]).sum::<f64>() / n)
            .collect()
    }

    /// Renders the table with an `Avg.` footer.
    pub fn render(&self) -> String {
        let name_w = self
            .rows
            .iter()
            .map(|(n, _)| n.len())
            .chain([4])
            .max()
            .unwrap()
            .max(9);
        let col_w = self
            .columns
            .iter()
            .map(|c| c.len().max(self.precision + 6))
            .collect::<Vec<_>>();
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        out.push_str(&format!("{:<name_w$}", ""));
        for (c, w) in self.columns.iter().zip(&col_w) {
            out.push_str(&format!("  {c:>w$}"));
        }
        out.push('\n');
        let fmt_val = |v: f64, w: usize| format!("  {v:>w$.prec$}", prec = self.precision);
        for (name, vals) in &self.rows {
            out.push_str(&format!("{name:<name_w$}"));
            for (v, w) in vals.iter().zip(&col_w) {
                out.push_str(&fmt_val(*v, *w));
            }
            out.push('\n');
        }
        out.push_str(&format!("{:<name_w$}", "Avg."));
        for (v, w) in self.averages().iter().zip(&col_w) {
            out.push_str(&fmt_val(*v, *w));
        }
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_rows_and_average() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row("gzip", &[1.0, 2.0]);
        t.row("mcf", &[3.0, 4.0]);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("gzip"));
        assert!(s.contains("Avg."));
        assert_eq!(t.averages(), vec![2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_arity_checked() {
        let mut t = Table::new("demo", &["a"]);
        t.row("x", &[1.0, 2.0]);
    }
}
