//! Record–replay and divergence-triage integration tests: a recorded
//! chaos cell replays to the identical report, a deliberately seeded
//! translator miscompile triages to the same first-divergent fragment
//! across repeated runs, and the `.repro` bundle round-trips through its
//! wire format to the same verdict.

use ildp_bench::chaos::{cell_config, chaos_cell_recorded, chaos_replay, CellSpec};
use ildp_bench::triage::{paced_run_events, triage_run, ReproBundle};
use ildp_core::{ChainPolicy, NullSink, ReplayEvent, ReplayLog, Sabotage, Vm};
use ildp_isa::IsaForm;
use spec_workloads::by_name;

#[test]
fn chaos_replay_reproduces_recorded_report() {
    for (name, form, chain, seed, delay) in [
        (
            "gzip",
            IsaForm::Modified,
            ChainPolicy::SwPredDualRas,
            7001,
            None,
        ),
        ("gcc", IsaForm::Basic, ChainPolicy::SwPred, 42, None),
        ("mcf", IsaForm::Modified, ChainPolicy::NoPred, 9_000, None),
        // Delayed-install cell: translations park before their safe-point
        // install, and the injection mix adds staged-translation drops.
        (
            "gzip",
            IsaForm::Modified,
            ChainPolicy::SwPredDualRas,
            7001,
            Some(64),
        ),
    ] {
        let w = by_name(name, 1).unwrap();
        let (res, log) = chaos_cell_recorded(&w, form, chain, seed, delay);
        let report = res.expect("recorded cell should pass");
        assert!(report.injections > 0, "{name}: cell injected nothing");
        let replayed = chaos_replay(&w, form, chain, &log, delay).expect("replay should pass");
        assert_eq!(replayed, report, "{name}: replay tally diverged");
        // And again through the wire format: artifact in, same tally out.
        let log2 = ReplayLog::from_bytes(&log.to_bytes()).unwrap();
        let replayed2 = chaos_replay(&w, form, chain, &log2, delay).unwrap();
        assert_eq!(replayed2, report, "{name}: wire-roundtrip replay diverged");
    }
}

#[test]
fn clean_run_triages_to_none() {
    let w = by_name("gzip", 1).unwrap();
    let log = ReplayLog {
        seed: 0,
        sabotage: vec![],
        events: vec![ReplayEvent::Run {
            budget: w.budget * 2,
        }],
    };
    let res = triage_run(
        &w.program,
        IsaForm::Modified,
        ChainPolicy::SwPredDualRas,
        &log,
        500,
        "gzip",
    )
    .expect("clean triage run should not error");
    assert!(res.is_none(), "clean run reported a divergence");
}

#[test]
fn seeded_miscompile_triages_deterministically() {
    let (form, chain) = (IsaForm::Modified, ChainPolicy::SwPredDualRas);
    let w = by_name("gzip", 1).unwrap();
    let budget = w.budget * 2;
    // Enumerate sabotage candidates from a clean run's live fragments.
    let mut vm = Vm::new(cell_config(form, chain), &w.program);
    vm.run(budget, &mut NullSink);
    let mut vstarts: Vec<u64> = vm.cache().fragments().map(|f| f.vstart).collect();
    vstarts.sort_unstable();
    assert!(!vstarts.is_empty(), "clean run translated nothing");

    let log_for = |vstart: u64| ReplayLog {
        seed: 0,
        sabotage: vec![Sabotage {
            vstart,
            slot: 0,
            imm_xor: 1,
        }],
        events: paced_run_events(budget, 500),
    };
    // The first candidate whose corrupted immediate actually changes the
    // architected outcome.
    let (vstart, result) = vstarts
        .iter()
        .find_map(|&vs| {
            triage_run(&w.program, form, chain, &log_for(vs), 500, "gzip")
                .unwrap()
                .map(|r| (vs, r))
        })
        .expect("no sabotage candidate produced a divergence");

    // The triage verdict must reproduce identically across repeated runs.
    for _ in 0..2 {
        let again = triage_run(&w.program, form, chain, &log_for(vstart), 500, "gzip")
            .unwrap()
            .expect("divergence vanished on re-run");
        assert_eq!(
            again.divergence, result.divergence,
            "triage nondeterministic"
        );
        assert_eq!(again.bundle, result.bundle, "bundle nondeterministic");
    }

    // The bundle survives its wire format and replays to the exact same
    // first-divergent fragment and state diff, repeatedly.
    let bytes = result.bundle.to_bytes();
    let bundle = ReproBundle::from_bytes(&bytes).expect("bundle wire roundtrip");
    assert_eq!(bundle, result.bundle);
    for _ in 0..3 {
        let replayed = bundle
            .replay()
            .expect("bundle replay errored")
            .expect("bundle replay found no divergence");
        assert_eq!(
            replayed, bundle.expected,
            "bundle replay diverged from verdict"
        );
    }
}

#[test]
fn cell_spec_roundtrips() {
    let spec = CellSpec {
        workload: "gzip".into(),
        form: IsaForm::Modified,
        chain: ChainPolicy::SwPredDualRas,
        seed: 7001,
        delay: None,
    };
    assert_eq!(spec.to_string(), "gzip:modified:sw_pred.ras:7001");
    assert_eq!(CellSpec::parse(&spec.to_string()).unwrap(), spec);
    let delayed = CellSpec {
        delay: Some(64),
        ..spec.clone()
    };
    assert_eq!(delayed.to_string(), "gzip:modified:sw_pred.ras:7001:d64");
    assert_eq!(CellSpec::parse(&delayed.to_string()).unwrap(), delayed);
    assert!(CellSpec::parse("nope:modified:sw_pred.ras:1").is_err());
    assert!(CellSpec::parse("gzip:modified:sw_pred.ras").is_err());
    assert!(CellSpec::parse("gzip:modified:sw_pred.ras:1:x64").is_err());
}
