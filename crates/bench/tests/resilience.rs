//! Differential tests for the resilient-cache machinery: bounded
//! eviction, SMC invalidation, the degradation ladder, fuel preemption,
//! and the flush-window reset — each compared against a pure-interpreter
//! reference for architecturally identical final state (all 32 GPRs,
//! memory contents, console output).

use alpha_isa::parse_program;
use ildp_bench::chaos::{chaos_cell, interp_reference};
use ildp_core::{
    ChainPolicy, FlushPolicy, InstallReview, NullSink, OnViolation, ProfileConfig, Translator, Vm,
    VmConfig, VmExit,
};
use ildp_isa::IsaForm;
use ildp_verifier::verify_installed;
use spec_workloads::suite;

fn base_config(form: IsaForm) -> VmConfig {
    VmConfig {
        translator: Translator {
            form,
            chain: ChainPolicy::SwPredDualRas,
            acc_count: 4,
            fuse_memory: false,
        },
        profile: ProfileConfig {
            threshold: 10,
            ..ProfileConfig::default()
        },
        // These tests assert precise install/eviction/ladder statistics;
        // synchronous translation keeps their timing deterministic.
        // (Async-mode equivalence is covered by tests/async_determinism.rs.)
        async_translate: false,
        ..VmConfig::default()
    }
}

fn assert_state_matches(vm: &Vm, reference: &ildp_bench::chaos::Reference, what: &str) {
    assert_eq!(
        vm.cpu().registers(),
        reference.regs,
        "{what}: GPRs diverged"
    );
    assert_eq!(
        vm.output(),
        reference.output.as_slice(),
        "{what}: console output diverged"
    );
    assert_eq!(
        vm.memory().content_digest(),
        reference.mem_digest,
        "{what}: memory diverged"
    );
}

/// Eviction under a tight code budget preserves architectural state on
/// every workload and both ISA forms, and the surviving cache passes the
/// full C01–C07 installed audit.
#[test]
fn capacity_bounded_runs_match_interpreter() {
    // Fragments encode to ~50–100 bytes each at this scale; a budget of
    // two-ish fragments keeps the clock hand under constant pressure.
    const BUDGET_BYTES: u64 = 128;
    let mut total_evictions = 0u64;
    for form in [IsaForm::Basic, IsaForm::Modified] {
        for w in suite(1) {
            let reference = interp_reference(&w.program, w.budget * 2).unwrap();
            let config = VmConfig {
                cache_budget: Some(BUDGET_BYTES),
                ..base_config(form)
            };
            let mut vm = Vm::new(config, &w.program);
            let exit = vm.run(w.budget * 2, &mut NullSink);
            let what = format!("{} ({form:?}, capacity-bounded)", w.name);
            assert_eq!(exit, VmExit::Halted, "{what}");
            assert_state_matches(&vm, &reference, &what);
            // The budget actually binds (modulo workloads too small to
            // ever exceed it), and live code respects it up to the one
            // protected (just-installed) fragment.
            let s = vm.stats();
            assert!(
                s.evictions > 0
                    || vm.cache().fragments().count() <= 1
                    || vm.cache().total_code_bytes() <= BUDGET_BYTES,
                "{what}: {} cumulative bytes but no evictions",
                vm.cache().total_code_bytes()
            );
            total_evictions += s.evictions;
            // Post-run chaining audit over every surviving fragment.
            let cache = vm.cache();
            for frag in cache.fragments() {
                let violations = verify_installed(cache, frag);
                assert!(
                    violations.is_empty(),
                    "{what}: audit violations after eviction: {violations:?}"
                );
            }
        }
    }
    assert!(total_evictions > 0, "budget never forced an eviction");
}

fn reject_everything(_review: &InstallReview) -> Result<(), String> {
    Err("fault injection: rejected".to_string())
}

/// A validator that rejects every translation drives each hot region down
/// the ladder to the interpret-only blacklist — and the run still matches
/// the interpreter exactly.
#[test]
fn rejected_translations_blacklist_and_stay_correct() {
    let w = spec_workloads::by_name("gzip", 1).unwrap();
    let reference = interp_reference(&w.program, w.budget * 2).unwrap();
    let config = VmConfig {
        validator: Some(reject_everything),
        on_violation: OnViolation::Reject,
        ..base_config(IsaForm::Modified)
    };
    let mut vm = Vm::new(config, &w.program);
    let exit = vm.run(w.budget * 2, &mut NullSink);
    assert_eq!(exit, VmExit::Halted);
    assert_state_matches(&vm, &reference, "reject-all ladder");
    let s = vm.stats();
    assert_eq!(s.fragments, 0, "no rejected translation may install");
    assert!(s.verify_rejected > 0);
    assert!(
        s.demotions > 0 && s.blacklisted > 0,
        "repeated rejection must walk the ladder to the blacklist \
         (demotions {}, blacklisted {})",
        s.demotions,
        s.blacklisted
    );
    assert!(s.interp_fallback_ratio() == 1.0);
}

/// A program whose hot loop stores into its own code page: the engine must
/// catch each store *before* it executes (precise state), invalidate the
/// fragment, and re-raise the store interpretively; repeated invalidation
/// walks the region down the ladder to the blacklist. Architected state
/// still matches the interpreter, for which the stores are ordinary
/// memory writes (fetch reads the immutable program image).
#[test]
fn self_modifying_store_invalidates_and_matches() {
    let source = "
        li    t0, 0x10000       ; this program's own code page
        li    s0, 600
loop:   stq   s1, 0(t0)
        addq  s1, #3, s1
        subq  s0, #1, s0
        bne   s0, loop
        mov   s1, v0
        halt
";
    let program = parse_program(source, 0x1_0000).unwrap();
    let reference = interp_reference(&program, 100_000).unwrap();
    for form in [IsaForm::Basic, IsaForm::Modified] {
        let mut vm = Vm::new(base_config(form), &program);
        let exit = vm.run(100_000, &mut NullSink);
        let what = format!("self-modifying stores ({form:?})");
        assert_eq!(exit, VmExit::Halted, "{what}");
        assert_state_matches(&vm, &reference, &what);
        let s = vm.stats();
        assert!(
            s.smc_invalidations >= 2,
            "{what}: loop must be invalidated repeatedly ({})",
            s.smc_invalidations
        );
        assert!(
            s.blacklisted >= 1,
            "{what}: repeated SMC must blacklist the region ({} demotions)",
            s.demotions
        );
    }
}

/// A tiny per-dispatch fuel budget preempts long fragment chains at
/// fragment boundaries; preempted regions are demoted and the run still
/// matches the interpreter.
#[test]
fn fuel_preemption_degrades_and_stays_correct() {
    let w = spec_workloads::by_name("gzip", 1).unwrap();
    let reference = interp_reference(&w.program, w.budget * 2).unwrap();
    let config = VmConfig {
        fuel: Some(100),
        ..base_config(IsaForm::Modified)
    };
    let mut vm = Vm::new(config, &w.program);
    let exit = vm.run(w.budget * 2, &mut NullSink);
    assert_eq!(exit, VmExit::Halted);
    assert_state_matches(&vm, &reference, "fuel preemption");
    assert!(vm.stats().fuel_preemptions > 0, "fuel never bound");
}

/// An external (embedder-initiated) flush must reset the Dynamo
/// flush-policy window along with the epoch: stale pre-flush timestamps
/// must not combine with post-flush translations into a spurious
/// back-to-back internal flush.
#[test]
fn external_flush_resets_policy_window() {
    let w = spec_workloads::by_name("gzip", 1).unwrap();
    let reference = interp_reference(&w.program, w.budget * 2).unwrap();

    // Calibrate: fragments translated by the midpoint and in total.
    let mut vm = Vm::new(base_config(IsaForm::Modified), &w.program);
    let mid = reference.insts / 2;
    assert_eq!(vm.run(mid, &mut NullSink), VmExit::Budget);
    let f1 = vm.stats().fragments;
    assert_eq!(vm.run(w.budget * 2, &mut NullSink), VmExit::Halted);
    let f_total = vm.stats().fragments;
    assert!(
        f1 >= 1 && f_total > f1,
        "calibration: f1 {f1}, total {f_total}"
    );

    // With stale timestamps surviving the external flush, the whole-run
    // window would see all f_total translations and fire at > f_total - 1;
    // with the epoch-keyed reset it sees only the post-flush ones
    // (f_total - f1 at most, since already-hot regions stay frozen).
    let config = VmConfig {
        flush: Some(FlushPolicy {
            window: u64::MAX,
            max_new_fragments: (f_total - 1) as u32,
        }),
        ..base_config(IsaForm::Modified)
    };
    let mut vm = Vm::new(config, &w.program);
    assert_eq!(vm.run(mid, &mut NullSink), VmExit::Budget);
    vm.cache_mut().flush();
    assert_eq!(vm.run(w.budget * 2, &mut NullSink), VmExit::Halted);
    assert_state_matches(&vm, &reference, "external flush");
    assert_eq!(
        vm.stats().cache_flushes,
        0,
        "stale window timestamps double-flushed after the external flush"
    );
}

/// One full chaos cell as part of the ordinary test suite: seeded fault
/// injection with audit-and-heal must contain every fault and converge to
/// the interpreter's final state.
#[test]
fn chaos_cell_smoke() {
    let w = spec_workloads::by_name("gcc", 1).unwrap();
    for chain in [ChainPolicy::NoPred, ChainPolicy::SwPredDualRas] {
        let report = chaos_cell(&w, IsaForm::Modified, chain, 0xC0FFEE, None).unwrap();
        assert!(report.injections > 0, "{chain:?}: nothing was injected");
        assert_eq!(report.undetected, 0);
    }
}
