//! Clean corpus translations pass all four verifier passes; every seeded
//! miscompile in the shared corpus (`ildp_bench::miscompile`) is caught
//! by the pass that owns the violated invariant. The same corpus drives
//! `flowlint`'s F-rule detection phase, so rule families A–E and F
//! exercise identical injection machinery.

use ildp_bench::miscompile::{corpus, translate, verifier_seeds};
use ildp_core::ChainPolicy;
use ildp_isa::{IInst, IsaForm};
use ildp_verifier::{verify_translation, Violation};

fn rules(vs: &[Violation]) -> Vec<&'static str> {
    vs.iter().map(|v| v.rule).collect()
}

#[test]
fn clean_translations_verify_clean_in_every_configuration() {
    for sb in corpus() {
        for form in [IsaForm::Basic, IsaForm::Modified] {
            for chain in [
                ChainPolicy::NoPred,
                ChainPolicy::SwPred,
                ChainPolicy::SwPredDualRas,
            ] {
                let (code, tr) = translate(&sb, form, chain);
                let vs = verify_translation(&sb, &code, &tr);
                assert!(
                    vs.is_empty(),
                    "{form:?}/{chain:?} translation of {:#x} should verify clean:\n{}",
                    sb.start,
                    vs.iter().map(|v| format!("  {v}\n")).collect::<String>()
                );
            }
        }
    }
}

#[test]
fn every_seeded_miscompile_is_caught_by_its_rule() {
    for seed in verifier_seeds() {
        let (sb, code, tr) = seed.build();
        let vs = verify_translation(&sb, &code, &tr);
        let rs = rules(&vs);
        assert!(
            rs.contains(&seed.rule),
            "{} ({}): expected {} among {rs:?}",
            seed.rule,
            seed.name,
            seed.rule,
        );
        if seed.rule == "E03" {
            // Only the symbolic pass can see a plausible-but-wrong exit
            // target: the structural passes must all stay silent.
            assert!(
                rs.iter().all(|r| r.starts_with('E')),
                "E03 ({}): structural rules fired on a structurally intact \
                 translation: {rs:?}",
                seed.name,
            );
        }
    }
}

#[test]
fn violations_carry_structured_diagnostics() {
    let sb = ildp_bench::miscompile::fig2_superblock();
    let (mut code, tr) = translate(&sb, IsaForm::Modified, ChainPolicy::SwPredDualRas);
    if let IInst::CallTranslator { vtarget } = code.insts.last_mut().unwrap() {
        *vtarget += 4;
    }
    let v = &verify_translation(&sb, &code, &tr)[0];
    assert_eq!(v.vstart, sb.start);
    assert!(!v.expected.is_empty() && !v.actual.is_empty());
    let shown = v.to_string();
    assert!(
        shown.contains("E0") && shown.contains("expected"),
        "{shown}"
    );
}
