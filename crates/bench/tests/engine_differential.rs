//! Differential test for the monomorphized engine loop: a traced run
//! (a recording sink with `TRACING = true`) and an untraced run
//! ([`NullSink`], which compiles the record-construction path out) must
//! be observationally identical — same exit, same final architected
//! registers, same console output, and the same [`EngineStats`] to the
//! last counter. This pins the invariant that tracing is a pure
//! observer: compiling it out changes nothing but wall-clock time.

use ildp_core::{ChainPolicy, EngineStats, NullSink, TraceSink, Translator, Vm, VmConfig, VmExit};
use ildp_isa::IsaForm;
use ildp_uarch::DynInst;
use spec_workloads::suite;

/// A tracing sink that counts records and folds every field into an FNV
/// hash, so divergence anywhere in the stream is caught without holding
/// the whole trace in memory.
#[derive(Default)]
struct HashingSink {
    records: u64,
    fnv: u64,
}

impl HashingSink {
    fn mix(&mut self, v: u64) {
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        self.fnv = (self.fnv ^ v).wrapping_mul(FNV_PRIME);
    }
}

impl TraceSink for HashingSink {
    fn retire(&mut self, d: &DynInst) {
        self.records += 1;
        self.mix(d.pc);
        self.mix(d.next_pc);
        self.mix(format!("{d:?}").len() as u64);
    }
}

fn config(form: IsaForm) -> VmConfig {
    VmConfig {
        translator: Translator {
            form,
            chain: ChainPolicy::SwPredDualRas,
            acc_count: 4,
            fuse_memory: false,
        },
        // Separate runs must agree counter-for-counter; asynchronous
        // install timing would make the interpret/execute split depend
        // on wall clock. (Async equivalence: tests/async_determinism.rs.)
        async_translate: false,
        ..VmConfig::default()
    }
}

fn run_traced(
    w: &spec_workloads::Workload,
    form: IsaForm,
) -> (VmExit, [u64; 32], Vec<u8>, EngineStats, u64) {
    let mut vm = Vm::new(config(form), &w.program);
    let mut sink = HashingSink::default();
    let exit = vm.run(w.budget * 2, &mut sink);
    assert!(
        sink.records > 0,
        "{}: traced run retired no records",
        w.name
    );
    (
        exit,
        vm.cpu().registers(),
        vm.output().to_vec(),
        vm.stats().engine.clone(),
        sink.records,
    )
}

fn run_untraced(
    w: &spec_workloads::Workload,
    form: IsaForm,
) -> (VmExit, [u64; 32], Vec<u8>, EngineStats) {
    let mut vm = Vm::new(config(form), &w.program);
    let exit = vm.run(w.budget * 2, &mut NullSink);
    (
        exit,
        vm.cpu().registers(),
        vm.output().to_vec(),
        vm.stats().engine.clone(),
    )
}

#[test]
fn traced_and_untraced_runs_are_observationally_identical() {
    for form in [IsaForm::Basic, IsaForm::Modified] {
        for w in suite(3) {
            let (t_exit, t_regs, t_out, t_stats, records) = run_traced(&w, form);
            let (u_exit, u_regs, u_out, u_stats) = run_untraced(&w, form);
            assert_eq!(t_exit, u_exit, "{}/{form:?}: exit diverged", w.name);
            assert_eq!(
                t_regs, u_regs,
                "{}/{form:?}: final registers diverged",
                w.name
            );
            assert_eq!(t_out, u_out, "{}/{form:?}: console output diverged", w.name);
            assert_eq!(
                t_stats, u_stats,
                "{}/{form:?}: engine stats diverged",
                w.name
            );
            // The traced run must retire at least one record per executed
            // engine instruction (dispatch expansion adds more).
            assert!(
                records >= t_stats.executed,
                "{}/{form:?}: {records} records < {} executed",
                w.name,
                t_stats.executed
            );
        }
    }
}

#[test]
fn tracing_is_deterministic() {
    let w = spec_workloads::by_name("gzip", 3).unwrap();
    let mut hashes = Vec::new();
    for _ in 0..2 {
        let mut vm = Vm::new(config(IsaForm::Modified), &w.program);
        let mut sink = HashingSink::default();
        vm.run(w.budget * 2, &mut sink);
        hashes.push((sink.records, sink.fnv));
    }
    assert_eq!(
        hashes[0], hashes[1],
        "trace stream varied across identical runs"
    );
}
