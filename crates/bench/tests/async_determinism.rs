//! Determinism gate for the background translation pipeline: for every
//! workload × ISA form, a VM running with asynchronous translation (the
//! default) must reach the exact same final architected state — all 32
//! GPRs, memory contents, console output, and retired V-instruction
//! count — as a VM translating synchronously, and as the shared-cache
//! warm-start path. Install *timing* is the only thing the pipeline is
//! allowed to change.

use ildp_core::{ChainPolicy, FragmentStore, NullSink, Translator, Vm, VmConfig, VmExit};
use ildp_isa::IsaForm;
use spec_workloads::suite;
use std::sync::Arc;

fn config(form: IsaForm, async_translate: bool) -> VmConfig {
    VmConfig {
        translator: Translator {
            form,
            chain: ChainPolicy::SwPredDualRas,
            acc_count: 4,
            fuse_memory: false,
        },
        async_translate,
        ..VmConfig::default()
    }
}

#[test]
fn async_pipeline_is_architecturally_invisible() {
    for w in suite(1) {
        for form in [IsaForm::Basic, IsaForm::Modified] {
            let what = format!("{} ({form:?})", w.name);
            let budget = w.budget * 2;

            let mut sync_vm = Vm::new(config(form, false), &w.program);
            let sync_exit = sync_vm.run(budget, &mut NullSink);
            assert_eq!(sync_exit, VmExit::Halted, "{what}: sync run");

            let mut async_vm = Vm::new(config(form, true), &w.program);
            let async_exit = async_vm.run(budget, &mut NullSink);
            assert_eq!(async_exit, sync_exit, "{what}: exit diverged");
            assert_eq!(
                async_vm.cpu().registers(),
                sync_vm.cpu().registers(),
                "{what}: GPRs diverged"
            );
            assert_eq!(
                async_vm.memory().content_digest(),
                sync_vm.memory().content_digest(),
                "{what}: memory diverged"
            );
            assert_eq!(
                async_vm.output(),
                sync_vm.output(),
                "{what}: console output diverged"
            );
            assert_eq!(
                async_vm.v_instructions(),
                sync_vm.v_instructions(),
                "{what}: retired count diverged"
            );
        }
    }
}

#[test]
fn warm_start_is_architecturally_invisible() {
    for w in suite(1) {
        let form = IsaForm::Modified;
        let what = format!("{} warm start", w.name);
        let budget = w.budget * 2;

        let mut reference = Vm::new(config(form, false), &w.program);
        assert_eq!(reference.run(budget, &mut NullSink), VmExit::Halted);

        let store = Arc::new(FragmentStore::new());
        let mut cold = Vm::new(config(form, false), &w.program);
        cold.attach_store(Arc::clone(&store));
        assert_eq!(cold.run(budget, &mut NullSink), VmExit::Halted);

        let mut warm = Vm::new(config(form, false), &w.program);
        warm.attach_store(Arc::clone(&store));
        assert_eq!(warm.run(budget, &mut NullSink), VmExit::Halted);
        assert!(
            warm.stats().warm_hits > 0 || cold.stats().warm_stores == 0,
            "{what}: store populated but never hit"
        );
        for (vm, label) in [(&cold, "cold"), (&warm, "warm")] {
            assert_eq!(
                vm.cpu().registers(),
                reference.cpu().registers(),
                "{what}: {label} GPRs diverged"
            );
            assert_eq!(
                vm.memory().content_digest(),
                reference.memory().content_digest(),
                "{what}: {label} memory diverged"
            );
            assert_eq!(
                vm.output(),
                reference.output(),
                "{what}: {label} output diverged"
            );
            assert_eq!(
                vm.v_instructions(),
                reference.v_instructions(),
                "{what}: {label} retired count diverged"
            );
        }
    }
}
