//! End-to-end benchmark: the full co-designed VM (interpret → translate →
//! execute with the ILDP timing model) over a small workload — the
//! pipeline every figure-reproduction binary exercises.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ildp_bench::{run_ildp, run_original, run_straightened, IldpParams};
use ildp_core::ChainPolicy;
use ildp_isa::IsaForm;
use spec_workloads::by_name;

fn bench_end_to_end(c: &mut Criterion) {
    let w = by_name("gzip", 1).expect("gzip exists");
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    group.throughput(Throughput::Elements(w.budget));

    group.bench_function("vm_ildp_modified_gzip", |b| {
        b.iter(|| run_ildp(&w, IsaForm::Modified, IldpParams::default()))
    });
    group.bench_function("vm_ildp_basic_gzip", |b| {
        b.iter(|| run_ildp(&w, IsaForm::Basic, IldpParams::default()))
    });
    group.bench_function("straightened_gzip", |b| {
        b.iter(|| run_straightened(&w, ChainPolicy::SwPredDualRas))
    });
    group.bench_function("original_superscalar_gzip", |b| {
        b.iter(|| run_original(&w, true))
    });
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
