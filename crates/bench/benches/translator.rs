//! Microbenchmarks of the DBT hot path: superblock collection analysis,
//! strand planning and code emission — the work the paper's §4.2 overhead
//! numbers account for.

use alpha_isa::{Assembler, Reg};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ildp_core::{
    analyze, collect_superblock, decompose, plan, ChainPolicy, ProfileConfig, Superblock,
    Translator,
};
use ildp_isa::IsaForm;

/// A ~40-instruction superblock with mixed ALU/memory/branch content.
fn sample_superblock() -> Superblock {
    let mut asm = Assembler::new(0x1_0000);
    let buf = asm.zero_block(4096);
    asm.li32(Reg::A0, buf as u32);
    asm.lda_imm(Reg::A1, 1000);
    let top = asm.here("top");
    for k in 0..4 {
        asm.ldq(Reg::new(1), k * 8, Reg::A0);
        asm.sll_imm(Reg::new(1), 3, Reg::new(2));
        asm.xor(Reg::new(1), Reg::new(2), Reg::new(2));
        asm.addq(Reg::V0, Reg::new(2), Reg::V0);
        asm.stq(Reg::new(2), k * 8 + 32, Reg::A0);
        asm.cmplt_imm(Reg::new(2), 100, Reg::new(3));
        let skip = asm.label(format!("skip{k}"));
        asm.beq(Reg::new(3), skip);
        asm.addq_imm(Reg::V0, 1, Reg::V0);
        asm.bind(skip);
    }
    asm.lda(Reg::A0, 64, Reg::A0);
    asm.subq_imm(Reg::A1, 1, Reg::A1);
    asm.bne(Reg::A1, top);
    asm.halt();
    let program = asm.finish().unwrap();
    let (mut cpu, mut mem) = program.load();
    // Reach the loop top, then collect.
    let inst = program.fetch(cpu.pc).unwrap();
    alpha_isa::step(&mut cpu, &mut mem, inst, alpha_isa::AlignPolicy::Enforce).unwrap();
    let inst = program.fetch(cpu.pc).unwrap();
    alpha_isa::step(&mut cpu, &mut mem, inst, alpha_isa::AlignPolicy::Enforce).unwrap();
    let inst = program.fetch(cpu.pc).unwrap();
    alpha_isa::step(&mut cpu, &mut mem, inst, alpha_isa::AlignPolicy::Enforce).unwrap();
    collect_superblock(&mut cpu, &mut mem, &program, &ProfileConfig::default()).unwrap()
}

fn bench_translator(c: &mut Criterion) {
    let sb = sample_superblock();
    assert!(sb.len() > 30, "superblock is {} instructions", sb.len());

    c.bench_function("decompose_40inst_superblock", |b| {
        b.iter(|| decompose(std::hint::black_box(&sb)))
    });

    let nodes = decompose(&sb);
    c.bench_function("classify_40inst_superblock", |b| {
        b.iter(|| analyze(std::hint::black_box(&nodes)))
    });

    let df = analyze(&nodes);
    c.bench_function("plan_strands_4acc", |b| {
        b.iter(|| plan(std::hint::black_box(&nodes), &df, 4, true))
    });

    for form in [IsaForm::Basic, IsaForm::Modified] {
        let tr = Translator {
            form,
            chain: ChainPolicy::SwPredDualRas,
            acc_count: 4,
            fuse_memory: false,
        };
        c.bench_function(&format!("translate_40inst_{form:?}"), |b| {
            b.iter_batched(
                || sb.clone(),
                |sb| tr.translate(std::hint::black_box(&sb)),
                BatchSize::SmallInput,
            )
        });
    }
}

criterion_group!(benches, bench_translator);
criterion_main!(benches);
