//! Microbenchmarks of the simulation substrate: predictors, caches, the
//! Alpha interpreter step, and the timing models' retire paths.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ildp_uarch::{
    Btb, Cache, CacheConfig, DualAddressRas, DynInst, Gshare, IldpConfig, IldpModel,
    SuperscalarConfig, SuperscalarModel, TimingModel,
};

fn bench_predictors(c: &mut Criterion) {
    let mut group = c.benchmark_group("predictors");
    group.throughput(Throughput::Elements(1));
    group.bench_function("gshare_predict_update", |b| {
        let mut p = Gshare::new(16 * 1024, 12);
        let mut pc = 0x1000u64;
        b.iter(|| {
            let taken = pc & 4 == 0;
            let pred = p.predict(pc);
            p.update(pc, taken);
            pc = pc.wrapping_add(4);
            std::hint::black_box(pred)
        })
    });
    group.bench_function("btb_predict_update", |b| {
        let mut btb = Btb::new(512, 4);
        let mut pc = 0x1000u64;
        b.iter(|| {
            let pred = btb.predict(pc);
            btb.update(pc, pc ^ 0x40);
            pc = pc.wrapping_add(4) & 0xffff;
            std::hint::black_box(pred)
        })
    });
    group.bench_function("dual_ras_push_pop", |b| {
        let mut ras = DualAddressRas::new(8);
        let mut i = 0u64;
        b.iter(|| {
            ras.push(i, i ^ 0xf000);
            i += 1;
            std::hint::black_box(ras.pop())
        })
    });
    group.finish();
}

fn bench_caches(c: &mut Criterion) {
    let mut group = c.benchmark_group("caches");
    group.throughput(Throughput::Elements(1));
    group.bench_function("dcache_32k_hit", |b| {
        let mut cache = Cache::new(CacheConfig::dcache_32k());
        cache.access(0x1000);
        b.iter(|| std::hint::black_box(cache.access(0x1000)))
    });
    group.bench_function("dcache_32k_streaming_miss", |b| {
        let mut cache = Cache::new(CacheConfig::dcache_32k());
        let mut addr = 0u64;
        b.iter(|| {
            addr += 64;
            std::hint::black_box(cache.access(addr))
        })
    });
    group.finish();
}

fn bench_interpreter(c: &mut Criterion) {
    use alpha_isa::{run_to_halt, AlignPolicy, Assembler, Reg};
    let mut asm = Assembler::new(0x1000);
    asm.lda_imm(Reg::A0, 10_000);
    let top = asm.here("top");
    asm.addq(Reg::V0, Reg::A0, Reg::V0);
    asm.xor_imm(Reg::V0, 0x5a, Reg::V0);
    asm.subq_imm(Reg::A0, 1, Reg::A0);
    asm.bne(Reg::A0, top);
    asm.halt();
    let program = asm.finish().unwrap();
    let mut group = c.benchmark_group("interpreter");
    group.throughput(Throughput::Elements(40_002));
    group.bench_function("alpha_interp_40k_insts", |b| {
        b.iter(|| {
            let (mut cpu, mut mem) = program.load();
            run_to_halt(&mut cpu, &mut mem, &program, AlignPolicy::Enforce, 100_000).unwrap()
        })
    });
    group.finish();
}

fn trace_block() -> Vec<DynInst> {
    (0..10_000u64)
        .map(|i| {
            let mut d = DynInst::alu(0x1000 + (i % 64) * 4, 4);
            d.srcs[0] = Some((i % 8) as u8);
            d.dst = Some(((i + 1) % 8) as u8);
            d.acc = Some((i % 4) as u8);
            d.acc_read = i % 5 != 0;
            d.acc_write = true;
            if i % 7 == 0 {
                d.class = ildp_uarch::InstClass::Load;
                d.mem_addr = Some(0x10_0000 + (i * 64) % 32768);
            }
            d
        })
        .collect()
}

fn bench_timing_models(c: &mut Criterion) {
    let trace = trace_block();
    let mut group = c.benchmark_group("timing_models");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("superscalar_retire_10k", |b| {
        b.iter(|| {
            let mut m = SuperscalarModel::new(SuperscalarConfig::default());
            for d in &trace {
                m.retire(d);
            }
            m.finish()
        })
    });
    group.bench_function("ildp_retire_10k", |b| {
        b.iter(|| {
            let mut m = IldpModel::new(IldpConfig::default());
            for d in &trace {
                m.retire(d);
            }
            m.finish()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_predictors,
    bench_caches,
    bench_interpreter,
    bench_timing_models
);
criterion_main!(benches);
