//! Benchmarks of the engine fast path: install-time fragment linking
//! versus hash-table lookup for intra-cache control transfers, and the
//! monomorphized run loop with tracing compiled out versus a tracing
//! sink.
//!
//! See DESIGN.md "Execution fast path" and BENCH_engine.json (produced
//! by the `perfstat` binary) for end-to-end numbers on the workload
//! suite.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ildp_core::{ChainPolicy, NullSink, TraceSink, Translator, Vm, VmConfig};
use ildp_isa::IsaForm;
use ildp_uarch::DynInst;
use spec_workloads::by_name;

fn vm_config() -> VmConfig {
    VmConfig {
        translator: Translator {
            form: IsaForm::Modified,
            chain: ChainPolicy::SwPredDualRas,
            acc_count: 4,
            fuse_memory: false,
        },
        ..VmConfig::default()
    }
}

/// A minimal tracing sink: keeps `TRACING = true` so the engine builds
/// and retires a full record per instruction, but does bounded work per
/// record so the benchmark isolates the record-construction cost.
#[derive(Default)]
struct CountSink(u64);

impl TraceSink for CountSink {
    fn retire(&mut self, d: &DynInst) {
        self.0 = self.0.wrapping_add(d.pc);
    }
}

/// Intra-cache control transfers: after install-time linking, taken
/// branches and dual-RAS returns follow a direct `FragmentId` instead of
/// hashing the target I-address. `follow_link` is the per-transfer cost
/// the engine pays now; `lookup_iaddr` is what the same transfer paid
/// when it went through the hash table.
fn bench_transfer_resolution(c: &mut Criterion) {
    // Populate a cache by running a branchy workload to steady state.
    let w = by_name("gcc", 5).unwrap();
    let mut vm = Vm::new(vm_config(), &w.program);
    vm.run(w.budget * 2, &mut NullSink);
    let cache = vm.cache();
    let frags: Vec<(u64, ildp_core::FragmentId)> =
        cache.fragments().map(|f| (f.istart, f.id)).collect();
    assert!(frags.len() > 4, "workload must translate several fragments");

    let mut group = c.benchmark_group("transfer");
    group.throughput(Throughput::Elements(1));
    let mut k = 0usize;
    group.bench_function("lookup_iaddr", |b| {
        b.iter(|| {
            k = (k + 1) % frags.len();
            std::hint::black_box(cache.lookup_iaddr(frags[k].0))
        })
    });
    let mut j = 0usize;
    group.bench_function("follow_link", |b| {
        b.iter(|| {
            j = (j + 1) % frags.len();
            // The engine's linked path: the FragmentId is already in the
            // instruction's link slot; the transfer is one index.
            std::hint::black_box(cache.fragment(frags[j].1).istart)
        })
    });
    group.finish();
}

/// End-to-end engine throughput, traced versus untraced, on a loop-heavy
/// workload. The untraced run uses [`NullSink`] (`TRACING = false`), so
/// the monomorphized loop compiles the whole record-construction path
/// out; the traced run pays for template copy plus dynamic patching.
fn bench_traced_vs_untraced(c: &mut Criterion) {
    let w = by_name("gzip", 3).unwrap();
    let v_insts = {
        let mut vm = Vm::new(vm_config(), &w.program);
        vm.run(w.budget * 2, &mut NullSink);
        vm.stats().engine.v_insts + vm.stats().interpreted
    };

    let mut group = c.benchmark_group("engine_run");
    group.sample_size(10);
    group.throughput(Throughput::Elements(v_insts));
    group.bench_function("untraced_nullsink", |b| {
        b.iter(|| {
            let mut vm = Vm::new(vm_config(), &w.program);
            std::hint::black_box(vm.run(w.budget * 2, &mut NullSink))
        })
    });
    group.bench_function("traced_countsink", |b| {
        b.iter(|| {
            let mut vm = Vm::new(vm_config(), &w.program);
            let mut sink = CountSink::default();
            let exit = vm.run(w.budget * 2, &mut sink);
            std::hint::black_box((exit, sink.0))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_transfer_resolution, bench_traced_vs_untraced);
criterion_main!(benches);
