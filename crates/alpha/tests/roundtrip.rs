//! Property tests: encode/decode round-tripping and semantic invariants.

use alpha_isa::{
    decode, encode, step, AlignPolicy, BranchOp, CpuState, Inst, JumpKind, MemOp, Memory, Operand,
    OperateOp, PalFunc, Reg,
};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::new)
}

fn arb_mem_op() -> impl Strategy<Value = MemOp> {
    prop_oneof![
        Just(MemOp::Lda),
        Just(MemOp::Ldah),
        Just(MemOp::Ldbu),
        Just(MemOp::Ldwu),
        Just(MemOp::Ldl),
        Just(MemOp::Ldq),
        Just(MemOp::Stb),
        Just(MemOp::Stw),
        Just(MemOp::Stl),
        Just(MemOp::Stq),
    ]
}

fn arb_branch_op() -> impl Strategy<Value = BranchOp> {
    prop_oneof![
        Just(BranchOp::Br),
        Just(BranchOp::Bsr),
        Just(BranchOp::Beq),
        Just(BranchOp::Bne),
        Just(BranchOp::Blt),
        Just(BranchOp::Ble),
        Just(BranchOp::Bgt),
        Just(BranchOp::Bge),
        Just(BranchOp::Blbc),
        Just(BranchOp::Blbs),
    ]
}

fn arb_operate_op() -> impl Strategy<Value = OperateOp> {
    use OperateOp::*;
    prop_oneof![
        prop_oneof![
            Just(Addl),
            Just(Addq),
            Just(Subl),
            Just(Subq),
            Just(S4addl),
            Just(S4addq),
            Just(S8addq),
            Just(S4subq),
            Just(S8subq),
        ],
        prop_oneof![
            Just(Cmpeq),
            Just(Cmplt),
            Just(Cmple),
            Just(Cmpult),
            Just(Cmpule),
        ],
        prop_oneof![
            Just(And),
            Just(Bic),
            Just(Bis),
            Just(Ornot),
            Just(Xor),
            Just(Eqv),
        ],
        prop_oneof![
            Just(Cmoveq),
            Just(Cmovne),
            Just(Cmovlt),
            Just(Cmovge),
            Just(Cmovle),
            Just(Cmovgt),
            Just(Cmovlbs),
            Just(Cmovlbc),
        ],
        prop_oneof![
            Just(Sll),
            Just(Srl),
            Just(Sra),
            Just(Extbl),
            Just(Extwl),
            Just(Extll),
            Just(Extql),
            Just(Insbl),
            Just(Mskbl),
            Just(Zapnot),
            Just(Zap),
        ],
        prop_oneof![Just(Mull), Just(Mulq), Just(Umulh)],
    ]
}

fn arb_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        (arb_mem_op(), arb_reg(), arb_reg(), any::<i16>())
            .prop_map(|(op, ra, rb, disp)| Inst::Mem { op, ra, rb, disp }),
        (arb_branch_op(), arb_reg(), -(1i32 << 20)..(1i32 << 20))
            .prop_map(|(op, ra, disp)| Inst::Branch { op, ra, disp }),
        (
            prop_oneof![
                Just(JumpKind::Jmp),
                Just(JumpKind::Jsr),
                Just(JumpKind::Ret),
                Just(JumpKind::JsrCoroutine)
            ],
            arb_reg(),
            arb_reg(),
            0u16..(1 << 14),
        )
            .prop_map(|(kind, ra, rb, hint)| Inst::Jump { kind, ra, rb, hint }),
        (
            arb_operate_op(),
            arb_reg(),
            prop_oneof![
                arb_reg().prop_map(Operand::Reg),
                any::<u8>().prop_map(Operand::Lit)
            ],
            arb_reg(),
        )
            .prop_map(|(op, ra, rb, rc)| Inst::Operate { op, ra, rb, rc }),
        prop_oneof![
            Just(PalFunc::Halt),
            Just(PalFunc::GenTrap),
            Just(PalFunc::PutChar)
        ]
        .prop_map(|func| Inst::CallPal { func }),
    ]
}

proptest! {
    /// Every constructible instruction encodes, and decoding the encoding
    /// yields the identical instruction.
    #[test]
    fn encode_decode_roundtrip(inst in arb_inst()) {
        let word = encode(inst).expect("in-range instruction must encode");
        prop_assert_eq!(decode(word), Some(inst));
    }

    /// Decoding any word either fails or re-encodes to the same word
    /// (decode is the partial inverse of encode).
    #[test]
    fn decode_encode_consistent(word in any::<u32>()) {
        if let Some(inst) = decode(word) {
            let reenc = encode(inst).expect("decoded instruction must re-encode");
            prop_assert_eq!(reenc, word);
        }
    }

    /// R31 destination writes never change register state.
    #[test]
    fn r31_writes_discarded(op in arb_operate_op(), a in any::<u64>(), b in any::<u64>()) {
        let mut cpu = CpuState::new(0x1000);
        let mut mem = Memory::new();
        cpu.write(Reg::new(1), a);
        cpu.write(Reg::new(2), b);
        let before = cpu.registers();
        let inst = Inst::Operate {
            op,
            ra: Reg::new(1),
            rb: Operand::Reg(Reg::new(2)),
            rc: Reg::ZERO,
        };
        step(&mut cpu, &mut mem, inst, AlignPolicy::Enforce).unwrap();
        prop_assert_eq!(cpu.registers(), before);
    }

    /// A trapping step leaves all architected state untouched (precision).
    #[test]
    fn traps_are_precise(base in any::<u64>(), disp in any::<i16>()) {
        let mut cpu = CpuState::new(0x1000);
        let mut mem = Memory::new();
        cpu.write(Reg::new(2), base);
        let inst = Inst::Mem { op: MemOp::Ldq, ra: Reg::new(1), rb: Reg::new(2), disp };
        let before = (cpu.clone(), cpu.pc);
        match step(&mut cpu, &mut mem, inst, AlignPolicy::Enforce) {
            Ok(_) => {}
            Err(_) => {
                prop_assert_eq!(cpu, before.0);
            }
        }
    }

    /// Operate evaluation is deterministic and total for all inputs.
    #[test]
    fn operate_eval_total(op in arb_operate_op(), a in any::<u64>(), b in any::<u64>()) {
        let v1 = op.eval(a, b);
        let v2 = op.eval(a, b);
        prop_assert_eq!(v1, v2);
        // 32-bit ops must produce canonical sign-extended results.
        if matches!(op, OperateOp::Addl | OperateOp::Subl | OperateOp::Mull | OperateOp::S4addl) {
            prop_assert_eq!(v1, v1 as u32 as i32 as i64 as u64);
        }
    }

    /// Compare operations produce only 0 or 1.
    #[test]
    fn compares_are_boolean(a in any::<u64>(), b in any::<u64>()) {
        for op in [OperateOp::Cmpeq, OperateOp::Cmplt, OperateOp::Cmple,
                   OperateOp::Cmpult, OperateOp::Cmpule] {
            prop_assert!(op.eval(a, b) <= 1);
        }
    }
}
