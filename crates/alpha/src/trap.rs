//! Trap conditions raised by Alpha execution.
//!
//! In the co-designed VM these are the events that must be delivered
//! *precisely*: the trapping V-ISA instruction's address and all architected
//! state up to (but not including) it must be recoverable. See the paper's
//! Section 2.2.

use std::fmt;

/// A precise trap condition.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Trap {
    /// A memory access whose address is not naturally aligned for its size.
    UnalignedAccess {
        /// The faulting effective address.
        addr: u64,
        /// The required alignment in bytes.
        required: u8,
    },
    /// An access outside the program's mapped segments (used when a memory
    /// bounds policy is installed; the bare interpreter maps everything).
    AccessViolation {
        /// The faulting effective address.
        addr: u64,
    },
    /// A `CALL_PAL gentrap` — a deliberate, program-requested trap.
    GenTrap {
        /// The value of `a0` at the trap, identifying the cause.
        code: u64,
    },
    /// An instruction word outside the implemented subset.
    IllegalInstruction {
        /// The undecodable machine word.
        word: u32,
    },
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Trap::UnalignedAccess { addr, required } => {
                write!(f, "unaligned {required}-byte access at {addr:#x}")
            }
            Trap::AccessViolation { addr } => write!(f, "access violation at {addr:#x}"),
            Trap::GenTrap { code } => write!(f, "gentrap with code {code}"),
            Trap::IllegalInstruction { word } => {
                write!(f, "illegal instruction word {word:#010x}")
            }
        }
    }
}

impl std::error::Error for Trap {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            Trap::UnalignedAccess {
                addr: 0x1001,
                required: 8
            }
            .to_string(),
            "unaligned 8-byte access at 0x1001"
        );
        assert!(Trap::GenTrap { code: 3 }.to_string().contains("code 3"));
    }
}
