//! Architected Alpha CPU state.

use crate::Reg;
use std::fmt;

/// The architected integer state of an Alpha processor: 31 writable 64-bit
/// registers plus the program counter. `R31` reads as zero.
///
/// # Examples
///
/// ```
/// use alpha_isa::{CpuState, Reg};
/// let mut cpu = CpuState::new(0x1_0000);
/// cpu.write(Reg::V0, 42);
/// assert_eq!(cpu.read(Reg::V0), 42);
/// cpu.write(Reg::ZERO, 99);
/// assert_eq!(cpu.read(Reg::ZERO), 0);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct CpuState {
    regs: [u64; 32],
    /// The architected program counter.
    pub pc: u64,
}

impl CpuState {
    /// Creates a state with all registers zero and the given entry PC.
    pub fn new(entry_pc: u64) -> CpuState {
        CpuState {
            regs: [0; 32],
            pc: entry_pc,
        }
    }

    /// Creates a state with the given PC and register file (the `R31`
    /// slot forced to zero) — the snapshot-restore constructor.
    pub fn with_registers(pc: u64, regs: &[u64; 32]) -> CpuState {
        let mut cpu = CpuState::new(pc);
        cpu.set_registers(regs);
        cpu
    }

    /// Reads a register (`R31` reads zero).
    #[inline]
    pub fn read(&self, r: Reg) -> u64 {
        if r.is_zero() {
            0
        } else {
            self.regs[r.number() as usize]
        }
    }

    /// Writes a register (writes to `R31` are discarded).
    #[inline]
    pub fn write(&mut self, r: Reg, value: u64) {
        if !r.is_zero() {
            self.regs[r.number() as usize] = value;
        }
    }

    /// Snapshot of all 32 register values (`R31` reported as zero).
    pub fn registers(&self) -> [u64; 32] {
        let mut out = self.regs;
        out[31] = 0;
        out
    }

    /// Restores all 32 register values from a snapshot (the `R31` slot is
    /// forced to zero). Used to reinstate recovered precise state.
    pub fn set_registers(&mut self, regs: &[u64; 32]) {
        self.regs = *regs;
        self.regs[31] = 0;
    }
}

impl fmt::Debug for CpuState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "CpuState {{ pc: {:#x}", self.pc)?;
        for r in Reg::all() {
            let v = self.read(r);
            if v != 0 {
                writeln!(f, "  {:>4} = {v:#x}", r.conventional_name())?;
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_register_is_hardwired() {
        let mut cpu = CpuState::new(0);
        cpu.write(Reg::ZERO, 1234);
        assert_eq!(cpu.read(Reg::ZERO), 0);
        assert_eq!(cpu.registers()[31], 0);
    }

    #[test]
    fn registers_snapshot_reflects_writes() {
        let mut cpu = CpuState::new(0x40);
        cpu.write(Reg::new(7), 7);
        let snap = cpu.registers();
        assert_eq!(snap[7], 7);
        assert_eq!(cpu.pc, 0x40);
    }

    #[test]
    fn debug_output_nonempty() {
        let cpu = CpuState::new(0);
        assert!(!format!("{cpu:?}").is_empty());
    }
}
