//! # alpha-isa — the Alpha V-ISA frontend
//!
//! A from-scratch implementation of the (integer) Alpha instruction set as
//! used by the co-designed virtual machine of Kim & Smith, *Dynamic Binary
//! Translation for Accumulator-Oriented Architectures* (CGO 2003). Alpha is
//! the **virtual ISA**: the outwardly visible instruction set that the
//! binary translator consumes and whose semantics the whole system must
//! preserve — including precise traps.
//!
//! The crate provides:
//!
//! * decoded instruction types ([`Inst`] and the per-format operation enums),
//! * real Alpha machine-word [`encode`]/[`decode`],
//! * a label-based [`Assembler`] for building test programs and workloads,
//! * sparse [`Memory`] and architected [`CpuState`],
//! * single-instruction functional semantics ([`step`]) with precise
//!   [`Trap`]s, and a reference interpreter ([`run_to_halt`]).
//!
//! # Examples
//!
//! Assemble and run the paper's Figure 2 inner loop:
//!
//! ```
//! use alpha_isa::{run_to_halt, AlignPolicy, Assembler, Reg};
//!
//! let mut asm = Assembler::new(0x1_0000);
//! let table = asm.zero_block(256 * 8);
//! let buf = asm.data_block(b"hello world".to_vec());
//! asm.li32(Reg::new(0), table as u32);  // r0 = CRC table
//! asm.li32(Reg::A0, buf as u32);        // r16 = input pointer
//! asm.lda_imm(Reg::A1, 11);             // r17 = length
//! let l1 = asm.here("L1");
//! asm.ldbu(Reg::new(3), 0, Reg::A0);
//! asm.subl_imm(Reg::A1, 1, Reg::A1);
//! asm.lda(Reg::A0, 1, Reg::A0);
//! asm.xor(Reg::new(1), Reg::new(3), Reg::new(3));
//! asm.srl_imm(Reg::new(1), 8, Reg::new(1));
//! asm.and_imm(Reg::new(3), 0xff, Reg::new(3));
//! asm.s8addq(Reg::new(3), Reg::new(0), Reg::new(3));
//! asm.ldq(Reg::new(3), 0, Reg::new(3));
//! asm.xor(Reg::new(3), Reg::new(1), Reg::new(1));
//! asm.bne(Reg::A1, l1);
//! asm.halt();
//!
//! let program = asm.finish()?;
//! let (mut cpu, mut mem) = program.load();
//! let stats = run_to_halt(&mut cpu, &mut mem, &program, AlignPolicy::Enforce, 10_000)?;
//! assert_eq!(stats.loads, 22); // 11 bytes × (ldbu + ldq)
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod asm;
mod decode;
mod disasm;
mod encode;
mod exec;
mod inst;
mod interp;
mod mem;
mod parse;
mod program;
mod reg;
mod state;
mod trap;

pub use asm::{AsmError, Assembler, Label};
pub use decode::decode;
pub use disasm::disassemble;
pub use encode::{encode, EncodeError};
pub use exec::{step, AlignPolicy, Control, MemAccess, Outcome};
pub use inst::{BranchOp, Inst, JumpKind, MemOp, Operand, OperateOp, PalFunc, SourceRegs};
pub use interp::{run_to_halt, DecodeCache, RunError, RunStats};
pub use mem::Memory;
pub use parse::{parse_program, ParseError};
pub use program::{DataSegment, Program};
pub use reg::Reg;
pub use state::CpuState;
pub use trap::Trap;
