//! A plain (non-profiling) Alpha interpreter.
//!
//! This is the reference executor: the DBT correctness tests compare the
//! final architected state of translated execution against what this
//! interpreter computes.

use crate::exec::{step, AlignPolicy, Control};
use crate::{decode, CpuState, Inst, Memory, Program, Trap};

/// An eagerly predecoded code segment: every static instruction is decoded
/// exactly once, and fetch becomes a bounds check plus an array index
/// instead of a per-step decode.
///
/// [`DecodeCache::fetch`] reproduces [`Program::fetch`] exactly, including
/// its trap semantics — [`Trap::AccessViolation`] for a PC outside (or
/// misaligned within) the code segment, [`Trap::IllegalInstruction`] for an
/// undecodable word — so interpreters can swap it in without behavioral
/// change.
///
/// # Examples
///
/// ```
/// use alpha_isa::{Assembler, DecodeCache, Reg};
/// let mut asm = Assembler::new(0x1000);
/// asm.lda_imm(Reg::V0, 5);
/// asm.halt();
/// let program = asm.finish()?;
/// let cache = DecodeCache::new(&program);
/// assert_eq!(cache.fetch(0x1000), program.fetch(0x1000));
/// assert!(cache.fetch(0x2000).is_err());
/// # Ok::<(), alpha_isa::AsmError>(())
/// ```
#[derive(Clone, Debug)]
pub struct DecodeCache {
    base: u64,
    end: u64,
    insts: Vec<Result<Inst, Trap>>,
}

impl DecodeCache {
    /// Predecodes the whole code segment of `program`.
    pub fn new(program: &Program) -> DecodeCache {
        let insts = program
            .code()
            .iter()
            .map(|&word| decode(word).ok_or(Trap::IllegalInstruction { word }))
            .collect();
        DecodeCache {
            base: program.code_base(),
            end: program.code_end(),
            insts,
        }
    }

    /// Fetches the predecoded instruction at `pc` (see the type docs for
    /// the trap semantics).
    ///
    /// # Errors
    ///
    /// Exactly those of [`Program::fetch`].
    #[inline]
    pub fn fetch(&self, pc: u64) -> Result<Inst, Trap> {
        if !pc.is_multiple_of(4) || pc < self.base || pc >= self.end {
            return Err(Trap::AccessViolation { addr: pc });
        }
        self.insts[((pc - self.base) / 4) as usize]
    }
}

/// Summary statistics from an interpreter run.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct RunStats {
    /// Instructions executed (including NOPs).
    pub instructions: u64,
    /// Conditional branches executed.
    pub cond_branches: u64,
    /// Taken conditional branches.
    pub taken_branches: u64,
    /// Register-indirect jumps executed (including returns).
    pub indirect_jumps: u64,
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
    /// Bytes written to the console.
    pub output: u64,
}

/// An error terminating interpretation before a clean halt.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RunError {
    /// A trap was raised at the given PC.
    Trapped {
        /// The faulting V-ISA PC.
        pc: u64,
        /// The trap condition.
        trap: Trap,
    },
    /// The instruction budget was exhausted before the program halted.
    BudgetExhausted {
        /// The PC at which execution stopped.
        pc: u64,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Trapped { pc, trap } => write!(f, "trap at {pc:#x}: {trap}"),
            RunError::BudgetExhausted { pc } => {
                write!(f, "instruction budget exhausted at {pc:#x}")
            }
        }
    }
}

impl std::error::Error for RunError {}

/// Interprets `program` until it halts or `budget` instructions have run.
///
/// # Errors
///
/// Returns [`RunError::Trapped`] on any trap, or
/// [`RunError::BudgetExhausted`] if the program does not halt in time.
///
/// # Examples
///
/// ```
/// use alpha_isa::{run_to_halt, AlignPolicy, Assembler, Reg};
/// let mut asm = Assembler::new(0x1000);
/// asm.lda_imm(Reg::V0, 5);
/// asm.halt();
/// let p = asm.finish()?;
/// let (mut cpu, mut mem) = p.load();
/// let stats = run_to_halt(&mut cpu, &mut mem, &p, AlignPolicy::Enforce, 100)?;
/// assert_eq!(stats.instructions, 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn run_to_halt(
    cpu: &mut CpuState,
    mem: &mut Memory,
    program: &Program,
    align: AlignPolicy,
    budget: u64,
) -> Result<RunStats, RunError> {
    let decoded = DecodeCache::new(program);
    let mut stats = RunStats::default();
    while stats.instructions < budget {
        let pc = cpu.pc;
        let inst = decoded
            .fetch(pc)
            .map_err(|trap| RunError::Trapped { pc, trap })?;
        let outcome = step(cpu, mem, inst, align).map_err(|trap| RunError::Trapped { pc, trap })?;
        stats.instructions += 1;
        if inst.is_load() {
            stats.loads += 1;
        } else if inst.is_store() {
            stats.stores += 1;
        }
        if inst.is_cond_branch() {
            stats.cond_branches += 1;
            if outcome.control.is_taken() {
                stats.taken_branches += 1;
            }
        }
        if matches!(outcome.control, Control::Indirect { .. }) {
            stats.indirect_jumps += 1;
        }
        if outcome.output.is_some() {
            stats.output += 1;
        }
        if outcome.control == Control::Halt {
            return Ok(stats);
        }
    }
    Err(RunError::BudgetExhausted { pc: cpu.pc })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Assembler, Reg};

    #[test]
    fn stats_count_instruction_classes() {
        let mut asm = Assembler::new(0x1000);
        let buf = asm.zero_block(64);
        asm.li32(Reg::A1, buf as u32);
        asm.lda_imm(Reg::A0, 4);
        let top = asm.here("top");
        asm.stq(Reg::A0, 0, Reg::A1);
        asm.ldq(Reg::V0, 0, Reg::A1);
        asm.subq_imm(Reg::A0, 1, Reg::A0);
        asm.bne(Reg::A0, top);
        asm.halt();
        let p = asm.finish().unwrap();
        let (mut cpu, mut mem) = p.load();
        let stats = run_to_halt(&mut cpu, &mut mem, &p, AlignPolicy::Enforce, 1000).unwrap();
        assert_eq!(stats.loads, 4);
        assert_eq!(stats.stores, 4);
        assert_eq!(stats.cond_branches, 4);
        assert_eq!(stats.taken_branches, 3);
    }

    #[test]
    fn budget_exhaustion_reported() {
        let mut asm = Assembler::new(0x1000);
        let top = asm.here("spin");
        asm.br(top);
        let p = asm.finish().unwrap();
        let (mut cpu, mut mem) = p.load();
        let err = run_to_halt(&mut cpu, &mut mem, &p, AlignPolicy::Enforce, 10).unwrap_err();
        assert!(matches!(err, RunError::BudgetExhausted { .. }));
    }

    #[test]
    fn runaway_pc_traps() {
        let mut asm = Assembler::new(0x1000);
        asm.nop(); // falls off the end of the code segment
        let p = asm.finish().unwrap();
        let (mut cpu, mut mem) = p.load();
        let err = run_to_halt(&mut cpu, &mut mem, &p, AlignPolicy::Enforce, 10).unwrap_err();
        assert!(matches!(
            err,
            RunError::Trapped {
                pc: 0x1004,
                trap: Trap::AccessViolation { .. }
            }
        ));
    }
}
