//! Loadable Alpha program images.
//!
//! A [`Program`] is the reproduction's stand-in for an executable: a code
//! segment of 32-bit machine words, zero or more initialized data segments,
//! an entry point and an initial stack pointer. The DBT system consumes the
//! *machine words* — exactly as a real co-designed VM sees a binary — not
//! any higher-level structure the assembler had.

use crate::{decode, CpuState, Inst, Memory, Reg, Trap};
use std::collections::BTreeMap;

/// An initialized data segment.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DataSegment {
    /// Base byte address.
    pub base: u64,
    /// Initial contents.
    pub bytes: Vec<u8>,
}

/// A complete, loadable program image.
///
/// # Examples
///
/// ```
/// use alpha_isa::{Assembler, Reg};
/// let mut asm = Assembler::new(0x1_0000);
/// asm.halt();
/// let program = asm.finish()?;
/// let (cpu, mem) = program.load();
/// assert_eq!(cpu.pc, 0x1_0000);
/// # Ok::<(), alpha_isa::AsmError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Program {
    code_base: u64,
    code: Vec<u32>,
    data: Vec<DataSegment>,
    entry: u64,
    initial_sp: u64,
    symbols: BTreeMap<u64, String>,
}

impl Program {
    /// Default initial stack pointer used when none is specified.
    pub const DEFAULT_SP: u64 = 0x7fff_0000;

    /// Creates a program from raw machine words.
    pub fn new(code_base: u64, code: Vec<u32>) -> Program {
        Program {
            code_base,
            code,
            data: Vec::new(),
            entry: code_base,
            initial_sp: Program::DEFAULT_SP,
            symbols: BTreeMap::new(),
        }
    }

    /// Sets the entry point (defaults to the code base).
    pub fn with_entry(mut self, entry: u64) -> Program {
        self.entry = entry;
        self
    }

    /// Sets the initial stack pointer.
    pub fn with_initial_sp(mut self, sp: u64) -> Program {
        self.initial_sp = sp;
        self
    }

    /// Adds an initialized data segment.
    pub fn with_data(mut self, base: u64, bytes: Vec<u8>) -> Program {
        self.data.push(DataSegment { base, bytes });
        self
    }

    /// Records a symbol name for an address (used by the disassembler).
    pub fn with_symbol(mut self, addr: u64, name: impl Into<String>) -> Program {
        self.symbols.insert(addr, name.into());
        self
    }

    /// The code segment base address.
    pub fn code_base(&self) -> u64 {
        self.code_base
    }

    /// The code segment machine words.
    pub fn code(&self) -> &[u32] {
        &self.code
    }

    /// One past the last code byte.
    pub fn code_end(&self) -> u64 {
        self.code_base + (self.code.len() as u64) * 4
    }

    /// The entry PC.
    pub fn entry(&self) -> u64 {
        self.entry
    }

    /// The initial stack pointer.
    pub fn initial_sp(&self) -> u64 {
        self.initial_sp
    }

    /// Initialized data segments.
    pub fn data_segments(&self) -> &[DataSegment] {
        &self.data
    }

    /// Static code size in bytes (the paper's Table 2 reports code
    /// expansion relative to this).
    pub fn code_bytes(&self) -> usize {
        self.code.len() * 4
    }

    /// Symbol name for `addr`, if one was recorded.
    pub fn symbol(&self, addr: u64) -> Option<&str> {
        self.symbols.get(&addr).map(String::as_str)
    }

    /// All symbols in address order.
    pub fn symbols(&self) -> impl Iterator<Item = (u64, &str)> {
        self.symbols.iter().map(|(a, n)| (*a, n.as_str()))
    }

    /// Whether `pc` lies inside the code segment (and is word-aligned).
    pub fn contains_pc(&self, pc: u64) -> bool {
        pc.is_multiple_of(4) && pc >= self.code_base && pc < self.code_end()
    }

    /// Fetches the machine word at `pc`.
    ///
    /// Returns `None` when `pc` is outside the code segment.
    pub fn fetch_word(&self, pc: u64) -> Option<u32> {
        if !self.contains_pc(pc) {
            return None;
        }
        Some(self.code[((pc - self.code_base) / 4) as usize])
    }

    /// Fetches and decodes the instruction at `pc`.
    ///
    /// # Errors
    ///
    /// Returns [`Trap::IllegalInstruction`] for undecodable words and
    /// [`Trap::AccessViolation`] for a PC outside the code segment.
    pub fn fetch(&self, pc: u64) -> Result<Inst, Trap> {
        let word = self
            .fetch_word(pc)
            .ok_or(Trap::AccessViolation { addr: pc })?;
        decode(word).ok_or(Trap::IllegalInstruction { word })
    }

    /// Renders a disassembly listing of the whole code segment, one line
    /// per instruction, with symbol names where labels were recorded.
    ///
    /// # Examples
    ///
    /// ```
    /// use alpha_isa::{Assembler, Reg};
    /// let mut asm = Assembler::new(0x1000);
    /// asm.here("main");
    /// asm.lda_imm(Reg::V0, 1);
    /// asm.halt();
    /// let listing = asm.finish().unwrap().disassembly();
    /// assert!(listing.contains("main:"));
    /// assert!(listing.contains("lda r0, 1(r31)"));
    /// ```
    pub fn disassembly(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, &word) in self.code.iter().enumerate() {
            let pc = self.code_base + (i as u64) * 4;
            if let Some(name) = self.symbol(pc) {
                let _ = writeln!(out, "{name}:");
            }
            match crate::decode(word) {
                Some(inst) => {
                    let _ = writeln!(out, "  {pc:#010x}: {}", crate::disassemble(pc, inst));
                }
                None => {
                    let _ = writeln!(out, "  {pc:#010x}: .word {word:#010x}");
                }
            }
        }
        out
    }

    /// Builds the initial architectural state: a CPU at the entry point with
    /// the stack pointer set, and memory with code and data loaded.
    pub fn load(&self) -> (CpuState, Memory) {
        let mut mem = Memory::new();
        for (i, w) in self.code.iter().enumerate() {
            mem.write_u32(self.code_base + (i as u64) * 4, *w);
        }
        for seg in &self.data {
            mem.write_bytes(seg.base, &seg.bytes);
        }
        let mut cpu = CpuState::new(self.entry);
        cpu.write(Reg::SP, self.initial_sp);
        (cpu, mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode;

    #[test]
    fn fetch_bounds_and_alignment() {
        let nop = encode(Inst::NOP).unwrap();
        let p = Program::new(0x1000, vec![nop, nop]);
        assert!(p.contains_pc(0x1000));
        assert!(p.contains_pc(0x1004));
        assert!(!p.contains_pc(0x1008));
        assert!(!p.contains_pc(0x1002));
        assert!(p.fetch(0x1000).is_ok());
        assert_eq!(p.fetch(0x0ffc), Err(Trap::AccessViolation { addr: 0x0ffc }));
    }

    #[test]
    fn illegal_word_reported() {
        let p = Program::new(0x1000, vec![0x04 << 26]);
        assert_eq!(
            p.fetch(0x1000),
            Err(Trap::IllegalInstruction { word: 0x04 << 26 })
        );
    }

    #[test]
    fn load_places_code_data_and_sp() {
        let nop = encode(Inst::NOP).unwrap();
        let p = Program::new(0x1000, vec![nop])
            .with_data(0x8000, vec![1, 2, 3])
            .with_initial_sp(0x9000)
            .with_entry(0x1000);
        let (cpu, mem) = p.load();
        assert_eq!(mem.read_u32(0x1000), nop);
        assert_eq!(mem.read_u8(0x8002), 3);
        assert_eq!(cpu.read(Reg::SP), 0x9000);
    }

    #[test]
    fn symbols_recorded() {
        let p = Program::new(0, vec![]).with_symbol(0x40, "main");
        assert_eq!(p.symbol(0x40), Some("main"));
        assert_eq!(p.symbols().count(), 1);
    }
}
