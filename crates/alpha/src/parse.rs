//! A text assembler for the Alpha subset.
//!
//! Parses a small, readable dialect into a [`Program`], so guest programs
//! can be written as text instead of through the [`Assembler`] builder:
//!
//! ```text
//! ; byte-sum a buffer
//! .bytes buf, 1 2 3 4 5 6 7 8
//! .zero scratch, 64
//!         la    a0, buf
//!         li    a1, 8
//!         clr   v0
//! top:    ldbu  t0, 0(a0)
//!         addq  v0, t0, v0
//!         lda   a0, 1(a0)
//!         subq  a1, #1, a1
//!         bne   a1, top
//!         halt
//! ```
//!
//! Supported:
//!
//! * one instruction or label per line; `label:` may prefix an instruction;
//! * comments from `;` or `//` to end of line (`#` introduces literals);
//! * registers by number (`r0`..`r31`) or convention (`v0`, `t0`.., `a0`..,
//!   `s0`.., `ra`, `pv`, `gp`, `sp`, `zero`);
//! * operate forms `op ra, rb, rc` and `op ra, #imm, rc`;
//! * memory forms `op ra, disp(rb)`;
//! * branches `op ra, label` and `br label` / `bsr label`;
//! * jumps `jmp (rb)`, `jsr (rb)`, `ret`;
//! * pseudo-instructions `mov`, `clr`, `nop`, `li reg, imm32`,
//!   `la reg, data_name`, `halt`, `gentrap`, `putchar`;
//! * directives `.bytes name, b0 b1 ...`, `.quads name, q0 q1 ...`,
//!   `.zero name, len`, `.entry` (marks the entry point).

use crate::asm::{AsmError, Assembler, Label};
use crate::{Program, Reg};
use std::collections::HashMap;
use std::fmt;

/// An error produced while parsing assembly text.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<AsmError> for ParseError {
    fn from(e: AsmError) -> ParseError {
        ParseError {
            line: 0,
            message: e.to_string(),
        }
    }
}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        message: message.into(),
    })
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, ParseError> {
    let t = tok.trim();
    if let Some(num) = t.strip_prefix('r').and_then(|n| n.parse::<u8>().ok()) {
        return Reg::try_new(num)
            .map_or_else(|| err(line, format!("register out of range: `{t}`")), Ok);
    }
    for r in Reg::all() {
        if r.conventional_name() == t {
            return Ok(r);
        }
    }
    err(line, format!("unknown register `{t}`"))
}

fn parse_int(tok: &str, line: usize) -> Result<i64, ParseError> {
    let t = tok.trim().trim_start_matches('#');
    let (neg, t) = match t.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, t),
    };
    let v = if let Some(hex) = t.strip_prefix("0x") {
        i64::from_str_radix(hex, 16)
    } else {
        t.parse::<i64>()
    };
    match v {
        Ok(v) => Ok(if neg { -v } else { v }),
        Err(_) => err(line, format!("bad integer `{tok}`")),
    }
}

fn strip_comment(raw: &str) -> &str {
    let no_semi = raw.split(';').next().unwrap_or("");
    no_semi.split("//").next().unwrap_or("").trim()
}

fn split_operands(rest: &str) -> Vec<String> {
    rest.split(',').map(|s| s.trim().to_string()).collect()
}

/// `disp(rb)` → (disp, rb)
fn parse_mem_operand(tok: &str, line: usize) -> Result<(i16, Reg), ParseError> {
    let t = tok.trim();
    let Some(open) = t.find('(') else {
        return err(line, format!("expected `disp(reg)`, got `{t}`"));
    };
    if !t.ends_with(')') {
        return err(line, format!("expected `disp(reg)`, got `{t}`"));
    }
    let disp_str = &t[..open];
    let disp = if disp_str.is_empty() {
        0
    } else {
        let v = parse_int(disp_str, line)?;
        i16::try_from(v).map_err(|_| ParseError {
            line,
            message: format!("displacement out of range: `{disp_str}`"),
        })?
    };
    let reg = parse_reg(&t[open + 1..t.len() - 1], line)?;
    Ok((disp, reg))
}

struct Parser<'a> {
    asm: Assembler,
    labels: HashMap<String, Label>,
    data: HashMap<String, u64>,
    source: &'a str,
}

impl Parser<'_> {
    fn label(&mut self, name: &str) -> Label {
        if let Some(l) = self.labels.get(name) {
            return *l;
        }
        let l = self.asm.label(name);
        self.labels.insert(name.to_string(), l);
        l
    }

    /// Pass 1: allocate data blocks so `la` can reference them anywhere.
    fn scan_directives(&mut self) -> Result<(), ParseError> {
        for (ln, raw) in self.source.lines().enumerate() {
            let line = ln + 1;
            let text = strip_comment(raw);
            let Some(rest) = text.strip_prefix('.') else {
                continue;
            };
            let (dir, args) = rest.split_once(char::is_whitespace).unwrap_or((rest, ""));
            match dir {
                "bytes" | "quads" | "zero" => {
                    let Some((name, payload)) = args.split_once(',') else {
                        return err(line, format!(".{dir} needs `name, ...`"));
                    };
                    let name = name.trim().to_string();
                    if self.data.contains_key(&name) {
                        return err(line, format!("data block `{name}` defined twice"));
                    }
                    let bytes = match dir {
                        "bytes" => payload
                            .split_whitespace()
                            .map(|b| parse_int(b, line).map(|v| v as u8))
                            .collect::<Result<Vec<u8>, _>>()?,
                        "quads" => {
                            let mut out = Vec::new();
                            for q in payload.split_whitespace() {
                                out.extend_from_slice(&(parse_int(q, line)? as u64).to_le_bytes());
                            }
                            out
                        }
                        _ => {
                            let len = parse_int(payload, line)?;
                            if !(0..=(1 << 24)).contains(&len) {
                                return err(line, format!("bad .zero length {len}"));
                            }
                            vec![0u8; len as usize]
                        }
                    };
                    let base = self.asm.data_block(bytes);
                    self.data.insert(name, base);
                }
                "entry" => {} // handled in pass 2 (position matters)
                other => return err(line, format!("unknown directive `.{other}`")),
            }
        }
        Ok(())
    }

    /// Pass 2: emit instructions.
    fn emit_all(&mut self) -> Result<(), ParseError> {
        for (ln, raw) in self.source.lines().enumerate() {
            let line = ln + 1;
            let mut text = strip_comment(raw);
            if text.is_empty() || text.starts_with('.') {
                if text == ".entry" {
                    self.asm.entry_here();
                }
                continue;
            }
            // Optional label prefix.
            if let Some(colon) = text.find(':') {
                let (name, rest) = text.split_at(colon);
                let name = name.trim();
                if name.chars().all(|c| c.is_alphanumeric() || c == '_') && !name.is_empty() {
                    let l = self.label(name);
                    self.asm.bind(l);
                    text = rest[1..].trim();
                    if text.is_empty() {
                        continue;
                    }
                }
            }
            self.emit_one(text, line)?;
        }
        Ok(())
    }

    fn emit_one(&mut self, text: &str, line: usize) -> Result<(), ParseError> {
        let (mnemonic, rest) = text.split_once(char::is_whitespace).unwrap_or((text, ""));
        let ops = if rest.trim().is_empty() {
            Vec::new()
        } else {
            split_operands(rest)
        };
        let n = ops.len();
        let arity = |want: usize| -> Result<(), ParseError> {
            if n == want {
                Ok(())
            } else {
                err(line, format!("`{mnemonic}` takes {want} operands, got {n}"))
            }
        };

        macro_rules! op3 {
            ($reg:ident, $imm:ident) => {{
                arity(3)?;
                let ra = parse_reg(&ops[0], line)?;
                let rc = parse_reg(&ops[2], line)?;
                if ops[1].starts_with('#') {
                    let v = parse_int(&ops[1], line)?;
                    let lit = u8::try_from(v).map_err(|_| ParseError {
                        line,
                        message: format!("literal out of range (0..=255): `{}`", ops[1]),
                    })?;
                    self.asm.$imm(ra, lit, rc);
                } else {
                    let rb = parse_reg(&ops[1], line)?;
                    self.asm.$reg(ra, rb, rc);
                }
            }};
        }
        macro_rules! mem {
            ($m:ident) => {{
                arity(2)?;
                let ra = parse_reg(&ops[0], line)?;
                let (disp, rb) = parse_mem_operand(&ops[1], line)?;
                self.asm.$m(ra, disp, rb);
            }};
        }
        macro_rules! branch {
            ($b:ident) => {{
                arity(2)?;
                let ra = parse_reg(&ops[0], line)?;
                let l = self.label(ops[1].as_str());
                self.asm.$b(ra, l);
            }};
        }

        match mnemonic {
            // memory
            "lda" => mem!(lda),
            "ldah" => mem!(ldah),
            "ldbu" => mem!(ldbu),
            "ldwu" => mem!(ldwu),
            "ldl" => mem!(ldl),
            "ldq" => mem!(ldq),
            "stb" => mem!(stb),
            "stw" => mem!(stw),
            "stl" => mem!(stl),
            "stq" => mem!(stq),
            // operate
            "addl" => op3!(addl, addl_imm),
            "addq" => op3!(addq, addq_imm),
            "subl" => op3!(subl, subl_imm),
            "subq" => op3!(subq, subq_imm),
            "s8addq" => op3!(s8addq, s8addq_imm),
            "cmpeq" => op3!(cmpeq, cmpeq_imm),
            "cmplt" => op3!(cmplt, cmplt_imm),
            "cmple" => op3!(cmple, cmple_imm),
            "cmpult" => op3!(cmpult, cmpult_imm),
            "and" => op3!(and, and_imm),
            "bis" | "or" => op3!(bis, bis_imm),
            "xor" => op3!(xor, xor_imm),
            "sll" => op3!(sll, sll_imm),
            "srl" => op3!(srl, srl_imm),
            "sra" => op3!(sra, sra_imm),
            "mull" => op3!(mull, mull_imm),
            "zapnot" => op3!(zapnot, zapnot_imm),
            "extbl" => op3!(extbl, extbl_imm),
            // three-register-only forms
            "s4addq" | "bic" | "ornot" | "eqv" | "mulq" | "umulh" | "cmoveq" | "cmovne"
            | "cmovlt" | "cmovge" => {
                arity(3)?;
                let ra = parse_reg(&ops[0], line)?;
                let rb = parse_reg(&ops[1], line)?;
                let rc = parse_reg(&ops[2], line)?;
                match mnemonic {
                    "s4addq" => self.asm.s4addq(ra, rb, rc),
                    "bic" => self.asm.bic(ra, rb, rc),
                    "ornot" => self.asm.ornot(ra, rb, rc),
                    "eqv" => self.asm.eqv(ra, rb, rc),
                    "mulq" => self.asm.mulq(ra, rb, rc),
                    "umulh" => self.asm.umulh(ra, rb, rc),
                    "cmoveq" => self.asm.cmoveq(ra, rb, rc),
                    "cmovne" => self.asm.cmovne(ra, rb, rc),
                    "cmovlt" => self.asm.cmovlt(ra, rb, rc),
                    _ => self.asm.cmovge(ra, rb, rc),
                }
            }
            // branches
            "beq" => branch!(beq),
            "bne" => branch!(bne),
            "blt" => branch!(blt),
            "ble" => branch!(ble),
            "bgt" => branch!(bgt),
            "bge" => branch!(bge),
            "blbc" => branch!(blbc),
            "blbs" => branch!(blbs),
            "br" => {
                arity(1)?;
                let l = self.label(ops[0].as_str());
                self.asm.br(l);
            }
            "bsr" => {
                arity(1)?;
                let l = self.label(ops[0].as_str());
                self.asm.bsr(l);
            }
            // jumps
            "jmp" | "jsr" => {
                arity(1)?;
                let t = ops[0].trim();
                let inner = t
                    .strip_prefix('(')
                    .and_then(|s| s.strip_suffix(')'))
                    .ok_or_else(|| ParseError {
                        line,
                        message: format!("`{mnemonic}` takes `(reg)`, got `{t}`"),
                    })?;
                let rb = parse_reg(inner, line)?;
                if mnemonic == "jmp" {
                    self.asm.jmp(Reg::ZERO, rb);
                } else {
                    self.asm.jsr(Reg::RA, rb);
                }
            }
            "ret" => {
                arity(0)?;
                self.asm.ret();
            }
            // pseudo
            "mov" => {
                arity(2)?;
                let a = parse_reg(&ops[0], line)?;
                let b = parse_reg(&ops[1], line)?;
                self.asm.mov(a, b);
            }
            "clr" => {
                arity(1)?;
                let a = parse_reg(&ops[0], line)?;
                self.asm.clr(a);
            }
            "nop" => {
                arity(0)?;
                self.asm.nop();
            }
            "li" => {
                arity(2)?;
                let a = parse_reg(&ops[0], line)?;
                let v = parse_int(&ops[1], line)?;
                if let Ok(small) = i16::try_from(v) {
                    self.asm.lda_imm(a, small);
                } else if (0..=u32::MAX as i64).contains(&v) {
                    self.asm.li32(a, v as u32);
                } else {
                    return err(line, format!("`li` immediate out of range: {v}"));
                }
            }
            "la" => {
                arity(2)?;
                let a = parse_reg(&ops[0], line)?;
                let name = ops[1].trim();
                let Some(&base) = self.data.get(name) else {
                    return err(line, format!("unknown data block `{name}`"));
                };
                self.asm.li32(a, base as u32);
            }
            "halt" => {
                arity(0)?;
                self.asm.halt();
            }
            "gentrap" => {
                arity(0)?;
                self.asm.gentrap();
            }
            "putchar" => {
                arity(0)?;
                self.asm.putchar();
            }
            other => return err(line, format!("unknown mnemonic `{other}`")),
        }
        Ok(())
    }
}

/// Parses assembly text into a loadable [`Program`], placing code at
/// `code_base`.
///
/// # Errors
///
/// Returns a [`ParseError`] naming the offending source line for syntax
/// errors, unknown mnemonics/registers, out-of-range operands, duplicate
/// data blocks, or unbound labels.
///
/// # Examples
///
/// ```
/// use alpha_isa::{parse_program, run_to_halt, AlignPolicy, Reg};
/// let program = parse_program(
///     "
///     li   a0, 5
///     clr  v0
/// top: addq v0, a0, v0
///     subq a0, #1, a0
///     bne  a0, top
///     halt
///     ",
///     0x1_0000,
/// )?;
/// let (mut cpu, mut mem) = program.load();
/// run_to_halt(&mut cpu, &mut mem, &program, AlignPolicy::Enforce, 1_000)?;
/// assert_eq!(cpu.read(Reg::V0), 5 + 4 + 3 + 2 + 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn parse_program(source: &str, code_base: u64) -> Result<Program, ParseError> {
    let mut p = Parser {
        asm: Assembler::new(code_base),
        labels: HashMap::new(),
        data: HashMap::new(),
        source,
    };
    p.scan_directives()?;
    p.emit_all()?;
    Ok(p.asm.finish()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_to_halt, AlignPolicy};

    #[test]
    fn parses_and_runs_the_module_example() {
        let program = parse_program(
            "
            ; byte-sum a buffer
            .bytes buf, 1 2 3 4 5 6 7 8
            .zero scratch, 64
                    la    a0, buf
                    li    a1, 8
                    clr   v0
            top:    ldbu  t0, 0(a0)
                    addq  v0, t0, v0
                    lda   a0, 1(a0)
                    subq  a1, #1, a1
                    bne   a1, top
                    halt
            ",
            0x1_0000,
        )
        .unwrap();
        let (mut cpu, mut mem) = program.load();
        run_to_halt(&mut cpu, &mut mem, &program, AlignPolicy::Enforce, 1_000).unwrap();
        assert_eq!(cpu.read(Reg::V0), 36);
    }

    #[test]
    fn calls_and_data_quads() {
        let program = parse_program(
            "
            .quads values, 10 20 30
            .entry
                la   a0, values
                ldq  a1, 8(a0)    ; 20
                bsr  double
                halt
            double:
                addq a1, a1, v0
                ret
            ",
            0x1_0000,
        )
        .unwrap();
        let (mut cpu, mut mem) = program.load();
        run_to_halt(&mut cpu, &mut mem, &program, AlignPolicy::Enforce, 1_000).unwrap();
        assert_eq!(cpu.read(Reg::V0), 40);
    }

    #[test]
    fn reports_unknown_mnemonic_with_line() {
        let e = parse_program("  frobnicate r1, r2\n", 0x1000).unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("frobnicate"));
    }

    #[test]
    fn reports_bad_register() {
        let e = parse_program("addq r1, r99, r3\n", 0x1000).unwrap_err();
        assert!(e.message.contains("r99"), "{e}");
    }

    #[test]
    fn reports_unbound_label() {
        let e = parse_program("br nowhere\nhalt\n", 0x1000).unwrap_err();
        assert!(e.message.contains("nowhere"), "{e}");
    }

    #[test]
    fn reports_literal_out_of_range() {
        let e = parse_program("addq r1, #300, r3\n", 0x1000).unwrap_err();
        assert!(e.message.contains("300"), "{e}");
    }

    #[test]
    fn reports_duplicate_data_block() {
        let e = parse_program(".zero a, 8\n.zero a, 8\nhalt\n", 0x1000).unwrap_err();
        assert!(e.message.contains("twice"), "{e}");
    }

    #[test]
    fn hex_and_negative_immediates() {
        let program = parse_program(
            "
            li  t0, 0x10
            lda t1, -4(t0)
            halt
            ",
            0x1000,
        )
        .unwrap();
        let (mut cpu, mut mem) = program.load();
        run_to_halt(&mut cpu, &mut mem, &program, AlignPolicy::Enforce, 100).unwrap();
        assert_eq!(cpu.read(Reg::new(2)), 12);
    }

    #[test]
    fn conventional_and_numbered_registers_agree() {
        let program = parse_program("li r16, 7\nmov a0, v0\nhalt\n", 0x1000).unwrap();
        let (mut cpu, mut mem) = program.load();
        run_to_halt(&mut cpu, &mut mem, &program, AlignPolicy::Enforce, 100).unwrap();
        assert_eq!(cpu.read(Reg::V0), 7);
    }

    #[test]
    fn jumps_through_registers() {
        let program = parse_program(
            "
            .entry
               li   t0, 0x1010   ; address of `target`
               jmp  (t0)
               halt              ; skipped
               halt              ; skipped
            target:
               li   v0, 9
               halt
            ",
            0x1000,
        )
        .unwrap();
        let (mut cpu, mut mem) = program.load();
        run_to_halt(&mut cpu, &mut mem, &program, AlignPolicy::Enforce, 100).unwrap();
        assert_eq!(cpu.read(Reg::V0), 9);
    }
}
