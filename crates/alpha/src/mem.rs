//! Sparse 64-bit byte-addressable memory.
//!
//! Backed by 4 KiB pages allocated on first touch, so programs can scatter
//! code, stack and heap across the address space without cost. Loads from
//! untouched memory read zero, matching a zero-filled process image.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

const PAGE_SHIFT: u64 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const PAGE_MASK: u64 = (PAGE_SIZE as u64) - 1;

/// Multiplicative hasher for page numbers. Page indices are small dense
/// integers, so a single Fibonacci multiply spreads them well; the default
/// SipHash costs more than the page access it guards.
#[derive(Default)]
pub struct PageHasher(u64);

impl Hasher for PageHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0 ^ n).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

/// Sparse little-endian memory for the simulated machine.
///
/// # Examples
///
/// ```
/// use alpha_isa::Memory;
/// let mut mem = Memory::new();
/// mem.write_u64(0x1_0000, 0xdead_beef);
/// assert_eq!(mem.read_u64(0x1_0000), 0xdead_beef);
/// assert_eq!(mem.read_u8(0x1_0000), 0xef); // little-endian
/// ```
#[derive(Clone, Default, Debug)]
pub struct Memory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>, BuildHasherDefault<PageHasher>>,
}

impl Memory {
    /// Bytes per backing page — the granularity of [`pages`](Memory::pages)
    /// and [`set_page`](Memory::set_page).
    pub const PAGE_BYTES: usize = PAGE_SIZE;

    /// Creates an empty (all-zero) memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Number of pages that have been touched.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Order-independent digest of memory contents for differential
    /// comparison. All-zero pages contribute nothing, so a memory that was
    /// merely *touched* differently (pages faulted in but never written a
    /// non-zero byte) digests identically.
    pub fn content_digest(&self) -> u64 {
        let mut digest = 0u64;
        for (&page_no, page) in &self.pages {
            if page.iter().all(|&b| b == 0) {
                continue;
            }
            // FNV-1a over the page bytes, folded with the page number;
            // XOR-combined across pages for order independence.
            let mut h = 0xcbf2_9ce4_8422_2325u64 ^ page_no.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            for &b in page.iter() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            digest ^= h;
        }
        digest
    }

    /// Iterates the resident pages as `(page_number, contents)` in
    /// unspecified order. Page `n` covers guest addresses
    /// `[n * PAGE_BYTES, (n + 1) * PAGE_BYTES)`; absent pages read zero.
    pub fn pages(&self) -> impl Iterator<Item = (u64, &[u8])> {
        self.pages.iter().map(|(&n, p)| (n, &p[..]))
    }

    /// Replaces the contents of page `page_no` (snapshot restore). Short
    /// input leaves the tail of the page zero; bytes past
    /// [`PAGE_BYTES`](Memory::PAGE_BYTES) are ignored.
    pub fn set_page(&mut self, page_no: u64, bytes: &[u8]) {
        let page = self
            .pages
            .entry(page_no)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
        **page = [0u8; PAGE_SIZE];
        let n = bytes.len().min(PAGE_SIZE);
        page[..n].copy_from_slice(&bytes[..n]);
    }

    #[inline]
    fn page(&self, addr: u64) -> Option<&[u8; PAGE_SIZE]> {
        self.pages.get(&(addr >> PAGE_SHIFT)).map(|b| &**b)
    }

    fn page_mut(&mut self, addr: u64) -> &mut [u8; PAGE_SIZE] {
        self.pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]))
    }

    /// Reads one byte.
    #[inline]
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.page(addr) {
            Some(p) => p[(addr & PAGE_MASK) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    #[inline]
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        self.page_mut(addr)[(addr & PAGE_MASK) as usize] = value;
    }

    #[inline]
    fn read_le(&self, addr: u64, bytes: usize) -> u64 {
        // Fast path: access within one page.
        let off = (addr & PAGE_MASK) as usize;
        if off + bytes <= PAGE_SIZE {
            match self.page(addr) {
                Some(p) => {
                    let mut raw = [0u8; 8];
                    raw[..bytes].copy_from_slice(&p[off..off + bytes]);
                    u64::from_le_bytes(raw)
                }
                None => 0,
            }
        } else {
            let mut v = 0u64;
            for i in (0..bytes).rev() {
                v = (v << 8) | self.read_u8(addr.wrapping_add(i as u64)) as u64;
            }
            v
        }
    }

    #[inline]
    fn write_le(&mut self, addr: u64, bytes: usize, value: u64) {
        let off = (addr & PAGE_MASK) as usize;
        if off + bytes <= PAGE_SIZE {
            let p = self.page_mut(addr);
            p[off..off + bytes].copy_from_slice(&value.to_le_bytes()[..bytes]);
        } else {
            let mut v = value;
            for i in 0..bytes {
                self.write_u8(addr.wrapping_add(i as u64), v as u8);
                v >>= 8;
            }
        }
    }

    /// Reads a little-endian 16-bit value.
    #[inline]
    pub fn read_u16(&self, addr: u64) -> u16 {
        self.read_le(addr, 2) as u16
    }

    /// Writes a little-endian 16-bit value.
    #[inline]
    pub fn write_u16(&mut self, addr: u64, value: u16) {
        self.write_le(addr, 2, value as u64);
    }

    /// Reads a little-endian 32-bit value.
    #[inline]
    pub fn read_u32(&self, addr: u64) -> u32 {
        self.read_le(addr, 4) as u32
    }

    /// Writes a little-endian 32-bit value.
    #[inline]
    pub fn write_u32(&mut self, addr: u64, value: u32) {
        self.write_le(addr, 4, value as u64);
    }

    /// Reads a little-endian 64-bit value.
    #[inline]
    pub fn read_u64(&self, addr: u64) -> u64 {
        self.read_le(addr, 8)
    }

    /// Writes a little-endian 64-bit value.
    #[inline]
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.write_le(addr, 8, value);
    }

    /// Copies `bytes` into memory starting at `addr`.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u64), b);
        }
    }

    /// Reads `len` bytes starting at `addr`.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| self.read_u8(addr.wrapping_add(i as u64)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_memory_reads_zero() {
        let mem = Memory::new();
        assert_eq!(mem.read_u64(0), 0);
        assert_eq!(mem.read_u8(u64::MAX), 0);
        assert_eq!(mem.resident_pages(), 0);
    }

    #[test]
    fn little_endian_layout() {
        let mut mem = Memory::new();
        mem.write_u32(0x100, 0x1234_5678);
        assert_eq!(mem.read_u8(0x100), 0x78);
        assert_eq!(mem.read_u8(0x103), 0x12);
        assert_eq!(mem.read_u16(0x102), 0x1234);
    }

    #[test]
    fn cross_page_access() {
        let mut mem = Memory::new();
        let addr = (1 << PAGE_SHIFT) - 4; // straddles a page boundary
        mem.write_u64(addr, 0x0102_0304_0506_0708);
        assert_eq!(mem.read_u64(addr), 0x0102_0304_0506_0708);
        assert_eq!(mem.resident_pages(), 2);
    }

    #[test]
    fn bytes_roundtrip() {
        let mut mem = Memory::new();
        let data = b"hello, alpha";
        mem.write_bytes(0x2000, data);
        assert_eq!(mem.read_bytes(0x2000, data.len()), data);
    }

    #[test]
    fn page_snapshot_roundtrip() {
        let mut mem = Memory::new();
        mem.write_u64(0x1_0008, 0xdead_beef);
        mem.write_u8(0x7_3000, 7);
        let mut copy = Memory::new();
        for (n, bytes) in mem.pages() {
            copy.set_page(n, bytes);
        }
        assert_eq!(copy.content_digest(), mem.content_digest());
        assert_eq!(copy.read_u64(0x1_0008), 0xdead_beef);
        // set_page replaces the whole page, clearing stale contents.
        copy.write_u8(0x1_0100, 0xaa);
        copy.set_page(0x1_0000 >> PAGE_SHIFT, &mem.read_bytes(0x1_0000, PAGE_SIZE));
        assert_eq!(copy.read_u8(0x1_0100), 0);
        assert_eq!(copy.content_digest(), mem.content_digest());
    }

    #[test]
    fn wrapping_addresses_do_not_panic() {
        let mut mem = Memory::new();
        mem.write_u64(u64::MAX - 3, 0xffff_ffff_ffff_ffff);
        assert_eq!(mem.read_u8(u64::MAX), 0xff);
        assert_eq!(mem.read_u8(3), 0xff); // wrapped around
    }
}
