//! Alpha instruction encoding (decoded form → 32-bit machine word).
//!
//! Field layouts follow the Alpha Architecture Handbook:
//!
//! * memory format: `opcode[31:26] ra[25:21] rb[20:16] disp[15:0]`
//! * branch format: `opcode[31:26] ra[25:21] disp[20:0]`
//! * memory-format jump: `0x1A ra rb kind[15:14] hint[13:0]`
//! * operate format: `opcode[31:26] ra[25:21] rb[20:16] 000 0 func[11:5] rc[4:0]`
//!   (or `lit[20:13] 1 func rc` with an 8-bit literal)
//! * PALcode format: `0x00 func[25:0]`

use crate::inst::{BranchOp, Inst, MemOp, Operand, OperateOp};

/// Primary opcode assignments for the implemented subset.
pub(crate) mod opcode {
    pub const CALL_PAL: u32 = 0x00;
    pub const LDA: u32 = 0x08;
    pub const LDAH: u32 = 0x09;
    pub const LDBU: u32 = 0x0a;
    pub const LDWU: u32 = 0x0c;
    pub const STW: u32 = 0x0d;
    pub const STB: u32 = 0x0e;
    pub const INTA: u32 = 0x10;
    pub const INTL: u32 = 0x11;
    pub const INTS: u32 = 0x12;
    pub const INTM: u32 = 0x13;
    pub const JMP_GROUP: u32 = 0x1a;
    pub const LDL: u32 = 0x28;
    pub const LDQ: u32 = 0x29;
    pub const STL: u32 = 0x2c;
    pub const STQ: u32 = 0x2d;
    pub const BR: u32 = 0x30;
    pub const BSR: u32 = 0x34;
    pub const BLBC: u32 = 0x38;
    pub const BEQ: u32 = 0x39;
    pub const BLT: u32 = 0x3a;
    pub const BLE: u32 = 0x3b;
    pub const BLBS: u32 = 0x3c;
    pub const BNE: u32 = 0x3d;
    pub const BGE: u32 = 0x3e;
    pub const BGT: u32 = 0x3f;
}

/// Returns the `(primary opcode, function code)` pair for an operate op.
pub(crate) fn operate_codes(op: OperateOp) -> (u32, u32) {
    use opcode::*;
    use OperateOp::*;
    match op {
        Addl => (INTA, 0x00),
        S4addl => (INTA, 0x02),
        Subl => (INTA, 0x09),
        S4addq => (INTA, 0x22),
        Addq => (INTA, 0x20),
        Subq => (INTA, 0x29),
        S8addq => (INTA, 0x32),
        S4subq => (INTA, 0x2b),
        S8subq => (INTA, 0x3b),
        Cmpult => (INTA, 0x1d),
        Cmpeq => (INTA, 0x2d),
        Cmpule => (INTA, 0x3d),
        Cmplt => (INTA, 0x4d),
        Cmple => (INTA, 0x6d),
        And => (INTL, 0x00),
        Bic => (INTL, 0x08),
        Cmovlbs => (INTL, 0x14),
        Cmovlbc => (INTL, 0x16),
        Bis => (INTL, 0x20),
        Cmoveq => (INTL, 0x24),
        Cmovne => (INTL, 0x26),
        Ornot => (INTL, 0x28),
        Xor => (INTL, 0x40),
        Cmovlt => (INTL, 0x44),
        Cmovge => (INTL, 0x46),
        Eqv => (INTL, 0x48),
        Cmovle => (INTL, 0x64),
        Cmovgt => (INTL, 0x66),
        Mskbl => (INTS, 0x02),
        Extbl => (INTS, 0x06),
        Insbl => (INTS, 0x0b),
        Extwl => (INTS, 0x16),
        Extll => (INTS, 0x26),
        Zap => (INTS, 0x30),
        Zapnot => (INTS, 0x31),
        Srl => (INTS, 0x34),
        Extql => (INTS, 0x36),
        Sll => (INTS, 0x39),
        Sra => (INTS, 0x3c),
        Mull => (INTM, 0x00),
        Mulq => (INTM, 0x20),
        Umulh => (INTM, 0x30),
    }
}

pub(crate) fn mem_opcode(op: MemOp) -> u32 {
    use opcode::*;
    match op {
        MemOp::Lda => LDA,
        MemOp::Ldah => LDAH,
        MemOp::Ldbu => LDBU,
        MemOp::Ldwu => LDWU,
        MemOp::Ldl => LDL,
        MemOp::Ldq => LDQ,
        MemOp::Stb => STB,
        MemOp::Stw => STW,
        MemOp::Stl => STL,
        MemOp::Stq => STQ,
    }
}

pub(crate) fn branch_opcode(op: BranchOp) -> u32 {
    use opcode::*;
    match op {
        BranchOp::Br => BR,
        BranchOp::Bsr => BSR,
        BranchOp::Blbc => BLBC,
        BranchOp::Beq => BEQ,
        BranchOp::Blt => BLT,
        BranchOp::Ble => BLE,
        BranchOp::Blbs => BLBS,
        BranchOp::Bne => BNE,
        BranchOp::Bge => BGE,
        BranchOp::Bgt => BGT,
    }
}

/// An error produced when an instruction's fields do not fit their encoding.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EncodeError {
    /// A branch displacement does not fit the signed 21-bit field.
    BranchDispOutOfRange {
        /// The offending displacement, in instructions.
        disp: i32,
    },
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodeError::BranchDispOutOfRange { disp } => {
                write!(f, "branch displacement {disp} exceeds the 21-bit field")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// Encodes a decoded instruction into its 32-bit machine word.
///
/// # Errors
///
/// Returns [`EncodeError::BranchDispOutOfRange`] if a branch displacement
/// exceeds the signed 21-bit instruction field.
///
/// # Examples
///
/// ```
/// use alpha_isa::{encode, decode, Inst, MemOp, Reg};
/// let inst = Inst::Mem { op: MemOp::Ldq, ra: Reg::V0, rb: Reg::SP, disp: -8 };
/// let word = encode(inst)?;
/// assert_eq!(decode(word), Some(inst));
/// # Ok::<(), alpha_isa::EncodeError>(())
/// ```
pub fn encode(inst: Inst) -> Result<u32, EncodeError> {
    Ok(match inst {
        Inst::Mem { op, ra, rb, disp } => {
            (mem_opcode(op) << 26)
                | ((ra.number() as u32) << 21)
                | ((rb.number() as u32) << 16)
                | (disp as u16 as u32)
        }
        Inst::Branch { op, ra, disp } => {
            if !(-(1 << 20)..(1 << 20)).contains(&disp) {
                return Err(EncodeError::BranchDispOutOfRange { disp });
            }
            (branch_opcode(op) << 26) | ((ra.number() as u32) << 21) | ((disp as u32) & 0x001f_ffff)
        }
        Inst::Jump { kind, ra, rb, hint } => {
            (opcode::JMP_GROUP << 26)
                | ((ra.number() as u32) << 21)
                | ((rb.number() as u32) << 16)
                | (kind.code() << 14)
                | (hint as u32 & 0x3fff)
        }
        Inst::Operate { op, ra, rb, rc } => {
            let (opc, func) = operate_codes(op);
            let base = (opc << 26)
                | ((ra.number() as u32) << 21)
                | ((func & 0x7f) << 5)
                | (rc.number() as u32);
            match rb {
                Operand::Reg(r) => base | ((r.number() as u32) << 16),
                Operand::Lit(v) => base | ((v as u32) << 13) | (1 << 12),
            }
        }
        Inst::CallPal { func } => (opcode::CALL_PAL << 26) | (func.code() & 0x03ff_ffff),
        // The variant carries its own machine word.
        Inst::Unimplemented { word } => word,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Reg;

    #[test]
    fn known_encodings_match_alpha_manual() {
        // lda r16, 1(r16) => opcode 0x08, ra=16, rb=16, disp=1
        let w = encode(Inst::Mem {
            op: MemOp::Lda,
            ra: Reg::A0,
            rb: Reg::A0,
            disp: 1,
        })
        .unwrap();
        assert_eq!(w, (0x08 << 26) | (16 << 21) | (16 << 16) | 1);

        // The canonical NOP bis r31,r31,r31 = 0x47ff041f.
        let nop = encode(Inst::NOP).unwrap();
        assert_eq!(nop, 0x47ff_041f);

        // subl r17, #1, r17 with literal: opcode 0x10 func 0x09 lit form.
        let w = encode(Inst::Operate {
            op: OperateOp::Subl,
            ra: Reg::A1,
            rb: Operand::Lit(1),
            rc: Reg::A1,
        })
        .unwrap();
        assert_eq!(
            w,
            (0x10 << 26) | (17 << 21) | (1 << 13) | (1 << 12) | (0x09 << 5) | 17
        );
    }

    #[test]
    fn branch_disp_limits() {
        let ok = Inst::Branch {
            op: BranchOp::Br,
            ra: Reg::ZERO,
            disp: (1 << 20) - 1,
        };
        assert!(encode(ok).is_ok());
        let too_far = Inst::Branch {
            op: BranchOp::Br,
            ra: Reg::ZERO,
            disp: 1 << 20,
        };
        assert_eq!(
            encode(too_far),
            Err(EncodeError::BranchDispOutOfRange { disp: 1 << 20 })
        );
        let neg_ok = Inst::Branch {
            op: BranchOp::Br,
            ra: Reg::ZERO,
            disp: -(1 << 20),
        };
        assert!(encode(neg_ok).is_ok());
    }

    #[test]
    fn error_display() {
        let err = EncodeError::BranchDispOutOfRange { disp: 1 << 20 };
        assert!(err.to_string().contains("21-bit"));
    }
}
