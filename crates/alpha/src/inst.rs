//! Decoded Alpha instruction representation.
//!
//! Instructions are grouped by their hardware format (memory, branch,
//! memory-jump, operate, PALcode), mirroring the Alpha architecture manual.
//! The per-format operation enums carry the semantic identity; operand
//! fields are uniform within a format, which keeps the decoder, encoder,
//! interpreter and binary translator all straightforward.

use crate::Reg;
use std::fmt;

/// Memory-format operations (loads, stores, and address arithmetic).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MemOp {
    /// Load address: `ra <- rb + disp`.
    Lda,
    /// Load address high: `ra <- rb + (disp << 16)`.
    Ldah,
    /// Load zero-extended byte.
    Ldbu,
    /// Load zero-extended word (16 bits).
    Ldwu,
    /// Load sign-extended longword (32 bits).
    Ldl,
    /// Load quadword (64 bits).
    Ldq,
    /// Store byte.
    Stb,
    /// Store word (16 bits).
    Stw,
    /// Store longword (32 bits).
    Stl,
    /// Store quadword (64 bits).
    Stq,
}

impl MemOp {
    /// Whether the operation reads memory.
    pub const fn is_load(self) -> bool {
        matches!(self, MemOp::Ldbu | MemOp::Ldwu | MemOp::Ldl | MemOp::Ldq)
    }

    /// Whether the operation writes memory.
    pub const fn is_store(self) -> bool {
        matches!(self, MemOp::Stb | MemOp::Stw | MemOp::Stl | MemOp::Stq)
    }

    /// Whether this is pure address arithmetic (`LDA`/`LDAH`), which never
    /// touches memory and can never trap.
    pub const fn is_address_arith(self) -> bool {
        matches!(self, MemOp::Lda | MemOp::Ldah)
    }

    /// Access size in bytes (1 for `LDA`/`LDAH`, which do not access memory,
    /// is reported as 0).
    pub const fn access_bytes(self) -> u8 {
        match self {
            MemOp::Lda | MemOp::Ldah => 0,
            MemOp::Ldbu | MemOp::Stb => 1,
            MemOp::Ldwu | MemOp::Stw => 2,
            MemOp::Ldl | MemOp::Stl => 4,
            MemOp::Ldq | MemOp::Stq => 8,
        }
    }

    /// Architectural mnemonic.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            MemOp::Lda => "lda",
            MemOp::Ldah => "ldah",
            MemOp::Ldbu => "ldbu",
            MemOp::Ldwu => "ldwu",
            MemOp::Ldl => "ldl",
            MemOp::Ldq => "ldq",
            MemOp::Stb => "stb",
            MemOp::Stw => "stw",
            MemOp::Stl => "stl",
            MemOp::Stq => "stq",
        }
    }
}

/// Branch-format operations (PC-relative control transfer).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BranchOp {
    /// Unconditional branch; writes the return address to `ra`.
    Br,
    /// Branch to subroutine; writes the return address to `ra`.
    Bsr,
    /// Branch if `ra == 0`.
    Beq,
    /// Branch if `ra != 0`.
    Bne,
    /// Branch if `ra < 0` (signed).
    Blt,
    /// Branch if `ra <= 0` (signed).
    Ble,
    /// Branch if `ra > 0` (signed).
    Bgt,
    /// Branch if `ra >= 0` (signed).
    Bge,
    /// Branch if low bit of `ra` is clear.
    Blbc,
    /// Branch if low bit of `ra` is set.
    Blbs,
}

impl BranchOp {
    /// Whether the branch is unconditional (`BR`/`BSR`).
    pub const fn is_unconditional(self) -> bool {
        matches!(self, BranchOp::Br | BranchOp::Bsr)
    }

    /// The conditional branch testing the logically opposite condition.
    ///
    /// Used by the translator's code straightening to reverse a taken branch
    /// so that the hot successor falls through.
    ///
    /// # Panics
    ///
    /// Panics for `BR`/`BSR`, which have no inverse.
    pub fn inverse(self) -> BranchOp {
        match self {
            BranchOp::Beq => BranchOp::Bne,
            BranchOp::Bne => BranchOp::Beq,
            BranchOp::Blt => BranchOp::Bge,
            BranchOp::Bge => BranchOp::Blt,
            BranchOp::Ble => BranchOp::Bgt,
            BranchOp::Bgt => BranchOp::Ble,
            BranchOp::Blbc => BranchOp::Blbs,
            BranchOp::Blbs => BranchOp::Blbc,
            BranchOp::Br | BranchOp::Bsr => {
                panic!("unconditional branch has no inverse condition")
            }
        }
    }

    /// Evaluates the branch condition against the value of `ra`.
    ///
    /// Unconditional branches always report `true`.
    pub fn taken(self, ra_value: u64) -> bool {
        let sv = ra_value as i64;
        match self {
            BranchOp::Br | BranchOp::Bsr => true,
            BranchOp::Beq => sv == 0,
            BranchOp::Bne => sv != 0,
            BranchOp::Blt => sv < 0,
            BranchOp::Ble => sv <= 0,
            BranchOp::Bgt => sv > 0,
            BranchOp::Bge => sv >= 0,
            BranchOp::Blbc => ra_value & 1 == 0,
            BranchOp::Blbs => ra_value & 1 == 1,
        }
    }

    /// Architectural mnemonic.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            BranchOp::Br => "br",
            BranchOp::Bsr => "bsr",
            BranchOp::Beq => "beq",
            BranchOp::Bne => "bne",
            BranchOp::Blt => "blt",
            BranchOp::Ble => "ble",
            BranchOp::Bgt => "bgt",
            BranchOp::Bge => "bge",
            BranchOp::Blbc => "blbc",
            BranchOp::Blbs => "blbs",
        }
    }
}

/// Register-indirect jump flavors (memory-format opcode `0x1A`).
///
/// The two-bit field distinguishing them is a branch-prediction *hint* on
/// real hardware; the architectural effect of all four is
/// `ra <- pc+4; pc <- rb & !3`. The DBT system relies on the hint to decide
/// how to chain fragments (returns go through the dual-address RAS).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum JumpKind {
    /// Computed jump with no call/return semantics.
    Jmp,
    /// Indirect subroutine call.
    Jsr,
    /// Subroutine return.
    Ret,
    /// Coroutine linkage (rare; treated like `JMP` by the translator).
    JsrCoroutine,
}

impl JumpKind {
    /// Architectural mnemonic.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            JumpKind::Jmp => "jmp",
            JumpKind::Jsr => "jsr",
            JumpKind::Ret => "ret",
            JumpKind::JsrCoroutine => "jsr_coroutine",
        }
    }

    /// The two-bit encoding in instruction bits `15:14`.
    pub const fn code(self) -> u32 {
        match self {
            JumpKind::Jmp => 0,
            JumpKind::Jsr => 1,
            JumpKind::Ret => 2,
            JumpKind::JsrCoroutine => 3,
        }
    }

    /// Decodes from instruction bits `15:14`.
    pub const fn from_code(code: u32) -> JumpKind {
        match code & 3 {
            0 => JumpKind::Jmp,
            1 => JumpKind::Jsr,
            2 => JumpKind::Ret,
            _ => JumpKind::JsrCoroutine,
        }
    }

    /// Whether the jump records a call (pushes a return address in the RAS
    /// model).
    pub const fn is_call(self) -> bool {
        matches!(self, JumpKind::Jsr)
    }

    /// Whether the jump is a subroutine return.
    pub const fn is_return(self) -> bool {
        matches!(self, JumpKind::Ret)
    }
}

/// Operate-format operations (integer ALU, compares, conditional moves,
/// shifts, byte manipulation, multiplies).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum OperateOp {
    // -- opcode 0x10: integer arithmetic --
    /// 32-bit add, result sign-extended.
    Addl,
    /// 64-bit add.
    Addq,
    /// 32-bit subtract, result sign-extended.
    Subl,
    /// 64-bit subtract.
    Subq,
    /// Scaled add: `4*ra + rb` (32-bit).
    S4addl,
    /// Scaled add: `4*ra + rb` (64-bit).
    S4addq,
    /// Scaled add: `8*ra + rb` (64-bit).
    S8addq,
    /// Scaled subtract: `4*ra - rb` (64-bit).
    S4subq,
    /// Scaled subtract: `8*ra - rb` (64-bit).
    S8subq,
    /// Compare equal: `rc <- (ra == rb)`.
    Cmpeq,
    /// Compare signed less-than.
    Cmplt,
    /// Compare signed less-or-equal.
    Cmple,
    /// Compare unsigned less-than.
    Cmpult,
    /// Compare unsigned less-or-equal.
    Cmpule,
    // -- opcode 0x11: logical and conditional move --
    /// Bitwise AND.
    And,
    /// AND with complement: `ra & !rb`.
    Bic,
    /// Bitwise OR (`BIS`). `bis r31, r31, r31` is the canonical NOP.
    Bis,
    /// OR with complement: `ra | !rb`.
    Ornot,
    /// Bitwise XOR.
    Xor,
    /// XOR with complement (equivalence).
    Eqv,
    /// Conditional move if `ra == 0`.
    Cmoveq,
    /// Conditional move if `ra != 0`.
    Cmovne,
    /// Conditional move if `ra < 0` (signed).
    Cmovlt,
    /// Conditional move if `ra >= 0` (signed).
    Cmovge,
    /// Conditional move if `ra <= 0` (signed).
    Cmovle,
    /// Conditional move if `ra > 0` (signed).
    Cmovgt,
    /// Conditional move if low bit of `ra` set.
    Cmovlbs,
    /// Conditional move if low bit of `ra` clear.
    Cmovlbc,
    // -- opcode 0x12: shifts and byte manipulation --
    /// Shift left logical by `rb & 63`.
    Sll,
    /// Shift right logical by `rb & 63`.
    Srl,
    /// Shift right arithmetic by `rb & 63`.
    Sra,
    /// Extract byte low.
    Extbl,
    /// Extract word low.
    Extwl,
    /// Extract longword low.
    Extll,
    /// Extract quadword low.
    Extql,
    /// Insert byte low.
    Insbl,
    /// Mask byte low.
    Mskbl,
    /// Zero bytes selected by the complement of the low 8 bits of `rb`.
    Zapnot,
    /// Zero bytes selected by the low 8 bits of `rb`.
    Zap,
    // -- opcode 0x13: multiplies --
    /// 32-bit multiply, result sign-extended.
    Mull,
    /// 64-bit multiply (low half).
    Mulq,
    /// Unsigned multiply, high 64 bits.
    Umulh,
}

impl OperateOp {
    /// Whether this is a conditional move (the only operate op that also
    /// reads its destination register).
    pub const fn is_cmov(self) -> bool {
        matches!(
            self,
            OperateOp::Cmoveq
                | OperateOp::Cmovne
                | OperateOp::Cmovlt
                | OperateOp::Cmovge
                | OperateOp::Cmovle
                | OperateOp::Cmovgt
                | OperateOp::Cmovlbs
                | OperateOp::Cmovlbc
        )
    }

    /// Whether this is a multiply (longer functional-unit latency).
    pub const fn is_multiply(self) -> bool {
        matches!(self, OperateOp::Mull | OperateOp::Mulq | OperateOp::Umulh)
    }

    /// Evaluates the operation on two 64-bit operand values.
    ///
    /// For conditional moves this returns the *move value* (operand `b`);
    /// the caller is responsible for testing [`OperateOp::cmov_taken`] and
    /// retaining the old destination when the move is not taken.
    pub fn eval(self, a: u64, b: u64) -> u64 {
        fn sext32(x: u64) -> u64 {
            x as u32 as i32 as i64 as u64
        }
        let shift = (b & 63) as u32;
        let byte_off = ((b & 7) * 8) as u32;
        match self {
            OperateOp::Addl => sext32(a.wrapping_add(b)),
            OperateOp::Addq => a.wrapping_add(b),
            OperateOp::Subl => sext32(a.wrapping_sub(b)),
            OperateOp::Subq => a.wrapping_sub(b),
            OperateOp::S4addl => sext32(a.wrapping_mul(4).wrapping_add(b)),
            OperateOp::S4addq => a.wrapping_mul(4).wrapping_add(b),
            OperateOp::S8addq => a.wrapping_mul(8).wrapping_add(b),
            OperateOp::S4subq => a.wrapping_mul(4).wrapping_sub(b),
            OperateOp::S8subq => a.wrapping_mul(8).wrapping_sub(b),
            OperateOp::Cmpeq => (a == b) as u64,
            OperateOp::Cmplt => ((a as i64) < (b as i64)) as u64,
            OperateOp::Cmple => ((a as i64) <= (b as i64)) as u64,
            OperateOp::Cmpult => (a < b) as u64,
            OperateOp::Cmpule => (a <= b) as u64,
            OperateOp::And => a & b,
            OperateOp::Bic => a & !b,
            OperateOp::Bis => a | b,
            OperateOp::Ornot => a | !b,
            OperateOp::Xor => a ^ b,
            OperateOp::Eqv => a ^ !b,
            // Conditional moves: value to move is b; selection handled by caller.
            op if op.is_cmov() => b,
            OperateOp::Sll => {
                if shift == 0 {
                    a
                } else {
                    a << shift
                }
            }
            OperateOp::Srl => {
                if shift == 0 {
                    a
                } else {
                    a >> shift
                }
            }
            OperateOp::Sra => ((a as i64) >> shift) as u64,
            OperateOp::Extbl => (a >> byte_off) & 0xff,
            OperateOp::Extwl => (a >> byte_off) & 0xffff,
            OperateOp::Extll => (a >> byte_off) & 0xffff_ffff,
            OperateOp::Extql => a >> byte_off,
            OperateOp::Insbl => (a & 0xff) << byte_off,
            OperateOp::Mskbl => a & !(0xffu64 << byte_off),
            OperateOp::Zapnot => {
                let mut mask = 0u64;
                for i in 0..8 {
                    if b & (1 << i) != 0 {
                        mask |= 0xffu64 << (i * 8);
                    }
                }
                a & mask
            }
            OperateOp::Zap => {
                let mut mask = 0u64;
                for i in 0..8 {
                    if b & (1 << i) != 0 {
                        mask |= 0xffu64 << (i * 8);
                    }
                }
                a & !mask
            }
            OperateOp::Mull => sext32(a.wrapping_mul(b)),
            OperateOp::Mulq => a.wrapping_mul(b),
            OperateOp::Umulh => (((a as u128) * (b as u128)) >> 64) as u64,
            _ => unreachable!("cmov handled above"),
        }
    }

    /// For conditional moves, whether the move fires given the test value
    /// (register `ra`).
    ///
    /// # Panics
    ///
    /// Panics if called on a non-cmov operation.
    pub fn cmov_taken(self, test: u64) -> bool {
        let sv = test as i64;
        match self {
            OperateOp::Cmoveq => sv == 0,
            OperateOp::Cmovne => sv != 0,
            OperateOp::Cmovlt => sv < 0,
            OperateOp::Cmovge => sv >= 0,
            OperateOp::Cmovle => sv <= 0,
            OperateOp::Cmovgt => sv > 0,
            OperateOp::Cmovlbs => test & 1 == 1,
            OperateOp::Cmovlbc => test & 1 == 0,
            _ => panic!("cmov_taken on non-cmov operate op"),
        }
    }

    /// Architectural mnemonic.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            OperateOp::Addl => "addl",
            OperateOp::Addq => "addq",
            OperateOp::Subl => "subl",
            OperateOp::Subq => "subq",
            OperateOp::S4addl => "s4addl",
            OperateOp::S4addq => "s4addq",
            OperateOp::S8addq => "s8addq",
            OperateOp::S4subq => "s4subq",
            OperateOp::S8subq => "s8subq",
            OperateOp::Cmpeq => "cmpeq",
            OperateOp::Cmplt => "cmplt",
            OperateOp::Cmple => "cmple",
            OperateOp::Cmpult => "cmpult",
            OperateOp::Cmpule => "cmpule",
            OperateOp::And => "and",
            OperateOp::Bic => "bic",
            OperateOp::Bis => "bis",
            OperateOp::Ornot => "ornot",
            OperateOp::Xor => "xor",
            OperateOp::Eqv => "eqv",
            OperateOp::Cmoveq => "cmoveq",
            OperateOp::Cmovne => "cmovne",
            OperateOp::Cmovlt => "cmovlt",
            OperateOp::Cmovge => "cmovge",
            OperateOp::Cmovle => "cmovle",
            OperateOp::Cmovgt => "cmovgt",
            OperateOp::Cmovlbs => "cmovlbs",
            OperateOp::Cmovlbc => "cmovlbc",
            OperateOp::Sll => "sll",
            OperateOp::Srl => "srl",
            OperateOp::Sra => "sra",
            OperateOp::Extbl => "extbl",
            OperateOp::Extwl => "extwl",
            OperateOp::Extll => "extll",
            OperateOp::Extql => "extql",
            OperateOp::Insbl => "insbl",
            OperateOp::Mskbl => "mskbl",
            OperateOp::Zapnot => "zapnot",
            OperateOp::Zap => "zap",
            OperateOp::Mull => "mull",
            OperateOp::Mulq => "mulq",
            OperateOp::Umulh => "umulh",
        }
    }
}

/// The `rb` operand of an operate-format instruction: a register or an
/// 8-bit zero-extended literal.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Operand {
    /// Register operand.
    Reg(Reg),
    /// 8-bit literal, zero-extended to 64 bits.
    Lit(u8),
}

impl Operand {
    /// The register, if this operand is one.
    pub const fn reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Lit(_) => None,
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Operand {
        Operand::Reg(r)
    }
}

impl From<u8> for Operand {
    fn from(v: u8) -> Operand {
        Operand::Lit(v)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Lit(v) => write!(f, "#{v}"),
        }
    }
}

/// PALcode functions used by this system.
///
/// Real Alpha PALcode is a privileged firmware layer; the reproduction only
/// needs a handful of services, used by the synthetic workloads and by the
/// trap-injection tests.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PalFunc {
    /// Stop execution; the program has finished.
    Halt,
    /// Deliberately raise a trap (`gentrap`); exercises precise-trap
    /// recovery.
    GenTrap,
    /// Output the low byte of `a0` (bufferable console write); keeps
    /// workload output observable without a full OS model.
    PutChar,
    /// Unrecognized function code, preserved for round-tripping.
    Other(u32),
}

impl PalFunc {
    /// The 26-bit function code.
    pub const fn code(self) -> u32 {
        match self {
            PalFunc::Halt => 0x0000,
            PalFunc::GenTrap => 0x00aa,
            PalFunc::PutChar => 0x0081,
            PalFunc::Other(c) => c,
        }
    }

    /// Decodes from a 26-bit function code.
    pub const fn from_code(code: u32) -> PalFunc {
        match code & 0x03ff_ffff {
            0x0000 => PalFunc::Halt,
            0x00aa => PalFunc::GenTrap,
            0x0081 => PalFunc::PutChar,
            c => PalFunc::Other(c),
        }
    }
}

/// A decoded Alpha instruction.
///
/// # Examples
///
/// ```
/// use alpha_isa::{Inst, MemOp, Reg};
/// let ld = Inst::Mem { op: MemOp::Ldq, ra: Reg::V0, rb: Reg::SP, disp: 16 };
/// assert!(ld.is_load());
/// assert_eq!(ld.dest(), Some(Reg::V0));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Inst {
    /// Memory format: loads, stores, `LDA`, `LDAH`.
    Mem {
        /// Operation.
        op: MemOp,
        /// Data register (destination for loads, source for stores).
        ra: Reg,
        /// Base address register.
        rb: Reg,
        /// 16-bit signed byte displacement.
        disp: i16,
    },
    /// Branch format: PC-relative branches.
    Branch {
        /// Operation.
        op: BranchOp,
        /// Condition/link register.
        ra: Reg,
        /// Signed displacement in *instructions* from the updated PC
        /// (21-bit field).
        disp: i32,
    },
    /// Memory-format jump: `JMP`/`JSR`/`RET`/`JSR_COROUTINE`.
    Jump {
        /// Jump flavor (prediction hint).
        kind: JumpKind,
        /// Link register receiving `pc + 4`.
        ra: Reg,
        /// Target address register.
        rb: Reg,
        /// 14-bit prediction hint (ignored architecturally).
        hint: u16,
    },
    /// Operate format: integer ALU operations.
    Operate {
        /// Operation.
        op: OperateOp,
        /// First source register.
        ra: Reg,
        /// Second source: register or 8-bit literal.
        rb: Operand,
        /// Destination register.
        rc: Reg,
    },
    /// `CALL_PAL`: privileged/firmware call.
    CallPal {
        /// PAL function.
        func: PalFunc,
    },
    /// A recognized but unimplemented extension (the floating-point
    /// subset). Decodes so the front end can name the gap precisely;
    /// executing it raises an illegal-instruction trap with all
    /// architected state untouched, so it never retires and never enters
    /// a superblock.
    Unimplemented {
        /// The raw machine word.
        word: u32,
    },
}

impl Inst {
    /// The canonical Alpha NOP (`bis r31, r31, r31`).
    pub const NOP: Inst = Inst::Operate {
        op: OperateOp::Bis,
        ra: Reg::ZERO,
        rb: Operand::Reg(Reg::ZERO),
        rc: Reg::ZERO,
    };

    /// Whether this instruction is an architectural no-op (any operate or
    /// load-address instruction whose destination is `R31`, or the canonical
    /// NOP encoding).
    pub fn is_nop(&self) -> bool {
        match *self {
            Inst::Operate { rc, .. } => rc.is_zero(),
            Inst::Mem { op, ra, .. } => op.is_address_arith() && ra.is_zero(),
            _ => false,
        }
    }

    /// Whether this instruction reads memory.
    pub fn is_load(&self) -> bool {
        matches!(*self, Inst::Mem { op, .. } if op.is_load())
    }

    /// Whether this instruction writes memory.
    pub fn is_store(&self) -> bool {
        matches!(*self, Inst::Mem { op, .. } if op.is_store())
    }

    /// Whether this is any control-transfer instruction.
    pub fn is_control(&self) -> bool {
        matches!(
            *self,
            Inst::Branch { .. } | Inst::Jump { .. } | Inst::CallPal { .. }
        )
    }

    /// Whether this is a conditional branch.
    pub fn is_cond_branch(&self) -> bool {
        matches!(*self, Inst::Branch { op, .. } if !op.is_unconditional())
    }

    /// Whether this instruction may raise a trap (is a PEI — potentially
    /// excepting instruction): memory accesses and PAL traps.
    pub fn is_pei(&self) -> bool {
        match *self {
            Inst::Mem { op, .. } => op.is_load() || op.is_store(),
            Inst::CallPal { func } => matches!(func, PalFunc::GenTrap),
            _ => false,
        }
    }

    /// The destination register written by this instruction, if any.
    ///
    /// `R31` destinations are reported as `None` (the write is discarded).
    pub fn dest(&self) -> Option<Reg> {
        let d = match *self {
            Inst::Mem { op, ra, .. } => {
                if op.is_store() {
                    return None;
                }
                ra
            }
            Inst::Branch { op, ra, .. } => match op {
                BranchOp::Br | BranchOp::Bsr => ra,
                _ => return None,
            },
            Inst::Jump { ra, .. } => ra,
            Inst::Operate { rc, .. } => rc,
            Inst::CallPal { .. } | Inst::Unimplemented { .. } => return None,
        };
        if d.is_zero() {
            None
        } else {
            Some(d)
        }
    }

    /// The source registers read by this instruction, in canonical order.
    ///
    /// `R31` sources are omitted (they read as constant zero and carry no
    /// dependence). Conditional moves additionally read their destination.
    pub fn sources(&self) -> SourceRegs {
        let mut out = SourceRegs::default();
        let mut push = |r: Reg| {
            if !r.is_zero() {
                out.push(r);
            }
        };
        match *self {
            Inst::Mem { op, ra, rb, .. } => {
                push(rb);
                if op.is_store() {
                    push(ra);
                }
            }
            Inst::Branch { op, ra, .. } => {
                if !op.is_unconditional() {
                    push(ra);
                }
            }
            Inst::Jump { rb, .. } => push(rb),
            Inst::Operate { op, ra, rb, rc } => {
                push(ra);
                if let Operand::Reg(r) = rb {
                    push(r);
                }
                if op.is_cmov() {
                    push(rc);
                }
            }
            Inst::CallPal { func } => {
                if matches!(func, PalFunc::PutChar) {
                    push(Reg::A0);
                }
            }
            Inst::Unimplemented { .. } => {}
        }
        out
    }
}

/// A small fixed-capacity set of source registers (an instruction reads at
/// most three).
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct SourceRegs {
    regs: [Option<Reg>; 3],
    len: u8,
}

impl SourceRegs {
    fn push(&mut self, r: Reg) {
        assert!((self.len as usize) < 3, "more than 3 source registers");
        self.regs[self.len as usize] = Some(r);
        self.len += 1;
    }

    /// Number of sources.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether there are no register sources.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over the sources in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = Reg> + '_ {
        self.regs.iter().take(self.len as usize).map(|r| r.unwrap())
    }

    /// Whether `r` is among the sources.
    pub fn contains(&self, r: Reg) -> bool {
        self.iter().any(|s| s == r)
    }
}

impl IntoIterator for SourceRegs {
    type Item = Reg;
    type IntoIter = std::iter::Flatten<std::array::IntoIter<Option<Reg>, 3>>;

    fn into_iter(self) -> Self::IntoIter {
        self.regs.into_iter().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: u8) -> Reg {
        Reg::new(n)
    }

    #[test]
    fn nop_detection() {
        assert!(Inst::NOP.is_nop());
        let real = Inst::Operate {
            op: OperateOp::Addq,
            ra: r(1),
            rb: Operand::Reg(r(2)),
            rc: r(3),
        };
        assert!(!real.is_nop());
        let dead = Inst::Operate {
            op: OperateOp::Addq,
            ra: r(1),
            rb: Operand::Reg(r(2)),
            rc: Reg::ZERO,
        };
        assert!(dead.is_nop());
    }

    #[test]
    fn load_store_classification() {
        assert!(MemOp::Ldq.is_load());
        assert!(!MemOp::Ldq.is_store());
        assert!(MemOp::Stb.is_store());
        assert!(MemOp::Lda.is_address_arith());
        assert_eq!(MemOp::Ldwu.access_bytes(), 2);
    }

    #[test]
    fn branch_inverse_roundtrip() {
        for op in [
            BranchOp::Beq,
            BranchOp::Bne,
            BranchOp::Blt,
            BranchOp::Ble,
            BranchOp::Bgt,
            BranchOp::Bge,
            BranchOp::Blbc,
            BranchOp::Blbs,
        ] {
            assert_eq!(op.inverse().inverse(), op);
            // Inverse must evaluate oppositely on every sample value.
            for v in [0u64, 1, 2, u64::MAX, i64::MIN as u64, 0x8000_0001] {
                assert_ne!(op.taken(v), op.inverse().taken(v), "{op:?} on {v:#x}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "no inverse")]
    fn br_has_no_inverse() {
        let _ = BranchOp::Br.inverse();
    }

    #[test]
    fn branch_conditions() {
        assert!(BranchOp::Beq.taken(0));
        assert!(!BranchOp::Beq.taken(5));
        assert!(BranchOp::Blt.taken(u64::MAX)); // -1 < 0
        assert!(!BranchOp::Blt.taken(0));
        assert!(BranchOp::Blbs.taken(3));
        assert!(BranchOp::Blbc.taken(2));
    }

    #[test]
    fn operate_arithmetic_semantics() {
        assert_eq!(OperateOp::Addq.eval(3, 4), 7);
        // ADDL sign-extends the 32-bit result.
        assert_eq!(
            OperateOp::Addl.eval(0x7fff_ffff, 1),
            0xffff_ffff_8000_0000u64
        );
        assert_eq!(OperateOp::Subq.eval(3, 4), u64::MAX);
        assert_eq!(OperateOp::S8addq.eval(2, 5), 21);
        assert_eq!(OperateOp::S4subq.eval(2, 5), 3);
        assert_eq!(OperateOp::Cmplt.eval(u64::MAX, 0), 1); // -1 < 0 signed
        assert_eq!(OperateOp::Cmpult.eval(u64::MAX, 0), 0);
        assert_eq!(OperateOp::Umulh.eval(1 << 63, 4), 2);
        assert_eq!(OperateOp::Mull.eval(0x1_0000_0001, 1), 1);
    }

    #[test]
    fn operate_logical_and_shift_semantics() {
        assert_eq!(OperateOp::Bic.eval(0xff, 0x0f), 0xf0);
        assert_eq!(OperateOp::Ornot.eval(0, 0), u64::MAX);
        assert_eq!(OperateOp::Eqv.eval(5, 5), u64::MAX);
        assert_eq!(OperateOp::Sll.eval(1, 63), 1 << 63);
        assert_eq!(OperateOp::Sra.eval(u64::MAX, 5), u64::MAX);
        assert_eq!(OperateOp::Srl.eval(u64::MAX, 63), 1);
        // shift amount is taken mod 64
        assert_eq!(OperateOp::Sll.eval(1, 64), 1);
    }

    #[test]
    fn byte_manipulation_semantics() {
        assert_eq!(OperateOp::Extbl.eval(0x1122_3344_5566_7788, 1), 0x77);
        assert_eq!(OperateOp::Extwl.eval(0x1122_3344_5566_7788, 2), 0x5566);
        assert_eq!(OperateOp::Insbl.eval(0xab, 2), 0xab_0000);
        assert_eq!(
            OperateOp::Mskbl.eval(0xffff_ffff_ffff_ffff, 0),
            0xffff_ffff_ffff_ff00
        );
        assert_eq!(
            OperateOp::Zapnot.eval(0x1122_3344_5566_7788, 0x0f),
            0x5566_7788
        );
        assert_eq!(
            OperateOp::Zap.eval(0x1122_3344_5566_7788, 0x0f),
            0x1122_3344_0000_0000
        );
    }

    #[test]
    fn cmov_selection() {
        assert!(OperateOp::Cmoveq.cmov_taken(0));
        assert!(!OperateOp::Cmoveq.cmov_taken(1));
        assert!(OperateOp::Cmovlbs.cmov_taken(1));
        assert!(OperateOp::Cmovgt.cmov_taken(7));
        assert!(!OperateOp::Cmovgt.cmov_taken(0));
    }

    #[test]
    fn dest_and_sources() {
        let st = Inst::Mem {
            op: MemOp::Stq,
            ra: r(1),
            rb: r(2),
            disp: 0,
        };
        assert_eq!(st.dest(), None);
        let srcs: Vec<Reg> = st.sources().iter().collect();
        assert_eq!(srcs, vec![r(2), r(1)]);

        let cmov = Inst::Operate {
            op: OperateOp::Cmoveq,
            ra: r(1),
            rb: Operand::Reg(r(2)),
            rc: r(3),
        };
        assert_eq!(cmov.dest(), Some(r(3)));
        assert_eq!(cmov.sources().len(), 3);

        let bsr = Inst::Branch {
            op: BranchOp::Bsr,
            ra: Reg::RA,
            disp: 10,
        };
        assert_eq!(bsr.dest(), Some(Reg::RA));
        assert!(bsr.sources().is_empty());

        // r31 sources/dests are suppressed.
        let dead = Inst::Operate {
            op: OperateOp::Addq,
            ra: Reg::ZERO,
            rb: Operand::Lit(4),
            rc: Reg::ZERO,
        };
        assert_eq!(dead.dest(), None);
        assert!(dead.sources().is_empty());
    }

    #[test]
    fn pei_classification() {
        assert!(Inst::Mem {
            op: MemOp::Ldq,
            ra: r(1),
            rb: r(2),
            disp: 0
        }
        .is_pei());
        assert!(!Inst::Mem {
            op: MemOp::Lda,
            ra: r(1),
            rb: r(2),
            disp: 0
        }
        .is_pei());
        assert!(Inst::CallPal {
            func: PalFunc::GenTrap
        }
        .is_pei());
        assert!(!Inst::NOP.is_pei());
    }

    #[test]
    fn jump_kind_codes_roundtrip() {
        for k in [
            JumpKind::Jmp,
            JumpKind::Jsr,
            JumpKind::Ret,
            JumpKind::JsrCoroutine,
        ] {
            assert_eq!(JumpKind::from_code(k.code()), k);
        }
    }
}
