//! Alpha instruction decoding (32-bit machine word → decoded form).

use crate::encode::opcode;
use crate::inst::{BranchOp, Inst, JumpKind, MemOp, Operand, OperateOp, PalFunc};
use crate::Reg;

#[inline]
fn field(word: u32, hi: u32, lo: u32) -> u32 {
    (word >> lo) & ((1u32 << (hi - lo + 1)) - 1)
}

#[inline]
fn ra_of(word: u32) -> Reg {
    Reg::new(field(word, 25, 21) as u8)
}

#[inline]
fn rb_of(word: u32) -> Reg {
    Reg::new(field(word, 20, 16) as u8)
}

fn decode_operate(word: u32, opc: u32) -> Option<Inst> {
    use OperateOp::*;
    let func = field(word, 11, 5);
    let op = match (opc, func) {
        (opcode::INTA, 0x00) => Addl,
        (opcode::INTA, 0x02) => S4addl,
        (opcode::INTA, 0x09) => Subl,
        (opcode::INTA, 0x20) => Addq,
        (opcode::INTA, 0x22) => S4addq,
        (opcode::INTA, 0x29) => Subq,
        (opcode::INTA, 0x32) => S8addq,
        (opcode::INTA, 0x2b) => S4subq,
        (opcode::INTA, 0x3b) => S8subq,
        (opcode::INTA, 0x1d) => Cmpult,
        (opcode::INTA, 0x2d) => Cmpeq,
        (opcode::INTA, 0x3d) => Cmpule,
        (opcode::INTA, 0x4d) => Cmplt,
        (opcode::INTA, 0x6d) => Cmple,
        (opcode::INTL, 0x00) => And,
        (opcode::INTL, 0x08) => Bic,
        (opcode::INTL, 0x14) => Cmovlbs,
        (opcode::INTL, 0x16) => Cmovlbc,
        (opcode::INTL, 0x20) => Bis,
        (opcode::INTL, 0x24) => Cmoveq,
        (opcode::INTL, 0x26) => Cmovne,
        (opcode::INTL, 0x28) => Ornot,
        (opcode::INTL, 0x40) => Xor,
        (opcode::INTL, 0x44) => Cmovlt,
        (opcode::INTL, 0x46) => Cmovge,
        (opcode::INTL, 0x48) => Eqv,
        (opcode::INTL, 0x64) => Cmovle,
        (opcode::INTL, 0x66) => Cmovgt,
        (opcode::INTS, 0x02) => Mskbl,
        (opcode::INTS, 0x06) => Extbl,
        (opcode::INTS, 0x0b) => Insbl,
        (opcode::INTS, 0x16) => Extwl,
        (opcode::INTS, 0x26) => Extll,
        (opcode::INTS, 0x30) => Zap,
        (opcode::INTS, 0x31) => Zapnot,
        (opcode::INTS, 0x34) => Srl,
        (opcode::INTS, 0x36) => Extql,
        (opcode::INTS, 0x39) => Sll,
        (opcode::INTS, 0x3c) => Sra,
        (opcode::INTM, 0x00) => Mull,
        (opcode::INTM, 0x20) => Mulq,
        (opcode::INTM, 0x30) => Umulh,
        _ => return None,
    };
    let rb = if field(word, 12, 12) == 1 {
        Operand::Lit(field(word, 20, 13) as u8)
    } else {
        // Bits 15:13 are "should be zero" in the register form; a nonzero
        // value is not a valid encoding of this subset.
        if field(word, 15, 13) != 0 {
            return None;
        }
        Operand::Reg(rb_of(word))
    };
    Some(Inst::Operate {
        op,
        ra: ra_of(word),
        rb,
        rc: Reg::new(field(word, 4, 0) as u8),
    })
}

/// Decodes a 32-bit Alpha machine word.
///
/// Returns `None` for encodings outside the implemented subset (the
/// interpreter turns those into an illegal-instruction trap).
///
/// # Examples
///
/// ```
/// use alpha_isa::{decode, Inst};
/// assert_eq!(decode(0x47ff041f), Some(Inst::NOP));
/// ```
pub fn decode(word: u32) -> Option<Inst> {
    let opc = field(word, 31, 26);
    let mem = |op: MemOp| Inst::Mem {
        op,
        ra: ra_of(word),
        rb: rb_of(word),
        disp: field(word, 15, 0) as u16 as i16,
    };
    let branch = |op: BranchOp| {
        let raw = field(word, 20, 0);
        // Sign-extend the 21-bit displacement.
        let disp = ((raw << 11) as i32) >> 11;
        Inst::Branch {
            op,
            ra: ra_of(word),
            disp,
        }
    };
    Some(match opc {
        opcode::CALL_PAL => Inst::CallPal {
            func: PalFunc::from_code(field(word, 25, 0)),
        },
        opcode::LDA => mem(MemOp::Lda),
        opcode::LDAH => mem(MemOp::Ldah),
        opcode::LDBU => mem(MemOp::Ldbu),
        opcode::LDWU => mem(MemOp::Ldwu),
        opcode::LDL => mem(MemOp::Ldl),
        opcode::LDQ => mem(MemOp::Ldq),
        opcode::STB => mem(MemOp::Stb),
        opcode::STW => mem(MemOp::Stw),
        opcode::STL => mem(MemOp::Stl),
        opcode::STQ => mem(MemOp::Stq),
        opcode::INTA | opcode::INTL | opcode::INTS | opcode::INTM => {
            return decode_operate(word, opc)
        }
        opcode::JMP_GROUP => Inst::Jump {
            kind: JumpKind::from_code(field(word, 15, 14)),
            ra: ra_of(word),
            rb: rb_of(word),
            hint: field(word, 13, 0) as u16,
        },
        opcode::BR => branch(BranchOp::Br),
        opcode::BSR => branch(BranchOp::Bsr),
        opcode::BLBC => branch(BranchOp::Blbc),
        opcode::BEQ => branch(BranchOp::Beq),
        opcode::BLT => branch(BranchOp::Blt),
        opcode::BLE => branch(BranchOp::Ble),
        opcode::BLBS => branch(BranchOp::Blbs),
        opcode::BNE => branch(BranchOp::Bne),
        opcode::BGE => branch(BranchOp::Bge),
        opcode::BGT => branch(BranchOp::Bgt),
        // The floating-point extension: recognized but unimplemented.
        // Decoding these as `Unimplemented` distinguishes the FP gap
        // (ITFP/FLTV/FLTI/FLTL operates, FP loads/stores, FP branches)
        // from genuinely reserved encodings, which still return `None`;
        // executing one raises a precise illegal-instruction trap.
        0x14..=0x17 | 0x20..=0x27 | 0x31..=0x33 | 0x35..=0x37 => Inst::Unimplemented { word },
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;

    #[test]
    fn decode_rejects_unknown_primary_opcode() {
        assert_eq!(decode(0x04 << 26), None); // reserved opcode
        assert_eq!(decode(0x18 << 26), None); // MISC (memory barriers)
    }

    #[test]
    fn floating_point_words_decode_to_unimplemented() {
        // One representative from each FP opcode family: ADDT (FLTI),
        // LDF, STT, FBEQ.
        for opc in [0x16u32, 0x20, 0x27, 0x31] {
            let word = opc << 26 | 0x1234;
            assert_eq!(decode(word), Some(Inst::Unimplemented { word }));
        }
        // Reserved opcodes are still undecodable, not "unimplemented".
        assert_eq!(decode(0x1c << 26), None);
    }

    #[test]
    fn decode_rejects_unknown_function_code() {
        // INTA with function 0x7f is not assigned.
        let word = (0x10 << 26) | (0x7f << 5);
        assert_eq!(decode(word), None);
    }

    #[test]
    fn decode_rejects_nonzero_sbz_bits() {
        // Register-form operate with bits 15:13 set is malformed.
        let good = encode(Inst::Operate {
            op: OperateOp::Addq,
            ra: Reg::new(1),
            rb: Operand::Reg(Reg::new(2)),
            rc: Reg::new(3),
        })
        .unwrap();
        assert!(decode(good).is_some());
        assert_eq!(decode(good | (0b101 << 13)), None);
    }

    #[test]
    fn branch_displacement_sign_extension() {
        let w = encode(Inst::Branch {
            op: BranchOp::Bne,
            ra: Reg::A1,
            disp: -3,
        })
        .unwrap();
        match decode(w).unwrap() {
            Inst::Branch { disp, .. } => assert_eq!(disp, -3),
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn negative_mem_displacement() {
        let w = encode(Inst::Mem {
            op: MemOp::Ldq,
            ra: Reg::V0,
            rb: Reg::SP,
            disp: -16,
        })
        .unwrap();
        match decode(w).unwrap() {
            Inst::Mem { disp, .. } => assert_eq!(disp, -16),
            other => panic!("wrong decode: {other:?}"),
        }
    }
}
