//! Alpha disassembly (textual form of decoded instructions).

use crate::inst::{BranchOp, Inst};
use std::fmt;

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Inst::Mem { op, ra, rb, disp } => {
                write!(f, "{} {ra}, {disp}({rb})", op.mnemonic())
            }
            Inst::Branch { op, ra, disp } => match op {
                BranchOp::Br | BranchOp::Bsr => write!(f, "{} {ra}, {disp:+}", op.mnemonic()),
                _ => write!(f, "{} {ra}, {disp:+}", op.mnemonic()),
            },
            Inst::Jump { kind, ra, rb, .. } => {
                write!(f, "{} {ra}, ({rb})", kind.mnemonic())
            }
            Inst::Operate { op, ra, rb, rc } => {
                write!(f, "{} {ra}, {rb}, {rc}", op.mnemonic())
            }
            Inst::CallPal { func } => write!(f, "call_pal {:#x}", func.code()),
            Inst::Unimplemented { word } => write!(f, ".unimpl {word:#010x}"),
        }
    }
}

/// Disassembles an instruction at a concrete PC, resolving branch targets to
/// absolute addresses.
///
/// # Examples
///
/// ```
/// use alpha_isa::{disassemble, Inst, BranchOp, Reg};
/// let inst = Inst::Branch { op: BranchOp::Bne, ra: Reg::A1, disp: -4 };
/// assert_eq!(disassemble(0x1010, inst), "bne r17, 0x1004");
/// ```
pub fn disassemble(pc: u64, inst: Inst) -> String {
    match inst {
        Inst::Branch { op, ra, disp } => {
            let target = pc.wrapping_add(4).wrapping_add(((disp as i64) << 2) as u64);
            match op {
                BranchOp::Br | BranchOp::Bsr => {
                    format!("{} {ra}, {target:#x}", op.mnemonic())
                }
                _ => format!("{} {ra}, {target:#x}", op.mnemonic()),
            }
        }
        _ => inst.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemOp, Operand, OperateOp, Reg};

    #[test]
    fn display_forms() {
        let ld = Inst::Mem {
            op: MemOp::Ldq,
            ra: Reg::V0,
            rb: Reg::SP,
            disp: 16,
        };
        assert_eq!(ld.to_string(), "ldq r0, 16(r30)");

        let op = Inst::Operate {
            op: OperateOp::Subl,
            ra: Reg::A1,
            rb: Operand::Lit(1),
            rc: Reg::A1,
        };
        assert_eq!(op.to_string(), "subl r17, #1, r17");

        assert_eq!(Inst::NOP.to_string(), "bis r31, r31, r31");
    }

    #[test]
    fn disassemble_resolves_targets() {
        let b = Inst::Branch {
            op: BranchOp::Br,
            ra: Reg::ZERO,
            disp: 2,
        };
        assert_eq!(disassemble(0x1000, b), "br r31, 0x100c");
    }
}
