//! Alpha integer register identifiers.
//!
//! The Alpha architecture has 32 general-purpose 64-bit integer registers,
//! `R0`..`R31`. `R31` reads as zero and discards writes. The standard
//! calling convention assigns software names (`v0`, `t0`.., `ra`, `sp`, ...)
//! which the disassembler uses.

use std::fmt;

/// An Alpha integer register number in `0..=31`.
///
/// `Reg` is a validated newtype: constructing one via [`Reg::new`] panics on
/// out-of-range input, so every `Reg` in the system is known-good.
///
/// # Examples
///
/// ```
/// use alpha_isa::Reg;
/// let ra = Reg::RA;
/// assert_eq!(ra.number(), 26);
/// assert!(Reg::ZERO.is_zero());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Return-value register `R0` (`v0`).
    pub const V0: Reg = Reg(0);
    /// First argument register `R16` (`a0`).
    pub const A0: Reg = Reg(16);
    /// Second argument register `R17` (`a1`).
    pub const A1: Reg = Reg(17);
    /// Third argument register `R18` (`a2`).
    pub const A2: Reg = Reg(18);
    /// Return-address register `R26` (`ra`).
    pub const RA: Reg = Reg(26);
    /// Procedure-value register `R27` (`pv`), used for indirect calls.
    pub const PV: Reg = Reg(27);
    /// Global pointer `R29` (`gp`).
    pub const GP: Reg = Reg(29);
    /// Stack pointer `R30` (`sp`).
    pub const SP: Reg = Reg(30);
    /// The always-zero register `R31`.
    pub const ZERO: Reg = Reg(31);

    /// Creates a register from its architectural number.
    ///
    /// # Panics
    ///
    /// Panics if `n > 31`.
    #[inline]
    pub const fn new(n: u8) -> Reg {
        assert!(n < 32, "alpha register number out of range");
        Reg(n)
    }

    /// Creates a register if `n` is in range, `None` otherwise.
    #[inline]
    pub const fn try_new(n: u8) -> Option<Reg> {
        if n < 32 {
            Some(Reg(n))
        } else {
            None
        }
    }

    /// The architectural register number, in `0..=31`.
    #[inline]
    pub const fn number(self) -> u8 {
        self.0
    }

    /// Whether this is `R31`, the hardwired zero register.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 31
    }

    /// Iterates over all 32 registers in numeric order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..32).map(Reg)
    }

    /// The conventional software name (`v0`, `t0`, `ra`, ...).
    pub const fn conventional_name(self) -> &'static str {
        const NAMES: [&str; 32] = [
            "v0", "t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7", "s0", "s1", "s2", "s3", "s4",
            "s5", "fp", "a0", "a1", "a2", "a3", "a4", "a5", "t8", "t9", "t10", "t11", "ra", "pv",
            "at", "gp", "sp", "zero",
        ];
        NAMES[self.0 as usize]
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}({})", self.0, self.conventional_name())
    }
}

impl From<Reg> for u8 {
    fn from(r: Reg) -> u8 {
        r.0
    }
}

impl From<Reg> for usize {
    fn from(r: Reg) -> usize {
        r.0 as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_have_expected_numbers() {
        assert_eq!(Reg::V0.number(), 0);
        assert_eq!(Reg::A0.number(), 16);
        assert_eq!(Reg::RA.number(), 26);
        assert_eq!(Reg::SP.number(), 30);
        assert_eq!(Reg::ZERO.number(), 31);
    }

    #[test]
    fn zero_detection() {
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::V0.is_zero());
    }

    #[test]
    fn all_yields_32_unique() {
        let v: Vec<Reg> = Reg::all().collect();
        assert_eq!(v.len(), 32);
        for (i, r) in v.iter().enumerate() {
            assert_eq!(r.number() as usize, i);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_rejects_out_of_range() {
        let _ = Reg::new(32);
    }

    #[test]
    fn try_new_boundary() {
        assert!(Reg::try_new(31).is_some());
        assert!(Reg::try_new(32).is_none());
    }

    #[test]
    fn display_and_names() {
        assert_eq!(Reg::new(5).to_string(), "r5");
        assert_eq!(Reg::RA.conventional_name(), "ra");
        assert_eq!(Reg::ZERO.conventional_name(), "zero");
    }
}
