//! A label-based Alpha assembler.
//!
//! [`Assembler`] builds a [`Program`] incrementally: emit instructions with
//! mnemonic-named helper methods, declare and bind [`Label`]s for control
//! flow, and allocate data blocks. Forward references are patched when
//! [`Assembler::finish`] is called.
//!
//! # Examples
//!
//! A countdown loop:
//!
//! ```
//! use alpha_isa::{Assembler, Reg};
//! let mut asm = Assembler::new(0x1_0000);
//! let a0 = Reg::A0;
//! asm.lda_imm(a0, 10);
//! let top = asm.here("top");
//! asm.subq_imm(a0, 1, a0);
//! asm.bne(a0, top);
//! asm.halt();
//! let program = asm.finish()?;
//! # Ok::<(), alpha_isa::AsmError>(())
//! ```

use crate::encode::{encode, EncodeError};
use crate::inst::{BranchOp, Inst, JumpKind, MemOp, Operand, OperateOp, PalFunc};
use crate::{Program, Reg};

/// A code label, declared with [`Assembler::label`] and positioned with
/// [`Assembler::bind`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Label(usize);

/// Errors reported when finishing assembly.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AsmError {
    /// A label was referenced but never bound to a position.
    UnboundLabel {
        /// The label's debug name.
        name: String,
    },
    /// An instruction field overflowed during final encoding.
    Encode(EncodeError),
    /// A branch target is too far away for the 21-bit displacement.
    BranchOutOfRange {
        /// Branch site instruction index.
        at: usize,
        /// The label's debug name.
        target: String,
    },
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AsmError::UnboundLabel { name } => write!(f, "label `{name}` was never bound"),
            AsmError::Encode(e) => write!(f, "encoding failed: {e}"),
            AsmError::BranchOutOfRange { at, target } => {
                write!(
                    f,
                    "branch at instruction {at} cannot reach label `{target}`"
                )
            }
        }
    }
}

impl std::error::Error for AsmError {}

impl From<EncodeError> for AsmError {
    fn from(e: EncodeError) -> AsmError {
        AsmError::Encode(e)
    }
}

enum Slot {
    /// A fully-formed instruction.
    Done(Inst),
    /// A branch whose displacement awaits label resolution.
    Branch {
        op: BranchOp,
        ra: Reg,
        target: Label,
    },
}

/// Incremental program builder. See the module documentation for an
/// example.
pub struct Assembler {
    code_base: u64,
    slots: Vec<Slot>,
    labels: Vec<(String, Option<usize>)>, // name, bound instruction index
    data: Vec<(u64, Vec<u8>)>,
    data_cursor: u64,
    entry: Option<u64>,
    initial_sp: u64,
}

impl Assembler {
    /// Default base address for assembler-allocated data blocks.
    pub const DEFAULT_DATA_BASE: u64 = 0x0100_0000;

    /// Creates an assembler that will place code at `code_base`.
    pub fn new(code_base: u64) -> Assembler {
        Assembler {
            code_base,
            slots: Vec::new(),
            labels: Vec::new(),
            data: Vec::new(),
            data_cursor: Assembler::DEFAULT_DATA_BASE,
            entry: None,
            initial_sp: Program::DEFAULT_SP,
        }
    }

    /// Declares a label (unbound). `name` is for diagnostics only.
    pub fn label(&mut self, name: impl Into<String>) -> Label {
        self.labels.push((name.into(), None));
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        let slot = &mut self.labels[label.0];
        assert!(slot.1.is_none(), "label `{}` bound twice", slot.0);
        slot.1 = Some(self.slots.len());
    }

    /// Declares a label and binds it to the current position in one step.
    pub fn here(&mut self, name: impl Into<String>) -> Label {
        let l = self.label(name);
        self.bind(l);
        l
    }

    /// The address the next emitted instruction will occupy.
    pub fn current_pc(&self) -> u64 {
        self.code_base + (self.slots.len() as u64) * 4
    }

    /// The code address of a label, if it has been bound.
    ///
    /// Useful for building jump tables and function-pointer tables in data
    /// memory: bind the target labels first, then write their addresses.
    pub fn label_addr(&self, label: Label) -> Option<u64> {
        self.labels[label.0]
            .1
            .map(|idx| self.code_base + (idx as u64) * 4)
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no instructions have been emitted.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Sets the program entry point to the current position.
    pub fn entry_here(&mut self) {
        self.entry = Some(self.current_pc());
    }

    /// Sets the initial stack pointer.
    pub fn set_initial_sp(&mut self, sp: u64) {
        self.initial_sp = sp;
    }

    /// Allocates a data block of `bytes` at the next data address, 8-byte
    /// aligned, and returns its base address.
    pub fn data_block(&mut self, bytes: Vec<u8>) -> u64 {
        let base = (self.data_cursor + 7) & !7u64;
        self.data_cursor = base + bytes.len() as u64;
        self.data.push((base, bytes));
        base
    }

    /// Allocates a zero-initialized block of `len` bytes.
    pub fn zero_block(&mut self, len: usize) -> u64 {
        self.data_block(vec![0; len])
    }

    /// Emits an arbitrary instruction.
    pub fn inst(&mut self, inst: Inst) {
        self.slots.push(Slot::Done(inst));
    }

    // ---- memory format ----

    /// `lda ra, disp(rb)`.
    pub fn lda(&mut self, ra: Reg, disp: i16, rb: Reg) {
        self.inst(Inst::Mem {
            op: MemOp::Lda,
            ra,
            rb,
            disp,
        });
    }

    /// `ldah ra, disp(rb)`.
    pub fn ldah(&mut self, ra: Reg, disp: i16, rb: Reg) {
        self.inst(Inst::Mem {
            op: MemOp::Ldah,
            ra,
            rb,
            disp,
        });
    }

    /// Loads a small signed immediate: `lda ra, imm(r31)`.
    pub fn lda_imm(&mut self, ra: Reg, imm: i16) {
        self.lda(ra, imm, Reg::ZERO);
    }

    /// Materializes an arbitrary 32-bit address/constant with `ldah`+`lda`.
    pub fn li32(&mut self, ra: Reg, value: u32) {
        let lo = value as u16 as i16;
        let mut hi = (value >> 16) as i16;
        if lo < 0 {
            hi = hi.wrapping_add(1);
        }
        self.ldah(ra, hi, Reg::ZERO);
        if lo != 0 {
            self.lda(ra, lo, ra);
        }
    }

    /// `ldbu ra, disp(rb)`.
    pub fn ldbu(&mut self, ra: Reg, disp: i16, rb: Reg) {
        self.inst(Inst::Mem {
            op: MemOp::Ldbu,
            ra,
            rb,
            disp,
        });
    }

    /// `ldwu ra, disp(rb)`.
    pub fn ldwu(&mut self, ra: Reg, disp: i16, rb: Reg) {
        self.inst(Inst::Mem {
            op: MemOp::Ldwu,
            ra,
            rb,
            disp,
        });
    }

    /// `ldl ra, disp(rb)`.
    pub fn ldl(&mut self, ra: Reg, disp: i16, rb: Reg) {
        self.inst(Inst::Mem {
            op: MemOp::Ldl,
            ra,
            rb,
            disp,
        });
    }

    /// `ldq ra, disp(rb)`.
    pub fn ldq(&mut self, ra: Reg, disp: i16, rb: Reg) {
        self.inst(Inst::Mem {
            op: MemOp::Ldq,
            ra,
            rb,
            disp,
        });
    }

    /// `stb ra, disp(rb)`.
    pub fn stb(&mut self, ra: Reg, disp: i16, rb: Reg) {
        self.inst(Inst::Mem {
            op: MemOp::Stb,
            ra,
            rb,
            disp,
        });
    }

    /// `stw ra, disp(rb)`.
    pub fn stw(&mut self, ra: Reg, disp: i16, rb: Reg) {
        self.inst(Inst::Mem {
            op: MemOp::Stw,
            ra,
            rb,
            disp,
        });
    }

    /// `stl ra, disp(rb)`.
    pub fn stl(&mut self, ra: Reg, disp: i16, rb: Reg) {
        self.inst(Inst::Mem {
            op: MemOp::Stl,
            ra,
            rb,
            disp,
        });
    }

    /// `stq ra, disp(rb)`.
    pub fn stq(&mut self, ra: Reg, disp: i16, rb: Reg) {
        self.inst(Inst::Mem {
            op: MemOp::Stq,
            ra,
            rb,
            disp,
        });
    }

    // ---- operate format ----

    fn op3(&mut self, op: OperateOp, ra: Reg, rb: impl Into<Operand>, rc: Reg) {
        self.inst(Inst::Operate {
            op,
            ra,
            rb: rb.into(),
            rc,
        });
    }

    /// `mov src, dst` (assembles as `bis src, src, dst`).
    pub fn mov(&mut self, src: Reg, dst: Reg) {
        self.op3(OperateOp::Bis, src, src, dst);
    }

    /// Canonical NOP.
    pub fn nop(&mut self) {
        self.inst(Inst::NOP);
    }

    /// `clr dst` (assembles as `bis r31, r31, dst`).
    pub fn clr(&mut self, dst: Reg) {
        self.op3(OperateOp::Bis, Reg::ZERO, Reg::ZERO, dst);
    }

    // ---- jumps / PAL ----

    /// `jmp ra, (rb)`.
    pub fn jmp(&mut self, ra: Reg, rb: Reg) {
        self.inst(Inst::Jump {
            kind: JumpKind::Jmp,
            ra,
            rb,
            hint: 0,
        });
    }

    /// `jsr ra, (rb)`.
    pub fn jsr(&mut self, ra: Reg, rb: Reg) {
        self.inst(Inst::Jump {
            kind: JumpKind::Jsr,
            ra,
            rb,
            hint: 0,
        });
    }

    /// `ret r31, (ra)` — standard return through `ra`.
    pub fn ret(&mut self) {
        self.inst(Inst::Jump {
            kind: JumpKind::Ret,
            ra: Reg::ZERO,
            rb: Reg::RA,
            hint: 0,
        });
    }

    /// `call_pal halt`.
    pub fn halt(&mut self) {
        self.inst(Inst::CallPal {
            func: PalFunc::Halt,
        });
    }

    /// `call_pal gentrap`.
    pub fn gentrap(&mut self) {
        self.inst(Inst::CallPal {
            func: PalFunc::GenTrap,
        });
    }

    /// `call_pal putchar`.
    pub fn putchar(&mut self) {
        self.inst(Inst::CallPal {
            func: PalFunc::PutChar,
        });
    }

    // ---- branch format ----

    fn branch(&mut self, op: BranchOp, ra: Reg, target: Label) {
        self.slots.push(Slot::Branch { op, ra, target });
    }

    /// `br target` (no return address).
    pub fn br(&mut self, target: Label) {
        self.branch(BranchOp::Br, Reg::ZERO, target);
    }

    /// `bsr ra, target`.
    pub fn bsr(&mut self, target: Label) {
        self.branch(BranchOp::Bsr, Reg::RA, target);
    }

    /// Finishes assembly, resolving labels and encoding machine words.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError`] if a referenced label is unbound, or a branch
    /// target is out of range.
    pub fn finish(self) -> Result<Program, AsmError> {
        let mut words = Vec::with_capacity(self.slots.len());
        for (i, slot) in self.slots.iter().enumerate() {
            let inst = match slot {
                Slot::Done(inst) => *inst,
                Slot::Branch { op, ra, target } => {
                    let (name, bound) = &self.labels[target.0];
                    let Some(at) = bound else {
                        return Err(AsmError::UnboundLabel { name: name.clone() });
                    };
                    let disp = *at as i64 - (i as i64 + 1);
                    let disp = i32::try_from(disp).map_err(|_| AsmError::BranchOutOfRange {
                        at: i,
                        target: name.clone(),
                    })?;
                    if !(-(1 << 20)..(1 << 20)).contains(&disp) {
                        return Err(AsmError::BranchOutOfRange {
                            at: i,
                            target: name.clone(),
                        });
                    }
                    Inst::Branch {
                        op: *op,
                        ra: *ra,
                        disp,
                    }
                }
            };
            words.push(encode(inst)?);
        }
        let mut program = Program::new(self.code_base, words);
        for (base, bytes) in self.data {
            program = program.with_data(base, bytes);
        }
        if let Some(e) = self.entry {
            program = program.with_entry(e);
        }
        program = program.with_initial_sp(self.initial_sp);
        for (name, bound) in &self.labels {
            if let Some(at) = bound {
                program = program.with_symbol(self.code_base + (*at as u64) * 4, name.clone());
            }
        }
        Ok(program)
    }
}

macro_rules! operate_helpers {
    ($($(#[$doc:meta])* $name:ident => $op:ident),* $(,)?) => {
        impl Assembler {
            $(
                $(#[$doc])*
                pub fn $name(&mut self, ra: Reg, rb: Reg, rc: Reg) {
                    self.op3(OperateOp::$op, ra, rb, rc);
                }
            )*
        }
    };
}

macro_rules! operate_imm_helpers {
    ($($(#[$doc:meta])* $name:ident => $op:ident),* $(,)?) => {
        impl Assembler {
            $(
                $(#[$doc])*
                pub fn $name(&mut self, ra: Reg, lit: u8, rc: Reg) {
                    self.op3(OperateOp::$op, ra, lit, rc);
                }
            )*
        }
    };
}

macro_rules! branch_helpers {
    ($($(#[$doc:meta])* $name:ident => $op:ident),* $(,)?) => {
        impl Assembler {
            $(
                $(#[$doc])*
                pub fn $name(&mut self, ra: Reg, target: Label) {
                    self.branch(BranchOp::$op, ra, target);
                }
            )*
        }
    };
}

operate_helpers! {
    /// `addl ra, rb, rc`.
    addl => Addl,
    /// `addq ra, rb, rc`.
    addq => Addq,
    /// `subl ra, rb, rc`.
    subl => Subl,
    /// `subq ra, rb, rc`.
    subq => Subq,
    /// `s4addq ra, rb, rc`.
    s4addq => S4addq,
    /// `s8addq ra, rb, rc`.
    s8addq => S8addq,
    /// `cmpeq ra, rb, rc`.
    cmpeq => Cmpeq,
    /// `cmplt ra, rb, rc`.
    cmplt => Cmplt,
    /// `cmple ra, rb, rc`.
    cmple => Cmple,
    /// `cmpult ra, rb, rc`.
    cmpult => Cmpult,
    /// `cmpule ra, rb, rc`.
    cmpule => Cmpule,
    /// `and ra, rb, rc`.
    and => And,
    /// `bic ra, rb, rc`.
    bic => Bic,
    /// `bis ra, rb, rc`.
    bis => Bis,
    /// `ornot ra, rb, rc`.
    ornot => Ornot,
    /// `xor ra, rb, rc`.
    xor => Xor,
    /// `eqv ra, rb, rc`.
    eqv => Eqv,
    /// `cmoveq ra, rb, rc`.
    cmoveq => Cmoveq,
    /// `cmovne ra, rb, rc`.
    cmovne => Cmovne,
    /// `cmovlt ra, rb, rc`.
    cmovlt => Cmovlt,
    /// `cmovge ra, rb, rc`.
    cmovge => Cmovge,
    /// `sll ra, rb, rc`.
    sll => Sll,
    /// `srl ra, rb, rc`.
    srl => Srl,
    /// `sra ra, rb, rc`.
    sra => Sra,
    /// `extbl ra, rb, rc`.
    extbl => Extbl,
    /// `zapnot ra, rb, rc`.
    zapnot => Zapnot,
    /// `mull ra, rb, rc`.
    mull => Mull,
    /// `mulq ra, rb, rc`.
    mulq => Mulq,
    /// `umulh ra, rb, rc`.
    umulh => Umulh,
}

operate_imm_helpers! {
    /// `addl ra, #lit, rc`.
    addl_imm => Addl,
    /// `addq ra, #lit, rc`.
    addq_imm => Addq,
    /// `subl ra, #lit, rc`.
    subl_imm => Subl,
    /// `subq ra, #lit, rc`.
    subq_imm => Subq,
    /// `s8addq ra, #lit, rc`.
    s8addq_imm => S8addq,
    /// `cmpeq ra, #lit, rc`.
    cmpeq_imm => Cmpeq,
    /// `cmplt ra, #lit, rc`.
    cmplt_imm => Cmplt,
    /// `cmple ra, #lit, rc`.
    cmple_imm => Cmple,
    /// `cmpult ra, #lit, rc`.
    cmpult_imm => Cmpult,
    /// `and ra, #lit, rc`.
    and_imm => And,
    /// `bis ra, #lit, rc`.
    bis_imm => Bis,
    /// `xor ra, #lit, rc`.
    xor_imm => Xor,
    /// `sll ra, #lit, rc`.
    sll_imm => Sll,
    /// `srl ra, #lit, rc`.
    srl_imm => Srl,
    /// `sra ra, #lit, rc`.
    sra_imm => Sra,
    /// `extbl ra, #lit, rc`.
    extbl_imm => Extbl,
    /// `zapnot ra, #lit, rc`.
    zapnot_imm => Zapnot,
    /// `mull ra, #lit, rc`.
    mull_imm => Mull,
}

branch_helpers! {
    /// `beq ra, target`.
    beq => Beq,
    /// `bne ra, target`.
    bne => Bne,
    /// `blt ra, target`.
    blt => Blt,
    /// `ble ra, target`.
    ble => Ble,
    /// `bgt ra, target`.
    bgt => Bgt,
    /// `bge ra, target`.
    bge => Bge,
    /// `blbc ra, target`.
    blbc => Blbc,
    /// `blbs ra, target`.
    blbs => Blbs,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_to_halt, AlignPolicy};

    #[test]
    fn forward_and_backward_branches_resolve() {
        let mut asm = Assembler::new(0x1000);
        let done = asm.label("done");
        asm.lda_imm(Reg::A0, 3);
        let top = asm.here("top");
        asm.subq_imm(Reg::A0, 1, Reg::A0);
        asm.beq(Reg::A0, done);
        asm.br(top);
        asm.bind(done);
        asm.halt();
        let p = asm.finish().unwrap();
        let (mut cpu, mut mem) = p.load();
        let stats = run_to_halt(&mut cpu, &mut mem, &p, AlignPolicy::Enforce, 1000).unwrap();
        assert_eq!(cpu.read(Reg::A0), 0);
        assert!(stats.instructions > 5);
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut asm = Assembler::new(0x1000);
        let nowhere = asm.label("nowhere");
        asm.br(nowhere);
        match asm.finish() {
            Err(AsmError::UnboundLabel { name }) => assert_eq!(name, "nowhere"),
            other => panic!("expected unbound label, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut asm = Assembler::new(0x1000);
        let l = asm.label("l");
        asm.bind(l);
        asm.bind(l);
    }

    #[test]
    fn li32_materializes_values() {
        for value in [
            0u32,
            1,
            0x8000,
            0xffff,
            0x1234_5678,
            0xffff_ffff,
            0x0001_8000,
        ] {
            let mut asm = Assembler::new(0x1000);
            asm.li32(Reg::V0, value);
            asm.halt();
            let p = asm.finish().unwrap();
            let (mut cpu, mut mem) = p.load();
            run_to_halt(&mut cpu, &mut mem, &p, AlignPolicy::Enforce, 100).unwrap();
            assert_eq!(
                cpu.read(Reg::V0),
                value as i32 as i64 as u64,
                "li32 of {value:#x}"
            );
        }
    }

    #[test]
    fn data_blocks_are_aligned_and_loaded() {
        let mut asm = Assembler::new(0x1000);
        let a = asm.data_block(vec![1, 2, 3]);
        let b = asm.data_block(vec![9]);
        assert_eq!(a % 8, 0);
        assert_eq!(b % 8, 0);
        assert!(b > a);
        asm.halt();
        let p = asm.finish().unwrap();
        let (_, mem) = p.load();
        assert_eq!(mem.read_u8(a + 2), 3);
        assert_eq!(mem.read_u8(b), 9);
    }

    #[test]
    fn symbols_survive_finish() {
        let mut asm = Assembler::new(0x1000);
        asm.nop();
        asm.here("loop_top");
        asm.halt();
        let p = asm.finish().unwrap();
        assert_eq!(p.symbol(0x1004), Some("loop_top"));
    }

    #[test]
    fn call_and_return() {
        let mut asm = Assembler::new(0x1000);
        let func = asm.label("func");
        asm.bsr(func);
        asm.halt();
        asm.bind(func);
        asm.lda_imm(Reg::V0, 7);
        asm.ret();
        let p = asm.finish().unwrap();
        let (mut cpu, mut mem) = p.load();
        run_to_halt(&mut cpu, &mut mem, &p, AlignPolicy::Enforce, 100).unwrap();
        assert_eq!(cpu.read(Reg::V0), 7);
    }
}
