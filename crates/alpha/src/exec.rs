//! Functional execution of decoded Alpha instructions.
//!
//! [`step`] executes exactly one instruction against a [`CpuState`] and
//! [`Memory`], returning a rich [`Outcome`] record (control-flow result,
//! memory effective address, console output, halt). The interpreter, the
//! DBT profiler and the trace generators are all built on this single
//! semantic core, which is what makes the architectural-equivalence tests
//! meaningful.
//!
//! Traps are *precise*: when `step` returns `Err`, neither the register
//! state, memory, nor the PC has been modified.

use crate::inst::{BranchOp, Inst, JumpKind, MemOp, PalFunc};
use crate::{CpuState, Memory, Reg, Trap};

/// The control-flow effect of one executed instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Control {
    /// Fall through to the next sequential instruction.
    Sequential,
    /// A conditional branch that was not taken.
    NotTaken,
    /// A taken PC-relative branch (conditional or not).
    Taken {
        /// Branch target address.
        target: u64,
    },
    /// A register-indirect jump.
    Indirect {
        /// Jump flavor (for RAS modeling).
        kind: JumpKind,
        /// Jump target address.
        target: u64,
    },
    /// Execution halted (`CALL_PAL halt`).
    Halt,
}

impl Control {
    /// Whether this outcome redirected the PC away from sequential flow.
    pub fn is_taken(self) -> bool {
        matches!(self, Control::Taken { .. } | Control::Indirect { .. })
    }
}

/// A memory access performed by one instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MemAccess {
    /// Effective byte address.
    pub addr: u64,
    /// Access size in bytes.
    pub bytes: u8,
    /// `true` for stores, `false` for loads.
    pub is_store: bool,
}

/// Everything that happened during one [`step`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Outcome {
    /// The PC of the *next* instruction to execute.
    pub next_pc: u64,
    /// Control-flow classification.
    pub control: Control,
    /// The memory access, if the instruction touched memory.
    pub mem: Option<MemAccess>,
    /// A byte written to the console, if any (`CALL_PAL putchar`).
    pub output: Option<u8>,
}

/// Alignment-check policy. The paper's precise-trap experiments need
/// faulting loads; ordinary runs use `Enforce` as real Alpha hardware does.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub enum AlignPolicy {
    /// Raise [`Trap::UnalignedAccess`] for misaligned accesses (hardware
    /// behavior).
    #[default]
    Enforce,
    /// Permit misaligned accesses (useful for synthetic stress tests).
    Permit,
}

fn check_align(addr: u64, bytes: u8, policy: AlignPolicy) -> Result<(), Trap> {
    if policy == AlignPolicy::Enforce && bytes > 1 && !addr.is_multiple_of(bytes as u64) {
        return Err(Trap::UnalignedAccess {
            addr,
            required: bytes,
        });
    }
    Ok(())
}

/// Executes one decoded instruction.
///
/// On success the CPU state (including `pc`) and memory are updated and the
/// [`Outcome`] describes what happened. On a trap, no state is modified.
///
/// # Errors
///
/// Returns the [`Trap`] raised by the instruction (unaligned access or
/// `gentrap`), with all architected state untouched.
///
/// # Examples
///
/// ```
/// use alpha_isa::{step, AlignPolicy, CpuState, Inst, Memory, OperateOp, Operand, Reg};
/// let mut cpu = CpuState::new(0x1000);
/// let mut mem = Memory::new();
/// let inc = Inst::Operate {
///     op: OperateOp::Addq, ra: Reg::V0, rb: Operand::Lit(1), rc: Reg::V0,
/// };
/// step(&mut cpu, &mut mem, inc, AlignPolicy::Enforce)?;
/// assert_eq!(cpu.read(Reg::V0), 1);
/// assert_eq!(cpu.pc, 0x1004);
/// # Ok::<(), alpha_isa::Trap>(())
/// ```
pub fn step(
    cpu: &mut CpuState,
    mem: &mut Memory,
    inst: Inst,
    align: AlignPolicy,
) -> Result<Outcome, Trap> {
    let pc = cpu.pc;
    let seq = pc.wrapping_add(4);
    let mut outcome = Outcome {
        next_pc: seq,
        control: Control::Sequential,
        mem: None,
        output: None,
    };

    match inst {
        Inst::Mem { op, ra, rb, disp } => {
            let base = cpu.read(rb);
            match op {
                MemOp::Lda => cpu.write(ra, base.wrapping_add(disp as i64 as u64)),
                MemOp::Ldah => cpu.write(ra, base.wrapping_add(((disp as i64) << 16) as u64)),
                _ => {
                    let addr = base.wrapping_add(disp as i64 as u64);
                    let bytes = op.access_bytes();
                    check_align(addr, bytes, align)?;
                    outcome.mem = Some(MemAccess {
                        addr,
                        bytes,
                        is_store: op.is_store(),
                    });
                    match op {
                        MemOp::Ldbu => cpu.write(ra, mem.read_u8(addr) as u64),
                        MemOp::Ldwu => cpu.write(ra, mem.read_u16(addr) as u64),
                        MemOp::Ldl => cpu.write(ra, mem.read_u32(addr) as i32 as i64 as u64),
                        MemOp::Ldq => cpu.write(ra, mem.read_u64(addr)),
                        MemOp::Stb => mem.write_u8(addr, cpu.read(ra) as u8),
                        MemOp::Stw => mem.write_u16(addr, cpu.read(ra) as u16),
                        MemOp::Stl => mem.write_u32(addr, cpu.read(ra) as u32),
                        MemOp::Stq => mem.write_u64(addr, cpu.read(ra)),
                        MemOp::Lda | MemOp::Ldah => unreachable!(),
                    }
                }
            }
        }
        Inst::Branch { op, ra, disp } => {
            let target = seq.wrapping_add(((disp as i64) << 2) as u64);
            match op {
                BranchOp::Br | BranchOp::Bsr => {
                    cpu.write(ra, seq);
                    outcome.next_pc = target;
                    outcome.control = Control::Taken { target };
                }
                _ => {
                    if op.taken(cpu.read(ra)) {
                        outcome.next_pc = target;
                        outcome.control = Control::Taken { target };
                    } else {
                        outcome.control = Control::NotTaken;
                    }
                }
            }
        }
        Inst::Jump { kind, ra, rb, .. } => {
            // Read rb BEFORE writing ra: `ret ra, (ra)` must use the old value.
            let target = cpu.read(rb) & !3u64;
            cpu.write(ra, seq);
            outcome.next_pc = target;
            outcome.control = Control::Indirect { kind, target };
        }
        Inst::Operate { op, ra, rb, rc } => {
            let a = cpu.read(ra);
            let b = match rb {
                crate::Operand::Reg(r) => cpu.read(r),
                crate::Operand::Lit(v) => v as u64,
            };
            if op.is_cmov() {
                if op.cmov_taken(a) {
                    cpu.write(rc, b);
                }
            } else {
                cpu.write(rc, op.eval(a, b));
            }
        }
        Inst::CallPal { func } => match func {
            PalFunc::Halt => {
                outcome.control = Control::Halt;
                outcome.next_pc = pc; // halted; PC pinned at the halt
            }
            PalFunc::GenTrap => {
                return Err(Trap::GenTrap {
                    code: cpu.read(Reg::A0),
                });
            }
            PalFunc::PutChar => {
                outcome.output = Some(cpu.read(Reg::A0) as u8);
            }
            PalFunc::Other(_) => {} // treated as NOP
        },
        Inst::Unimplemented { word } => return Err(Trap::IllegalInstruction { word }),
    }

    cpu.pc = outcome.next_pc;
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Operand, OperateOp};

    fn r(n: u8) -> Reg {
        Reg::new(n)
    }

    fn fresh() -> (CpuState, Memory) {
        (CpuState::new(0x1000), Memory::new())
    }

    #[test]
    fn lda_and_ldah_compute_addresses() {
        let (mut cpu, mut mem) = fresh();
        cpu.write(r(2), 0x100);
        step(
            &mut cpu,
            &mut mem,
            Inst::Mem {
                op: MemOp::Lda,
                ra: r(1),
                rb: r(2),
                disp: -8,
            },
            AlignPolicy::Enforce,
        )
        .unwrap();
        assert_eq!(cpu.read(r(1)), 0xf8);
        step(
            &mut cpu,
            &mut mem,
            Inst::Mem {
                op: MemOp::Ldah,
                ra: r(3),
                rb: Reg::ZERO,
                disp: 2,
            },
            AlignPolicy::Enforce,
        )
        .unwrap();
        assert_eq!(cpu.read(r(3)), 0x2_0000);
    }

    #[test]
    fn load_store_roundtrip_and_extension() {
        let (mut cpu, mut mem) = fresh();
        cpu.write(r(1), 0xffff_ffff_9abc_def0);
        cpu.write(r(2), 0x4000);
        step(
            &mut cpu,
            &mut mem,
            Inst::Mem {
                op: MemOp::Stl,
                ra: r(1),
                rb: r(2),
                disp: 0,
            },
            AlignPolicy::Enforce,
        )
        .unwrap();
        // LDL sign-extends.
        step(
            &mut cpu,
            &mut mem,
            Inst::Mem {
                op: MemOp::Ldl,
                ra: r(3),
                rb: r(2),
                disp: 0,
            },
            AlignPolicy::Enforce,
        )
        .unwrap();
        assert_eq!(cpu.read(r(3)), 0xffff_ffff_9abc_def0);
        // LDWU zero-extends.
        step(
            &mut cpu,
            &mut mem,
            Inst::Mem {
                op: MemOp::Ldwu,
                ra: r(4),
                rb: r(2),
                disp: 0,
            },
            AlignPolicy::Enforce,
        )
        .unwrap();
        assert_eq!(cpu.read(r(4)), 0xdef0);
    }

    #[test]
    fn unaligned_access_traps_precisely() {
        let (mut cpu, mut mem) = fresh();
        cpu.write(r(2), 0x4001);
        let before = cpu.clone();
        let err = step(
            &mut cpu,
            &mut mem,
            Inst::Mem {
                op: MemOp::Ldq,
                ra: r(1),
                rb: r(2),
                disp: 0,
            },
            AlignPolicy::Enforce,
        )
        .unwrap_err();
        assert_eq!(
            err,
            Trap::UnalignedAccess {
                addr: 0x4001,
                required: 8
            }
        );
        // Precise: nothing changed, including the PC.
        assert_eq!(cpu, before);
    }

    #[test]
    fn permissive_alignment_allows_misaligned() {
        let (mut cpu, mut mem) = fresh();
        cpu.write(r(2), 0x4001);
        mem.write_u64(0x4001, 77);
        step(
            &mut cpu,
            &mut mem,
            Inst::Mem {
                op: MemOp::Ldq,
                ra: r(1),
                rb: r(2),
                disp: 0,
            },
            AlignPolicy::Permit,
        )
        .unwrap();
        assert_eq!(cpu.read(r(1)), 77);
    }

    #[test]
    fn conditional_branch_taken_and_not() {
        let (mut cpu, mut mem) = fresh();
        cpu.write(r(1), 0);
        let out = step(
            &mut cpu,
            &mut mem,
            Inst::Branch {
                op: BranchOp::Beq,
                ra: r(1),
                disp: 4,
            },
            AlignPolicy::Enforce,
        )
        .unwrap();
        assert_eq!(out.control, Control::Taken { target: 0x1014 });
        assert_eq!(cpu.pc, 0x1014);

        cpu.write(r(1), 5);
        let out = step(
            &mut cpu,
            &mut mem,
            Inst::Branch {
                op: BranchOp::Beq,
                ra: r(1),
                disp: 4,
            },
            AlignPolicy::Enforce,
        )
        .unwrap();
        assert_eq!(out.control, Control::NotTaken);
        assert_eq!(cpu.pc, 0x1018);
    }

    #[test]
    fn bsr_links_return_address() {
        let (mut cpu, mut mem) = fresh();
        let out = step(
            &mut cpu,
            &mut mem,
            Inst::Branch {
                op: BranchOp::Bsr,
                ra: Reg::RA,
                disp: -2,
            },
            AlignPolicy::Enforce,
        )
        .unwrap();
        assert_eq!(cpu.read(Reg::RA), 0x1004);
        assert_eq!(out.next_pc, 0x0ffc);
    }

    #[test]
    fn jump_clears_low_bits_and_links() {
        let (mut cpu, mut mem) = fresh();
        cpu.write(r(2), 0x2003);
        let out = step(
            &mut cpu,
            &mut mem,
            Inst::Jump {
                kind: JumpKind::Jsr,
                ra: Reg::RA,
                rb: r(2),
                hint: 0,
            },
            AlignPolicy::Enforce,
        )
        .unwrap();
        assert_eq!(cpu.pc, 0x2000);
        assert_eq!(cpu.read(Reg::RA), 0x1004);
        assert!(matches!(
            out.control,
            Control::Indirect {
                kind: JumpKind::Jsr,
                target: 0x2000
            }
        ));
    }

    #[test]
    fn ret_through_same_register_uses_old_value() {
        let (mut cpu, mut mem) = fresh();
        cpu.write(Reg::RA, 0x3000);
        step(
            &mut cpu,
            &mut mem,
            Inst::Jump {
                kind: JumpKind::Ret,
                ra: Reg::RA,
                rb: Reg::RA,
                hint: 0,
            },
            AlignPolicy::Enforce,
        )
        .unwrap();
        assert_eq!(cpu.pc, 0x3000);
        assert_eq!(cpu.read(Reg::RA), 0x1004);
    }

    #[test]
    fn cmov_only_fires_when_condition_met() {
        let (mut cpu, mut mem) = fresh();
        cpu.write(r(1), 0);
        cpu.write(r(2), 55);
        cpu.write(r(3), 11);
        step(
            &mut cpu,
            &mut mem,
            Inst::Operate {
                op: OperateOp::Cmovne,
                ra: r(1),
                rb: Operand::Reg(r(2)),
                rc: r(3),
            },
            AlignPolicy::Enforce,
        )
        .unwrap();
        assert_eq!(cpu.read(r(3)), 11, "cmovne with zero test must not move");
        step(
            &mut cpu,
            &mut mem,
            Inst::Operate {
                op: OperateOp::Cmoveq,
                ra: r(1),
                rb: Operand::Reg(r(2)),
                rc: r(3),
            },
            AlignPolicy::Enforce,
        )
        .unwrap();
        assert_eq!(cpu.read(r(3)), 55);
    }

    #[test]
    fn halt_pins_pc() {
        let (mut cpu, mut mem) = fresh();
        let out = step(
            &mut cpu,
            &mut mem,
            Inst::CallPal {
                func: PalFunc::Halt,
            },
            AlignPolicy::Enforce,
        )
        .unwrap();
        assert_eq!(out.control, Control::Halt);
        assert_eq!(cpu.pc, 0x1000);
    }

    #[test]
    fn gentrap_reports_code_precisely() {
        let (mut cpu, mut mem) = fresh();
        cpu.write(Reg::A0, 42);
        let before = cpu.clone();
        let err = step(
            &mut cpu,
            &mut mem,
            Inst::CallPal {
                func: PalFunc::GenTrap,
            },
            AlignPolicy::Enforce,
        )
        .unwrap_err();
        assert_eq!(err, Trap::GenTrap { code: 42 });
        assert_eq!(cpu, before);
    }

    #[test]
    fn putchar_reports_output() {
        let (mut cpu, mut mem) = fresh();
        cpu.write(Reg::A0, b'x' as u64);
        let out = step(
            &mut cpu,
            &mut mem,
            Inst::CallPal {
                func: PalFunc::PutChar,
            },
            AlignPolicy::Enforce,
        )
        .unwrap();
        assert_eq!(out.output, Some(b'x'));
    }
    #[test]
    fn unimplemented_traps_with_state_untouched() {
        let (mut cpu, mut mem) = fresh();
        cpu.write(r(1), 7);
        let word = (0x16u32 << 26) | 0xabc; // FLTI-family encoding
        let err = step(
            &mut cpu,
            &mut mem,
            Inst::Unimplemented { word },
            AlignPolicy::Enforce,
        )
        .unwrap_err();
        assert_eq!(err, Trap::IllegalInstruction { word });
        assert_eq!(cpu.pc, 0x1000, "PC must stay at the faulting instruction");
        assert_eq!(cpu.read(r(1)), 7);
    }
}
