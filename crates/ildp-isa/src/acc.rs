//! Accumulator (strand) identifiers.

use std::fmt;

/// A logical accumulator number.
///
/// In the **basic** I-ISA an accumulator is an architected register that
/// carries values along a dependence chain (a *strand*). In the **modified**
/// I-ISA the same field is a *strand identifier*: architected state lives in
/// the GPRs, and the accumulator number only tells the microarchitecture
/// which dependence chain (and therefore which processing element) the
/// instruction belongs to.
///
/// The paper evaluates 4 logical accumulators (default) and 8.
///
/// # Examples
///
/// ```
/// use ildp_isa::Acc;
/// let a0 = Acc::new(0);
/// assert_eq!(a0.number(), 0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Acc(u8);

impl Acc {
    /// Maximum number of logical accumulators any configuration may use.
    pub const MAX_ACCUMULATORS: usize = 16;

    /// Creates an accumulator identifier.
    ///
    /// # Panics
    ///
    /// Panics if `n >= MAX_ACCUMULATORS`.
    #[inline]
    pub const fn new(n: u8) -> Acc {
        assert!(
            (n as usize) < Acc::MAX_ACCUMULATORS,
            "accumulator number out of range"
        );
        Acc(n)
    }

    /// The accumulator number.
    #[inline]
    pub const fn number(self) -> u8 {
        self.0
    }

    /// The accumulator's index as a `usize`.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Acc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{}", self.0)
    }
}

impl fmt::Debug for Acc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(Acc::new(3).to_string(), "A3");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        let _ = Acc::new(16);
    }
}
