//! Accumulator-oriented I-ISA instructions.
//!
//! The implementation ISA of the co-designed VM (paper Section 2). Both the
//! **basic** and **modified** forms are represented by one instruction type:
//! the modified form is the basic form plus an optional architected
//! destination GPR ([`IInst::Op::dst`] etc.), exactly as in the paper's
//! Figure 2(c)/(d).
//!
//! Structural rules enforced by [`IInst::validate`]:
//!
//! * an instruction references at most **one** accumulator (its own);
//! * the *basic* form references at most **one** GPR in total;
//! * the *modified* form may additionally name one destination GPR;
//! * memory operations are register-indirect only — effective-address
//!   arithmetic is done by separate instructions ("decomposed" memory ops).

use crate::{Acc, IsaForm};
use alpha_isa::{JumpKind, OperateOp, Reg};
use std::fmt;

/// A value source operand: the instruction's own accumulator, one GPR, or a
/// small immediate.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ASrc {
    /// The instruction's named accumulator.
    Acc,
    /// A general-purpose register.
    Gpr(Reg),
    /// A sign-extended immediate (8-bit literal range in 16-bit encodings,
    /// 16-bit range in 32-bit encodings).
    Imm(i16),
}

impl fmt::Display for ASrc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ASrc::Acc => write!(f, "Acc"),
            ASrc::Gpr(r) => write!(f, "{}", r),
            ASrc::Imm(v) => write!(f, "#{v}"),
        }
    }
}

/// Memory access width for I-ISA loads and stores.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MemWidth {
    /// Zero-extended byte.
    U8,
    /// Zero-extended 16-bit word.
    U16,
    /// Sign-extended 32-bit longword.
    I32,
    /// 64-bit quadword.
    U64,
}

impl MemWidth {
    /// Access size in bytes.
    pub const fn bytes(self) -> u8 {
        match self {
            MemWidth::U8 => 1,
            MemWidth::U16 => 2,
            MemWidth::I32 => 4,
            MemWidth::U64 => 8,
        }
    }
}

/// Condition kinds for I-ISA conditional branches (mirrors the Alpha branch
/// conditions).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CondKind {
    /// Branch if zero.
    Eq,
    /// Branch if nonzero.
    Ne,
    /// Branch if negative.
    Lt,
    /// Branch if ≤ 0.
    Le,
    /// Branch if > 0.
    Gt,
    /// Branch if ≥ 0.
    Ge,
    /// Branch if low bit clear.
    Lbc,
    /// Branch if low bit set.
    Lbs,
}

impl CondKind {
    /// Evaluates the condition on a 64-bit value.
    pub fn eval(self, v: u64) -> bool {
        let s = v as i64;
        match self {
            CondKind::Eq => s == 0,
            CondKind::Ne => s != 0,
            CondKind::Lt => s < 0,
            CondKind::Le => s <= 0,
            CondKind::Gt => s > 0,
            CondKind::Ge => s >= 0,
            CondKind::Lbc => v & 1 == 0,
            CondKind::Lbs => v & 1 == 1,
        }
    }

    /// The opposite condition (used when code straightening reverses a
    /// branch).
    pub fn inverse(self) -> CondKind {
        match self {
            CondKind::Eq => CondKind::Ne,
            CondKind::Ne => CondKind::Eq,
            CondKind::Lt => CondKind::Ge,
            CondKind::Ge => CondKind::Lt,
            CondKind::Le => CondKind::Gt,
            CondKind::Gt => CondKind::Le,
            CondKind::Lbc => CondKind::Lbs,
            CondKind::Lbs => CondKind::Lbc,
        }
    }

    /// Conversion from an Alpha conditional-branch opcode.
    ///
    /// # Panics
    ///
    /// Panics for `BR`/`BSR`, which carry no condition.
    pub fn from_branch_op(op: alpha_isa::BranchOp) -> CondKind {
        use alpha_isa::BranchOp as B;
        match op {
            B::Beq => CondKind::Eq,
            B::Bne => CondKind::Ne,
            B::Blt => CondKind::Lt,
            B::Ble => CondKind::Le,
            B::Bgt => CondKind::Gt,
            B::Bge => CondKind::Ge,
            B::Blbc => CondKind::Lbc,
            B::Blbs => CondKind::Lbs,
            B::Br | B::Bsr => panic!("unconditional branch has no condition"),
        }
    }
}

/// A control-flow target inside translated code.
///
/// During fragment construction targets are symbolic (an instruction index
/// within the fragment or a fragment-exit number); the translation cache
/// resolves them to I-ISA addresses when the fragment is installed.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ITarget {
    /// An instruction index within the same fragment.
    Local(u32),
    /// An installed I-ISA code address (resolved by the translation cache).
    Addr(u64),
}

/// A decoded I-ISA instruction (basic or modified form).
///
/// # Examples
///
/// The paper's `R17(A1) <- R17 - 1` (modified form):
///
/// ```
/// use ildp_isa::{Acc, ASrc, IInst, IsaForm};
/// use alpha_isa::{OperateOp, Reg};
/// let inst = IInst::Op {
///     op: OperateOp::Subl,
///     acc: Acc::new(1),
///     lhs: ASrc::Gpr(Reg::A1),
///     rhs: ASrc::Imm(1),
///     dst: Some(Reg::A1),
/// };
/// assert!(inst.validate(IsaForm::Modified).is_ok());
/// assert!(inst.validate(IsaForm::Basic).is_err()); // basic form has no dst GPR
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum IInst {
    /// ALU operation: `acc (, dst) <- op(lhs, rhs)`.
    Op {
        /// Operation (Alpha operate semantics are reused unchanged).
        op: OperateOp,
        /// The accumulator written (and possibly read via [`ASrc::Acc`]).
        acc: Acc,
        /// Left operand.
        lhs: ASrc,
        /// Right operand.
        rhs: ASrc,
        /// Modified-form architected destination GPR.
        dst: Option<Reg>,
    },
    /// Load: `acc (, dst) <- mem[addr + disp]`.
    ///
    /// The baseline I-ISA is register-indirect only (`disp == 0`; address
    /// arithmetic is a separate instruction). A nonzero displacement is
    /// the **fused-memory extension** the paper's §4.5 floats as a way to
    /// reduce the instruction-count expansion at the cost of decode
    /// complexity; it costs a 32-bit encoding.
    Load {
        /// Access width and extension rule.
        width: MemWidth,
        /// The accumulator receiving the value.
        acc: Acc,
        /// Address operand.
        addr: ASrc,
        /// Byte displacement (0 in the baseline ISA).
        disp: i16,
        /// Modified-form architected destination GPR.
        dst: Option<Reg>,
    },
    /// Store: `mem[addr + disp] <- value` (see [`IInst::Load`] about
    /// `disp`).
    Store {
        /// Access width.
        width: MemWidth,
        /// The instruction's accumulator (referenced by `addr` and/or
        /// `value` via [`ASrc::Acc`]).
        acc: Acc,
        /// Address operand.
        addr: ASrc,
        /// Byte displacement (0 in the baseline ISA).
        disp: i16,
        /// Value operand.
        value: ASrc,
    },
    /// Add-high: `acc (, dst) <- src + (imm << 16)` — the translation of
    /// Alpha's `LDAH`, whose 16-bit shifted immediate exceeds the normal
    /// operand field.
    AddHigh {
        /// The accumulator written.
        acc: Acc,
        /// Base operand.
        src: ASrc,
        /// Immediate, shifted left 16 before the add.
        imm: i16,
        /// Modified-form architected destination GPR.
        dst: Option<Reg>,
    },
    /// Conditional-move select: `acc (, dst) <- taken(low bit of acc) ?
    /// value : old`, where `old` is the current architected value of the
    /// destination register.
    ///
    /// This is the second half of the translator's cmov decomposition: the
    /// first half computes the 0/1 test into the accumulator. The implicit
    /// old-destination read is the one place the I-ISA reads a register it
    /// does not name in a source slot (a merging write, as in ISAs with
    /// partial-register writes); see DESIGN.md.
    CmovSelect {
        /// `true`: select `value` when the accumulator's low bit is set
        /// (`cmovlbs` polarity); `false`: when clear.
        lbs: bool,
        /// The accumulator holding the test (and receiving the result).
        acc: Acc,
        /// The value moved in when the condition holds.
        value: ASrc,
        /// The register whose architected value is kept otherwise.
        old: Reg,
        /// Modified-form architected destination GPR.
        dst: Option<Reg>,
    },
    /// Special: transfer to the shared dispatch code, which looks up the
    /// translated fragment for the V-ISA address in `src` (translating it
    /// first if needed). The paper's dispatch sequence costs 20
    /// instructions; the VM engine models that cost explicitly.
    Dispatch {
        /// The accumulator named by this instruction.
        acc: Acc,
        /// The V-ISA target address value.
        src: ASrc,
    },
    /// `copy-to-GPR`: `dst <- acc`. Used by the basic ISA to maintain
    /// architected state and for strand termination spills.
    CopyToGpr {
        /// Source accumulator.
        acc: Acc,
        /// Destination GPR.
        dst: Reg,
    },
    /// `copy-from-GPR`: `acc <- src`. Starts a strand from a global value.
    CopyFromGpr {
        /// Destination accumulator.
        acc: Acc,
        /// Source GPR.
        src: Reg,
    },
    /// Conditional branch: `P <- target, if cond(src)`.
    CondBranch {
        /// Condition.
        cond: CondKind,
        /// The accumulator named by this instruction (used when `src` is
        /// [`ASrc::Acc`]).
        acc: Acc,
        /// Tested value.
        src: ASrc,
        /// Branch target.
        target: ITarget,
    },
    /// Unconditional branch: `P <- target`.
    Branch {
        /// Branch target.
        target: ITarget,
    },
    /// Register-indirect jump through an accumulator or GPR.
    ///
    /// For [`JumpKind::Ret`] the dual-address RAS semantics apply: the
    /// hardware pops a (V-addr, I-addr) pair, and if the V-addr does not
    /// match the jump's operand value, control falls through to the next
    /// instruction (an unconditional branch to dispatch) instead of jumping.
    IndirectJump {
        /// Jump flavor.
        kind: JumpKind,
        /// The accumulator named by this instruction.
        acc: Acc,
        /// Target V-ISA address value.
        addr: ASrc,
    },
    /// Special: first instruction of every fragment. Writes the fragment's
    /// V-ISA start address into the V-PC base register used for PEI table
    /// lookups (paper §2.2).
    SetVpcBase {
        /// The V-ISA address of the first source instruction of the
        /// fragment.
        vaddr: u64,
    },
    /// Special: `load-embedded-target-address` — materializes a 64-bit
    /// translation-time V-ISA target into the accumulator, enabling the
    /// 3-instruction software jump prediction sequence (paper §3.2).
    LoadEmbeddedTarget {
        /// Destination accumulator.
        acc: Acc,
        /// The embedded V-ISA address.
        vaddr: u64,
    },
    /// Special: `save-V-ISA-return-address` — writes an embedded V-ISA
    /// return address to a GPR (replaces `BR`/`BSR` link semantics, since
    /// the I-ISA return address would otherwise be an I-address).
    SaveVReturn {
        /// Destination GPR (the V-ISA link register).
        dst: Reg,
        /// The V-ISA return address to write.
        vaddr: u64,
    },
    /// Special: `push-dual-address-RAS` — pushes the (V-ISA, I-ISA)
    /// return-address pair for a translated call (paper §3.2).
    PushDualRas {
        /// V-ISA return address.
        vret: u64,
        /// I-ISA return address (resolved at installation).
        iret: ITarget,
    },
    /// Special: `call-translator-if-condition-is-met` — a fragment exit for
    /// a conditional branch whose target is not yet translated. Patched to
    /// a plain [`IInst::CondBranch`] when the target becomes hot.
    CallTranslatorIfCond {
        /// Condition.
        cond: CondKind,
        /// The accumulator named by this instruction.
        acc: Acc,
        /// Tested value.
        src: ASrc,
        /// The V-ISA address control should continue at.
        vtarget: u64,
    },
    /// Special: unconditional exit to the translator/dispatcher for a
    /// not-yet-translated continuation.
    CallTranslator {
        /// The V-ISA address control should continue at.
        vtarget: u64,
    },
    /// Special: raise the V-ISA `gentrap` trap (a PEI).
    GenTrap,
    /// Special: console byte output (translation of `CALL_PAL putchar`).
    PutChar {
        /// The accumulator named by this instruction.
        acc: Acc,
        /// The byte value source.
        src: ASrc,
    },
    /// Halt the machine (translation of `CALL_PAL halt`).
    Halt,
}

/// A structural-validity error for an I-ISA instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IInstError {
    /// The basic form allows at most one GPR reference per instruction.
    TooManyGprs,
    /// `dst` GPRs exist only in the modified form.
    DstGprInBasicForm,
    /// A store may not reference the accumulator through both operands
    /// while also naming a GPR (would need two read ports).
    MalformedStore,
}

impl fmt::Display for IInstError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IInstError::TooManyGprs => {
                write!(f, "basic-form instruction references more than one GPR")
            }
            IInstError::DstGprInBasicForm => {
                write!(f, "basic-form instruction names a destination GPR")
            }
            IInstError::MalformedStore => write!(f, "store operand combination not encodable"),
        }
    }
}

impl std::error::Error for IInstError {}

impl IInst {
    /// The accumulator referenced by this instruction, if any.
    pub fn acc(&self) -> Option<Acc> {
        match *self {
            IInst::Op { acc, .. }
            | IInst::Load { acc, .. }
            | IInst::Store { acc, .. }
            | IInst::CopyToGpr { acc, .. }
            | IInst::CopyFromGpr { acc, .. }
            | IInst::CondBranch { acc, .. }
            | IInst::IndirectJump { acc, .. }
            | IInst::LoadEmbeddedTarget { acc, .. }
            | IInst::CallTranslatorIfCond { acc, .. }
            | IInst::AddHigh { acc, .. }
            | IInst::CmovSelect { acc, .. }
            | IInst::Dispatch { acc, .. }
            | IInst::PutChar { acc, .. } => Some(acc),
            _ => None,
        }
    }

    /// Whether the instruction writes its accumulator.
    pub fn writes_acc(&self) -> bool {
        matches!(
            self,
            IInst::Op { .. }
                | IInst::Load { .. }
                | IInst::CopyFromGpr { .. }
                | IInst::LoadEmbeddedTarget { .. }
                | IInst::AddHigh { .. }
                | IInst::CmovSelect { .. }
        )
    }

    /// Whether the instruction reads its accumulator (through any operand).
    pub fn reads_acc(&self) -> bool {
        let uses = |s: &ASrc| matches!(s, ASrc::Acc);
        match self {
            IInst::Op { lhs, rhs, .. } => uses(lhs) || uses(rhs),
            IInst::Load { addr, .. } => uses(addr),
            IInst::Store { addr, value, .. } => uses(addr) || uses(value),
            IInst::CopyToGpr { .. } => true,
            IInst::CondBranch { src, .. } => uses(src),
            IInst::IndirectJump { addr, .. } => uses(addr),
            IInst::CallTranslatorIfCond { src, .. } => uses(src),
            IInst::AddHigh { src, .. } => uses(src),
            IInst::CmovSelect { .. } => true, // the test is in the accumulator
            IInst::Dispatch { src, .. } => uses(src),
            IInst::PutChar { src, .. } => uses(src),
            _ => false,
        }
    }

    /// The GPRs read by this instruction (at most two in the modified form,
    /// at most one in the basic form).
    pub fn gpr_reads(&self) -> [Option<Reg>; 2] {
        let gpr = |s: &ASrc| match s {
            ASrc::Gpr(r) => Some(*r),
            _ => None,
        };
        let mut out = [None, None];
        let mut push = |r: Option<Reg>| {
            if let Some(r) = r {
                if out[0].is_none() {
                    out[0] = Some(r);
                } else if out[0] != Some(r) && out[1].is_none() {
                    out[1] = Some(r);
                }
            }
        };
        match self {
            IInst::Op { lhs, rhs, .. } => {
                push(gpr(lhs));
                push(gpr(rhs));
            }
            IInst::Load { addr, .. } => push(gpr(addr)),
            IInst::Store { addr, value, .. } => {
                push(gpr(addr));
                push(gpr(value));
            }
            IInst::CopyFromGpr { src, .. } => push(Some(*src)),
            IInst::AddHigh { src, .. } => push(gpr(src)),
            IInst::CmovSelect { value, old, .. } => {
                push(gpr(value));
                push(Some(*old));
            }
            IInst::Dispatch { src, .. } => push(gpr(src)),
            IInst::CondBranch { src, .. } => push(gpr(src)),
            IInst::IndirectJump { addr, .. } => push(gpr(addr)),
            IInst::CallTranslatorIfCond { src, .. } => push(gpr(src)),
            IInst::PutChar { src, .. } => push(gpr(src)),
            _ => {}
        }
        out
    }

    /// The GPR written by this instruction, if any.
    pub fn gpr_write(&self) -> Option<Reg> {
        match *self {
            IInst::Op { dst, .. }
            | IInst::Load { dst, .. }
            | IInst::AddHigh { dst, .. }
            | IInst::CmovSelect { dst, .. } => dst,
            IInst::CopyToGpr { dst, .. } => Some(dst),
            IInst::SaveVReturn { dst, .. } => Some(dst),
            _ => None,
        }
    }

    /// Whether this is a `copy-to-GPR` or `copy-from-GPR` instruction
    /// (counted by Table 2's "% of copy instructions").
    pub fn is_copy(&self) -> bool {
        matches!(self, IInst::CopyToGpr { .. } | IInst::CopyFromGpr { .. })
    }

    /// Whether this instruction is a memory access.
    pub fn is_mem(&self) -> bool {
        matches!(self, IInst::Load { .. } | IInst::Store { .. })
    }

    /// Whether this instruction may raise a precise trap (PEI).
    pub fn is_pei(&self) -> bool {
        matches!(
            self,
            IInst::Load { .. } | IInst::Store { .. } | IInst::GenTrap
        )
    }

    /// Whether this is any control-transfer instruction.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            IInst::CondBranch { .. }
                | IInst::Branch { .. }
                | IInst::IndirectJump { .. }
                | IInst::CallTranslatorIfCond { .. }
                | IInst::CallTranslator { .. }
                | IInst::Dispatch { .. }
                | IInst::Halt
        )
    }

    /// The instruction's value-source operand slots, in encoding order
    /// (`[lhs, rhs]` for ALU ops, `[addr, value]` for stores, single
    /// operands in slot 0). Introspection for static analyzers that need
    /// the raw [`ASrc`]s rather than just the GPR views.
    pub fn asrc_operands(&self) -> [Option<ASrc>; 2] {
        match *self {
            IInst::Op { lhs, rhs, .. } => [Some(lhs), Some(rhs)],
            IInst::Load { addr, .. } => [Some(addr), None],
            IInst::Store { addr, value, .. } => [Some(addr), Some(value)],
            IInst::AddHigh { src, .. } => [Some(src), None],
            IInst::CmovSelect { value, .. } => [Some(value), None],
            IInst::Dispatch { src, .. } => [Some(src), None],
            IInst::CondBranch { src, .. } => [Some(src), None],
            IInst::IndirectJump { addr, .. } => [Some(addr), None],
            IInst::CallTranslatorIfCond { src, .. } => [Some(src), None],
            IInst::PutChar { src, .. } => [Some(src), None],
            _ => [None, None],
        }
    }

    /// Whether this instruction unconditionally ends a fragment's
    /// instruction stream (no fall-through to a following instruction).
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            IInst::Branch { .. }
                | IInst::CallTranslator { .. }
                | IInst::Dispatch { .. }
                | IInst::Halt
        )
    }

    /// The embedded V-ISA target of a patchable translator-exit
    /// instruction, if this is one.
    pub fn patch_vtarget(&self) -> Option<u64> {
        match *self {
            IInst::CallTranslator { vtarget } | IInst::CallTranslatorIfCond { vtarget, .. } => {
                Some(vtarget)
            }
            _ => None,
        }
    }

    /// The I-ISA branch target of a resolved control transfer, if any
    /// (conditional or unconditional branch).
    pub fn branch_itarget(&self) -> Option<ITarget> {
        match *self {
            IInst::CondBranch { target, .. } | IInst::Branch { target } => Some(target),
            _ => None,
        }
    }

    /// Checks the structural encodability rules for the given ISA form.
    ///
    /// # Errors
    ///
    /// Returns an [`IInstError`] describing the violated constraint.
    pub fn validate(&self, form: IsaForm) -> Result<(), IInstError> {
        let mut gprs = self.gpr_reads().iter().flatten().count();
        // The cmov select's old-destination read is an implicit merging
        // read of the destination register, not a source-operand field
        // (see the variant documentation); it does not consume the
        // instruction's single GPR source slot.
        if let IInst::CmovSelect { old, value, .. } = self {
            if !matches!(value, ASrc::Gpr(r) if r == old) {
                gprs = gprs.saturating_sub(1);
            }
        }
        let has_dst = matches!(
            self,
            IInst::Op { dst: Some(_), .. }
                | IInst::Load { dst: Some(_), .. }
                | IInst::AddHigh { dst: Some(_), .. }
                | IInst::CmovSelect { dst: Some(_), .. }
        );
        match form {
            IsaForm::Basic => {
                if has_dst {
                    return Err(IInstError::DstGprInBasicForm);
                }
                let total = gprs + usize::from(self.gpr_write().is_some());
                if total > 1 {
                    return Err(IInstError::TooManyGprs);
                }
            }
            IsaForm::Modified => {
                // Source operands still allow only one GPR; the second GPR
                // name is the destination.
                if gprs > 1 {
                    return Err(IInstError::TooManyGprs);
                }
            }
        }
        if let IInst::Store { addr, value, .. } = self {
            // A store reading the accumulator through both operands *and*
            // naming a GPR would need three read ports.
            if matches!(addr, ASrc::Acc) && matches!(value, ASrc::Acc) && gprs > 0 {
                return Err(IInstError::MalformedStore);
            }
        }
        Ok(())
    }

    /// The encoded size of this instruction in bytes.
    ///
    /// The paper's size model: frequent forms using only an accumulator,
    /// one GPR, or a small literal fit in 16 bits; forms with wide
    /// immediates, branch displacements or (in the modified ISA) an extra
    /// destination-GPR specifier take 32 bits; instructions embedding a
    /// V-ISA address take 64 bits (32-bit opcode word + 32-bit address
    /// word, addresses being code-segment-relative).
    pub fn size_bytes(&self, form: IsaForm) -> u32 {
        let imm_fits_short = |s: &ASrc| match s {
            ASrc::Imm(v) => (-128..=127).contains(v),
            _ => true,
        };
        match self {
            IInst::Op { lhs, rhs, dst, .. } => {
                let short = imm_fits_short(lhs) && imm_fits_short(rhs);
                let extra_dst = form == IsaForm::Modified && dst.is_some();
                if short && !extra_dst {
                    2
                } else {
                    4
                }
            }
            IInst::Load { dst, disp, .. } => {
                if (form == IsaForm::Modified && dst.is_some()) || *disp != 0 {
                    4
                } else {
                    2
                }
            }
            IInst::Store { disp, .. } => {
                if *disp == 0 {
                    2
                } else {
                    4
                }
            }
            IInst::AddHigh { .. } | IInst::CmovSelect { .. } => 4,
            IInst::Dispatch { .. } => 4,
            IInst::CopyToGpr { .. } | IInst::CopyFromGpr { .. } => 2,
            IInst::CondBranch { .. } | IInst::Branch { .. } => 4,
            IInst::IndirectJump { .. } => 2,
            IInst::SetVpcBase { .. }
            | IInst::LoadEmbeddedTarget { .. }
            | IInst::SaveVReturn { .. }
            | IInst::PushDualRas { .. }
            | IInst::CallTranslatorIfCond { .. }
            | IInst::CallTranslator { .. } => 8,
            IInst::GenTrap | IInst::PutChar { .. } | IInst::Halt => 2,
        }
    }
}

impl fmt::Display for IInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let dst_s = |acc: &Acc, dst: &Option<Reg>| match dst {
            Some(r) => format!("{r}({acc})"),
            None => format!("{acc}"),
        };
        match self {
            IInst::Op {
                op,
                acc,
                lhs,
                rhs,
                dst,
            } => {
                let lhs = match lhs {
                    ASrc::Acc => acc.to_string(),
                    other => other.to_string(),
                };
                let rhs = match rhs {
                    ASrc::Acc => acc.to_string(),
                    other => other.to_string(),
                };
                write!(
                    f,
                    "{} <- {} {} {}",
                    dst_s(acc, dst),
                    lhs,
                    op.mnemonic(),
                    rhs
                )
            }
            IInst::Load {
                acc,
                addr,
                disp,
                dst,
                ..
            } => {
                let a = match addr {
                    ASrc::Acc => acc.to_string(),
                    other => other.to_string(),
                };
                if *disp == 0 {
                    write!(f, "{} <- mem[{}]", dst_s(acc, dst), a)
                } else {
                    write!(f, "{} <- mem[{} + {}]", dst_s(acc, dst), a, disp)
                }
            }
            IInst::Store {
                acc,
                addr,
                disp,
                value,
                ..
            } => {
                let a = match addr {
                    ASrc::Acc => acc.to_string(),
                    other => other.to_string(),
                };
                let v = match value {
                    ASrc::Acc => acc.to_string(),
                    other => other.to_string(),
                };
                if *disp == 0 {
                    write!(f, "mem[{a}] <- {v}")
                } else {
                    write!(f, "mem[{a} + {disp}] <- {v}")
                }
            }
            IInst::AddHigh { acc, src, imm, dst } => {
                let srcs = match src {
                    ASrc::Acc => acc.to_string(),
                    other => other.to_string(),
                };
                write!(f, "{} <- {} + ({} << 16)", dst_s(acc, dst), srcs, imm)
            }
            IInst::CmovSelect {
                lbs,
                acc,
                value,
                old,
                dst,
            } => {
                let v = match value {
                    ASrc::Acc => acc.to_string(),
                    other => other.to_string(),
                };
                let pol = if *lbs { "lbs" } else { "lbc" };
                write!(f, "{} <- {pol}({acc}) ? {v} : {old}", dst_s(acc, dst))
            }
            IInst::Dispatch { acc, src } => {
                let s = match src {
                    ASrc::Acc => acc.to_string(),
                    other => other.to_string(),
                };
                write!(f, "dispatch {s}")
            }
            IInst::CopyToGpr { acc, dst } => write!(f, "{dst} <- {acc}"),
            IInst::CopyFromGpr { acc, src } => write!(f, "{acc} <- {src}"),
            IInst::CondBranch {
                cond,
                acc,
                src,
                target,
            } => {
                let s = match src {
                    ASrc::Acc => acc.to_string(),
                    other => other.to_string(),
                };
                write!(f, "P <- {target:?}, if ({s} {cond:?} 0)")
            }
            IInst::Branch { target } => write!(f, "P <- {target:?}"),
            IInst::IndirectJump { kind, acc, addr } => {
                let a = match addr {
                    ASrc::Acc => acc.to_string(),
                    other => other.to_string(),
                };
                write!(f, "{} P <- {a}", kind.mnemonic())
            }
            IInst::SetVpcBase { vaddr } => write!(f, "vpc_base <- {vaddr:#x}"),
            IInst::LoadEmbeddedTarget { acc, vaddr } => {
                write!(f, "{acc} <- embedded {vaddr:#x}")
            }
            IInst::SaveVReturn { dst, vaddr } => write!(f, "{dst} <- vret {vaddr:#x}"),
            IInst::PushDualRas { vret, iret } => {
                write!(f, "ras_push ({vret:#x}, {iret:?})")
            }
            IInst::CallTranslatorIfCond {
                cond,
                acc,
                src,
                vtarget,
                ..
            } => {
                let s = match src {
                    ASrc::Acc => acc.to_string(),
                    other => other.to_string(),
                };
                write!(f, "call_translator {vtarget:#x}, if ({s} {cond:?} 0)")
            }
            IInst::CallTranslator { vtarget } => write!(f, "call_translator {vtarget:#x}"),
            IInst::GenTrap => write!(f, "gentrap"),
            IInst::PutChar { acc, src } => {
                let s = match src {
                    ASrc::Acc => acc.to_string(),
                    other => other.to_string(),
                };
                write!(f, "putchar {s}")
            }
            IInst::Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(n: u8) -> Acc {
        Acc::new(n)
    }

    fn r(n: u8) -> Reg {
        Reg::new(n)
    }

    #[test]
    fn acc_read_write_classification() {
        let op = IInst::Op {
            op: OperateOp::Xor,
            acc: a(0),
            lhs: ASrc::Acc,
            rhs: ASrc::Gpr(r(1)),
            dst: None,
        };
        assert!(op.reads_acc());
        assert!(op.writes_acc());

        let start = IInst::Op {
            op: OperateOp::Subl,
            acc: a(1),
            lhs: ASrc::Gpr(r(17)),
            rhs: ASrc::Imm(1),
            dst: None,
        };
        assert!(!start.reads_acc());
        assert!(start.writes_acc());

        let copy = IInst::CopyToGpr {
            acc: a(1),
            dst: r(17),
        };
        assert!(copy.reads_acc());
        assert!(!copy.writes_acc());
    }

    #[test]
    fn basic_form_rejects_two_gprs() {
        let two = IInst::Op {
            op: OperateOp::Addq,
            acc: a(0),
            lhs: ASrc::Gpr(r(1)),
            rhs: ASrc::Gpr(r(2)),
            dst: None,
        };
        assert_eq!(two.validate(IsaForm::Basic), Err(IInstError::TooManyGprs));
        // Modified form allows one source GPR + dest GPR but still not two
        // source GPRs.
        assert_eq!(
            two.validate(IsaForm::Modified),
            Err(IInstError::TooManyGprs)
        );
    }

    #[test]
    fn modified_form_allows_dst() {
        let m = IInst::Op {
            op: OperateOp::Xor,
            acc: a(3),
            lhs: ASrc::Gpr(r(3)),
            rhs: ASrc::Acc,
            dst: Some(r(1)),
        };
        assert!(m.validate(IsaForm::Modified).is_ok());
        assert_eq!(
            m.validate(IsaForm::Basic),
            Err(IInstError::DstGprInBasicForm)
        );
    }

    #[test]
    fn size_model() {
        let short = IInst::Op {
            op: OperateOp::And,
            acc: a(0),
            lhs: ASrc::Acc,
            rhs: ASrc::Imm(0xff_i16 - 0x80), // fits in 8 bits
            dst: None,
        };
        assert_eq!(short.size_bytes(IsaForm::Basic), 2);
        let wide = IInst::Op {
            op: OperateOp::And,
            acc: a(0),
            lhs: ASrc::Acc,
            rhs: ASrc::Imm(1000),
            dst: None,
        };
        assert_eq!(wide.size_bytes(IsaForm::Basic), 4);
        let modified = IInst::Op {
            op: OperateOp::And,
            acc: a(0),
            lhs: ASrc::Acc,
            rhs: ASrc::Imm(1),
            dst: Some(r(3)),
        };
        assert_eq!(modified.size_bytes(IsaForm::Modified), 4);
        assert_eq!(IInst::SetVpcBase { vaddr: 0 }.size_bytes(IsaForm::Basic), 8);
        assert_eq!(
            IInst::CopyToGpr {
                acc: a(0),
                dst: r(1)
            }
            .size_bytes(IsaForm::Basic),
            2
        );
    }

    #[test]
    fn gpr_reads_deduplicated() {
        let st = IInst::Store {
            width: MemWidth::U64,
            acc: a(0),
            addr: ASrc::Gpr(r(2)),
            disp: 0,
            value: ASrc::Gpr(r(2)),
        };
        let reads = st.gpr_reads();
        assert_eq!(reads[0], Some(r(2)));
        assert_eq!(reads[1], None);
    }

    #[test]
    fn cond_inverse_roundtrip() {
        for c in [
            CondKind::Eq,
            CondKind::Ne,
            CondKind::Lt,
            CondKind::Le,
            CondKind::Gt,
            CondKind::Ge,
            CondKind::Lbc,
            CondKind::Lbs,
        ] {
            assert_eq!(c.inverse().inverse(), c);
            for v in [0u64, 1, u64::MAX, 1 << 63] {
                assert_ne!(c.eval(v), c.inverse().eval(v));
            }
        }
    }

    #[test]
    fn display_matches_paper_notation() {
        let inst = IInst::Op {
            op: OperateOp::Subl,
            acc: a(1),
            lhs: ASrc::Gpr(r(17)),
            rhs: ASrc::Imm(1),
            dst: Some(r(17)),
        };
        assert_eq!(inst.to_string(), "r17(A1) <- r17 subl #1");
        let basic = IInst::Load {
            width: MemWidth::U8,
            acc: a(0),
            addr: ASrc::Gpr(r(16)),
            disp: 0,
            dst: None,
        };
        assert_eq!(basic.to_string(), "A0 <- mem[r16]");
    }

    #[test]
    fn pei_classification() {
        assert!(IInst::GenTrap.is_pei());
        assert!(IInst::Load {
            width: MemWidth::U64,
            acc: a(0),
            addr: ASrc::Acc,
            disp: 0,
            dst: None
        }
        .is_pei());
        assert!(!IInst::Halt.is_pei());
    }
}
