//! # ildp-isa — the accumulator-oriented implementation ISA
//!
//! The **I-ISA** of the co-designed virtual machine (Kim & Smith, CGO 2003,
//! Section 2): a hierarchical register architecture with a small number of
//! accumulators on top of the general-purpose register file. Accumulators
//! link chains of dependent instructions (*strands*); inter-strand
//! communication goes through the GPRs. The ISA comes in two forms:
//!
//! * [`IsaForm::Basic`] — each instruction names at most one GPR; precise
//!   traps require explicit `copy-to-GPR` instructions;
//! * [`IsaForm::Modified`] — every result-producing instruction also names a
//!   destination GPR, making architected state implicit and eliminating
//!   almost all copies (the accumulators become strand identifiers).
//!
//! This crate defines the instruction set ([`IInst`]), operand model
//! ([`ASrc`]), accumulator identifiers ([`Acc`]), structural validation and
//! the 16/32/64-bit encoded-size model used for the paper's static code
//! size comparisons. Execution of translated fragments lives in the
//! `ildp-core` crate, which owns the translation cache the special
//! chaining instructions refer to.
//!
//! # Examples
//!
//! ```
//! use ildp_isa::{Acc, ASrc, IInst, IsaForm, MemWidth};
//! use alpha_isa::Reg;
//!
//! // The paper's Fig. 2(c) first instruction: A0 <- mem[R16]
//! let load = IInst::Load {
//!     width: MemWidth::U8,
//!     acc: Acc::new(0),
//!     addr: ASrc::Gpr(Reg::A0),
//!     disp: 0,
//!     dst: None,
//! };
//! load.validate(IsaForm::Basic)?;
//! assert_eq!(load.size_bytes(IsaForm::Basic), 2);
//! # Ok::<(), ildp_isa::IInstError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod acc;
mod inst;

pub use acc::Acc;
pub use inst::{ASrc, CondKind, IInst, IInstError, ITarget, MemWidth};

/// Which form of the accumulator ISA is in use.
///
/// See the [crate documentation](self) for the distinction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum IsaForm {
    /// The basic ISA of Kim & Smith (ISCA 2002): one GPR per instruction,
    /// architected accumulators, explicit state-maintenance copies.
    Basic,
    /// The modified ISA introduced by the CGO 2003 paper: destination-GPR
    /// specifiers, strand identifiers, trivial precise-trap recovery.
    #[default]
    Modified,
}

impl IsaForm {
    /// Short label used in reports ("B" / "M", as in the paper's Table 2).
    pub const fn label(self) -> &'static str {
        match self {
            IsaForm::Basic => "B",
            IsaForm::Modified => "M",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn form_labels() {
        assert_eq!(IsaForm::Basic.label(), "B");
        assert_eq!(IsaForm::Modified.label(), "M");
        assert_eq!(IsaForm::default(), IsaForm::Modified);
    }
}
