//! Property test: the same body of instructions, collected in either
//! layout — unstraightened (the conditional branch was observed
//! not-taken and the block continues at the fall-through) or
//! straightened (the branch was observed taken and the tail of the
//! block lives at the taken target, with the condition reversed by the
//! translator) — always translates to a fragment that the verifier,
//! including the symbolic-equivalence pass, proves equal to its source
//! superblock, under every ISA form and chaining policy.

use alpha_isa::{BranchOp, Inst, MemOp, Operand, OperateOp, Reg};
use ildp_core::{ChainPolicy, CollectedFlow, SbEnd, SbInst, Superblock, Translator};
use ildp_isa::IsaForm;
use ildp_verifier::verify_translation;
use proptest::prelude::*;

const BASE: u64 = 0x1_0000;

fn reg() -> impl Strategy<Value = Reg> {
    (1u8..11).prop_map(Reg::new)
}

fn operand() -> impl Strategy<Value = Operand> {
    prop_oneof![
        reg().prop_map(Operand::Reg),
        (0u8..64).prop_map(Operand::Lit),
    ]
}

fn alu_op() -> impl Strategy<Value = OperateOp> {
    prop_oneof![
        Just(OperateOp::Addq),
        Just(OperateOp::Subq),
        Just(OperateOp::Xor),
        Just(OperateOp::And),
        Just(OperateOp::Bis),
        Just(OperateOp::S8addq),
        Just(OperateOp::Cmplt),
        Just(OperateOp::Srl),
        Just(OperateOp::Mull),
    ]
}

fn cmov_op() -> impl Strategy<Value = OperateOp> {
    prop_oneof![
        Just(OperateOp::Cmoveq),
        Just(OperateOp::Cmovne),
        Just(OperateOp::Cmovlt),
        Just(OperateOp::Cmovge),
        Just(OperateOp::Cmovlbs),
        Just(OperateOp::Cmovlbc),
    ]
}

fn load_op() -> impl Strategy<Value = MemOp> {
    prop_oneof![Just(MemOp::Ldq), Just(MemOp::Ldl), Just(MemOp::Ldbu)]
}

fn store_op() -> impl Strategy<Value = MemOp> {
    prop_oneof![Just(MemOp::Stq), Just(MemOp::Stl)]
}

fn body_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        4 => (alu_op(), reg(), operand(), reg())
            .prop_map(|(op, ra, rb, rc)| Inst::Operate { op, ra, rb, rc }),
        1 => (cmov_op(), reg(), operand(), reg())
            .prop_map(|(op, ra, rb, rc)| Inst::Operate { op, ra, rb, rc }),
        1 => (reg(), reg(), -64i16..64)
            .prop_map(|(ra, rb, disp)| Inst::Mem { op: MemOp::Lda, ra, rb, disp }),
        1 => (load_op(), reg(), reg(), (-8i16..8).prop_map(|d| d * 8))
            .prop_map(|(op, ra, rb, disp)| Inst::Mem { op, ra, rb, disp }),
        1 => (store_op(), reg(), reg(), (-8i16..8).prop_map(|d| d * 8))
            .prop_map(|(op, ra, rb, disp)| Inst::Mem { op, ra, rb, disp }),
    ]
}

fn branch_op() -> impl Strategy<Value = BranchOp> {
    prop_oneof![
        Just(BranchOp::Beq),
        Just(BranchOp::Bne),
        Just(BranchOp::Blt),
        Just(BranchOp::Bge),
        Just(BranchOp::Ble),
        Just(BranchOp::Bgt),
        Just(BranchOp::Blbs),
        Just(BranchOp::Blbc),
    ]
}

/// Instruction-count displacement encoding the given branch target.
fn disp_to(branch_vaddr: u64, target: u64) -> i32 {
    ((target as i64 - (branch_vaddr as i64 + 4)) / 4) as i32
}

fn sequential_run(insts: &[Inst], mut va: u64, out: &mut Vec<SbInst>) -> u64 {
    for &inst in insts {
        out.push(SbInst {
            vaddr: va,
            inst,
            flow: CollectedFlow::Sequential,
        });
        va += 4;
    }
    va
}

/// The branch was observed not-taken: the block stays in source layout
/// and the taken target is the side exit.
fn unstraightened(prefix: &[Inst], bop: BranchOp, br: Reg, suffix: &[Inst]) -> Superblock {
    let taken_target = BASE + 0x800;
    let mut insts = Vec::new();
    let va = sequential_run(prefix, BASE, &mut insts);
    insts.push(SbInst {
        vaddr: va,
        inst: Inst::Branch {
            op: bop,
            ra: br,
            disp: disp_to(va, taken_target),
        },
        flow: CollectedFlow::CondNotTaken { taken_target },
    });
    let next = sequential_run(suffix, va + 4, &mut insts);
    Superblock {
        start: BASE,
        insts,
        end: SbEnd::Cycle { next },
    }
}

/// The branch was observed taken: the collector followed the taken edge,
/// so the suffix lives at the branch target and the original
/// fall-through becomes the side exit (condition reversed on
/// translation).
fn straightened(prefix: &[Inst], bop: BranchOp, br: Reg, suffix: &[Inst]) -> Superblock {
    let target = BASE + 0x800;
    let mut insts = Vec::new();
    let va = sequential_run(prefix, BASE, &mut insts);
    insts.push(SbInst {
        vaddr: va,
        inst: Inst::Branch {
            op: bop,
            ra: br,
            disp: disp_to(va, target),
        },
        flow: CollectedFlow::CondTaken {
            taken_target: target,
            fallthrough: va + 4,
        },
    });
    let next = sequential_run(suffix, target, &mut insts);
    Superblock {
        start: BASE,
        insts,
        end: SbEnd::Cycle { next },
    }
}

fn check(prefix: &[Inst], bop: BranchOp, br: Reg, suffix: &[Inst]) {
    for (layout, sb) in [
        ("unstraightened", unstraightened(prefix, bop, br, suffix)),
        ("straightened", straightened(prefix, bop, br, suffix)),
    ] {
        for form in [IsaForm::Basic, IsaForm::Modified] {
            for chain in [
                ChainPolicy::NoPred,
                ChainPolicy::SwPred,
                ChainPolicy::SwPredDualRas,
            ] {
                let tr = Translator {
                    form,
                    chain,
                    acc_count: 4,
                    fuse_memory: false,
                };
                let code = tr.translate(&sb);
                let vs = verify_translation(&sb, &code, &tr);
                assert!(
                    vs.is_empty(),
                    "{layout} ({form:?}, {chain:?}) fails verification:\n{}\nblock: {:#x?}",
                    vs.iter().map(|v| format!("  {v}\n")).collect::<String>(),
                    sb.insts
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn both_layouts_verify_clean(
        prefix in prop::collection::vec(body_inst(), 0..8),
        bop in branch_op(),
        br in reg(),
        suffix in prop::collection::vec(body_inst(), 0..8),
    ) {
        check(&prefix, bop, br, &suffix);
    }
}
