//! Clean translations pass all four passes; seeded miscompiles are each
//! caught by the pass that owns the violated invariant.

use alpha_isa::{BranchOp, Inst, JumpKind, MemOp, Operand, OperateOp, Reg};
use ildp_core::{
    ChainPolicy, CollectedFlow, SbEnd, SbInst, Superblock, TranslatedCode, Translator,
};
use ildp_isa::{IInst, ITarget, IsaForm};
use ildp_verifier::{verify_translation, Violation};

fn r(n: u8) -> Reg {
    Reg::new(n)
}

fn seq(vaddr: u64, inst: Inst) -> SbInst {
    SbInst {
        vaddr,
        inst,
        flow: CollectedFlow::Sequential,
    }
}

/// The paper's Figure 2 inner loop: loads, ALU work, a backward taken
/// branch ending the block.
fn fig2_superblock() -> Superblock {
    let base = 0x1_0000u64;
    let mk = |i: u64, inst: Inst| seq(base + i * 4, inst);
    let mut insts = vec![
        mk(
            0,
            Inst::Mem {
                op: MemOp::Ldbu,
                ra: r(3),
                rb: r(16),
                disp: 0,
            },
        ),
        mk(
            1,
            Inst::Operate {
                op: OperateOp::Subl,
                ra: r(17),
                rb: Operand::Lit(1),
                rc: r(17),
            },
        ),
        mk(
            2,
            Inst::Mem {
                op: MemOp::Lda,
                ra: r(16),
                rb: r(16),
                disp: 1,
            },
        ),
        mk(
            3,
            Inst::Operate {
                op: OperateOp::Xor,
                ra: r(1),
                rb: Operand::Reg(r(3)),
                rc: r(3),
            },
        ),
        mk(
            4,
            Inst::Operate {
                op: OperateOp::Srl,
                ra: r(1),
                rb: Operand::Lit(8),
                rc: r(1),
            },
        ),
        mk(
            5,
            Inst::Operate {
                op: OperateOp::And,
                ra: r(3),
                rb: Operand::Lit(0xff),
                rc: r(3),
            },
        ),
        mk(
            6,
            Inst::Operate {
                op: OperateOp::S8addq,
                ra: r(3),
                rb: Operand::Reg(r(0)),
                rc: r(3),
            },
        ),
        mk(
            7,
            Inst::Mem {
                op: MemOp::Ldq,
                ra: r(3),
                rb: r(3),
                disp: 0,
            },
        ),
        mk(
            8,
            Inst::Operate {
                op: OperateOp::Xor,
                ra: r(3),
                rb: Operand::Reg(r(1)),
                rc: r(1),
            },
        ),
    ];
    insts.push(SbInst {
        vaddr: base + 9 * 4,
        inst: Inst::Branch {
            op: BranchOp::Bne,
            ra: r(17),
            disp: -10,
        },
        flow: CollectedFlow::CondTaken {
            taken_target: base,
            fallthrough: base + 10 * 4,
        },
    });
    Superblock {
        start: base,
        insts,
        end: SbEnd::BackwardTakenBranch {
            target: base,
            fallthrough: base + 10 * 4,
        },
    }
}

/// A block ending in a return (exercises every indirect-exit flavor).
fn ret_superblock() -> Superblock {
    let base = 0x2_0000u64;
    let insts = vec![
        seq(
            base,
            Inst::Operate {
                op: OperateOp::Addq,
                ra: r(1),
                rb: Operand::Lit(8),
                rc: r(1),
            },
        ),
        SbInst {
            vaddr: base + 4,
            inst: Inst::Jump {
                kind: JumpKind::Ret,
                ra: r(31),
                rb: r(26),
                hint: 0,
            },
            flow: CollectedFlow::Indirect {
                kind: JumpKind::Ret,
                target: 0x3_0000,
            },
        },
    ];
    Superblock {
        start: base,
        insts,
        end: SbEnd::IndirectJump,
    }
}

/// A block ending in an indirect call (`jsr`): return-address save plus
/// software target prediction.
fn jsr_superblock() -> Superblock {
    let base = 0x4_0000u64;
    let insts = vec![
        seq(
            base,
            Inst::Operate {
                op: OperateOp::Addq,
                ra: r(9),
                rb: Operand::Lit(1),
                rc: r(9),
            },
        ),
        SbInst {
            vaddr: base + 4,
            inst: Inst::Jump {
                kind: JumpKind::Jsr,
                ra: r(26),
                rb: r(27),
                hint: 0,
            },
            flow: CollectedFlow::Indirect {
                kind: JumpKind::Jsr,
                target: 0x5_0000,
            },
        },
    ];
    Superblock {
        start: base,
        insts,
        end: SbEnd::IndirectJump,
    }
}

/// A block containing conditional-move and store traffic plus a halt.
fn cmov_store_superblock() -> Superblock {
    let base = 0x6_0000u64;
    let insts = vec![
        seq(
            base,
            Inst::Operate {
                op: OperateOp::Cmoveq,
                ra: r(2),
                rb: Operand::Reg(r(3)),
                rc: r(4),
            },
        ),
        seq(
            base + 4,
            Inst::Mem {
                op: MemOp::Stq,
                ra: r(4),
                rb: r(30),
                disp: 16,
            },
        ),
        seq(
            base + 8,
            Inst::CallPal {
                func: alpha_isa::PalFunc::Halt,
            },
        ),
    ];
    Superblock {
        start: base,
        insts,
        end: SbEnd::Halt,
    }
}

/// Two live-in GPR sources force a planned copy-from-GPR.
fn two_gpr_superblock() -> Superblock {
    let base = 0x7_0000u64;
    let insts = vec![seq(
        base,
        Inst::Operate {
            op: OperateOp::Addq,
            ra: r(1),
            rb: Operand::Reg(r(2)),
            rc: r(3),
        },
    )];
    Superblock {
        start: base,
        insts,
        end: SbEnd::Cycle { next: base + 4 },
    }
}

fn translate(sb: &Superblock, form: IsaForm, chain: ChainPolicy) -> (TranslatedCode, Translator) {
    let tr = Translator {
        form,
        chain,
        acc_count: 4,
        fuse_memory: false,
    };
    (tr.translate(sb), tr)
}

fn rules(vs: &[Violation]) -> Vec<&'static str> {
    vs.iter().map(|v| v.rule).collect()
}

fn assert_clean(sb: &Superblock, form: IsaForm, chain: ChainPolicy) {
    let (code, tr) = translate(sb, form, chain);
    let vs = verify_translation(sb, &code, &tr);
    assert!(
        vs.is_empty(),
        "{form:?}/{chain:?} translation of {:#x} should verify clean:\n{}",
        sb.start,
        vs.iter().map(|v| format!("  {v}\n")).collect::<String>()
    );
}

#[test]
fn clean_translations_verify_clean_in_every_configuration() {
    for sb in [
        fig2_superblock(),
        ret_superblock(),
        jsr_superblock(),
        cmov_store_superblock(),
        two_gpr_superblock(),
    ] {
        for form in [IsaForm::Basic, IsaForm::Modified] {
            for chain in [
                ChainPolicy::NoPred,
                ChainPolicy::SwPred,
                ChainPolicy::SwPredDualRas,
            ] {
                assert_clean(&sb, form, chain);
            }
        }
    }
}

// --- pass 1: accumulator discipline ----------------------------------

#[test]
fn a01_wrong_accumulator_is_caught() {
    let sb = fig2_superblock();
    let (mut code, tr) = translate(&sb, IsaForm::Modified, ChainPolicy::SwPredDualRas);
    let k = code
        .insts
        .iter()
        .position(|i| matches!(i, IInst::Op { .. }))
        .unwrap();
    if let IInst::Op { acc, .. } = &mut code.insts[k] {
        *acc = ildp_isa::Acc::new((acc.index() as u8 + 1) % 4);
    }
    let vs = verify_translation(&sb, &code, &tr);
    assert!(rules(&vs).contains(&"A01"), "got {:?}", rules(&vs));
}

#[test]
fn a05_wrong_precopy_source_is_caught() {
    let sb = two_gpr_superblock();
    let (mut code, tr) = translate(&sb, IsaForm::Basic, ChainPolicy::SwPredDualRas);
    let k = code
        .insts
        .iter()
        .position(|i| matches!(i, IInst::CopyFromGpr { .. }))
        .expect("a two-GPR-source node starts its strand with a pre-copy");
    if let IInst::CopyFromGpr { src, .. } = &mut code.insts[k] {
        *src = r(13);
    }
    let vs = verify_translation(&sb, &code, &tr);
    assert!(rules(&vs).contains(&"A05"), "got {:?}", rules(&vs));
}

// --- pass 2: precise state -------------------------------------------

#[test]
fn p01_dropped_destination_in_modified_form_is_caught() {
    let sb = fig2_superblock();
    let (mut code, tr) = translate(&sb, IsaForm::Modified, ChainPolicy::SwPredDualRas);
    let k = code
        .insts
        .iter()
        .position(|i| matches!(i, IInst::Op { dst: Some(_), .. }))
        .unwrap();
    if let IInst::Op { dst, .. } = &mut code.insts[k] {
        *dst = None;
    }
    let vs = verify_translation(&sb, &code, &tr);
    assert!(rules(&vs).contains(&"P01"), "got {:?}", rules(&vs));
}

#[test]
fn p04_missing_recovery_entry_is_caught() {
    let sb = fig2_superblock();
    let (mut code, tr) = translate(&sb, IsaForm::Basic, ChainPolicy::SwPredDualRas);
    let (&k, _) = code
        .recovery
        .iter()
        .find(|(_, es)| !es.is_empty())
        .expect("basic-form fig2 has recovery state at the ldq");
    code.recovery.get_mut(&k).unwrap().pop();
    let vs = verify_translation(&sb, &code, &tr);
    assert!(rules(&vs).contains(&"P04"), "got {:?}", rules(&vs));
}

#[test]
fn p05_spurious_recovery_table_is_caught() {
    let sb = fig2_superblock();
    let (mut code, tr) = translate(&sb, IsaForm::Modified, ChainPolicy::SwPredDualRas);
    // Modified form keeps all state in the file: any table is spurious.
    let k = code
        .insts
        .iter()
        .position(|i| i.is_pei())
        .expect("fig2 has loads");
    code.recovery
        .entry(k as u32)
        .or_default()
        .push(ildp_core::RecoveryEntry {
            reg: r(3),
            acc: ildp_isa::Acc::new(0),
        });
    let vs = verify_translation(&sb, &code, &tr);
    assert!(rules(&vs).contains(&"P05"), "got {:?}", rules(&vs));
}

// --- pass 3: chaining ------------------------------------------------

#[test]
fn c02_broken_swpred_compare_is_caught() {
    let sb = jsr_superblock();
    let (mut code, tr) = translate(&sb, IsaForm::Modified, ChainPolicy::SwPred);
    let k = code
        .insts
        .iter()
        .position(|i| {
            matches!(
                i,
                IInst::Op {
                    op: OperateOp::Cmpeq,
                    ..
                }
            )
        })
        .expect("sw-pred group contains the compare");
    if let IInst::Op { op, .. } = &mut code.insts[k] {
        *op = OperateOp::Cmpule;
    }
    let vs = verify_translation(&sb, &code, &tr);
    assert!(rules(&vs).contains(&"C02"), "got {:?}", rules(&vs));
}

#[test]
fn c03_wrong_ras_return_address_is_caught() {
    let sb = jsr_superblock();
    let (mut code, tr) = translate(&sb, IsaForm::Modified, ChainPolicy::SwPredDualRas);
    let k = code
        .insts
        .iter()
        .position(|i| matches!(i, IInst::PushDualRas { .. }))
        .expect("dual-RAS policy pushes on the call");
    if let IInst::PushDualRas { iret, .. } = &mut code.insts[k] {
        *iret = ITarget::Addr(0);
    }
    let vs = verify_translation(&sb, &code, &tr);
    assert!(rules(&vs).contains(&"C03"), "got {:?}", rules(&vs));
}

#[test]
fn c04_unbacked_predicted_return_is_caught() {
    let sb = ret_superblock();
    let (mut code, tr) = translate(&sb, IsaForm::Modified, ChainPolicy::SwPredDualRas);
    let k = code
        .insts
        .iter()
        .position(|i| matches!(i, IInst::Dispatch { .. }))
        .expect("the predicted return has a dispatch fallback");
    if let IInst::Dispatch { src, .. } = &mut code.insts[k] {
        *src = ildp_isa::ASrc::Gpr(r(7));
    }
    let vs = verify_translation(&sb, &code, &tr);
    assert!(rules(&vs).contains(&"C04"), "got {:?}", rules(&vs));
}

// --- pass 4: symbolic equivalence ------------------------------------

#[test]
fn e03_wrong_exit_target_is_caught() {
    let sb = fig2_superblock();
    let (mut code, tr) = translate(&sb, IsaForm::Modified, ChainPolicy::SwPredDualRas);
    let k = code
        .insts
        .iter()
        .position(|i| matches!(i, IInst::CallTranslator { .. }))
        .unwrap();
    if let IInst::CallTranslator { vtarget } = &mut code.insts[k] {
        *vtarget += 4;
    }
    let vs = verify_translation(&sb, &code, &tr);
    let rs = rules(&vs);
    assert!(rs.contains(&"E03"), "got {rs:?}");
    // Only the symbolic pass can see this: the structure is intact.
    assert!(rs.iter().all(|r| r.starts_with('E')), "got {rs:?}");
}

#[test]
fn e01_wrong_copy_destination_is_caught() {
    let sb = fig2_superblock();
    let (mut code, tr) = translate(&sb, IsaForm::Basic, ChainPolicy::SwPredDualRas);
    let k = code
        .insts
        .iter()
        .position(|i| matches!(i, IInst::CopyToGpr { .. }))
        .unwrap();
    if let IInst::CopyToGpr { dst, .. } = &mut code.insts[k] {
        *dst = r(9);
    }
    let vs = verify_translation(&sb, &code, &tr);
    assert!(rules(&vs).contains(&"E01"), "got {:?}", rules(&vs));
}

#[test]
fn e04_wrong_store_displacement_is_caught() {
    let sb = cmov_store_superblock();
    let (mut code, tr) = translate(&sb, IsaForm::Modified, ChainPolicy::SwPredDualRas);
    let k = code
        .insts
        .iter()
        .position(|i| matches!(i, IInst::Store { .. }))
        .unwrap();
    if let IInst::Store { disp, .. } = &mut code.insts[k] {
        *disp += 8;
    }
    let vs = verify_translation(&sb, &code, &tr);
    let rs = rules(&vs);
    assert!(rs.contains(&"E04"), "got {rs:?}");
}

#[test]
fn violations_carry_structured_diagnostics() {
    let sb = fig2_superblock();
    let (mut code, tr) = translate(&sb, IsaForm::Modified, ChainPolicy::SwPredDualRas);
    if let IInst::CallTranslator { vtarget } = code.insts.last_mut().unwrap() {
        *vtarget += 4;
    }
    let v = &verify_translation(&sb, &code, &tr)[0];
    assert_eq!(v.vstart, sb.start);
    assert!(!v.expected.is_empty() && !v.actual.is_empty());
    let shown = v.to_string();
    assert!(
        shown.contains("E0") && shown.contains("expected"),
        "{shown}"
    );
}
