//! # ildp-verifier — static translation validation
//!
//! Checks every translated fragment **without executing it**, against the
//! source superblock and the [`TranslationTrace`](ildp_core::TranslationTrace)
//! the translator recorded. Four passes, each with its own rule-id space:
//!
//! 1. **Accumulator discipline** (`A..`, [`mod@self`]): abstract
//!    interpretation over the emitted stream proving each accumulator is
//!    written by exactly one strand between kills and every accumulator
//!    read observes the planned value, in both ISA forms.
//! 2. **Precise-state audit** (`P..`): modified form — every
//!    result-producing instruction names its destination GPR; basic form —
//!    every trap-window / live-out / communication value reaches its GPR
//!    (copy or recovery-table entry) before any potentially-trapping
//!    instruction, cross-checked against the
//!    [`RecoveryEntry`](ildp_core::RecoveryEntry) metadata.
//! 3. **Chaining integrity** (`C..`): patchable exits, the 3-instruction
//!    software-prediction shape, dual-RAS push/return pairing, and (after
//!    installation) direct-link/lookup agreement.
//! 4. **Symbolic equivalence** (`E..`): a symbolic evaluator runs the
//!    Alpha superblock and the I-ISA fragment side by side over symbolic
//!    registers and memory, proving identical live-out GPR expressions,
//!    memory/output effects, exit conditions and precise-trap state.
//!
//! The VM invokes these through its install-validator hook
//! ([`ildp_core::VmConfig::validator`]); the `vlint` binary in
//! `ildp-bench` runs them over every fragment of the full workload suite.
//! With the `verify` feature disabled (it is on by default),
//! [`install_validator`] accepts everything at zero cost.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod accdisc;
mod chaining;
pub mod flow;
mod precise;
mod symbolic;

pub use flow::{ChainGraph, ExitArm, ExitKind, FlowReport, FragmentSummary, RegSet};

use std::cell::RefCell;
use std::fmt;

use ildp_core::{
    Fragment, InstallReview, Superblock, TranslatedCode, TranslationCache, Translator,
};

/// One violated translation invariant, with a structured diagnostic.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Stable rule identifier (`A01`, `P04`, `C02`, `E01`, ...).
    pub rule: &'static str,
    /// Entry V-address of the offending fragment.
    pub vstart: u64,
    /// Index of the offending emitted instruction, when the violation
    /// anchors to one.
    pub inst_index: Option<u32>,
    /// What the invariant demanded.
    pub expected: String,
    /// What the fragment actually contains.
    pub actual: String,
}

impl Violation {
    fn new(
        rule: &'static str,
        vstart: u64,
        inst_index: Option<usize>,
        expected: impl Into<String>,
        actual: impl Into<String>,
    ) -> Violation {
        Violation {
            rule,
            vstart,
            inst_index: inst_index.map(|k| k as u32),
            expected: expected.into(),
            actual: actual.into(),
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] fragment {:#x}", self.rule, self.vstart)?;
        if let Some(k) = self.inst_index {
            write!(f, " inst {k}")?;
        }
        write!(f, ": expected {}, got {}", self.expected, self.actual)
    }
}

/// Runs all four static passes over one freshly-emitted translation.
///
/// Returns every violation found (empty for a correct translation). This
/// is the pre-install check — branch targets are still symbolic
/// `call-translator` exits; [`verify_installed`] covers the patched,
/// linked form.
pub fn verify_translation(
    sb: &Superblock,
    code: &TranslatedCode,
    tr: &Translator,
) -> Vec<Violation> {
    let mut out = Vec::new();
    if code.trace.inst_node.len() != code.insts.len() {
        out.push(Violation::new(
            "A00",
            code.vstart,
            None,
            format!("trace covering {} instructions", code.insts.len()),
            format!("inst_node of length {}", code.trace.inst_node.len()),
        ));
        return out;
    }
    accdisc::check(code, tr, &mut out);
    precise::check(code, tr, &mut out);
    chaining::check_static(sb, code, tr, &mut out);
    symbolic::check(sb, code, tr, &mut out);
    out
}

/// Checks an installed fragment's chaining integrity against the cache:
/// every resolved branch / dual-RAS target is the dispatch address or a
/// valid fragment entry, and the install-time direct links agree with the
/// instruction words in lockstep.
pub fn verify_installed(cache: &TranslationCache, frag: &Fragment) -> Vec<Violation> {
    chaining::check_installed(cache, frag)
}

thread_local! {
    static REPORT: RefCell<Vec<Violation>> = const { RefCell::new(Vec::new()) };
}

/// Drains the violations recorded by [`collecting_validator`] (and by
/// [`install_validator`] before it rejected) on this thread.
pub fn take_report() -> Vec<Violation> {
    REPORT.with(|r| std::mem::take(&mut *r.borrow_mut()))
}

fn record(violations: &[Violation]) {
    if violations.is_empty() {
        return;
    }
    REPORT.with(|r| r.borrow_mut().extend_from_slice(violations));
}

/// The install-time validator for [`ildp_core::VmConfig::validator`]:
/// runs every pass and rejects the translation when any rule fires. The
/// diagnostic string joins all violations; they are also recorded for
/// [`take_report`]. A no-op accept when the `verify` feature is disabled.
pub fn install_validator(review: &InstallReview<'_>) -> Result<(), String> {
    #[cfg(feature = "verify")]
    {
        let violations = verify_translation(review.sb, review.code, review.translator);
        if violations.is_empty() {
            return Ok(());
        }
        record(&violations);
        let msg = violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("; ");
        Err(msg)
    }
    #[cfg(not(feature = "verify"))]
    {
        let _ = review;
        Ok(())
    }
}

/// Like [`install_validator`] but never rejects: violations are recorded
/// for [`take_report`] and the installation proceeds. Used by `vlint` to
/// audit a whole run without changing its execution.
pub fn collecting_validator(review: &InstallReview<'_>) -> Result<(), String> {
    let violations = verify_translation(review.sb, review.code, review.translator);
    record(&violations);
    Ok(())
}

/// Install-time hook for the pre-install flow rules (F01–F04): rejects
/// the translation when any fires. A no-op accept when the `verify`
/// feature is disabled. Pairs with [`install_validator`]; the whole-cache
/// rules (F04 installed, F05) and the dynamic rule (F06) need the full
/// cache or a trace and live in [`flow::check_cache`] /
/// [`flow::check_dynamic`].
pub fn flow_install_validator(review: &InstallReview<'_>) -> Result<(), String> {
    #[cfg(feature = "verify")]
    {
        let mut violations = Vec::new();
        flow::check_translation(review.sb, review.code, &mut violations);
        if violations.is_empty() {
            return Ok(());
        }
        record(&violations);
        let msg = violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("; ");
        Err(msg)
    }
    #[cfg(not(feature = "verify"))]
    {
        let _ = review;
        Ok(())
    }
}

/// Like [`flow_install_validator`] but never rejects: flow violations are
/// recorded for [`take_report`] and the installation proceeds. Used by
/// `flowlint` to audit a whole run without changing its execution.
pub fn collecting_flow_validator(review: &InstallReview<'_>) -> Result<(), String> {
    let mut violations = Vec::new();
    flow::check_translation(review.sb, review.code, &mut violations);
    record(&violations);
    Ok(())
}

/// A combined collecting validator: the single-fragment passes *and* the
/// pre-install flow rules, never rejecting. Lets one run feed both rule
/// families into [`take_report`].
pub fn collecting_full_validator(review: &InstallReview<'_>) -> Result<(), String> {
    collecting_validator(review)?;
    collecting_flow_validator(review)
}
