//! Pass 1 — accumulator discipline (rules `A01`–`A06`).
//!
//! Abstract interpretation over the emitted instruction stream, tracking
//! what every accumulator holds (a planned dataflow value, a
//! strand-starting GPR copy, chaining scratch, or garbage) and which
//! strand wrote it. The pass proves:
//!
//! * `A01` — each instruction names the accumulator the plan assigned to
//!   its node;
//! * `A02` — the instruction's shape and operands match the node and the
//!   planned delivery roles (accumulator / GPR / immediate per slot);
//! * `A03` — an accumulator read observes a value written by the
//!   reader's own strand (no cross-strand leakage between kills);
//! * `A04` — the value observed is exactly the reaching definition the
//!   dataflow analysis resolved for that operand;
//! * `A05` — strand-starting `copy-from-GPR` instructions copy from the
//!   planned register;
//! * `A06` — every instruction is structurally encodable in the target
//!   ISA form.

use crate::Violation;
use alpha_isa::{MemOp, OperateOp, PalFunc, Reg};
use ildp_core::{
    Node, NodeOp, Reaching, Role, TranslatedCode, TranslationTrace, Translator, ValueId,
};
use ildp_isa::{ASrc, Acc, IInst, MemWidth};

/// Abstract contents of one accumulator.
#[derive(Clone, Copy, PartialEq, Debug)]
enum AccVal {
    /// Never written in this fragment.
    Uninit,
    /// Holds a planned dataflow value.
    Value(ValueId),
    /// Holds a strand-starting copy from a GPR.
    FromGpr(Reg),
    /// Holds chaining scratch (embedded target, compare result).
    Chain,
    /// Holds an architecturally meaningless result (NOP credit).
    Scratch,
}

fn width_of(op: MemOp) -> MemWidth {
    match op {
        MemOp::Ldbu | MemOp::Stb => MemWidth::U8,
        MemOp::Ldwu | MemOp::Stw => MemWidth::U16,
        MemOp::Ldl | MemOp::Stl => MemWidth::I32,
        MemOp::Ldq | MemOp::Stq => MemWidth::U64,
        MemOp::Lda | MemOp::Ldah => unreachable!("address arithmetic is not memory"),
    }
}

fn role_asrc(role: Role) -> ASrc {
    match role {
        Role::Acc => ASrc::Acc,
        Role::Gpr(r) => ASrc::Gpr(r),
        Role::Imm(v) => ASrc::Imm(v),
    }
}

/// The accumulator-read operands of a node's main instruction, paired with
/// the node input slot their reaching definition lives in. The boolean
/// marks implicit reads (the cmov-select test) that have no explicit
/// operand field to role-check.
fn read_slots(node: &Node, inst: &IInst) -> Vec<(ASrc, usize, bool)> {
    match (*inst, node.op) {
        (IInst::Op { lhs, rhs, .. }, NodeOp::Alu(_)) => vec![(lhs, 0, false), (rhs, 1, false)],
        (IInst::Op { lhs, .. }, NodeOp::AddImm) => vec![(lhs, 0, false)],
        (IInst::Op { .. }, NodeOp::Pal(_)) => Vec::new(),
        (IInst::AddHigh { src, .. }, _) => vec![(src, 0, false)],
        (IInst::Load { addr, .. }, _) => vec![(addr, 0, false)],
        (IInst::Store { addr, value, .. }, _) => vec![(addr, 0, false), (value, 1, false)],
        (IInst::CmovSelect { value, .. }, _) => vec![(ASrc::Acc, 0, true), (value, 1, false)],
        (IInst::CallTranslatorIfCond { src, .. }, NodeOp::CondBranch(_)) => {
            vec![(src, 0, false)]
        }
        (IInst::PutChar { src, .. }, _) => vec![(src, 0, false)],
        (IInst::IndirectJump { addr, .. }, _) => vec![(addr, 0, false)],
        (IInst::Dispatch { src, .. }, _) => vec![(src, 0, false)],
        _ => Vec::new(),
    }
}

/// Checks that the main instruction emitted for `node` has the expected
/// kind and fixed fields (operation, displacement, width, polarity).
fn check_shape(
    t: &TranslationTrace,
    node: &Node,
    i: usize,
    inst: &IInst,
    k: usize,
    vstart: u64,
    out: &mut Vec<Violation>,
) {
    let mismatch = |out: &mut Vec<Violation>, expected: String| {
        out.push(Violation::new(
            "A02",
            vstart,
            Some(k),
            expected,
            format!("{inst:?}"),
        ));
    };
    match node.op {
        NodeOp::Alu(nop) => match *inst {
            IInst::Op { op, .. } if op == nop => {}
            _ => mismatch(out, format!("Op {nop:?} for node {i}")),
        },
        NodeOp::AddImm => match *inst {
            IInst::Op {
                op: OperateOp::Addq,
                rhs,
                ..
            } if rhs == ASrc::Imm(node.imm) => {}
            _ => mismatch(out, format!("Op Addq with Imm({}) for node {i}", node.imm)),
        },
        NodeOp::AddHigh => match *inst {
            IInst::AddHigh { imm, .. } if imm == node.imm => {}
            _ => mismatch(out, format!("AddHigh with imm {} for node {i}", node.imm)),
        },
        NodeOp::Load(mop) => match *inst {
            IInst::Load { width, disp, .. } if width == width_of(mop) && disp == node.imm => {}
            _ => mismatch(
                out,
                format!("Load {:?} disp {} for node {i}", width_of(mop), node.imm),
            ),
        },
        NodeOp::Store(mop) => match *inst {
            IInst::Store { width, disp, .. } if width == width_of(mop) && disp == node.imm => {}
            _ => mismatch(
                out,
                format!("Store {:?} disp {} for node {i}", width_of(mop), node.imm),
            ),
        },
        NodeOp::CmovSelect(sel) => {
            let want_lbs = sel == OperateOp::Cmovlbs;
            let want_old = t.df.produced[i].and_then(|v| t.df.value(v).reg);
            match *inst {
                IInst::CmovSelect { lbs, old, .. } if lbs == want_lbs && Some(old) == want_old => {}
                _ => mismatch(
                    out,
                    format!("CmovSelect lbs={want_lbs} old={want_old:?} for node {i}"),
                ),
            }
        }
        NodeOp::CondBranch(_) => match *inst {
            IInst::CallTranslatorIfCond { .. } => {}
            _ => mismatch(out, format!("CallTranslatorIfCond for branch node {i}")),
        },
        NodeOp::CallSave => match *inst {
            IInst::SaveVReturn { dst, vaddr }
                if Some(dst) == node.out && vaddr == node.vaddr + 4 => {}
            _ => mismatch(
                out,
                format!(
                    "SaveVReturn {:?} vret {:#x} for node {i}",
                    node.out,
                    node.vaddr + 4
                ),
            ),
        },
        NodeOp::IndirectJump(_) => match *inst {
            IInst::IndirectJump { .. } | IInst::Dispatch { .. } => {}
            _ => mismatch(out, format!("IndirectJump or Dispatch for node {i}")),
        },
        NodeOp::Pal(func) => {
            let ok = match func {
                PalFunc::Halt => matches!(inst, IInst::Halt),
                PalFunc::GenTrap => matches!(inst, IInst::GenTrap),
                PalFunc::PutChar => matches!(inst, IInst::PutChar { .. }),
                PalFunc::Other(_) => matches!(
                    inst,
                    IInst::Op {
                        op: OperateOp::Bis,
                        lhs: ASrc::Imm(0),
                        rhs: ASrc::Imm(0),
                        dst: None,
                        ..
                    }
                ),
            };
            if !ok {
                mismatch(
                    out,
                    format!("translation of CALL_PAL {func:?} for node {i}"),
                );
            }
        }
    }
}

pub(crate) fn check(code: &TranslatedCode, tr: &Translator, out: &mut Vec<Violation>) {
    let t = &code.trace;
    let vstart = code.vstart;
    let mut vals = [AccVal::Uninit; Acc::MAX_ACCUMULATORS];
    let mut strands: [Option<u32>; Acc::MAX_ACCUMULATORS] = [None; Acc::MAX_ACCUMULATORS];

    // Reading `acc` must observe `expected` (the reaching definition the
    // analysis resolved), written by `reader_strand`.
    let check_read = |vals: &[AccVal],
                      strands: &[Option<u32>],
                      acc: Acc,
                      expected: Option<Reaching>,
                      reader_strand: Option<u32>,
                      pre_copy: Option<Reg>,
                      k: usize,
                      out: &mut Vec<Violation>| {
        let held = vals[acc.index()];
        match held {
            AccVal::Value(id) => {
                if !matches!(expected, Some(Reaching::Value(eid)) if eid == id) {
                    out.push(Violation::new(
                        "A04",
                        vstart,
                        Some(k),
                        format!("{acc} holding {expected:?}"),
                        format!("{acc} holding {held:?}"),
                    ));
                } else if strands[acc.index()] != reader_strand {
                    out.push(Violation::new(
                        "A03",
                        vstart,
                        Some(k),
                        format!("{acc} written by strand {reader_strand:?}"),
                        format!("{acc} written by strand {:?}", strands[acc.index()]),
                    ));
                }
            }
            AccVal::FromGpr(r) => {
                let source_matches = match expected {
                    Some(Reaching::LiveIn(rr)) => rr == r,
                    Some(Reaching::Value(id)) => t.df.value(id).reg == Some(r),
                    _ => false,
                };
                if !source_matches || pre_copy != Some(r) {
                    out.push(Violation::new(
                        "A04",
                        vstart,
                        Some(k),
                        format!("{acc} holding {expected:?} (pre-copy {pre_copy:?})"),
                        format!("{acc} holding copy of {r}"),
                    ));
                }
            }
            AccVal::Chain | AccVal::Scratch | AccVal::Uninit => {
                out.push(Violation::new(
                    "A04",
                    vstart,
                    Some(k),
                    format!("{acc} holding {expected:?}"),
                    format!("{acc} holding {held:?}"),
                ));
            }
        }
    };

    for (k, inst) in code.insts.iter().enumerate() {
        if code.meta[k].is_chain {
            // Chaining code owns its accumulator as scratch; the shape is
            // pass 3's concern. Track the kill so later reads are flagged.
            match *inst {
                IInst::LoadEmbeddedTarget { acc, .. } | IInst::Op { acc, .. } => {
                    vals[acc.index()] = AccVal::Chain;
                    strands[acc.index()] = None;
                }
                _ => {}
            }
            continue;
        }
        let Some(i) = t.inst_node[k].map(|i| i as usize) else {
            continue; // the leading SetVpcBase
        };
        let node = &t.nodes[i];
        let planned_acc = t.plan.node_acc[i].unwrap_or(Acc::new(0));
        let strand = t.plan.node_strand[i];

        if let Err(e) = inst.validate(tr.form) {
            out.push(Violation::new(
                "A06",
                vstart,
                Some(k),
                format!("{:?}-form encodable instruction", tr.form),
                format!("{inst:?}: {e}"),
            ));
        }
        if let Some(a) = inst.acc() {
            if a != planned_acc {
                out.push(Violation::new(
                    "A01",
                    vstart,
                    Some(k),
                    format!("{planned_acc} (planned for node {i})"),
                    format!("{a}"),
                ));
            }
        }

        match *inst {
            IInst::CopyFromGpr { acc, src } => {
                if t.plan.pre_copy[i] != Some(src) {
                    out.push(Violation::new(
                        "A05",
                        vstart,
                        Some(k),
                        format!("copy-from-GPR of {:?} (planned)", t.plan.pre_copy[i]),
                        format!("copy-from-GPR of {src}"),
                    ));
                }
                vals[acc.index()] = AccVal::FromGpr(src);
                strands[acc.index()] = strand;
            }
            IInst::CopyToGpr { acc, .. } => {
                // Post-copy: must read the value node `i` just produced.
                let expected = t.df.produced[i].map(Reaching::Value);
                check_read(&vals, &strands, acc, expected, strand, None, k, out);
            }
            _ => {
                check_shape(t, node, i, inst, k, vstart, out);
                for (operand, slot, implicit) in read_slots(node, inst) {
                    if !implicit {
                        if let Some(role) = t.plan.input_role[i][slot] {
                            let want = role_asrc(role);
                            if operand != want {
                                out.push(Violation::new(
                                    "A02",
                                    vstart,
                                    Some(k),
                                    format!("operand {want:?} (role for node {i} slot {slot})"),
                                    format!("{operand:?}"),
                                ));
                            }
                        }
                    }
                    if operand == ASrc::Acc {
                        let acc = inst.acc().unwrap_or(Acc::new(0));
                        let expected = t.df.reaching[i][slot];
                        check_read(
                            &vals,
                            &strands,
                            acc,
                            expected,
                            strand,
                            t.plan.pre_copy[i],
                            k,
                            out,
                        );
                    }
                }
                if inst.writes_acc() {
                    let a = inst.acc().expect("acc-writing instruction names one");
                    vals[a.index()] = match t.df.produced[i] {
                        Some(v) => AccVal::Value(v),
                        None => AccVal::Scratch,
                    };
                    strands[a.index()] = strand;
                }
            }
        }
    }
}
