//! Whole-cache dataflow analysis (rule family `F..`).
//!
//! The other four passes prove each fragment correct *in isolation*. This
//! pass reasons about fragment **seams**: an abstract interpretation over
//! each fragment's instruction stream produces a def/use/liveness summary
//! ([`FragmentSummary`]), a chain graph reconstructed from the installed
//! cache ([`ChainGraph`]) connects the summaries, and a worklist solver
//! ([`solve_liveness`]) propagates GPR liveness backwards across resolved
//! chain edges. On top of those artifacts sit six rules:
//!
//! * **F01** — dead cross-fragment global communication: every source
//!   value the dataflow analysis classified as *global* must reach its
//!   architected register somewhere in the fragment (copy-to-GPR in the
//!   basic form, destination specifier in the modified form).
//! * **F02** — illegitimate copy-in: every `copy-from-GPR` must read a
//!   register the source program actually supplies at that point — a
//!   superblock live-in or a register some earlier source value defines.
//! * **F03** — accumulator live range crossing a seam: accumulators are
//!   fragment-local (the paper's strands never span superblocks), so no
//!   instruction may read its accumulator before a write to it inside the
//!   same fragment.
//! * **F04** — exit-arm integrity: statically, every patchable exit must
//!   name a legitimate continuation V-address of the source superblock
//!   and every exit arm must be reachable from the fragment entry; over
//!   the installed cache, every resolved branch must land on the fragment
//!   translated from the V-address recorded for that exit at install time
//!   ([`ildp_core::Fragment::exit_varms`]) — which catches links patched
//!   to a *wrong but valid* fragment entry, invisible to the `C..` rules.
//! * **F05** — dual-RAS seam discipline: RAS pushes appear only under the
//!   dual-RAS chaining policy, and a resolved push's I-side return
//!   address must be the entry of the fragment translated from its V-side
//!   return address (pure push-edge cycles are *not* flagged: two calls
//!   inside one loop legitimately produce a cycle of return-continuation
//!   fragments, see DESIGN.md §10).
//! * **F06** — summary/dynamic-trace mismatch: facts observed from a
//!   retired-instruction trace (operand names, accumulator usage, seam
//!   classification, runtime accumulator live ranges) must agree with the
//!   static summary of the installed code.
//!
//! The liveness solution itself never produces violations — at every exit
//! the solver cannot see past (dispatch, indirect jumps, unresolved
//! exits) it assumes **all registers live**, so its only outputs are the
//! conservative per-seam *optimization opportunity* counts in
//! [`FlowReport`]: provably dead copy-outs and redundant copy-out/copy-in
//! pairs across resolved seams, the facts region re-formation (ROADMAP
//! item 5) will consume.

use std::collections::HashMap;
use std::fmt;

use crate::Violation;
use alpha_isa::Reg;
use ildp_core::{
    ChainPolicy, CollectedFlow, Fragment, FragmentId, SbEnd, Superblock, TranslatedCode,
    TranslationCache, DISPATCH_IADDR,
};
use ildp_isa::{Acc, IInst, ITarget};
use ildp_uarch::DynInst;

/// A set of general-purpose registers, as a 32-bit mask (the Alpha has 32
/// integer registers; `r31` reads as zero and is excluded from liveness
/// reasoning by the rule implementations, not by the set itself).
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct RegSet(pub u32);

impl RegSet {
    /// The empty set.
    pub const EMPTY: RegSet = RegSet(0);
    /// Every register — the conservative "anything may be live" value
    /// used past analysis boundaries.
    pub const ALL: RegSet = RegSet(u32::MAX);

    /// Inserts a register.
    pub fn insert(&mut self, r: Reg) {
        self.0 |= 1 << r.number();
    }

    /// Removes a register.
    pub fn remove(&mut self, r: Reg) {
        self.0 &= !(1 << r.number());
    }

    /// Whether the set contains `r`.
    pub fn contains(self, r: Reg) -> bool {
        self.0 & (1 << r.number()) != 0
    }

    /// Set union.
    pub fn union(self, other: RegSet) -> RegSet {
        RegSet(self.0 | other.0)
    }

    /// Set intersection.
    pub fn intersect(self, other: RegSet) -> RegSet {
        RegSet(self.0 & other.0)
    }

    /// Members of `self` not in `other`.
    pub fn minus(self, other: RegSet) -> RegSet {
        RegSet(self.0 & !other.0)
    }

    /// Number of registers in the set.
    pub fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates the members in register order.
    pub fn iter(self) -> impl Iterator<Item = Reg> {
        (0..32u8)
            .filter(move |&n| self.0 & (1 << n) != 0)
            .map(Reg::new)
    }
}

impl fmt::Debug for RegSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// How one exit arm of a fragment transfers control.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExitKind {
    /// Unconditional transfer (patched or patchable).
    Branch,
    /// Conditional side exit (patched or patchable).
    CondBranch,
    /// A dual-RAS push naming the return continuation.
    RasPush,
    /// A transfer the static analysis cannot see past: dispatch, an
    /// indirect jump, or the machine halting.
    Boundary,
}

/// One control-flow exit of a fragment.
#[derive(Clone, Copy, Debug)]
pub struct ExitArm {
    /// Index of the exit instruction within the fragment.
    pub index: u32,
    /// Transfer kind.
    pub kind: ExitKind,
    /// The V-address this exit was emitted for, when known (embedded in
    /// patchable exits; preserved for patched ones by
    /// [`ildp_core::Fragment::exit_varms`]).
    pub vtarget: Option<u64>,
    /// The resolved I-address target, for patched exits. The dispatch
    /// address is represented as `None` (it is a [`ExitKind::Boundary`]).
    pub itarget: Option<u64>,
}

/// Per-fragment def/use/liveness summary — the abstract-interpretation
/// artifact every `F..` rule and the seam report are computed from.
#[derive(Clone, Debug)]
pub struct FragmentSummary {
    /// Entry V-address of the summarized fragment.
    pub vstart: u64,
    /// GPRs read before any local definition (the fragment's live-ins).
    pub uses: RegSet,
    /// GPRs the fragment defines.
    pub defs: RegSet,
    /// `copy-from-GPR` sites: `(instruction index, source register)`.
    pub copy_ins: Vec<(u32, Reg)>,
    /// `copy-to-GPR` sites: `(instruction index, destination register)`.
    pub copy_outs: Vec<(u32, Reg)>,
    /// Accumulator reads not preceded by a write to the same accumulator
    /// within the fragment (each is an F03 witness).
    pub acc_read_before_write: Vec<(u32, Acc)>,
    /// Every control-flow exit, in instruction order.
    pub exits: Vec<ExitArm>,
}

impl FragmentSummary {
    /// Source registers of copy-ins that read fragment live-in state (the
    /// candidates a predecessor's copy-out could feed directly).
    pub fn seam_copy_in_regs(&self) -> RegSet {
        let mut out = RegSet::EMPTY;
        for &(_, r) in &self.copy_ins {
            if self.uses.contains(r) {
                out.insert(r);
            }
        }
        out
    }
}

/// Summarizes one instruction stream by linear abstract interpretation.
///
/// `exit_varms`, when given (installed fragments), supplies the recorded
/// V-targets of patched exits; for freshly-emitted code the embedded
/// targets in the instructions themselves are used.
pub fn summarize(
    vstart: u64,
    insts: &[IInst],
    exit_varms: Option<&[Option<u64>]>,
) -> FragmentSummary {
    let mut s = FragmentSummary {
        vstart,
        uses: RegSet::EMPTY,
        defs: RegSet::EMPTY,
        copy_ins: Vec::new(),
        copy_outs: Vec::new(),
        acc_read_before_write: Vec::new(),
        exits: Vec::new(),
    };
    let mut acc_written = [false; Acc::MAX_ACCUMULATORS];
    for (k, inst) in insts.iter().enumerate() {
        let idx = k as u32;
        for r in inst.gpr_reads().into_iter().flatten() {
            if !s.defs.contains(r) {
                s.uses.insert(r);
            }
        }
        if let Some(w) = inst.gpr_write() {
            s.defs.insert(w);
        }
        match *inst {
            IInst::CopyFromGpr { src, .. } => s.copy_ins.push((idx, src)),
            IInst::CopyToGpr { dst, .. } => s.copy_outs.push((idx, dst)),
            _ => {}
        }
        if inst.reads_acc() {
            if let Some(a) = inst.acc() {
                if !acc_written[a.index()] {
                    s.acc_read_before_write.push((idx, a));
                }
            }
        }
        if inst.writes_acc() {
            if let Some(a) = inst.acc() {
                acc_written[a.index()] = true;
            }
        }
        let recorded_v = exit_varms.and_then(|m| m.get(k).copied().flatten());
        let arm = match *inst {
            IInst::CallTranslator { vtarget } => Some(ExitArm {
                index: idx,
                kind: ExitKind::Branch,
                vtarget: Some(vtarget),
                itarget: None,
            }),
            IInst::CallTranslatorIfCond { vtarget, .. } => Some(ExitArm {
                index: idx,
                kind: ExitKind::CondBranch,
                vtarget: Some(vtarget),
                itarget: None,
            }),
            IInst::Branch { target } | IInst::CondBranch { target, .. } => {
                let kind = if matches!(inst, IInst::Branch { .. }) {
                    ExitKind::Branch
                } else {
                    ExitKind::CondBranch
                };
                match target {
                    // Local targets are internal control flow, not seams.
                    ITarget::Local(_) => None,
                    ITarget::Addr(a) if a == DISPATCH_IADDR => Some(ExitArm {
                        index: idx,
                        kind: ExitKind::Boundary,
                        vtarget: recorded_v,
                        itarget: None,
                    }),
                    ITarget::Addr(a) => Some(ExitArm {
                        index: idx,
                        kind,
                        vtarget: recorded_v,
                        itarget: Some(a),
                    }),
                }
            }
            IInst::PushDualRas { vret, iret } => Some(ExitArm {
                index: idx,
                kind: ExitKind::RasPush,
                vtarget: Some(vret),
                itarget: match iret {
                    ITarget::Addr(a) if a != DISPATCH_IADDR => Some(a),
                    _ => None,
                },
            }),
            IInst::IndirectJump { .. } | IInst::Dispatch { .. } | IInst::Halt => Some(ExitArm {
                index: idx,
                kind: ExitKind::Boundary,
                vtarget: None,
                itarget: None,
            }),
            _ => None,
        };
        s.exits.extend(arm);
    }
    s
}

/// Summarizes an installed fragment (recorded exit V-targets included).
pub fn summarize_fragment(frag: &Fragment) -> FragmentSummary {
    summarize(frag.vstart, &frag.insts, Some(&frag.exit_varms))
}

/// The cross-fragment chain graph reconstructed from an installed cache:
/// one node per live fragment, one edge per resolved branch or dual-RAS
/// push landing on another fragment's entry.
#[derive(Clone, Debug, Default)]
pub struct ChainGraph {
    /// Successors of each fragment (resolved edges only, deduplicated).
    pub succs: HashMap<FragmentId, Vec<FragmentId>>,
    /// Fragments with at least one exit the analysis cannot see past
    /// (dispatch, indirect jump, halt, or an unresolved patchable exit).
    pub boundary: HashMap<FragmentId, bool>,
    /// Total resolved seam edges.
    pub resolved_edges: usize,
    /// Total boundary/unresolved exits.
    pub boundary_exits: usize,
}

impl ChainGraph {
    /// Builds the graph from fragment summaries against the cache's
    /// entry-point map.
    pub fn from_cache(
        cache: &TranslationCache,
        summaries: &HashMap<FragmentId, FragmentSummary>,
    ) -> ChainGraph {
        let mut g = ChainGraph::default();
        for (&id, summary) in summaries {
            let succs: &mut Vec<FragmentId> = g.succs.entry(id).or_default();
            let mut boundary = false;
            for arm in &summary.exits {
                match arm.itarget.and_then(|a| cache.lookup_iaddr(a)) {
                    Some(target) => {
                        if !succs.contains(&target) {
                            succs.push(target);
                        }
                        g.resolved_edges += 1;
                    }
                    None => {
                        boundary = true;
                        g.boundary_exits += 1;
                    }
                }
            }
            g.boundary.insert(id, boundary);
        }
        g
    }
}

/// Worklist solver: backward GPR liveness over the chain graph.
///
/// `live_in(F) = uses(F) ∪ (live_out(F) \ defs(F))` with
/// `live_out(F) = ALL` for any fragment with a boundary exit, else the
/// union of its successors' live-ins. Returns each fragment's live-in
/// set; the transfer function is monotone over a finite lattice, so the
/// iteration reaches a fixpoint.
pub fn solve_liveness(
    summaries: &HashMap<FragmentId, FragmentSummary>,
    graph: &ChainGraph,
) -> HashMap<FragmentId, RegSet> {
    let mut live_in: HashMap<FragmentId, RegSet> =
        summaries.iter().map(|(&id, s)| (id, s.uses)).collect();
    let mut changed = true;
    while changed {
        changed = false;
        for (&id, summary) in summaries {
            let out = live_out_of(id, graph, &live_in);
            let new = summary.uses.union(out.minus(summary.defs));
            let cur = live_in.get_mut(&id).expect("seeded above");
            if new != *cur {
                *cur = new;
                changed = true;
            }
        }
    }
    live_in
}

/// A fragment's live-out set under the current live-in solution.
fn live_out_of(
    id: FragmentId,
    graph: &ChainGraph,
    live_in: &HashMap<FragmentId, RegSet>,
) -> RegSet {
    if graph.boundary.get(&id).copied().unwrap_or(true) {
        return RegSet::ALL;
    }
    let mut out = RegSet::EMPTY;
    for succ in graph.succs.get(&id).into_iter().flatten() {
        out = out.union(live_in.get(succ).copied().unwrap_or(RegSet::ALL));
    }
    out
}

/// Machine-readable per-seam optimization-opportunity report — the facts
/// a region re-formation tier would consume (ROADMAP item 5). All counts
/// are conservative under-approximations: a copy is only called dead when
/// every path from it stays inside the resolved chain graph and redefines
/// the register before any use.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlowReport {
    /// Live fragments analyzed.
    pub fragments: u64,
    /// Resolved seam edges in the chain graph.
    pub resolved_edges: u64,
    /// Exits the analysis treated as all-live boundaries.
    pub boundary_exits: u64,
    /// Static `copy-from-GPR` instructions across the cache.
    pub copy_ins: u64,
    /// Static `copy-to-GPR` instructions across the cache.
    pub copy_outs: u64,
    /// Copy-outs whose destination register is provably dead at the copy.
    pub dead_copy_outs: u64,
    /// `(predecessor copy-out, successor copy-in)` pairs of the same
    /// register across a resolved branch seam — communication region
    /// re-formation could keep in an accumulator.
    pub redundant_seam_pairs: u64,
}

impl FlowReport {
    /// Adds every count of `other` into `self`.
    pub fn merge(&mut self, other: &FlowReport) {
        self.fragments += other.fragments;
        self.resolved_edges += other.resolved_edges;
        self.boundary_exits += other.boundary_exits;
        self.copy_ins += other.copy_ins;
        self.copy_outs += other.copy_outs;
        self.dead_copy_outs += other.dead_copy_outs;
        self.redundant_seam_pairs += other.redundant_seam_pairs;
    }

    /// Renders the counts as a JSON object fragment (no surrounding
    /// braces), for embedding in the lint/perfstat reports.
    pub fn json_fields(&self) -> String {
        format!(
            "\"fragments\":{},\"resolved_edges\":{},\"boundary_exits\":{},\
             \"copy_ins\":{},\"copy_outs\":{},\"dead_copy_outs\":{},\
             \"redundant_seam_pairs\":{}",
            self.fragments,
            self.resolved_edges,
            self.boundary_exits,
            self.copy_ins,
            self.copy_outs,
            self.dead_copy_outs,
            self.redundant_seam_pairs,
        )
    }
}

fn zero_reg(r: Reg) -> bool {
    r.number() == 31
}

/// Pre-install flow checks (rules F01–F04) over one freshly-emitted
/// translation, against the source superblock and the translator's
/// recorded dataflow analysis.
pub fn check_translation(
    sb: &Superblock,
    code: &TranslatedCode,
    out: &mut Vec<Violation>,
) -> FragmentSummary {
    let summary = summarize(code.vstart, &code.insts, None);

    // F01: every global value must reach its architected register.
    for v in &code.trace.df.values {
        if !v.category.is_global() {
            continue;
        }
        let Some(r) = v.reg else { continue };
        if zero_reg(r) {
            continue;
        }
        if !summary.defs.contains(r) {
            out.push(Violation::new(
                "F01",
                code.vstart,
                None,
                format!(
                    "global {:?} value to be communicated through {r}",
                    v.category
                ),
                format!("no instruction in the fragment defines {r}"),
            ));
        }
    }

    // F02: copy-ins must read registers the source program supplies:
    // superblock live-ins or registers earlier source values define.
    let mut supplied = RegSet::EMPTY;
    for &r in &code.trace.df.live_ins {
        supplied.insert(r);
    }
    for v in &code.trace.df.values {
        if let Some(r) = v.reg {
            supplied.insert(r);
        }
    }
    for &(idx, src) in &summary.copy_ins {
        if zero_reg(src) {
            continue;
        }
        if !supplied.contains(src) {
            out.push(Violation::new(
                "F02",
                code.vstart,
                Some(idx as usize),
                "copy-from-GPR of a register the source program supplies",
                format!("{src} is neither live-in nor defined by any source value"),
            ));
        }
    }

    // F03: accumulator live ranges must not cross the fragment entry.
    check_acc_seams(&summary, out);

    // F04 (static): exit arms target legitimate continuations and are
    // reachable from the fragment entry.
    let legit = legitimate_continuations(sb);
    for arm in &summary.exits {
        if let Some(vt) = arm.vtarget {
            if !legit.contains(&vt) {
                out.push(Violation::new(
                    "F04",
                    code.vstart,
                    Some(arm.index as usize),
                    "an exit arm targeting a continuation V-address of the superblock",
                    format!("exit targets {vt:#x}, not a collected continuation"),
                ));
            }
        }
    }
    for idx in unreachable_exit_arms(&code.insts, &summary) {
        out.push(Violation::new(
            "F04",
            code.vstart,
            Some(idx as usize),
            "every exit arm reachable from the fragment entry",
            "exit arm is unreachable (follows a terminal transfer)",
        ));
    }
    summary
}

/// F03 check shared by the static and whole-cache passes.
fn check_acc_seams(summary: &FragmentSummary, out: &mut Vec<Violation>) {
    for &(idx, a) in &summary.acc_read_before_write {
        out.push(Violation::new(
            "F03",
            summary.vstart,
            Some(idx as usize),
            format!("{a} written inside the fragment before any read"),
            format!("{a} read at inst {idx} would observe a value from across a seam"),
        ));
    }
}

/// The V-addresses at which a translation of `sb` may legitimately
/// continue: collected branch targets and fall-throughs, call-return
/// continuations (the instruction after any source instruction), the
/// block's ending continuations, and the entry itself (self-loops).
fn legitimate_continuations(sb: &Superblock) -> std::collections::HashSet<u64> {
    let mut legit = std::collections::HashSet::new();
    legit.insert(sb.start);
    for si in &sb.insts {
        legit.insert(si.vaddr + 4);
        match si.flow {
            CollectedFlow::CondNotTaken { taken_target } => {
                legit.insert(taken_target);
            }
            CollectedFlow::CondTaken {
                taken_target,
                fallthrough,
            } => {
                legit.insert(taken_target);
                legit.insert(fallthrough);
            }
            CollectedFlow::Direct { target, .. } => {
                legit.insert(target);
            }
            CollectedFlow::Indirect { target, .. } => {
                legit.insert(target);
            }
            CollectedFlow::Sequential => {}
        }
    }
    match sb.end {
        SbEnd::BackwardTakenBranch {
            target,
            fallthrough,
        } => {
            legit.insert(target);
            legit.insert(fallthrough);
        }
        SbEnd::Cycle { next } | SbEnd::MaxSize { next } => {
            legit.insert(next);
        }
        SbEnd::IndirectJump | SbEnd::Halt => {}
    }
    legit
}

/// Exit arms not reachable from instruction 0 by fall-through and local
/// branches.
fn unreachable_exit_arms(insts: &[IInst], summary: &FragmentSummary) -> Vec<u32> {
    let n = insts.len();
    let mut reachable = vec![false; n];
    let mut work = vec![0usize];
    while let Some(k) = work.pop() {
        if k >= n || reachable[k] {
            continue;
        }
        reachable[k] = true;
        let inst = &insts[k];
        if !inst.is_terminal() {
            work.push(k + 1);
        }
        if let Some(ITarget::Local(t)) = inst.branch_itarget() {
            work.push(t as usize);
        }
    }
    summary
        .exits
        .iter()
        .filter(|arm| !reachable[arm.index as usize])
        .map(|arm| arm.index)
        .collect()
}

/// Whole-cache flow audit: re-summarizes every installed fragment, checks
/// the install-time rules that survive patching (F03), the resolved-link
/// V/I agreement rules (F04, F05), runs the worklist liveness solver, and
/// computes the seam opportunity report.
///
/// `policy` enables the policy-dependent half of F05 (pushes only under
/// dual-RAS chaining); pass `None` when the cache mixes policies or the
/// caller does not know it.
pub fn check_cache(
    cache: &TranslationCache,
    policy: Option<ChainPolicy>,
) -> (Vec<Violation>, FlowReport) {
    let mut out = Vec::new();
    let summaries: HashMap<FragmentId, FragmentSummary> = cache
        .fragments()
        .map(|f| (f.id, summarize_fragment(f)))
        .collect();

    for (&id, summary) in &summaries {
        check_acc_seams(summary, &mut out);
        let frag = cache.fragment(id);
        for arm in &summary.exits {
            let target = arm.itarget.and_then(|a| cache.lookup_iaddr(a));
            match arm.kind {
                ExitKind::Branch | ExitKind::CondBranch => {
                    // F04 (installed): a resolved branch must land on the
                    // fragment translated from the recorded exit V-target.
                    if let (Some(vt), Some(tid)) = (arm.vtarget, target) {
                        let tv = cache.fragment(tid).vstart;
                        if tv != vt {
                            out.push(Violation::new(
                                "F04",
                                frag.vstart,
                                Some(arm.index as usize),
                                format!("link to the fragment translated from {vt:#x}"),
                                format!("branch lands on the fragment for {tv:#x}"),
                            ));
                        }
                    }
                }
                ExitKind::RasPush => {
                    if let Some(p) = policy {
                        if !p.uses_dual_ras() {
                            out.push(Violation::new(
                                "F05",
                                frag.vstart,
                                Some(arm.index as usize),
                                format!("no dual-RAS pushes under {}", p.label()),
                                "fragment pushes a dual-RAS pair",
                            ));
                        }
                    }
                    if let (Some(vret), Some(tid)) = (arm.vtarget, target) {
                        let tv = cache.fragment(tid).vstart;
                        if tv != vret {
                            out.push(Violation::new(
                                "F05",
                                frag.vstart,
                                Some(arm.index as usize),
                                format!("I-side return address of the fragment for {vret:#x}"),
                                format!("push resolves to the fragment for {tv:#x}"),
                            ));
                        }
                    }
                }
                ExitKind::Boundary => {}
            }
        }
    }

    let graph = ChainGraph::from_cache(cache, &summaries);
    let live_in = solve_liveness(&summaries, &graph);
    let report = seam_report(cache, &summaries, &graph, &live_in);
    (out, report)
}

/// Computes the per-seam opportunity counts from the liveness solution.
fn seam_report(
    cache: &TranslationCache,
    summaries: &HashMap<FragmentId, FragmentSummary>,
    graph: &ChainGraph,
    live_in: &HashMap<FragmentId, RegSet>,
) -> FlowReport {
    let mut report = FlowReport {
        fragments: summaries.len() as u64,
        resolved_edges: graph.resolved_edges as u64,
        boundary_exits: graph.boundary_exits as u64,
        ..FlowReport::default()
    };
    for (&id, summary) in summaries {
        report.copy_ins += summary.copy_ins.len() as u64;
        report.copy_outs += summary.copy_outs.len() as u64;
        report.dead_copy_outs += dead_copy_outs(cache, id, summary, live_in);
        // Redundant seam pairs: this fragment's copy-outs feeding a
        // successor's live-in copy-ins across a resolved branch edge.
        let mut copy_out_regs = RegSet::EMPTY;
        for &(_, r) in &summary.copy_outs {
            copy_out_regs.insert(r);
        }
        if copy_out_regs.is_empty() {
            continue;
        }
        for arm in &summary.exits {
            if !matches!(arm.kind, ExitKind::Branch | ExitKind::CondBranch) {
                continue;
            }
            let Some(tid) = arm.itarget.and_then(|a| cache.lookup_iaddr(a)) else {
                continue;
            };
            if let Some(succ) = summaries.get(&tid) {
                report.redundant_seam_pairs +=
                    copy_out_regs.intersect(succ.seam_copy_in_regs()).len() as u64;
            }
        }
    }
    report
}

/// Counts copy-outs in one fragment whose destination is dead at the copy
/// — a precise backward scan from the fragment's exits, merging each side
/// exit's target liveness at the exit instruction.
fn dead_copy_outs(
    cache: &TranslationCache,
    id: FragmentId,
    summary: &FragmentSummary,
    live_in: &HashMap<FragmentId, RegSet>,
) -> u64 {
    if summary.copy_outs.is_empty() {
        return 0;
    }
    let frag = cache.fragment(id);
    let mut exit_live: HashMap<u32, RegSet> = HashMap::new();
    for arm in &summary.exits {
        let live = match arm.itarget.and_then(|a| cache.lookup_iaddr(a)) {
            Some(tid) => live_in.get(&tid).copied().unwrap_or(RegSet::ALL),
            None => RegSet::ALL,
        };
        exit_live
            .entry(arm.index)
            .and_modify(|l| *l = l.union(live))
            .or_insert(live);
    }
    let mut dead = 0u64;
    let mut live = RegSet::EMPTY;
    for (k, inst) in frag.insts.iter().enumerate().rev() {
        if let Some(extra) = exit_live.get(&(k as u32)) {
            live = live.union(*extra);
        }
        if let IInst::CopyToGpr { dst, .. } = *inst {
            if !live.contains(dst) {
                dead += 1;
            }
        }
        if let Some(w) = inst.gpr_write() {
            live.remove(w);
        }
        for r in inst.gpr_reads().into_iter().flatten() {
            live.insert(r);
        }
    }
    dead
}

/// F06: checks a retired-instruction trace against the static summaries
/// of the installed code.
///
/// Every retired record whose PC maps into a live fragment must agree
/// with the instruction installed there on operand names, accumulator
/// usage, and seam classification; and at runtime no instruction may read
/// an accumulator that has not been written since the current fragment
/// was entered (the dynamic form of F03). Reports at most one violation
/// per (fragment, instruction) pair so a hot loop cannot flood the
/// report.
pub fn check_dynamic(cache: &TranslationCache, trace: &[DynInst]) -> Vec<Violation> {
    let mut out = Vec::new();
    // PC → (fragment, instruction index) over the live cache.
    let mut by_pc: HashMap<u64, (FragmentId, u32)> = HashMap::new();
    for f in cache.fragments() {
        for (k, &pc) in f.iaddrs.iter().enumerate() {
            by_pc.insert(pc, (f.id, k as u32));
        }
    }
    let mut reported: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
    let mut acc_written = [false; Acc::MAX_ACCUMULATORS];
    let mut current: Option<FragmentId> = None;
    for d in trace {
        let Some(&(fid, k)) = by_pc.get(&d.pc) else {
            // Outside the live cache: dispatch, interpreter, or an
            // invalidated fragment. Any seam resets the accumulator
            // tracking conservatively.
            current = None;
            continue;
        };
        let frag = cache.fragment(fid);
        if current != Some(fid) || d.pc == frag.istart {
            // Fragment entry: accumulators are dead across seams.
            acc_written = [false; Acc::MAX_ACCUMULATORS];
            current = Some(fid);
        }
        let inst = &frag.insts[k as usize];
        if let Some(msg) = record_mismatch(d, inst, frag.meta[k as usize].is_chain) {
            if reported.insert((fid.0, k)) {
                out.push(Violation::new(
                    "F06",
                    frag.vstart,
                    Some(k as usize),
                    "retired record agreeing with the installed instruction's summary",
                    msg,
                ));
            }
        }
        if d.acc_read {
            if let Some(a) = d.acc {
                if !acc_written[a as usize] && reported.insert((fid.0, k | 0x8000_0000)) {
                    out.push(Violation::new(
                        "F06",
                        frag.vstart,
                        Some(k as usize),
                        format!("A{a} written since fragment entry before this read"),
                        "runtime accumulator read crossed a fragment seam",
                    ));
                }
            }
        }
        if d.acc_write {
            if let Some(a) = d.acc {
                acc_written[a as usize] = true;
            }
        }
    }
    out
}

/// Compares one retired record against the static facts of the installed
/// instruction. Returns a description of the first disagreement.
fn record_mismatch(d: &DynInst, inst: &IInst, is_chain: bool) -> Option<String> {
    let static_reads: Vec<u8> = inst
        .gpr_reads()
        .into_iter()
        .flatten()
        .map(|r| r.number())
        .collect();
    let dyn_reads: Vec<u8> = d.srcs.iter().flatten().copied().collect();
    if static_reads != dyn_reads {
        return Some(format!(
            "retired sources {dyn_reads:?} vs installed sources {static_reads:?}"
        ));
    }
    let static_dst = inst.gpr_write().map(|r| r.number());
    if d.dst != static_dst {
        return Some(format!(
            "retired destination {:?} vs installed destination {static_dst:?}",
            d.dst
        ));
    }
    let uses_acc = inst.reads_acc() || inst.writes_acc();
    let static_acc = if uses_acc {
        inst.acc().map(|a| a.number())
    } else {
        None
    };
    if d.acc != static_acc {
        return Some(format!(
            "retired accumulator {:?} vs installed accumulator {static_acc:?}",
            d.acc
        ));
    }
    if d.acc_read != inst.reads_acc() || d.acc_write != inst.writes_acc() {
        return Some(format!(
            "retired acc r/w {}/{} vs installed {}/{}",
            d.acc_read,
            d.acc_write,
            inst.reads_acc(),
            inst.writes_acc()
        ));
    }
    if d.is_chain != is_chain {
        return Some(format!(
            "retired seam classification {} vs installed {is_chain}",
            d.is_chain
        ));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use ildp_core::IMeta;
    use ildp_isa::{ASrc, IsaForm, MemWidth};
    use std::collections::HashMap as Map;

    fn r(n: u8) -> Reg {
        Reg::new(n)
    }

    fn a(n: u8) -> Acc {
        Acc::new(n)
    }

    fn meta_for(insts: &[IInst], vaddr: u64) -> Vec<IMeta> {
        insts.iter().map(|_| IMeta::chain(vaddr)).collect()
    }

    #[test]
    fn summary_defs_uses_and_copies() {
        let insts = vec![
            IInst::SetVpcBase { vaddr: 0x1000 },
            IInst::CopyFromGpr {
                acc: a(0),
                src: r(2),
            },
            IInst::Op {
                op: alpha_isa::OperateOp::Addq,
                acc: a(0),
                lhs: ASrc::Acc,
                rhs: ASrc::Imm(1),
                dst: None,
            },
            IInst::CopyToGpr {
                acc: a(0),
                dst: r(3),
            },
            IInst::CallTranslator { vtarget: 0x2000 },
        ];
        let s = summarize(0x1000, &insts, None);
        assert!(s.uses.contains(r(2)));
        assert!(s.defs.contains(r(3)));
        assert_eq!(s.copy_ins, vec![(1, r(2))]);
        assert_eq!(s.copy_outs, vec![(3, r(3))]);
        assert!(s.acc_read_before_write.is_empty());
        assert_eq!(s.exits.len(), 1);
        assert_eq!(s.exits[0].vtarget, Some(0x2000));
    }

    #[test]
    fn acc_read_before_write_is_witnessed() {
        let insts = vec![IInst::CopyToGpr {
            acc: a(1),
            dst: r(4),
        }];
        let s = summarize(0x1000, &insts, None);
        assert_eq!(s.acc_read_before_write, vec![(0, a(1))]);
        let mut out = Vec::new();
        check_acc_seams(&s, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "F03");
    }

    #[test]
    fn liveness_propagates_across_resolved_seams() {
        // A: defines r3, branches to B. B: uses r3, halts (boundary).
        let mut cache = TranslationCache::new();
        let a_insts = vec![
            IInst::SetVpcBase { vaddr: 0x1000 },
            IInst::Op {
                op: alpha_isa::OperateOp::Addq,
                acc: a(0),
                lhs: ASrc::Imm(1),
                rhs: ASrc::Imm(1),
                dst: None,
            },
            IInst::CopyToGpr {
                acc: a(0),
                dst: r(3),
            },
            IInst::CallTranslator { vtarget: 0x2000 },
        ];
        let b_insts = vec![
            IInst::SetVpcBase { vaddr: 0x2000 },
            IInst::CopyFromGpr {
                acc: a(0),
                src: r(3),
            },
            IInst::Halt,
        ];
        let am = meta_for(&a_insts, 0x1000);
        let bm = meta_for(&b_insts, 0x2000);
        let aid = cache.install(0x1000, IsaForm::Basic, a_insts, am, 1, Map::new());
        let bid = cache.install(0x2000, IsaForm::Basic, b_insts, bm, 1, Map::new());
        let summaries: HashMap<FragmentId, FragmentSummary> = cache
            .fragments()
            .map(|f| (f.id, summarize_fragment(f)))
            .collect();
        let graph = ChainGraph::from_cache(&cache, &summaries);
        assert_eq!(graph.succs[&aid], vec![bid]);
        let live = solve_liveness(&summaries, &graph);
        // B halts: boundary, so everything is live into B and r3 is
        // genuinely consumed.
        assert!(live[&bid].contains(r(3)));
        // F03 is clean on both; the A->B copy-out is NOT dead.
        let (violations, report) = check_cache(&cache, None);
        assert!(violations.is_empty(), "{violations:?}");
        assert_eq!(report.fragments, 2);
        assert_eq!(report.resolved_edges, 1);
        assert_eq!(report.dead_copy_outs, 0);
        assert_eq!(report.redundant_seam_pairs, 1);
    }

    #[test]
    fn dead_copy_out_is_counted_not_flagged() {
        // A copies to r5; its only successor B immediately overwrites r5
        // without reading it and halts... but B halting is a boundary, so
        // the copy stays live. Use a B that loops to itself forever
        // instead: B redefines r5, reads nothing, branches to B.
        let mut cache = TranslationCache::new();
        let a_insts = vec![
            IInst::SetVpcBase { vaddr: 0x1000 },
            IInst::Op {
                op: alpha_isa::OperateOp::Addq,
                acc: a(0),
                lhs: ASrc::Imm(1),
                rhs: ASrc::Imm(1),
                dst: None,
            },
            IInst::CopyToGpr {
                acc: a(0),
                dst: r(5),
            },
            IInst::CallTranslator { vtarget: 0x2000 },
        ];
        let b_insts = vec![
            IInst::SetVpcBase { vaddr: 0x2000 },
            IInst::Op {
                op: alpha_isa::OperateOp::Addq,
                acc: a(0),
                lhs: ASrc::Imm(1),
                rhs: ASrc::Imm(1),
                dst: Some(r(5)),
            },
            IInst::CallTranslator { vtarget: 0x2000 },
        ];
        let am = meta_for(&a_insts, 0x1000);
        let bm = meta_for(&b_insts, 0x2000);
        cache.install(0x1000, IsaForm::Modified, a_insts, am, 1, Map::new());
        cache.install(0x2000, IsaForm::Modified, b_insts, bm, 1, Map::new());
        let (violations, report) = check_cache(&cache, None);
        assert!(violations.is_empty(), "{violations:?}");
        // B's self-loop is fully resolved: r5 is provably dead at A's
        // copy-out.
        assert_eq!(report.dead_copy_outs, 1);
    }

    #[test]
    fn f04_catches_link_to_wrong_but_valid_entry() {
        let mut cache = TranslationCache::new();
        let a_insts = vec![
            IInst::SetVpcBase { vaddr: 0x1000 },
            IInst::CallTranslator { vtarget: 0x2000 },
        ];
        let mk_leaf = |v: u64| vec![IInst::SetVpcBase { vaddr: v }, IInst::Halt];
        let am = meta_for(&a_insts, 0x1000);
        let aid = cache.install(0x1000, IsaForm::Modified, a_insts, am, 1, Map::new());
        let b = mk_leaf(0x2000);
        let bm = meta_for(&b, 0x2000);
        cache.install(0x2000, IsaForm::Modified, b, bm, 1, Map::new());
        let c = mk_leaf(0x3000);
        let cm = meta_for(&c, 0x3000);
        let cid = cache.install(0x3000, IsaForm::Modified, c, cm, 1, Map::new());
        let (violations, _) = check_cache(&cache, None);
        assert!(violations.is_empty(), "{violations:?}");
        // Redirect A's patched branch to C's entry — a *valid* fragment
        // entry, so the C-rules' lockstep audit cannot object once the
        // link table is refreshed to match. Only F04 sees the V-side
        // disagreement with the recorded exit target.
        let c_start = cache.fragment(cid).istart;
        let fa = cache.fragment_mut(aid);
        fa.insts[1] = IInst::Branch {
            target: ITarget::Addr(c_start),
        };
        fa.links[1] = Some(cid);
        let (violations, _) = check_cache(&cache, None);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert_eq!(violations[0].rule, "F04");
    }

    #[test]
    fn f05_catches_push_to_wrong_fragment_and_policy_misuse() {
        let mut cache = TranslationCache::new();
        let a_insts = vec![
            IInst::PushDualRas {
                vret: 0x2000,
                iret: ITarget::Addr(DISPATCH_IADDR),
            },
            IInst::Halt,
        ];
        let am = meta_for(&a_insts, 0x1000);
        let aid = cache.install(0x1000, IsaForm::Modified, a_insts, am, 1, Map::new());
        let b = vec![IInst::SetVpcBase { vaddr: 0x2000 }, IInst::Halt];
        let bm = meta_for(&b, 0x2000);
        cache.install(0x2000, IsaForm::Modified, b, bm, 1, Map::new());
        let c = vec![IInst::SetVpcBase { vaddr: 0x3000 }, IInst::Halt];
        let cm = meta_for(&c, 0x3000);
        let cid = cache.install(0x3000, IsaForm::Modified, c, cm, 1, Map::new());
        let (violations, _) = check_cache(&cache, Some(ChainPolicy::SwPredDualRas));
        assert!(violations.is_empty(), "{violations:?}");
        // Poison the resolved push to another legitimate entry.
        let c_start = cache.fragment(cid).istart;
        if let IInst::PushDualRas { iret, .. } = &mut cache.fragment_mut(aid).insts[0] {
            *iret = ITarget::Addr(c_start);
        }
        let (violations, _) = check_cache(&cache, Some(ChainPolicy::SwPredDualRas));
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert_eq!(violations[0].rule, "F05");
        // And the policy rule: pushes are illegal without the dual RAS.
        let (violations, _) = check_cache(&cache, Some(ChainPolicy::SwPred));
        assert!(violations
            .iter()
            .any(|v| v.rule == "F05" && v.expected.contains("no dual-RAS")));
    }

    #[test]
    fn f06_dynamic_mismatch_and_seam_read_detected() {
        let mut cache = TranslationCache::new();
        let insts = vec![
            IInst::SetVpcBase { vaddr: 0x1000 },
            IInst::Load {
                width: MemWidth::U64,
                acc: a(0),
                addr: ASrc::Gpr(r(2)),
                disp: 0,
                dst: None,
            },
            IInst::CopyToGpr {
                acc: a(0),
                dst: r(3),
            },
            IInst::Halt,
        ];
        let m = meta_for(&insts, 0x1000);
        let fid = cache.install(0x1000, IsaForm::Basic, insts, m, 1, Map::new());
        let trace: Vec<DynInst> = cache.fragment(fid).templates.clone();
        assert!(check_dynamic(&cache, &trace).is_empty());
        // (a) Tamper the installed load's source register: the recorded
        // trace no longer matches the cache contents.
        if let IInst::Load { addr, .. } = &mut cache.fragment_mut(fid).insts[1] {
            *addr = ASrc::Gpr(r(7));
        }
        let vs = check_dynamic(&cache, &trace);
        assert!(vs.iter().any(|v| v.rule == "F06"), "{vs:?}");
        // (b) A trace whose copy-out retires without the accumulator
        // having been written since entry (skipping the load).
        if let IInst::Load { addr, .. } = &mut cache.fragment_mut(fid).insts[1] {
            *addr = ASrc::Gpr(r(2));
        }
        let seam_read = vec![trace[0], trace[2]];
        let vs = check_dynamic(&cache, &seam_read);
        assert!(
            vs.iter()
                .any(|v| v.rule == "F06" && v.actual.contains("seam")),
            "{vs:?}"
        );
    }

    #[test]
    fn f04_static_flags_offblock_target_and_unreachable_arm() {
        use ildp_core::{SbInst, Translator};
        let sb = Superblock {
            start: 0x1000,
            insts: vec![SbInst {
                vaddr: 0x1000,
                inst: alpha_isa::Inst::Operate {
                    op: alpha_isa::OperateOp::Addq,
                    ra: r(1),
                    rb: alpha_isa::Operand::Lit(1),
                    rc: r(1),
                },
                flow: CollectedFlow::Sequential,
            }],
            end: SbEnd::Cycle { next: 0x1004 },
        };
        let tr = Translator::default();
        let mut code = tr.translate(&sb);
        let mut out = Vec::new();
        check_translation(&sb, &code, &mut out);
        assert!(out.is_empty(), "{out:?}");
        // Retarget the continuation exit far outside the superblock.
        for inst in &mut code.insts {
            if let IInst::CallTranslator { vtarget } = inst {
                *vtarget += 0x9990;
            }
        }
        let mut out = Vec::new();
        check_translation(&sb, &code, &mut out);
        assert!(out.iter().any(|v| v.rule == "F04"), "{out:?}");
        // Append an exit arm after the terminal exit: unreachable.
        code.insts.push(IInst::CallTranslator { vtarget: 0x1004 });
        code.meta.push(IMeta::chain(0x1000));
        let mut out = Vec::new();
        check_translation(&sb, &code, &mut out);
        assert!(
            out.iter()
                .any(|v| v.rule == "F04" && v.actual.contains("unreachable")),
            "{out:?}"
        );
    }
}
