//! Pass 4 — symbolic equivalence (rules `E01`–`E07`).
//!
//! A symbolic evaluator runs the source Alpha superblock and the emitted
//! I-ISA fragment side by side over symbolic initial registers and
//! memory, then proves the two produce identical machines:
//!
//! * `E01` — at every exit, each architected register holds the same
//!   symbolic expression on both sides;
//! * `E02` — exit conditions (branch condition source, indirect target)
//!   are the same expressions;
//! * `E03` — the fragments expose the same exits, in the same order,
//!   with the same static targets;
//! * `E04` — identical memory effect logs (loads and stores: width,
//!   address, stored value, interleaving);
//! * `E05` — identical output-port effects;
//! * `E06` — at every potentially-trapping instruction, the recoverable
//!   precise state equals the Alpha state at that point;
//! * `E07` — the pre-install fragment contains an already-resolved
//!   branch (nothing to prove against; install-time patching is pass 3's
//!   domain).
//!
//! Both walks share normalizing smart constructors (constant folding,
//! `x + 0` / `x | 0` identities), so a correct translation yields
//! structurally identical trees even where the emitter simplified.

use std::rc::Rc;

use crate::Violation;
use alpha_isa::{Inst, MemOp, Operand, OperateOp, PalFunc, Reg};
use ildp_core::{CollectedFlow, SbEnd, Superblock, TranslatedCode, Translator};
use ildp_isa::{ASrc, CondKind, IInst, MemWidth};

/// A symbolic 64-bit value.
#[derive(PartialEq, Debug)]
enum Expr {
    /// Initial (live-in) value of an architected register.
    Init(u8),
    /// An accumulator read before any write (only reachable through a
    /// miscompiled fragment; never equal to anything the Alpha side has).
    Undef(u8),
    /// A known constant.
    Const(u64),
    /// An ALU operation.
    Op(OperateOp, Rc<Expr>, Rc<Expr>),
    /// A raw (undecomposed) conditional move, as the engine's defensive
    /// `Op` path computes it.
    CmovRaw(OperateOp, Rc<Expr>, Rc<Expr>, Rc<Expr>),
    /// The decomposed conditional-move select.
    Select {
        lbs: bool,
        test: Rc<Expr>,
        value: Rc<Expr>,
        old: Rc<Expr>,
    },
    /// The `serial`-th memory load of the block.
    Load {
        serial: u32,
        width: MemWidth,
        addr: Rc<Expr>,
    },
    /// Jump-target alignment mask (`x & !3`).
    AndNot3(Rc<Expr>),
}

fn cnst(v: u64) -> Rc<Expr> {
    Rc::new(Expr::Const(v))
}

/// Normalizing ALU constructor shared by both walks.
fn op_expr(op: OperateOp, a: Rc<Expr>, b: Rc<Expr>) -> Rc<Expr> {
    if !op.is_cmov() {
        if let (Expr::Const(x), Expr::Const(y)) = (&*a, &*b) {
            return cnst(op.eval(*x, *y));
        }
        match op {
            OperateOp::Addq if matches!(*b, Expr::Const(0)) => return a,
            OperateOp::Bis if matches!(*b, Expr::Const(0)) => return a,
            OperateOp::Bis if matches!(*a, Expr::Const(0)) => return b,
            _ => {}
        }
    }
    Rc::new(Expr::Op(op, a, b))
}

/// `base + imm` with the immediate already widened to 64 bits.
fn add_imm(base: Rc<Expr>, imm: u64) -> Rc<Expr> {
    op_expr(OperateOp::Addq, base, cnst(imm))
}

fn and_not3(e: Rc<Expr>) -> Rc<Expr> {
    if let Expr::Const(v) = &*e {
        return cnst(v & !3);
    }
    Rc::new(Expr::AndNot3(e))
}

fn width_of(op: MemOp) -> MemWidth {
    match op {
        MemOp::Ldbu | MemOp::Stb => MemWidth::U8,
        MemOp::Ldwu | MemOp::Stw => MemWidth::U16,
        MemOp::Ldl | MemOp::Stl => MemWidth::I32,
        MemOp::Ldq | MemOp::Stq => MemWidth::U64,
        MemOp::Lda | MemOp::Ldah => unreachable!("address arithmetic is not memory"),
    }
}

/// Independent restatement of the cmov decomposition the front end uses:
/// `(test_op, test_imm, low-bit-set polarity)`.
fn cmov_split(op: OperateOp) -> (OperateOp, i16, bool) {
    use OperateOp::*;
    match op {
        Cmoveq => (Cmpeq, 0, true),
        Cmovne => (Cmpeq, 0, false),
        Cmovlt => (Cmplt, 0, true),
        Cmovge => (Cmplt, 0, false),
        Cmovle => (Cmple, 0, true),
        Cmovgt => (Cmple, 0, false),
        Cmovlbs => (And, 1, true),
        Cmovlbc => (And, 1, false),
        other => panic!("not a cmov: {other:?}"),
    }
}

/// How a walk left the block at one exit point.
#[derive(Debug)]
enum ExitKind {
    /// Conditional side exit to a static target.
    Cond {
        cond: CondKind,
        src: Rc<Expr>,
        target: u64,
    },
    /// Unconditional exit to a static target.
    Always { target: u64 },
    /// Register-indirect exit.
    Indirect { target: Rc<Expr> },
    /// Architected halt.
    Halt,
}

#[derive(Debug)]
struct Exit {
    /// Emitted-instruction index on the I side (0 for the Alpha side).
    at: usize,
    kind: ExitKind,
    regs: Vec<Rc<Expr>>,
    stores_before: usize,
    loads_before: usize,
    outs_before: usize,
}

struct StoreRec {
    at: usize,
    width: MemWidth,
    addr: Rc<Expr>,
    value: Rc<Expr>,
}

struct LoadRec {
    at: usize,
    width: MemWidth,
    addr: Rc<Expr>,
    stores_before: usize,
}

struct PeiRec {
    at: usize,
    regs: Vec<Rc<Expr>>,
}

/// Everything observable a walk produced.
#[derive(Default)]
struct Effects {
    exits: Vec<Exit>,
    stores: Vec<StoreRec>,
    loads: Vec<LoadRec>,
    outs: Vec<(usize, Rc<Expr>)>,
    peis: Vec<PeiRec>,
}

impl Effects {
    fn exit(&mut self, at: usize, kind: ExitKind, regs: &[Rc<Expr>]) {
        self.exits.push(Exit {
            at,
            kind,
            regs: regs.to_vec(),
            stores_before: self.stores.len(),
            loads_before: self.loads.len(),
            outs_before: self.outs.len(),
        });
    }
}

fn init_regs() -> Vec<Rc<Expr>> {
    (0..32u8)
        .map(|r| {
            if r == 31 {
                cnst(0)
            } else {
                Rc::new(Expr::Init(r))
            }
        })
        .collect()
}

fn read(regs: &[Rc<Expr>], r: Reg) -> Rc<Expr> {
    regs[r.number() as usize].clone()
}

fn write(regs: &mut [Rc<Expr>], r: Reg, e: Rc<Expr>) {
    if r.number() != 31 {
        regs[r.number() as usize] = e;
    }
}

/// Symbolically executes the source superblock along its collected path.
fn walk_alpha(sb: &Superblock) -> Effects {
    let mut fx = Effects::default();
    let mut regs = init_regs();

    for (idx, si) in sb.insts.iter().enumerate() {
        let va = si.vaddr;
        let last = idx + 1 == sb.insts.len();
        match si.inst {
            Inst::Mem { op, ra, rb, disp } => match op {
                MemOp::Lda => {
                    let e = add_imm(read(&regs, rb), disp as i64 as u64);
                    write(&mut regs, ra, e);
                }
                MemOp::Ldah => {
                    let e = add_imm(read(&regs, rb), ((disp as i64) << 16) as u64);
                    write(&mut regs, ra, e);
                }
                _ => {
                    fx.peis.push(PeiRec {
                        at: 0,
                        regs: regs.clone(),
                    });
                    let addr = add_imm(read(&regs, rb), disp as i64 as u64);
                    let width = width_of(op);
                    if op.is_load() {
                        let serial = fx.loads.len() as u32;
                        fx.loads.push(LoadRec {
                            at: 0,
                            width,
                            addr: addr.clone(),
                            stores_before: fx.stores.len(),
                        });
                        write(
                            &mut regs,
                            ra,
                            Rc::new(Expr::Load {
                                serial,
                                width,
                                addr,
                            }),
                        );
                    } else {
                        fx.stores.push(StoreRec {
                            at: 0,
                            width,
                            addr,
                            value: read(&regs, ra),
                        });
                    }
                }
            },
            Inst::Operate { op, ra, rb, rc } => {
                let b = match rb {
                    Operand::Reg(r) => read(&regs, r),
                    Operand::Lit(v) => cnst(v as u64),
                };
                if op.is_cmov() {
                    // Mirror the front end's test/select decomposition so
                    // expressions match the fragment structurally.
                    let (test_op, test_imm, lbs) = cmov_split(op);
                    let test = op_expr(test_op, read(&regs, ra), cnst(test_imm as i64 as u64));
                    let sel = Rc::new(Expr::Select {
                        lbs,
                        test,
                        value: b,
                        old: read(&regs, rc),
                    });
                    write(&mut regs, rc, sel);
                } else {
                    let e = op_expr(op, read(&regs, ra), b);
                    write(&mut regs, rc, e);
                }
            }
            Inst::Branch { op, ra, .. } => match si.flow {
                CollectedFlow::Direct { links, .. } => {
                    if links {
                        write(&mut regs, ra, cnst(va + 4));
                    }
                }
                CollectedFlow::CondNotTaken { taken_target } => {
                    fx.exit(
                        0,
                        ExitKind::Cond {
                            cond: CondKind::from_branch_op(op),
                            src: read(&regs, ra),
                            target: taken_target,
                        },
                        &regs,
                    );
                }
                CollectedFlow::CondTaken {
                    taken_target,
                    fallthrough,
                } => {
                    let ending = last && matches!(sb.end, SbEnd::BackwardTakenBranch { .. });
                    if ending {
                        fx.exit(
                            0,
                            ExitKind::Cond {
                                cond: CondKind::from_branch_op(op),
                                src: read(&regs, ra),
                                target: taken_target,
                            },
                            &regs,
                        );
                        fx.exit(
                            0,
                            ExitKind::Always {
                                target: fallthrough,
                            },
                            &regs,
                        );
                    } else {
                        fx.exit(
                            0,
                            ExitKind::Cond {
                                cond: CondKind::from_branch_op(op.inverse()),
                                src: read(&regs, ra),
                                target: fallthrough,
                            },
                            &regs,
                        );
                    }
                }
                CollectedFlow::Sequential | CollectedFlow::Indirect { .. } => {}
            },
            Inst::Jump { ra, rb, .. } => {
                // Target is read before the link write (`jsr ra,(ra)`).
                let target = and_not3(read(&regs, rb));
                write(&mut regs, ra, cnst(va + 4));
                fx.exit(0, ExitKind::Indirect { target }, &regs);
            }
            Inst::CallPal { func } => match func {
                PalFunc::Halt => fx.exit(0, ExitKind::Halt, &regs),
                PalFunc::GenTrap => fx.peis.push(PeiRec {
                    at: 0,
                    regs: regs.clone(),
                }),
                PalFunc::PutChar => {
                    let e = read(&regs, Reg::A0);
                    fx.outs.push((0, e));
                }
                PalFunc::Other(_) => {}
            },
            // Traps before retiring; never collected into a superblock.
            Inst::Unimplemented { .. } => {}
        }
    }
    match sb.end {
        SbEnd::Cycle { next } | SbEnd::MaxSize { next } => {
            fx.exit(0, ExitKind::Always { target: next }, &regs);
        }
        _ => {}
    }
    fx
}

/// Symbolically executes the emitted fragment, mirroring the engine's
/// concrete semantics expression-for-expression. Returns `None` when the
/// code is not a pre-install fragment (`E07`).
fn walk_fragment(code: &TranslatedCode, out: &mut Vec<Violation>) -> Option<Effects> {
    let mut fx = Effects::default();
    let mut regs = init_regs();
    let mut accs: Vec<Rc<Expr>> = (0..16u8).map(|a| Rc::new(Expr::Undef(a))).collect();

    let insts = &code.insts;
    let mut k = 0usize;
    while k < insts.len() {
        // Resolve an operand against the instruction's named accumulator.
        macro_rules! v {
            ($src:expr, $acc:expr) => {
                match $src {
                    ASrc::Acc => accs[$acc.index()].clone(),
                    ASrc::Gpr(r) => read(&regs, r),
                    ASrc::Imm(v) => cnst(v as i64 as u64),
                }
            };
        }
        let mut pei_check = |k: usize, regs: &[Rc<Expr>], accs: &[Rc<Expr>]| {
            let mut recovered = regs.to_vec();
            if let Some(entries) = code.recovery.get(&(k as u32)) {
                for e in entries {
                    recovered[e.reg.number() as usize] = accs[e.acc.index()].clone();
                }
            }
            fx.peis.push(PeiRec {
                at: k,
                regs: recovered,
            });
        };

        match insts[k] {
            IInst::SetVpcBase { .. } | IInst::PushDualRas { .. } => {}
            IInst::LoadEmbeddedTarget { acc, vaddr } => {
                // The software-prediction group collapses to one
                // architectural indirect exit.
                let group_rhs = match insts.get(k + 1) {
                    Some(&IInst::Op {
                        op: OperateOp::Cmpeq,
                        acc: a,
                        lhs: ASrc::Acc,
                        rhs,
                        dst: None,
                    }) if a == acc
                        && matches!(
                            insts.get(k + 2),
                            Some(&IInst::CallTranslatorIfCond {
                                cond: CondKind::Ne,
                                acc: a2,
                                src: ASrc::Acc,
                                vtarget,
                            }) if a2 == acc && vtarget == vaddr
                        )
                        && matches!(
                            insts.get(k + 3),
                            Some(&IInst::Dispatch { src, .. }) if src == rhs
                        ) =>
                    {
                        Some(rhs)
                    }
                    _ => None,
                };
                if let Some(rhs) = group_rhs {
                    let target = and_not3(v!(rhs, acc));
                    fx.exit(k, ExitKind::Indirect { target }, &regs);
                    k += 4;
                    continue;
                }
                accs[acc.index()] = cnst(vaddr);
            }
            IInst::Op {
                op,
                acc,
                lhs,
                rhs,
                dst,
            } => {
                let a = v!(lhs, acc);
                let b = v!(rhs, acc);
                let result = if op.is_cmov() {
                    Rc::new(Expr::CmovRaw(op, a, b, accs[acc.index()].clone()))
                } else {
                    op_expr(op, a, b)
                };
                accs[acc.index()] = result.clone();
                if let Some(d) = dst {
                    write(&mut regs, d, result);
                }
            }
            IInst::AddHigh { acc, src, imm, dst } => {
                let result = add_imm(v!(src, acc), ((imm as i64) << 16) as u64);
                accs[acc.index()] = result.clone();
                if let Some(d) = dst {
                    write(&mut regs, d, result);
                }
            }
            IInst::Load {
                width,
                acc,
                addr,
                disp,
                dst,
            } => {
                pei_check(k, &regs, &accs);
                let a = add_imm(v!(addr, acc), disp as i64 as u64);
                let serial = fx.loads.len() as u32;
                fx.loads.push(LoadRec {
                    at: k,
                    width,
                    addr: a.clone(),
                    stores_before: fx.stores.len(),
                });
                let result = Rc::new(Expr::Load {
                    serial,
                    width,
                    addr: a,
                });
                accs[acc.index()] = result.clone();
                if let Some(d) = dst {
                    write(&mut regs, d, result);
                }
            }
            IInst::Store {
                width,
                acc,
                addr,
                disp,
                value,
            } => {
                pei_check(k, &regs, &accs);
                let a = add_imm(v!(addr, acc), disp as i64 as u64);
                let value = v!(value, acc);
                fx.stores.push(StoreRec {
                    at: k,
                    width,
                    addr: a,
                    value,
                });
            }
            IInst::CmovSelect {
                lbs,
                acc,
                value,
                old,
                dst,
            } => {
                let sel = Rc::new(Expr::Select {
                    lbs,
                    test: accs[acc.index()].clone(),
                    value: v!(value, acc),
                    old: read(&regs, old),
                });
                accs[acc.index()] = sel.clone();
                if let Some(d) = dst {
                    write(&mut regs, d, sel);
                }
            }
            IInst::CopyToGpr { acc, dst } => {
                let e = accs[acc.index()].clone();
                write(&mut regs, dst, e);
            }
            IInst::CopyFromGpr { acc, src } => accs[acc.index()] = read(&regs, src),
            IInst::SaveVReturn { dst, vaddr } => write(&mut regs, dst, cnst(vaddr)),
            IInst::IndirectJump { acc, addr, .. } => {
                let target = and_not3(v!(addr, acc));
                fx.exit(k, ExitKind::Indirect { target }, &regs);
                // The dispatch fallback re-states the same exit.
                if matches!(insts.get(k + 1), Some(&IInst::Dispatch { src, .. }) if src == addr) {
                    k += 2;
                    continue;
                }
            }
            IInst::Dispatch { acc, src } => {
                let target = and_not3(v!(src, acc));
                fx.exit(k, ExitKind::Indirect { target }, &regs);
            }
            IInst::CallTranslatorIfCond {
                cond,
                acc,
                src,
                vtarget,
            } => {
                let src = v!(src, acc);
                fx.exit(
                    k,
                    ExitKind::Cond {
                        cond,
                        src,
                        target: vtarget,
                    },
                    &regs,
                );
            }
            IInst::CallTranslator { vtarget } => {
                fx.exit(k, ExitKind::Always { target: vtarget }, &regs);
            }
            IInst::CondBranch { .. } | IInst::Branch { .. } => {
                out.push(Violation::new(
                    "E07",
                    code.vstart,
                    Some(k),
                    "only unresolved (patchable) exits in pre-install code".to_string(),
                    format!("{:?}", insts[k]),
                ));
                return None;
            }
            IInst::GenTrap => pei_check(k, &regs, &accs),
            IInst::PutChar { acc, src } => {
                let e = v!(src, acc);
                fx.outs.push((k, e));
            }
            IInst::Halt => fx.exit(k, ExitKind::Halt, &regs),
        }
        k += 1;
    }
    Some(fx)
}

fn describe(kind: &ExitKind) -> String {
    match kind {
        ExitKind::Cond { cond, target, .. } => format!("cond {cond:?} -> {target:#x}"),
        ExitKind::Always { target } => format!("always -> {target:#x}"),
        ExitKind::Indirect { .. } => "indirect".to_string(),
        ExitKind::Halt => "halt".to_string(),
    }
}

pub(crate) fn check(
    sb: &Superblock,
    code: &TranslatedCode,
    _tr: &Translator,
    out: &mut Vec<Violation>,
) {
    let vstart = code.vstart;
    let alpha = walk_alpha(sb);
    let Some(frag) = walk_fragment(code, out) else {
        return;
    };

    // E03 — exit skeleton.
    if alpha.exits.len() != frag.exits.len() {
        out.push(Violation::new(
            "E03",
            vstart,
            None,
            format!("{} exits (source block)", alpha.exits.len()),
            format!("{} exits", frag.exits.len()),
        ));
    }
    for (a, f) in alpha.exits.iter().zip(&frag.exits) {
        let kinds_match = match (&a.kind, &f.kind) {
            (
                ExitKind::Cond {
                    cond: ca,
                    target: ta,
                    ..
                },
                ExitKind::Cond {
                    cond: cf,
                    target: tf,
                    ..
                },
            ) => ca == cf && ta == tf,
            (ExitKind::Always { target: ta }, ExitKind::Always { target: tf }) => ta == tf,
            (ExitKind::Indirect { .. }, ExitKind::Indirect { .. }) => true,
            (ExitKind::Halt, ExitKind::Halt) => true,
            _ => false,
        };
        if !kinds_match {
            out.push(Violation::new(
                "E03",
                vstart,
                Some(f.at),
                describe(&a.kind),
                describe(&f.kind),
            ));
            continue;
        }
        // E02 — exit-condition expressions.
        match (&a.kind, &f.kind) {
            (ExitKind::Cond { src: sa, .. }, ExitKind::Cond { src: sf, .. }) if sa != sf => {
                out.push(Violation::new(
                    "E02",
                    vstart,
                    Some(f.at),
                    format!("condition source {sa:?}"),
                    format!("{sf:?}"),
                ));
            }
            (ExitKind::Indirect { target: ta }, ExitKind::Indirect { target: tf }) if ta != tf => {
                out.push(Violation::new(
                    "E02",
                    vstart,
                    Some(f.at),
                    format!("indirect target {ta:?}"),
                    format!("{tf:?}"),
                ));
            }
            _ => {}
        }
        // E01 — architected registers at the exit.
        for r in 0..32 {
            if a.regs[r] != f.regs[r] {
                out.push(Violation::new(
                    "E01",
                    vstart,
                    Some(f.at),
                    format!("r{r} = {:?} at exit {}", a.regs[r], describe(&a.kind)),
                    format!("{:?}", f.regs[r]),
                ));
            }
        }
        // E04/E05 — effect interleaving at the exit.
        if (a.stores_before, a.loads_before) != (f.stores_before, f.loads_before) {
            out.push(Violation::new(
                "E04",
                vstart,
                Some(f.at),
                format!(
                    "{} stores / {} loads before exit {}",
                    a.stores_before,
                    a.loads_before,
                    describe(&a.kind)
                ),
                format!("{} stores / {} loads", f.stores_before, f.loads_before),
            ));
        }
        if a.outs_before != f.outs_before {
            out.push(Violation::new(
                "E05",
                vstart,
                Some(f.at),
                format!(
                    "{} outputs before exit {}",
                    a.outs_before,
                    describe(&a.kind)
                ),
                format!("{} outputs", f.outs_before),
            ));
        }
    }

    // E04 — memory effect logs.
    if alpha.stores.len() != frag.stores.len() {
        out.push(Violation::new(
            "E04",
            vstart,
            None,
            format!("{} stores", alpha.stores.len()),
            format!("{} stores", frag.stores.len()),
        ));
    }
    for (a, f) in alpha.stores.iter().zip(&frag.stores) {
        if a.width != f.width || a.addr != f.addr || a.value != f.value {
            out.push(Violation::new(
                "E04",
                vstart,
                Some(f.at),
                format!("store {:?} {:?} <- {:?}", a.width, a.addr, a.value),
                format!("store {:?} {:?} <- {:?}", f.width, f.addr, f.value),
            ));
        }
    }
    if alpha.loads.len() != frag.loads.len() {
        out.push(Violation::new(
            "E04",
            vstart,
            None,
            format!("{} loads", alpha.loads.len()),
            format!("{} loads", frag.loads.len()),
        ));
    }
    for (a, f) in alpha.loads.iter().zip(&frag.loads) {
        if a.width != f.width || a.addr != f.addr || a.stores_before != f.stores_before {
            out.push(Violation::new(
                "E04",
                vstart,
                Some(f.at),
                format!(
                    "load {:?} {:?} after {} stores",
                    a.width, a.addr, a.stores_before
                ),
                format!(
                    "load {:?} {:?} after {} stores",
                    f.width, f.addr, f.stores_before
                ),
            ));
        }
    }

    // E05 — output log.
    if alpha.outs.len() != frag.outs.len() {
        out.push(Violation::new(
            "E05",
            vstart,
            None,
            format!("{} outputs", alpha.outs.len()),
            format!("{} outputs", frag.outs.len()),
        ));
    }
    for ((_, a), (at, f)) in alpha.outs.iter().zip(&frag.outs) {
        if a != f {
            out.push(Violation::new(
                "E05",
                vstart,
                Some(*at),
                format!("output {a:?}"),
                format!("{f:?}"),
            ));
        }
    }

    // E06 — precise state at every potentially-trapping instruction.
    if alpha.peis.len() != frag.peis.len() {
        out.push(Violation::new(
            "E06",
            vstart,
            None,
            format!("{} trap points", alpha.peis.len()),
            format!("{} trap points", frag.peis.len()),
        ));
    }
    for (a, f) in alpha.peis.iter().zip(&frag.peis) {
        for r in 0..32 {
            if a.regs[r] != f.regs[r] {
                out.push(Violation::new(
                    "E06",
                    vstart,
                    Some(f.at),
                    format!("recoverable r{r} = {:?} at trap point", a.regs[r]),
                    format!("{:?}", f.regs[r]),
                ));
            }
        }
    }
}
