//! Pass 3 — chaining integrity (rules `C01`–`C07`).
//!
//! Structural checks on a fragment's entry/exit skeleton, before and
//! after installation:
//!
//! * `C01` — the fragment opens with exactly one `set-vpc-base` naming
//!   its own entry V-address (which must match the source superblock);
//! * `C02` — every embedded-target load starts the paper's exact
//!   software-prediction sequence (compare, predicted-target branch,
//!   dispatch fallback), only under a predicting chain policy;
//! * `C03` — dual-RAS pushes pair with the preceding return-address save
//!   and name the dispatcher as their I-side return; under a dual-RAS
//!   policy every save is so paired;
//! * `C04` — a predicted return is only emitted under the dual-RAS
//!   policy and is backed by a dispatch fallback on the next slot;
//! * `C05` — exactly one block-terminal instruction, in the last slot;
//! * `C06` — a resolved control transfer targets the dispatcher or a
//!   valid fragment entry (post-install; pre-install code must carry
//!   only patchable `call-translator` exits);
//! * `C07` — the install-time direct-link table agrees with the patched
//!   instruction words in lockstep.

use crate::Violation;
use alpha_isa::{JumpKind, OperateOp};
use ildp_core::{
    Fragment, Superblock, TranslatedCode, TranslationCache, Translator, DISPATCH_IADDR,
};
use ildp_isa::{ASrc, CondKind, IInst, ITarget};

/// Checks the emitted (pre-install, unpatched) fragment structure.
pub(crate) fn check_static(
    sb: &Superblock,
    code: &TranslatedCode,
    tr: &Translator,
    out: &mut Vec<Violation>,
) {
    let vstart = code.vstart;
    let insts = &code.insts;

    // C01 — entry shape.
    if vstart != sb.start {
        out.push(Violation::new(
            "C01",
            vstart,
            None,
            format!("fragment entry at superblock start {:#x}", sb.start),
            format!("{vstart:#x}"),
        ));
    }
    match insts.first() {
        Some(IInst::SetVpcBase { vaddr }) if *vaddr == vstart => {}
        other => out.push(Violation::new(
            "C01",
            vstart,
            Some(0),
            format!("SetVpcBase {{ vaddr: {vstart:#x} }}"),
            format!("{other:?}"),
        )),
    }
    for (k, inst) in insts.iter().enumerate().skip(1) {
        if matches!(inst, IInst::SetVpcBase { .. }) {
            out.push(Violation::new(
                "C01",
                vstart,
                Some(k),
                "a single leading SetVpcBase".to_string(),
                "second SetVpcBase".to_string(),
            ));
        }
    }

    // C05 — terminal shape.
    match insts.last() {
        Some(last) if last.is_terminal() => {}
        other => out.push(Violation::new(
            "C05",
            vstart,
            Some(insts.len().saturating_sub(1)),
            "a block-terminal instruction in the last slot".to_string(),
            format!("{other:?}"),
        )),
    }
    for (k, inst) in insts.iter().enumerate() {
        if k + 1 != insts.len() && inst.is_terminal() {
            out.push(Violation::new(
                "C05",
                vstart,
                Some(k),
                "terminal instructions only in the last slot".to_string(),
                format!("{inst:?}"),
            ));
        }
        // C06 — resolved branches exist only after install-time patching.
        if matches!(inst, IInst::Branch { .. } | IInst::CondBranch { .. }) {
            out.push(Violation::new(
                "C06",
                vstart,
                Some(k),
                "only patchable call-translator exits before installation".to_string(),
                format!("{inst:?}"),
            ));
        }
    }

    for (k, inst) in insts.iter().enumerate() {
        match *inst {
            // C02 — the software-prediction group.
            IInst::LoadEmbeddedTarget { acc, vaddr } => {
                if !tr.chain.uses_sw_pred() {
                    out.push(Violation::new(
                        "C02",
                        vstart,
                        Some(k),
                        format!("no target prediction under {:?}", tr.chain),
                        "LoadEmbeddedTarget".to_string(),
                    ));
                }
                let cmp_rhs = match insts.get(k + 1) {
                    Some(&IInst::Op {
                        op: OperateOp::Cmpeq,
                        acc: a,
                        lhs: ASrc::Acc,
                        rhs,
                        dst: None,
                    }) if a == acc => Some(rhs),
                    _ => None,
                };
                let branch_ok = matches!(
                    insts.get(k + 2),
                    Some(&IInst::CallTranslatorIfCond {
                        cond: CondKind::Ne,
                        acc: a,
                        src: ASrc::Acc,
                        vtarget,
                    }) if a == acc && vtarget == vaddr
                );
                let dispatch_ok = matches!(
                    insts.get(k + 3),
                    Some(&IInst::Dispatch { src, .. }) if Some(src) == cmp_rhs
                );
                let meta_ok = (k..k + 4).all(|j| code.meta.get(j).is_some_and(|m| m.is_chain));
                if cmp_rhs.is_none() || !branch_ok || !dispatch_ok || !meta_ok {
                    out.push(Violation::new(
                        "C02",
                        vstart,
                        Some(k),
                        "sw-pred group: load-embedded; cmpeq acc,actual; \
                         branch-if-match; dispatch actual (all chain code)"
                            .to_string(),
                        format!("{:?}", &insts[k..insts.len().min(k + 4)]),
                    ));
                }
            }
            // C03 — dual-RAS push pairing.
            IInst::PushDualRas { vret, iret } => {
                if !tr.chain.uses_dual_ras() {
                    out.push(Violation::new(
                        "C03",
                        vstart,
                        Some(k),
                        format!("no RAS maintenance under {:?}", tr.chain),
                        "PushDualRas".to_string(),
                    ));
                }
                let paired = matches!(
                    k.checked_sub(1).and_then(|p| insts.get(p)),
                    Some(&IInst::SaveVReturn { vaddr, .. }) if vaddr == vret
                );
                if !paired || iret != ITarget::Addr(DISPATCH_IADDR) {
                    out.push(Violation::new(
                        "C03",
                        vstart,
                        Some(k),
                        format!(
                            "push paired with SaveVReturn of {vret:#x}, \
                             I-side return at dispatch {DISPATCH_IADDR:#x}"
                        ),
                        format!(
                            "prev {:?}, iret {iret:?}",
                            k.checked_sub(1).map(|p| insts[p])
                        ),
                    ));
                }
            }
            IInst::SaveVReturn { vaddr, .. } if tr.chain.uses_dual_ras() => {
                let pushed = matches!(
                    insts.get(k + 1),
                    Some(&IInst::PushDualRas { vret, .. }) if vret == vaddr
                );
                if !pushed {
                    out.push(Violation::new(
                        "C03",
                        vstart,
                        Some(k),
                        format!("PushDualRas {{ vret: {vaddr:#x} }} after the save"),
                        format!("{:?}", insts.get(k + 1)),
                    ));
                }
            }
            // C04 — predicted returns.
            IInst::IndirectJump { kind, addr, .. } => {
                let backed = matches!(
                    insts.get(k + 1),
                    Some(&IInst::Dispatch { src, .. }) if src == addr
                );
                if kind != JumpKind::Ret || !tr.chain.uses_dual_ras() || !backed {
                    out.push(Violation::new(
                        "C04",
                        vstart,
                        Some(k),
                        "dual-RAS-predicted return backed by a dispatch of the same source"
                            .to_string(),
                        format!("{kind:?} under {:?}, next {:?}", tr.chain, insts.get(k + 1)),
                    ));
                }
            }
            _ => {}
        }
    }
}

/// Checks an installed (possibly patched and linked) fragment against the
/// cache's fragment map.
pub(crate) fn check_installed(cache: &TranslationCache, frag: &Fragment) -> Vec<Violation> {
    let mut out = Vec::new();
    let vstart = frag.vstart;

    // A patchable or RAS-side target resolved to an I-address: audit both
    // the address and the lockstep direct link.
    let check_target = |k: usize, target: ITarget, out: &mut Vec<Violation>| {
        let link = frag.links.get(k).copied().flatten();
        match target {
            ITarget::Addr(a) if a == DISPATCH_IADDR => {
                if link.is_some() {
                    out.push(Violation::new(
                        "C07",
                        vstart,
                        Some(k),
                        "no direct link for a dispatcher target".to_string(),
                        format!("link to {link:?}"),
                    ));
                }
            }
            ITarget::Addr(a) => match cache.lookup_iaddr(a) {
                None => out.push(Violation::new(
                    "C06",
                    vstart,
                    Some(k),
                    "resolved target at the dispatcher or a fragment entry".to_string(),
                    format!("{a:#x} is neither"),
                )),
                Some(fid) => {
                    if link != Some(fid) {
                        out.push(Violation::new(
                            "C07",
                            vstart,
                            Some(k),
                            format!("direct link {fid:?} matching target {a:#x}"),
                            format!("link {link:?}"),
                        ));
                    }
                }
            },
            ITarget::Local(_) => out.push(Violation::new(
                "C06",
                vstart,
                Some(k),
                "installed transfers use absolute I-addresses".to_string(),
                format!("{target:?}"),
            )),
        }
    };

    for (k, inst) in frag.insts.iter().enumerate() {
        match *inst {
            IInst::Branch { target } | IInst::CondBranch { target, .. } => {
                check_target(k, target, &mut out);
            }
            IInst::PushDualRas { iret, .. } => check_target(k, iret, &mut out),
            _ => {
                if frag.links.get(k).copied().flatten().is_some() {
                    out.push(Violation::new(
                        "C07",
                        vstart,
                        Some(k),
                        "direct links only on resolved control transfers".to_string(),
                        format!("link on {inst:?}"),
                    ));
                }
            }
        }
    }

    // The patched fragment must still open and terminate correctly.
    if !matches!(frag.insts.first(), Some(IInst::SetVpcBase { vaddr }) if *vaddr == vstart) {
        out.push(Violation::new(
            "C01",
            vstart,
            Some(0),
            format!("SetVpcBase {{ vaddr: {vstart:#x} }}"),
            format!("{:?}", frag.insts.first()),
        ));
    }
    if !frag.insts.last().is_some_and(|i| i.is_terminal()) {
        out.push(Violation::new(
            "C05",
            vstart,
            Some(frag.insts.len().saturating_sub(1)),
            "a block-terminal instruction in the last slot".to_string(),
            format!("{:?}", frag.insts.last()),
        ));
    }
    out
}
