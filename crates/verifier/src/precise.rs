//! Pass 2 — precise-state audit (rules `P01`–`P05`).
//!
//! Walks the emitted stream tracking where each architected register's
//! latest value lives (the register file, or still accumulator-resident)
//! and what each accumulator currently holds. At every potentially
//! trapping instruction the tracked state is cross-checked against the
//! recorded recovery table:
//!
//! * `P01` — modified form: a result-producing instruction must name its
//!   destination GPR (state is always architecturally precise);
//! * `P02` — basic form: no instruction may carry a direct GPR
//!   destination (results reach the file only through explicit copies);
//! * `P03` — basic form: a global-category value must be copied to its
//!   GPR immediately after production;
//! * `P04` — basic form: a register whose value is accumulator-resident
//!   at a trap point must have a matching recovery entry, and the
//!   accumulator must still hold that value;
//! * `P05` — a recovery table appears where none belongs (non-trapping
//!   instruction, modified form) or carries entries for registers whose
//!   value is not accumulator-resident.

use crate::Violation;
use ildp_core::{TranslatedCode, Translator, ValueId};
use ildp_isa::{Acc, IInst, IsaForm};

/// Where the latest value of an architected register lives.
#[derive(Clone, Copy, PartialEq, Debug)]
enum RegLoc {
    /// In the register file (copied, directly written, or live-in).
    File,
    /// Produced into an accumulator, copy still pending.
    InAcc(Acc, ValueId),
}

pub(crate) fn check(code: &TranslatedCode, tr: &Translator, out: &mut Vec<Violation>) {
    let t = &code.trace;
    let vstart = code.vstart;
    let basic = tr.form == IsaForm::Basic;
    let mut reg_loc = [RegLoc::File; 32];
    let mut acc_value: [Option<ValueId>; Acc::MAX_ACCUMULATORS] = [None; Acc::MAX_ACCUMULATORS];

    for (k, inst) in code.insts.iter().enumerate() {
        let table = code.recovery.get(&(k as u32));

        // --- audit the recovery table at this index -------------------
        if inst.is_pei() {
            if basic {
                // Every accumulator-resident register value must be
                // recoverable here.
                for rn in 0..32u8 {
                    let RegLoc::InAcc(a, v) = reg_loc[rn as usize] else {
                        continue;
                    };
                    if acc_value[a.index()] != Some(v) {
                        out.push(Violation::new(
                            "P04",
                            vstart,
                            Some(k),
                            format!("r{rn} value {v:?} still live in {a} at trap point"),
                            format!("{a} clobbered before copy to r{rn}"),
                        ));
                        continue;
                    }
                    let covered = table
                        .map(|es| es.iter().any(|e| e.reg.number() == rn && e.acc == a))
                        .unwrap_or(false);
                    if !covered {
                        out.push(Violation::new(
                            "P04",
                            vstart,
                            Some(k),
                            format!("recovery entry r{rn} <- {a}"),
                            "no entry in recovery table".to_string(),
                        ));
                    }
                }
                // And the table must claim nothing beyond that.
                for e in table.map(|es| es.as_slice()).unwrap_or(&[]) {
                    let justified = matches!(
                        reg_loc[e.reg.number() as usize],
                        RegLoc::InAcc(a, v) if a == e.acc && acc_value[a.index()] == Some(v)
                    );
                    if !justified {
                        out.push(Violation::new(
                            "P05",
                            vstart,
                            Some(k),
                            format!("{} resident in the register file", e.reg),
                            format!("spurious recovery entry {} <- {}", e.reg, e.acc),
                        ));
                    }
                }
            } else if table.is_some_and(|es| !es.is_empty()) {
                out.push(Violation::new(
                    "P05",
                    vstart,
                    Some(k),
                    "no recovery table in modified form".to_string(),
                    format!("{} entries", table.unwrap().len()),
                ));
            }
        } else if table.is_some() {
            out.push(Violation::new(
                "P05",
                vstart,
                Some(k),
                "recovery tables only at potentially-trapping instructions".to_string(),
                format!("table at {inst:?}"),
            ));
        }

        // --- per-form destination rules -------------------------------
        let node = (!code.meta[k].is_chain)
            .then(|| t.inst_node[k])
            .flatten()
            .map(|i| i as usize);
        let produced = node.and_then(|i| t.df.produced[i]);
        let dst_field = match *inst {
            IInst::Op { dst, .. }
            | IInst::Load { dst, .. }
            | IInst::AddHigh { dst, .. }
            | IInst::CmovSelect { dst, .. } => dst,
            _ => None,
        };
        if basic {
            if let Some(d) = dst_field {
                out.push(Violation::new(
                    "P02",
                    vstart,
                    Some(k),
                    "no direct GPR destination in basic form".to_string(),
                    format!("dst {d} on {inst:?}"),
                ));
            }
        } else if let (Some(i), Some(v)) = (node, produced) {
            if inst.writes_acc() && !matches!(inst, IInst::CopyFromGpr { .. }) {
                let want = t.df.value(v).reg;
                if want.is_some() && inst.gpr_write() != want {
                    out.push(Violation::new(
                        "P01",
                        vstart,
                        Some(k),
                        format!("dst {want:?} for value {v:?} of node {i}"),
                        format!("gpr write {:?}", inst.gpr_write()),
                    ));
                }
            }
        }

        // --- apply this instruction's effects -------------------------
        if let Some(a) = inst.acc() {
            if inst.writes_acc() {
                acc_value[a.index()] = None;
            }
        }
        match *inst {
            IInst::CopyToGpr { dst, .. } => reg_loc[dst.number() as usize] = RegLoc::File,
            IInst::SaveVReturn { dst, .. } => reg_loc[dst.number() as usize] = RegLoc::File,
            _ => {
                if let (Some(i), Some(v)) = (node, produced) {
                    if inst.writes_acc() && !matches!(inst, IInst::CopyFromGpr { .. }) {
                        let a = inst.acc().expect("acc-writing instruction names one");
                        acc_value[a.index()] = Some(v);
                        if let Some(reg) = t.df.value(v).reg {
                            if reg.number() != 31 {
                                reg_loc[reg.number() as usize] = if basic {
                                    RegLoc::InAcc(a, v)
                                } else {
                                    RegLoc::File
                                };
                            }
                        }
                        // P03: global-category values must be copied out
                        // immediately (the emitter's post-copy).
                        if basic {
                            if let Some(reg) = t.df.value(v).reg {
                                let cat = t.plan.final_category[v.0 as usize];
                                if cat.is_global() {
                                    let next_copies = matches!(
                                        code.insts.get(k + 1),
                                        Some(IInst::CopyToGpr { acc, dst })
                                            if *dst == reg && Some(*acc) == inst.acc()
                                    );
                                    if !next_copies {
                                        out.push(Violation::new(
                                            "P03",
                                            vstart,
                                            Some(k),
                                            format!(
                                                "copy-to-GPR of {cat:?} value {v:?} to {reg} \
                                                 immediately after node {i}"
                                            ),
                                            format!("{:?}", code.insts.get(k + 1)),
                                        ));
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}
