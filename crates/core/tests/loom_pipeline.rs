//! Loom model-checking of the two cross-thread surfaces: the
//! [`TranslatePool`] request/reply pipeline and the [`FragmentStore`]
//! publish/lookup protocol.
//!
//! Gated behind the `loom` feature so the ordinary test run never pays
//! for it:
//!
//! ```text
//! cargo test -p ildp-core --features loom --test loom_pipeline --release
//! ```
//!
//! The vendored `loom` is a std-backed stress stand-in (the build is
//! offline): `loom::model` re-runs each body many times under real OS
//! scheduling rather than exhaustively enumerating interleavings.
//! Substituting crates-io loom in the workspace manifest upgrades these
//! tests to exhaustive exploration unchanged; a ThreadSanitizer run
//! (documented in the verify skill) is the independent dynamic check.

#![cfg(feature = "loom")]

use alpha_isa::{Inst, Operand, OperateOp, Reg};
use ildp_core::{
    translate_job, ArtifactKey, CollectedFlow, FragmentArtifact, FragmentStore, SbEnd, SbInst,
    Superblock, TranslatePool, TranslateRequest, Translator,
};
use loom::sync::Arc;
use loom::thread;
use std::sync::mpsc::channel;

/// A one-instruction region (two live-in GPR sources, so both forms emit
/// real copy traffic) at `base`.
fn tiny_superblock(base: u64) -> Superblock {
    Superblock {
        start: base,
        insts: vec![SbInst {
            vaddr: base,
            inst: Inst::Operate {
                op: OperateOp::Addq,
                ra: Reg::new(1),
                rb: Operand::Reg(Reg::new(2)),
                rc: Reg::new(3),
            },
            flow: CollectedFlow::Sequential,
        }],
        end: SbEnd::Cycle { next: base + 4 },
    }
}

/// Two client threads share one pool, each submitting a batch of
/// requests on its own reply channel. Every client must get exactly its
/// own regions back, and every reply must be byte-identical to the
/// synchronous reference translation — replies may be reordered across
/// workers but never crossed between clients or corrupted.
#[test]
fn pool_keeps_request_reply_pairing_under_contention() {
    loom::model(|| {
        let pool = TranslatePool::new(2);
        let clients: Vec<_> = (0..2u64)
            .map(|c| {
                let pool = std::sync::Arc::clone(&pool);
                thread::spawn(move || {
                    let translator = Translator::default();
                    let (reply, inbox) = channel();
                    let bases: Vec<u64> =
                        (0..4).map(|k| 0x1_0000 + c * 0x1000 + k * 0x100).collect();
                    for &base in &bases {
                        pool.submit(TranslateRequest {
                            vstart: base,
                            sb: tiny_superblock(base),
                            translator,
                            validator: None,
                            reply: reply.clone(),
                        });
                    }
                    let mut seen: Vec<u64> = Vec::new();
                    for _ in &bases {
                        let resp = inbox
                            .recv_timeout(std::time::Duration::from_secs(30))
                            .expect("worker reply");
                        let (reference, verdict, _, _) =
                            translate_job(&tiny_superblock(resp.vstart), &translator, None);
                        assert!(verdict.is_ok());
                        assert_eq!(resp.code.insts, reference.insts);
                        assert_eq!(resp.code.meta, reference.meta);
                        seen.push(resp.vstart);
                    }
                    seen.sort_unstable();
                    assert_eq!(seen, bases, "client {c} got someone else's regions");
                })
            })
            .collect();
        for h in clients {
            h.join().unwrap();
        }
    });
}

/// Concurrent publishers racing the same key: exactly one `put` wins,
/// racing lookups observe either a miss or the complete artifact (never
/// a torn one), and one coherence `remove` empties the entry again.
#[test]
fn store_publish_lookup_remove_is_atomic() {
    let (code, _, _, _) = translate_job(&tiny_superblock(0x2_0000), &Translator::default(), None);
    let artifact = FragmentArtifact::from_translation(&code, Translator::default().form);
    loom::model(move || {
        let store = Arc::new(FragmentStore::new());
        let key = ArtifactKey {
            code_digest: 0x1234,
            config_digest: 0x5678,
        };
        let publishers: Vec<_> = (0..2)
            .map(|_| {
                let store = Arc::clone(&store);
                let artifact = artifact.clone();
                thread::spawn(move || store.put(key, &artifact))
            })
            .collect();
        let reader = {
            let store = Arc::clone(&store);
            let artifact = artifact.clone();
            thread::spawn(move || {
                // Concurrent with the puts: a miss or the whole artifact.
                if let Some(got) = store.get(&key) {
                    assert_eq!(got, artifact);
                }
            })
        };
        let wins: Vec<bool> = publishers.into_iter().map(|h| h.join().unwrap()).collect();
        reader.join().unwrap();
        assert_eq!(
            wins.iter().filter(|&&w| w).count(),
            1,
            "exactly one racing publisher must win"
        );
        assert_eq!(store.len(), 1);
        assert_eq!(store.stats().stores, 1);
        assert_eq!(store.get(&key).as_ref(), Some(&artifact));

        let removers: Vec<_> = (0..2)
            .map(|_| {
                let store = Arc::clone(&store);
                thread::spawn(move || store.remove(&key))
            })
            .collect();
        let removed: Vec<bool> = removers.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(
            removed.iter().filter(|&&r| r).count(),
            1,
            "exactly one racing invalidation must observe the entry"
        );
        assert!(store.is_empty());
        assert_eq!(store.get(&key), None);
        assert_eq!(store.stats().invalidations, 1);
    });
}
