//! The background translation pipeline (worker pool).
//!
//! The paper's two-stage model performs MRET superblock formation,
//! strand/accumulator assignment and (in this reproduction) the verifier
//! passes synchronously on the execution hot path: every hot-region
//! promotion stalls the guest for the full translate + verify latency.
//! This module moves the *pure* part of that work off-thread.
//!
//! The split is dictated by determinism: superblock **collection**
//! executes the guest path once and mutates architected state, so it
//! stays synchronous on the VM thread. Translation and verification are
//! pure functions of the collected [`Superblock`] and the
//! [`Translator`] configuration, so a [`TranslateRequest`] carries the
//! owned superblock to a detached worker, and the finished (translated
//! and verified) fragment travels back over a per-VM channel to be
//! installed at the next fragment-boundary safe point. Per-region
//! in-flight dedup and the install decision itself (stale-epoch,
//! demotion and SMC checks) remain on the VM thread — the worker never
//! touches VM state.
//!
//! The pool is plain `std::thread` + `std::sync::mpsc` (the build is
//! offline; no runtime deps). Workers are detached and shared
//! process-wide via [`TranslatePool::global`], so N VMs on M OS threads
//! share one translation service, as a warehouse-scale deployment would.

use crate::translate::{TranslatedCode, Translator};
use crate::vm::{InstallReview, InstallValidator};
use crate::Superblock;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, OnceLock};

/// One unit of background translation work: an owned superblock plus the
/// translator tier to run it through. The collected block is a pure
/// value — translating it does not touch guest state.
pub struct TranslateRequest {
    /// Entry V-address of the region (echoed back in the response).
    pub vstart: u64,
    /// The collected superblock (owned; collection already ran on the VM
    /// thread).
    pub sb: Superblock,
    /// The translator tier for this region's current ladder level.
    pub translator: Translator,
    /// Optional install validator to run worker-side. Validator reports
    /// collected via thread-local side channels stay on the worker
    /// thread; only the verdict travels back.
    pub validator: Option<InstallValidator>,
    /// Where the finished translation goes (the submitting VM's reply
    /// channel).
    pub reply: Sender<TranslateResponse>,
}

/// A finished background translation, ready for the safe-point install
/// decision on the VM thread.
pub struct TranslateResponse {
    /// Entry V-address of the region.
    pub vstart: u64,
    /// The emitted translation.
    pub code: TranslatedCode,
    /// The validator's verdict (`Ok` when no validator was configured).
    pub verdict: Result<(), String>,
    /// Wall nanoseconds the worker spent translating + verifying.
    pub wall_nanos: u64,
    /// Of `wall_nanos`, the nanoseconds spent in the validator.
    pub verify_nanos: u64,
}

/// A shared pool of detached translation worker threads.
///
/// Jobs are distributed over one multi-consumer queue (a mutexed
/// [`Receiver`]); each job carries its own reply sender, so any number
/// of VMs can share the pool concurrently.
pub struct TranslatePool {
    tx: Mutex<Sender<TranslateRequest>>,
    workers: usize,
}

impl std::fmt::Debug for TranslatePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TranslatePool")
            .field("workers", &self.workers)
            .finish()
    }
}

impl TranslatePool {
    /// Spawns a pool with `workers` detached worker threads (clamped to
    /// at least one).
    pub fn new(workers: usize) -> Arc<TranslatePool> {
        let workers = workers.max(1);
        let (tx, rx) = channel::<TranslateRequest>();
        let rx = Arc::new(Mutex::new(rx));
        for i in 0..workers {
            let rx = Arc::clone(&rx);
            std::thread::Builder::new()
                .name(format!("ildp-translate-{i}"))
                .spawn(move || worker_loop(&rx))
                .expect("spawning translation worker");
        }
        Arc::new(TranslatePool {
            tx: Mutex::new(tx),
            workers,
        })
    }

    /// The process-wide shared pool, sized by the `ILDP_TRANSLATE_WORKERS`
    /// environment variable when set, otherwise one less than the
    /// available parallelism, clamped to 1..=4.
    pub fn global() -> &'static Arc<TranslatePool> {
        static GLOBAL: OnceLock<Arc<TranslatePool>> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let workers = std::env::var("ILDP_TRANSLATE_WORKERS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or_else(|| {
                    let cores = std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(2);
                    cores.saturating_sub(1).clamp(1, 4)
                });
            TranslatePool::new(workers)
        })
    }

    /// Number of worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Enqueues a translation request. The pool outlives every VM (its
    /// workers are detached), so submission cannot fail; a reply whose
    /// VM has gone away is silently dropped by the worker.
    pub fn submit(&self, req: TranslateRequest) {
        self.tx
            .lock()
            .expect("translate queue poisoned")
            .send(req)
            .expect("translate workers terminated");
    }
}

/// Translates and verifies one request; pure with respect to VM state.
/// Shared so the VM's synchronous fallback path produces byte-identical
/// results to the worker threads. Returns the translation, the verdict,
/// and `(wall_nanos, verify_nanos)` — total time and the validator's
/// share of it.
pub fn translate_job(
    sb: &Superblock,
    translator: &Translator,
    validator: Option<InstallValidator>,
) -> (TranslatedCode, Result<(), String>, u64, u64) {
    let t0 = std::time::Instant::now();
    let code = translator.translate(sb);
    let v0 = std::time::Instant::now();
    let verdict = match validator {
        Some(v) => {
            let review = InstallReview {
                sb,
                code: &code,
                translator,
            };
            v(&review)
        }
        None => Ok(()),
    };
    let verify_nanos = v0.elapsed().as_nanos() as u64;
    (code, verdict, t0.elapsed().as_nanos() as u64, verify_nanos)
}

fn worker_loop(rx: &Arc<Mutex<Receiver<TranslateRequest>>>) {
    loop {
        // Holding the lock across `recv` is intentional: the queue is the
        // only thing the lock guards, and a blocked holder sleeps inside
        // `recv` without starving anyone (senders do not take this lock).
        let req = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return,
        };
        let Ok(req) = req else {
            // All senders gone: the process is shutting down.
            return;
        };
        let (code, verdict, wall_nanos, verify_nanos) =
            translate_job(&req.sb, &req.translator, req.validator);
        // The VM may have been dropped while we worked; that is fine.
        let _ = req.reply.send(TranslateResponse {
            vstart: req.vstart,
            code,
            verdict,
            wall_nanos,
            verify_nanos,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{collect_superblock, ProfileConfig};
    use alpha_isa::{Assembler, Reg};

    #[test]
    fn pool_translates_off_thread() {
        let mut asm = Assembler::new(0x1_0000);
        asm.lda_imm(Reg::A0, 50);
        let top_pc = asm.current_pc();
        let top = asm.here("top");
        asm.subq_imm(Reg::A0, 1, Reg::A0);
        asm.bne(Reg::A0, top);
        asm.halt();
        let program = asm.finish().unwrap();
        let (mut cpu, mut mem) = program.load();
        cpu.pc = top_pc;
        cpu.write(Reg::A0, 50);
        let sb = collect_superblock(&mut cpu, &mut mem, &program, &ProfileConfig::default())
            .expect("collection");
        assert!(!sb.is_empty());

        let pool = TranslatePool::new(2);
        assert_eq!(pool.workers(), 2);
        let translator = Translator::default();
        let (reply, inbox) = channel();
        // Reference result from the shared synchronous job.
        let (reference, verdict, _, _) = translate_job(&sb, &translator, None);
        assert!(verdict.is_ok());
        pool.submit(TranslateRequest {
            vstart: sb.start,
            sb: sb.clone(),
            translator,
            validator: None,
            reply,
        });
        let resp = inbox
            .recv_timeout(std::time::Duration::from_secs(30))
            .expect("worker reply");
        assert_eq!(resp.vstart, sb.start);
        assert!(resp.verdict.is_ok());
        assert_eq!(resp.code.insts, reference.insts);
        assert_eq!(resp.code.meta, reference.meta);
        assert_eq!(resp.code.src_inst_count, reference.src_inst_count);
    }
}
