//! Versioned, checksummed whole-VM snapshots.
//!
//! A [`Snapshot`] captures everything a fresh [`Vm`](crate::Vm) needs to
//! continue a run bit-identically: architected CPU state, resident guest
//! memory pages, console output, the profile/hotness counters, the
//! degradation-ladder and SMC-offender maps, and the cumulative
//! [`VmStats`]. It deliberately does **not** capture the translation
//! cache or any engine-internal state: snapshots are taken only at
//! fragment boundaries, where the paper's precise-state argument (§2.2)
//! guarantees the GPR file is architecturally complete and every
//! accumulator is dead, so a restored VM starts with a cold cache and
//! retranslates on demand. The entry V-addresses of fragments live at
//! snapshot time ride along as *hints*: restore primes their profile
//! counters one bump below the threshold so the hot regions re-translate
//! promptly instead of re-heating from zero.
//!
//! The wire format is the common [`wire`] envelope (magic, version,
//! FNV-1a checksum trailer); a program digest guards against restoring
//! onto the wrong guest.

use crate::classify::CategoryCounts;
use crate::engine::EngineStats;
use crate::error::SnapshotError;
use crate::vm::VmStats;
use crate::wire::{self, Cursor};
use alpha_isa::{Memory, Program};

/// Magic number of the snapshot wire format (`"ILPS"`).
pub const SNAPSHOT_MAGIC: u32 = 0x5350_4C49;

/// Current snapshot format version. Version 2 appended the background
/// translation pipeline and warm-start statistics to the stats block;
/// version-1 artifacts are still readable (the new counters restore as
/// zero). Future versions are refused.
pub const SNAPSHOT_VERSION: u32 = 2;

/// Identity digest of a guest program: FNV-1a over the code base, entry
/// PC, initial SP and every code word. Data segments are excluded on
/// purpose — a snapshot carries the whole memory image, so a `.repro`
/// bundle can slice a program down to its code without changing its
/// identity.
pub fn program_digest(program: &Program) -> u64 {
    let mut buf = Vec::with_capacity(program.code().len() * 4 + 24);
    wire::put_u64(&mut buf, program.code_base());
    wire::put_u64(&mut buf, program.entry());
    wire::put_u64(&mut buf, program.initial_sp());
    for &w in program.code() {
        wire::put_u32(&mut buf, w);
    }
    wire::fnv1a(&buf)
}

/// Complete resumable VM state at a fragment boundary. Create one with
/// [`Vm::snapshot`](crate::Vm::snapshot), persist it with
/// [`to_bytes`](Snapshot::to_bytes), and resume with
/// [`Vm::restore`](crate::Vm::restore).
#[derive(Clone, PartialEq, Debug)]
pub struct Snapshot {
    /// Digest of the guest program this snapshot belongs to
    /// ([`program_digest`]); restore refuses a mismatch.
    pub program_digest: u64,
    /// Total V-ISA instructions retired when the snapshot was taken.
    pub v_insts: u64,
    /// Architected program counter.
    pub pc: u64,
    /// Architected GPR file (`R31` zero).
    pub regs: [u64; 32],
    /// Resident guest-memory pages as `(page_number, contents)`, sorted
    /// by page number; all-zero pages are omitted (they read identically
    /// whether resident or not).
    pub pages: Vec<(u64, Vec<u8>)>,
    /// Console output emitted so far, in emission order.
    pub output: Vec<u8>,
    /// Profile counters as `(candidate V-address, count)`, sorted.
    pub candidates: Vec<(u64, u32)>,
    /// Entry V-addresses of fragments live at snapshot time, sorted —
    /// restore hints that prime these regions for prompt retranslation.
    pub translated: Vec<u64>,
    /// Degradation-ladder levels as `(region V-address, level)`, sorted.
    pub demotion: Vec<(u64, u8)>,
    /// SMC invalidations per region as `(region V-address, count)`,
    /// sorted.
    pub smc_counts: Vec<(u64, u32)>,
    /// Cumulative run statistics at the boundary; restore continues them
    /// instead of resetting to zero, so ratios like
    /// [`interp_fallback_ratio`](VmStats::interp_fallback_ratio) stay
    /// correct across a resume.
    pub stats: VmStats,
}

impl Snapshot {
    /// Rebuilds a [`Memory`] from the captured pages.
    pub fn to_memory(&self) -> Memory {
        let mut mem = Memory::new();
        for (page_no, bytes) in &self.pages {
            mem.set_page(*page_no, bytes);
        }
        mem
    }

    /// Content digest of the captured memory image (comparable with
    /// [`Memory::content_digest`]).
    pub fn mem_digest(&self) -> u64 {
        self.to_memory().content_digest()
    }

    /// Serializes into the enveloped wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut p = Vec::new();
        wire::put_u64(&mut p, self.program_digest);
        wire::put_u64(&mut p, self.v_insts);
        wire::put_u64(&mut p, self.pc);
        for &r in &self.regs {
            wire::put_u64(&mut p, r);
        }
        wire::put_u32(&mut p, self.pages.len() as u32);
        for (page_no, bytes) in &self.pages {
            wire::put_u64(&mut p, *page_no);
            wire::put_bytes(&mut p, bytes);
        }
        wire::put_bytes(&mut p, &self.output);
        wire::put_u32(&mut p, self.candidates.len() as u32);
        for &(vaddr, count) in &self.candidates {
            wire::put_u64(&mut p, vaddr);
            wire::put_u32(&mut p, count);
        }
        wire::put_u32(&mut p, self.translated.len() as u32);
        for &vstart in &self.translated {
            wire::put_u64(&mut p, vstart);
        }
        wire::put_u32(&mut p, self.demotion.len() as u32);
        for &(vstart, level) in &self.demotion {
            wire::put_u64(&mut p, vstart);
            wire::put_u8(&mut p, level);
        }
        wire::put_u32(&mut p, self.smc_counts.len() as u32);
        for &(vstart, count) in &self.smc_counts {
            wire::put_u64(&mut p, vstart);
            wire::put_u32(&mut p, count);
        }
        put_stats(&mut p, &self.stats);
        wire::seal(SNAPSHOT_MAGIC, SNAPSHOT_VERSION, &p)
    }

    /// Deserializes an artifact written by [`to_bytes`](Snapshot::to_bytes).
    pub fn from_bytes(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
        let (version, payload) = wire::open(SNAPSHOT_MAGIC, bytes)?;
        if !(1..=SNAPSHOT_VERSION).contains(&version) {
            return Err(SnapshotError::BadVersion { version });
        }
        let mut c = Cursor::new(payload);
        let program_digest = c.take_u64()?;
        let v_insts = c.take_u64()?;
        let pc = c.take_u64()?;
        let mut regs = [0u64; 32];
        for r in &mut regs {
            *r = c.take_u64()?;
        }
        let n_pages = c.take_u32()? as usize;
        let mut pages = Vec::with_capacity(n_pages.min(1 << 16));
        for _ in 0..n_pages {
            let page_no = c.take_u64()?;
            let bytes = c.take_bytes()?.to_vec();
            pages.push((page_no, bytes));
        }
        let output = c.take_bytes()?.to_vec();
        let n = c.take_u32()? as usize;
        let mut candidates = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let vaddr = c.take_u64()?;
            let count = c.take_u32()?;
            candidates.push((vaddr, count));
        }
        let n = c.take_u32()? as usize;
        let mut translated = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            translated.push(c.take_u64()?);
        }
        let n = c.take_u32()? as usize;
        let mut demotion = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let vstart = c.take_u64()?;
            let level = c.take_u8()?;
            demotion.push((vstart, level));
        }
        let n = c.take_u32()? as usize;
        let mut smc_counts = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let vstart = c.take_u64()?;
            let count = c.take_u32()?;
            smc_counts.push((vstart, count));
        }
        let stats = take_stats(&mut c, version)?;
        Ok(Snapshot {
            program_digest,
            v_insts,
            pc,
            regs,
            pages,
            output,
            candidates,
            translated,
            demotion,
            smc_counts,
            stats,
        })
    }
}

fn put_categories(p: &mut Vec<u8>, c: &CategoryCounts) {
    for &v in &c.0 {
        wire::put_u64(p, v);
    }
}

fn take_categories(c: &mut Cursor<'_>) -> Result<CategoryCounts, SnapshotError> {
    let mut out = CategoryCounts::default();
    for v in &mut out.0 {
        *v = c.take_u64()?;
    }
    Ok(out)
}

/// Serializes a [`VmStats`] (fixed field order; versioned by the
/// enclosing envelope).
pub(crate) fn put_stats(p: &mut Vec<u8>, s: &VmStats) {
    for v in [
        s.interpreted,
        s.fragments,
        s.translated_src_insts,
        s.emitted_insts,
        s.static_copies,
        s.strands,
        s.terminations,
        s.translated_code_bytes,
        s.translation_overhead,
        s.interpretation_overhead,
        s.cache_flushes,
        s.fragments_verified,
        s.verify_nanos,
        s.verify_rejected,
        s.evictions,
        s.smc_invalidations,
        s.demotions,
        s.blacklisted,
        s.fuel_preemptions,
        s.unlinked_sites,
        // Version 2: background pipeline + warm start.
        s.warmup_interpreted,
        s.translate_stall_nanos,
        s.translate_wall_nanos,
        s.warm_hits,
        s.warm_misses,
        s.warm_stores,
        s.async_installs,
        s.async_dropped,
    ] {
        wire::put_u64(p, v);
    }
    let e = &s.engine;
    for v in [
        e.executed,
        e.chain_executed,
        e.copies_executed,
        e.v_insts,
        e.dispatches,
        e.ras_hits,
        e.ras_misses,
        e.fragment_entries,
    ] {
        wire::put_u64(p, v);
    }
    put_categories(p, &e.categories);
    put_categories(p, &s.static_categories);
    put_categories(p, &s.oracle_categories);
}

/// Deserializes a [`VmStats`] written by [`put_stats`]. `version` is the
/// enclosing envelope's format version: version-1 payloads lack the
/// background-pipeline counters, which restore as zero.
pub(crate) fn take_stats(c: &mut Cursor<'_>, version: u32) -> Result<VmStats, SnapshotError> {
    let mut s = VmStats::default();
    for v in [
        &mut s.interpreted,
        &mut s.fragments,
        &mut s.translated_src_insts,
        &mut s.emitted_insts,
        &mut s.static_copies,
        &mut s.strands,
        &mut s.terminations,
        &mut s.translated_code_bytes,
        &mut s.translation_overhead,
        &mut s.interpretation_overhead,
        &mut s.cache_flushes,
        &mut s.fragments_verified,
        &mut s.verify_nanos,
        &mut s.verify_rejected,
        &mut s.evictions,
        &mut s.smc_invalidations,
        &mut s.demotions,
        &mut s.blacklisted,
        &mut s.fuel_preemptions,
        &mut s.unlinked_sites,
    ] {
        *v = c.take_u64()?;
    }
    if version >= 2 {
        for v in [
            &mut s.warmup_interpreted,
            &mut s.translate_stall_nanos,
            &mut s.translate_wall_nanos,
            &mut s.warm_hits,
            &mut s.warm_misses,
            &mut s.warm_stores,
            &mut s.async_installs,
            &mut s.async_dropped,
        ] {
            *v = c.take_u64()?;
        }
    }
    let mut e = EngineStats::default();
    for v in [
        &mut e.executed,
        &mut e.chain_executed,
        &mut e.copies_executed,
        &mut e.v_insts,
        &mut e.dispatches,
        &mut e.ras_hits,
        &mut e.ras_misses,
        &mut e.fragment_entries,
    ] {
        *v = c.take_u64()?;
    }
    e.categories = take_categories(c)?;
    s.engine = e;
    s.static_categories = take_categories(c)?;
    s.oracle_categories = take_categories(c)?;
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let mut stats = VmStats {
            interpreted: 123,
            fragments: 4,
            evictions: 2,
            smc_invalidations: 1,
            demotions: 3,
            verify_rejected: 1,
            warmup_interpreted: 60,
            translate_stall_nanos: 1_000,
            translate_wall_nanos: 5_000,
            warm_hits: 2,
            warm_misses: 1,
            warm_stores: 3,
            async_installs: 4,
            async_dropped: 1,
            ..VmStats::default()
        };
        stats.engine.v_insts = 456;
        stats.engine.categories.0[0] = 9;
        Snapshot {
            program_digest: 0xDEAD_BEEF,
            v_insts: 579,
            pc: 0x1_0040,
            regs: std::array::from_fn(|i| i as u64 * 3),
            pages: vec![(0x10, vec![1, 2, 3]), (0x20, vec![0xff; 4096])],
            output: b"hi".to_vec(),
            candidates: vec![(0x1_0000, 9), (0x1_0040, 2)],
            translated: vec![0x1_0040],
            demotion: vec![(0x1_0080, 1)],
            smc_counts: vec![(0x1_0080, 2)],
            stats,
        }
    }

    #[test]
    fn wire_roundtrip_is_identity() {
        let snap = sample();
        let bytes = snap.to_bytes();
        let back = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn corruption_is_detected() {
        let snap = sample();
        let mut bytes = snap.to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 1;
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn future_version_is_refused() {
        let snap = sample();
        let mut bytes = snap.to_bytes();
        // Rewrite the version field and re-seal so only the version check
        // can fail.
        bytes[4] = 0x7f;
        let body_len = bytes.len() - 8;
        let checksum = wire::fnv1a(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&checksum.to_le_bytes());
        assert_eq!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotError::BadVersion { version: 0x7f })
        );
    }

    #[test]
    fn version_1_payload_still_restores() {
        // A v1 stats block is the v2 block minus the eight background
        // pipeline counters, which sit between `unlinked_sites` and the
        // engine block — i.e. at a fixed offset from the artifact's end:
        // checksum (8) + three category blocks (3 × 64) + engine block
        // (64), preceded by the 64 bytes to remove.
        let mut snap = sample();
        snap.stats.warmup_interpreted = 0;
        snap.stats.translate_stall_nanos = 0;
        snap.stats.translate_wall_nanos = 0;
        snap.stats.warm_hits = 0;
        snap.stats.warm_misses = 0;
        snap.stats.warm_stores = 0;
        snap.stats.async_installs = 0;
        snap.stats.async_dropped = 0;
        let v2 = snap.to_bytes();
        let cut_end = v2.len() - 8 - 3 * 64 - 64;
        let cut_start = cut_end - 64;
        assert!(v2[cut_start..cut_end].iter().all(|&b| b == 0));
        let mut v1: Vec<u8> = Vec::new();
        v1.extend_from_slice(&v2[..cut_start]);
        v1.extend_from_slice(&v2[cut_end..v2.len() - 8]);
        v1[4] = 1; // version field
        let checksum = wire::fnv1a(&v1);
        wire::put_u64(&mut v1, checksum);
        let back = Snapshot::from_bytes(&v1).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn memory_digest_matches_rebuilt_memory() {
        let snap = sample();
        let mem = snap.to_memory();
        assert_eq!(mem.read_u8(0x10 << 12), 1);
        assert_eq!(snap.mem_digest(), mem.content_digest());
    }

    #[test]
    fn program_digest_ignores_data_segments() {
        use alpha_isa::Assembler;
        let mut asm = Assembler::new(0x1_0000);
        asm.halt();
        let program = asm.finish().unwrap();
        let sliced = Program::new(program.code_base(), program.code().to_vec())
            .with_entry(program.entry())
            .with_initial_sp(program.initial_sp());
        assert_eq!(program_digest(&program), program_digest(&sliced));
        let other = Program::new(program.code_base() + 8, program.code().to_vec());
        assert_ne!(program_digest(&program), program_digest(&other));
    }
}
