//! Structured runtime errors.
//!
//! The engine executes fragments whose invariants are normally guaranteed
//! by the translator and audited by the verifier — but a resilient
//! runtime must not take those guarantees on faith. Conditions a hostile
//! guest or a corrupted cache can reach (a severed direct link, an
//! unresolved dual-RAS push, a dead fragment id, control running off a
//! fragment's end) surface as a [`VmError`] inside
//! [`VmExit::Fault`](crate::VmExit::Fault) instead of a panic, so the
//! embedding process survives and the fault-injection harness can assert
//! clean containment.

use std::fmt;

/// A structural invariant violated at runtime. Every variant names the
/// fragment (by raw id) where execution stopped; the architected state at
/// the fault is the last consistent fragment-boundary state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VmError {
    /// A taken control transfer carried a resolved I-address but no live
    /// direct link — the target fragment vanished without the site being
    /// un-patched.
    UnlinkedTransfer {
        /// Raw id of the fragment containing the transfer.
        fragment: u32,
        /// Instruction slot of the transfer.
        index: u32,
    },
    /// A dual-RAS push still carried a local (unresolved) I-side return
    /// target at execution time.
    UnresolvedDualRas {
        /// Raw id of the fragment containing the push.
        fragment: u32,
        /// Instruction slot of the push.
        index: u32,
    },
    /// Control transferred into a fragment id whose slot has been
    /// invalidated.
    DeadFragment {
        /// The raw id of the dead fragment.
        fragment: u32,
    },
    /// Execution ran past the last instruction of a fragment without
    /// reaching a block terminal.
    FragmentOverrun {
        /// Raw id of the overrun fragment.
        fragment: u32,
    },
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            VmError::UnlinkedTransfer { fragment, index } => write!(
                f,
                "taken transfer without a live direct link (fragment {fragment}, slot {index})"
            ),
            VmError::UnresolvedDualRas { fragment, index } => write!(
                f,
                "unresolved dual-RAS push reached execution (fragment {fragment}, slot {index})"
            ),
            VmError::DeadFragment { fragment } => {
                write!(f, "control transferred into dead fragment {fragment}")
            }
            VmError::FragmentOverrun { fragment } => {
                write!(f, "execution ran off the end of fragment {fragment}")
            }
        }
    }
}

impl std::error::Error for VmError {}

/// Why a serialized snapshot / replay artifact could not be loaded or
/// applied. Every wire format in the workspace (snapshots, replay logs,
/// `.repro` bundles) shares the same envelope — magic, version, payload,
/// FNV-1a checksum trailer — and surfaces its failures through this type.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SnapshotError {
    /// The stream does not begin with the expected magic number (wrong
    /// artifact kind, or not an artifact at all).
    BadMagic {
        /// The magic the reader expected.
        expected: u32,
        /// What the stream actually started with.
        actual: u32,
    },
    /// The format version is newer than this build understands.
    BadVersion {
        /// The version found in the stream.
        version: u32,
    },
    /// The stream ended before the structure was complete.
    Truncated,
    /// The payload does not match its checksum trailer (bit rot or a
    /// truncated write).
    ChecksumMismatch {
        /// Checksum recorded in the trailer.
        expected: u64,
        /// Checksum recomputed over the payload.
        actual: u64,
    },
    /// The snapshot belongs to a different guest program than the one it
    /// is being restored onto.
    ProgramMismatch {
        /// Digest of the program being restored onto.
        expected: u64,
        /// Digest recorded in the snapshot.
        actual: u64,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SnapshotError::BadMagic { expected, actual } => {
                write!(f, "bad magic {actual:#010x} (expected {expected:#010x})")
            }
            SnapshotError::BadVersion { version } => {
                write!(f, "unsupported format version {version}")
            }
            SnapshotError::Truncated => write!(f, "stream truncated"),
            SnapshotError::ChecksumMismatch { expected, actual } => write!(
                f,
                "checksum mismatch: trailer {expected:#018x}, payload {actual:#018x}"
            ),
            SnapshotError::ProgramMismatch { expected, actual } => write!(
                f,
                "snapshot belongs to program {actual:#018x}, not {expected:#018x}"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}
