//! Structured runtime errors.
//!
//! The engine executes fragments whose invariants are normally guaranteed
//! by the translator and audited by the verifier — but a resilient
//! runtime must not take those guarantees on faith. Conditions a hostile
//! guest or a corrupted cache can reach (a severed direct link, an
//! unresolved dual-RAS push, a dead fragment id, control running off a
//! fragment's end) surface as a [`VmError`] inside
//! [`VmExit::Fault`](crate::VmExit::Fault) instead of a panic, so the
//! embedding process survives and the fault-injection harness can assert
//! clean containment.

use std::fmt;

/// A structural invariant violated at runtime. Every variant names the
/// fragment (by raw id) where execution stopped; the architected state at
/// the fault is the last consistent fragment-boundary state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VmError {
    /// A taken control transfer carried a resolved I-address but no live
    /// direct link — the target fragment vanished without the site being
    /// un-patched.
    UnlinkedTransfer {
        /// Raw id of the fragment containing the transfer.
        fragment: u32,
        /// Instruction slot of the transfer.
        index: u32,
    },
    /// A dual-RAS push still carried a local (unresolved) I-side return
    /// target at execution time.
    UnresolvedDualRas {
        /// Raw id of the fragment containing the push.
        fragment: u32,
        /// Instruction slot of the push.
        index: u32,
    },
    /// Control transferred into a fragment id whose slot has been
    /// invalidated.
    DeadFragment {
        /// The raw id of the dead fragment.
        fragment: u32,
    },
    /// Execution ran past the last instruction of a fragment without
    /// reaching a block terminal.
    FragmentOverrun {
        /// Raw id of the overrun fragment.
        fragment: u32,
    },
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            VmError::UnlinkedTransfer { fragment, index } => write!(
                f,
                "taken transfer without a live direct link (fragment {fragment}, slot {index})"
            ),
            VmError::UnresolvedDualRas { fragment, index } => write!(
                f,
                "unresolved dual-RAS push reached execution (fragment {fragment}, slot {index})"
            ),
            VmError::DeadFragment { fragment } => {
                write!(f, "control transferred into dead fragment {fragment}")
            }
            VmError::FragmentOverrun { fragment } => {
                write!(f, "execution ran off the end of fragment {fragment}")
            }
        }
    }
}

impl std::error::Error for VmError {}
