//! Superblocks and their dataflow-node decomposition.
//!
//! The unit of translation is the *superblock* (Hwu et al.): a dynamic code
//! sequence with one entry and multiple exits, collected by following the
//! interpreted path once a start candidate becomes hot (paper §3.1).
//!
//! Before classification and strand formation, each Alpha instruction is
//! decomposed into one or two *nodes* (paper §3.3 and Figure 7's note that
//! "memory instructions with effective address calculation are decomposed
//! into two nodes"):
//!
//! * a memory access with a nonzero displacement → an address-compute node
//!   feeding the access node through a **temp** value;
//! * a conditional move → a test node producing a temp boolean feeding a
//!   select node;
//! * everything else → a single node.

use alpha_isa::{BranchOp, Inst, JumpKind, MemOp, Operand, OperateOp, PalFunc, Reg};

/// How control left an instruction when the superblock was collected.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CollectedFlow {
    /// Fell through.
    Sequential,
    /// Conditional branch, not taken at collection time.
    CondNotTaken {
        /// The (not-followed) taken-target V-address.
        taken_target: u64,
    },
    /// Conditional branch, taken at collection time (condition will be
    /// reversed by the translator so the followed path falls through).
    CondTaken {
        /// The followed target V-address.
        taken_target: u64,
        /// The (not-followed) fall-through V-address.
        fallthrough: u64,
    },
    /// Unconditional direct branch (followed; removed by straightening).
    Direct {
        /// Target V-address.
        target: u64,
        /// Whether a return address is written (`BR`/`BSR` with a live
        /// link register).
        links: bool,
    },
    /// Register-indirect jump observed to go to `target` (ends the block).
    Indirect {
        /// Jump flavor.
        kind: JumpKind,
        /// The observed target V-address (used for software prediction).
        target: u64,
    },
}

/// One V-ISA instruction inside a superblock.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SbInst {
    /// The instruction's V-address.
    pub vaddr: u64,
    /// The decoded instruction.
    pub inst: Inst,
    /// Collected control-flow behavior.
    pub flow: CollectedFlow,
}

/// Why collection of the superblock stopped (paper §3.1 ending
/// conditions).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SbEnd {
    /// A register-indirect jump (or return) was reached.
    IndirectJump,
    /// A backward taken conditional branch was reached.
    BackwardTakenBranch {
        /// The branch's taken target.
        target: u64,
        /// The fall-through continuation.
        fallthrough: u64,
    },
    /// The path revisited an already-collected address (a cycle).
    Cycle {
        /// The continuation V-address (start of the cycle).
        next: u64,
    },
    /// The maximum superblock size was hit.
    MaxSize {
        /// The continuation V-address.
        next: u64,
    },
    /// A halt/trap instruction was reached.
    Halt,
}

/// A collected superblock.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Superblock {
    /// Entry V-address.
    pub start: u64,
    /// The instructions along the collected path (NOPs excluded).
    pub insts: Vec<SbInst>,
    /// Why collection ended.
    pub end: SbEnd,
}

impl Superblock {
    /// Number of V-ISA instructions in the block.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the block is empty (degenerate; not translated).
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }
}

/// The operation a dataflow node performs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NodeOp {
    /// ALU operation (maps directly to an I-ISA [`ildp_isa::IInst::Op`]).
    Alu(OperateOp),
    /// Add a 16-bit immediate shifted left 16 (from `LDAH`).
    AddHigh,
    /// Add a plain 16-bit immediate (from `LDA` / address computation).
    AddImm,
    /// Memory load.
    Load(MemOp),
    /// Memory store.
    Store(MemOp),
    /// Conditional-move select: `out = temp_test ? value : old`.
    CmovSelect(OperateOp),
    /// Conditional branch (side exit or block-ending branch).
    CondBranch(BranchOp),
    /// Direct branch that saves a V-ISA return address (`BSR`, linking
    /// `BR`).
    CallSave,
    /// Register-indirect jump/call/return (ends the block).
    IndirectJump(JumpKind),
    /// PALcode call.
    Pal(PalFunc),
}

/// An input operand of a node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NodeInput {
    /// An architected register value (whichever node last defined it, or a
    /// live-in).
    Reg(Reg),
    /// The temp value produced by an earlier node of the same decomposed
    /// instruction.
    Temp(u32),
    /// An immediate operand.
    Imm(i16),
}

/// One dataflow node (a decomposed V-ISA instruction part).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Node {
    /// Index of the [`SbInst`] this node came from.
    pub sb_index: u32,
    /// The V-address of the originating instruction.
    pub vaddr: u64,
    /// Operation.
    pub op: NodeOp,
    /// Inputs (at most three: cmov select reads test, value, old).
    pub inputs: [Option<NodeInput>; 3],
    /// Immediate payload (displacement for loads/stores/addimm).
    pub imm: i16,
    /// The architected output register, if the node produces one.
    pub out: Option<Reg>,
    /// Whether this node produces a temp consumed by the next node instead
    /// of (or in addition to) an architected register.
    pub produces_temp: bool,
    /// Whether this node is the *last* node of its V-ISA instruction (the
    /// one that retires it).
    pub retires: bool,
    /// Whether this node can raise a precise trap (PEI).
    pub is_pei: bool,
    /// Whether this node is a side exit or the block-ending control
    /// transfer.
    pub is_exit: bool,
}

impl Node {
    fn plain(sb_index: u32, vaddr: u64) -> Node {
        Node {
            sb_index,
            vaddr,
            op: NodeOp::Alu(OperateOp::Bis),
            inputs: [None; 3],
            imm: 0,
            out: None,
            produces_temp: false,
            retires: true,
            is_pei: false,
            is_exit: false,
        }
    }

    /// Iterates over the present inputs.
    pub fn inputs(&self) -> impl Iterator<Item = NodeInput> + '_ {
        self.inputs.iter().flatten().copied()
    }
}

fn operand_input(op: Operand) -> NodeInput {
    match op {
        Operand::Reg(r) => NodeInput::Reg(r),
        Operand::Lit(v) => NodeInput::Imm(v as i16),
    }
}

fn reg_input(r: Reg) -> Option<NodeInput> {
    // R31 reads as zero and carries no dependence: model as immediate 0.
    if r.is_zero() {
        Some(NodeInput::Imm(0))
    } else {
        Some(NodeInput::Reg(r))
    }
}

/// Decomposes a superblock into its dataflow-node list.
///
/// Temps are numbered in emission order; a node with `produces_temp` set is
/// consumed by the following node through [`NodeInput::Temp`].
///
/// # Examples
///
/// ```
/// use alpha_isa::{Inst, MemOp, Reg};
/// use ildp_core::{decompose, CollectedFlow, SbEnd, SbInst, Superblock};
/// let sb = Superblock {
///     start: 0x1000,
///     insts: vec![SbInst {
///         vaddr: 0x1000,
///         inst: Inst::Mem { op: MemOp::Ldq, ra: Reg::V0, rb: Reg::SP, disp: 16 },
///         flow: CollectedFlow::Sequential,
///     }],
///     end: SbEnd::Halt,
/// };
/// let nodes = decompose(&sb);
/// assert_eq!(nodes.len(), 2); // address compute + access
/// ```
pub fn decompose(sb: &Superblock) -> Vec<Node> {
    decompose_with(sb, false)
}

/// [`decompose`] with the **fused-memory extension** (paper §4.5): when
/// `fuse_memory` is true, displaced loads and stores stay single nodes
/// (the displacement rides in `Node::imm`), trading decode complexity for
/// lower fetch and reorder-buffer pressure.
pub fn decompose_with(sb: &Superblock, fuse_memory: bool) -> Vec<Node> {
    let mut nodes = Vec::with_capacity(sb.insts.len() * 2);
    let mut next_temp = 0u32;
    for (i, si) in sb.insts.iter().enumerate() {
        let idx = i as u32;
        let va = si.vaddr;
        match si.inst {
            Inst::Mem { op, ra, rb, disp } => match op {
                MemOp::Lda => {
                    let mut n = Node::plain(idx, va);
                    n.op = NodeOp::AddImm;
                    n.inputs[0] = reg_input(rb);
                    n.imm = disp;
                    n.out = Some(ra);
                    nodes.push(n);
                }
                MemOp::Ldah => {
                    let mut n = Node::plain(idx, va);
                    n.op = NodeOp::AddHigh;
                    n.inputs[0] = reg_input(rb);
                    n.imm = disp;
                    n.out = Some(ra);
                    nodes.push(n);
                }
                _ => {
                    let addr_input = if disp != 0 && !fuse_memory {
                        // Address-compute node feeding the access by temp.
                        let mut a = Node::plain(idx, va);
                        a.op = NodeOp::AddImm;
                        a.inputs[0] = reg_input(rb);
                        a.imm = disp;
                        a.produces_temp = true;
                        a.retires = false;
                        let t = next_temp;
                        next_temp += 1;
                        nodes.push(a);
                        NodeInput::Temp(t)
                    } else {
                        reg_input(rb).unwrap()
                    };
                    let mut m = Node::plain(idx, va);
                    m.is_pei = true;
                    m.imm = if fuse_memory { disp } else { 0 };
                    if op.is_load() {
                        m.op = NodeOp::Load(op);
                        m.inputs[0] = Some(addr_input);
                        m.out = Some(ra);
                    } else {
                        m.op = NodeOp::Store(op);
                        m.inputs[0] = Some(addr_input);
                        m.inputs[1] = reg_input(ra);
                    }
                    nodes.push(m);
                }
            },
            Inst::Operate { op, ra, rb, rc } => {
                if op.is_cmov() {
                    // Test node: a compare/mask whose 0/1 result encodes the
                    // cmov condition; the select polarity (low-bit set or
                    // clear) recovers the original semantics.
                    let (test_op, test_imm, select_op) = cmov_decomposition(op);
                    let mut t = Node::plain(idx, va);
                    t.op = NodeOp::Alu(test_op);
                    t.inputs[0] = reg_input(ra);
                    t.inputs[1] = Some(NodeInput::Imm(test_imm));
                    t.produces_temp = true;
                    t.retires = false;
                    let tn = next_temp;
                    next_temp += 1;
                    nodes.push(t);
                    // Select node: rc = taken(select_op, temp) ? rb : rc.
                    let mut s = Node::plain(idx, va);
                    s.op = NodeOp::CmovSelect(select_op);
                    s.inputs[0] = Some(NodeInput::Temp(tn));
                    s.inputs[1] = Some(operand_input(rb));
                    s.inputs[2] = reg_input(rc);
                    s.out = Some(rc);
                    nodes.push(s);
                } else {
                    let mut n = Node::plain(idx, va);
                    n.op = NodeOp::Alu(op);
                    n.inputs[0] = reg_input(ra);
                    n.inputs[1] = Some(operand_input(rb));
                    n.out = Some(rc);
                    nodes.push(n);
                }
            }
            Inst::Branch { op, ra, .. } => match si.flow {
                CollectedFlow::Direct { links, .. } => {
                    // Followed direct branch: disappears under straightening
                    // unless it must save a V-ISA return address.
                    if links {
                        let mut n = Node::plain(idx, va);
                        n.op = NodeOp::CallSave;
                        n.out = Some(ra);
                        nodes.push(n);
                    } else {
                        // Pure layout artifact: code straightening removes
                        // it and no node is emitted. Its V-instruction
                        // retirement credit is recovered by the engine,
                        // which counts superblock instructions, not nodes.
                        continue;
                    }
                }
                _ => {
                    let mut n = Node::plain(idx, va);
                    n.op = NodeOp::CondBranch(op);
                    n.inputs[0] = reg_input(ra);
                    n.is_exit = true;
                    nodes.push(n);
                }
            },
            Inst::Jump { kind, ra, rb, .. } => {
                // If the link register is also the target (`jsr ra,(ra)`),
                // capture the old target into a temp before the link write.
                let target_input = if !ra.is_zero() && ra == rb {
                    let mut c = Node::plain(idx, va);
                    c.op = NodeOp::Alu(OperateOp::Bis);
                    c.inputs[0] = reg_input(rb);
                    c.inputs[1] = Some(NodeInput::Imm(0));
                    c.produces_temp = true;
                    c.retires = false;
                    let t = next_temp;
                    next_temp += 1;
                    nodes.push(c);
                    Some(NodeInput::Temp(t))
                } else {
                    reg_input(rb)
                };
                // Link side: the V-ISA return address (a CallSave node).
                if !ra.is_zero() {
                    let mut l = Node::plain(idx, va);
                    l.op = NodeOp::CallSave;
                    l.out = Some(ra);
                    l.retires = false;
                    nodes.push(l);
                }
                let mut n = Node::plain(idx, va);
                n.op = NodeOp::IndirectJump(kind);
                n.inputs[0] = target_input;
                n.is_exit = true;
                nodes.push(n);
            }
            Inst::CallPal { func } => {
                let mut n = Node::plain(idx, va);
                n.op = NodeOp::Pal(func);
                if matches!(func, PalFunc::PutChar) {
                    n.inputs[0] = reg_input(Reg::A0);
                }
                n.is_pei = matches!(func, PalFunc::GenTrap);
                n.is_exit = matches!(func, PalFunc::Halt);
                nodes.push(n);
            }
            // Unimplemented instructions trap before retiring, so the
            // profiler can never collect one into a superblock.
            Inst::Unimplemented { word } => {
                panic!("unimplemented instruction {word:#010x} in a superblock")
            }
        }
    }
    nodes
}

/// Decomposes a cmov condition into an expressible test operation
/// `(test_op, test_imm)` producing a 0/1 temp, and the low-bit select
/// flavor that recovers the original polarity.
///
/// `cmov rc = cond(ra) ? rb : rc` becomes
/// `t = test_op(ra, test_imm); rc = taken(select_op, t) ? rb : rc`.
fn cmov_decomposition(op: OperateOp) -> (OperateOp, i16, OperateOp) {
    use OperateOp::*;
    match op {
        Cmoveq => (Cmpeq, 0, Cmovlbs),
        Cmovne => (Cmpeq, 0, Cmovlbc),
        Cmovlt => (Cmplt, 0, Cmovlbs),
        Cmovge => (Cmplt, 0, Cmovlbc),
        Cmovle => (Cmple, 0, Cmovlbs),
        Cmovgt => (Cmple, 0, Cmovlbc),
        Cmovlbs => (And, 1, Cmovlbs),
        Cmovlbc => (And, 1, Cmovlbc),
        other => panic!("not a cmov: {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(vaddr: u64, inst: Inst) -> SbInst {
        SbInst {
            vaddr,
            inst,
            flow: CollectedFlow::Sequential,
        }
    }

    fn sb(insts: Vec<SbInst>) -> Superblock {
        Superblock {
            start: insts.first().map(|i| i.vaddr).unwrap_or(0),
            insts,
            end: SbEnd::Halt,
        }
    }

    #[test]
    fn zero_disp_load_is_single_node() {
        let b = sb(vec![seq(
            0x1000,
            Inst::Mem {
                op: MemOp::Ldbu,
                ra: Reg::new(3),
                rb: Reg::A0,
                disp: 0,
            },
        )]);
        let nodes = decompose(&b);
        assert_eq!(nodes.len(), 1);
        assert_eq!(nodes[0].op, NodeOp::Load(MemOp::Ldbu));
        assert!(nodes[0].is_pei);
        assert!(nodes[0].retires);
    }

    #[test]
    fn displaced_load_splits_into_two_nodes() {
        let b = sb(vec![seq(
            0x1000,
            Inst::Mem {
                op: MemOp::Ldq,
                ra: Reg::V0,
                rb: Reg::SP,
                disp: 16,
            },
        )]);
        let nodes = decompose(&b);
        assert_eq!(nodes.len(), 2);
        assert_eq!(nodes[0].op, NodeOp::AddImm);
        assert!(nodes[0].produces_temp);
        assert!(!nodes[0].retires);
        assert_eq!(nodes[1].inputs[0], Some(NodeInput::Temp(0)));
        assert!(nodes[1].retires);
    }

    #[test]
    fn store_reads_address_and_value() {
        let b = sb(vec![seq(
            0x1000,
            Inst::Mem {
                op: MemOp::Stq,
                ra: Reg::new(5),
                rb: Reg::new(6),
                disp: 0,
            },
        )]);
        let nodes = decompose(&b);
        assert_eq!(nodes.len(), 1);
        assert_eq!(nodes[0].inputs[0], Some(NodeInput::Reg(Reg::new(6))));
        assert_eq!(nodes[0].inputs[1], Some(NodeInput::Reg(Reg::new(5))));
        assert_eq!(nodes[0].out, None);
    }

    #[test]
    fn cmov_decomposes_into_test_and_select() {
        let b = sb(vec![seq(
            0x1000,
            Inst::Operate {
                op: OperateOp::Cmoveq,
                ra: Reg::new(1),
                rb: Operand::Reg(Reg::new(2)),
                rc: Reg::new(3),
            },
        )]);
        let nodes = decompose(&b);
        assert_eq!(nodes.len(), 2);
        assert!(nodes[0].produces_temp);
        assert_eq!(nodes[0].op, NodeOp::Alu(OperateOp::Cmpeq));
        assert_eq!(nodes[1].op, NodeOp::CmovSelect(OperateOp::Cmovlbs));
        assert_eq!(nodes[1].inputs[0], Some(NodeInput::Temp(0)));
        assert_eq!(nodes[1].inputs[2], Some(NodeInput::Reg(Reg::new(3))));
        assert_eq!(nodes[1].out, Some(Reg::new(3)));
    }

    #[test]
    fn followed_nonlinking_direct_branch_vanishes() {
        let b = sb(vec![SbInst {
            vaddr: 0x1000,
            inst: Inst::Branch {
                op: BranchOp::Br,
                ra: Reg::ZERO,
                disp: 5,
            },
            flow: CollectedFlow::Direct {
                target: 0x1018,
                links: false,
            },
        }]);
        assert!(decompose(&b).is_empty());
    }

    #[test]
    fn bsr_becomes_call_save() {
        let b = sb(vec![SbInst {
            vaddr: 0x1000,
            inst: Inst::Branch {
                op: BranchOp::Bsr,
                ra: Reg::RA,
                disp: 5,
            },
            flow: CollectedFlow::Direct {
                target: 0x1018,
                links: true,
            },
        }]);
        let nodes = decompose(&b);
        assert_eq!(nodes.len(), 1);
        assert_eq!(nodes[0].op, NodeOp::CallSave);
        assert_eq!(nodes[0].out, Some(Reg::RA));
    }

    #[test]
    fn jump_with_link_emits_two_nodes() {
        let b = sb(vec![SbInst {
            vaddr: 0x1000,
            inst: Inst::Jump {
                kind: JumpKind::Jsr,
                ra: Reg::RA,
                rb: Reg::PV,
                hint: 0,
            },
            flow: CollectedFlow::Indirect {
                kind: JumpKind::Jsr,
                target: 0x8000,
            },
        }]);
        let nodes = decompose(&b);
        assert_eq!(nodes.len(), 2);
        assert_eq!(nodes[0].op, NodeOp::CallSave);
        assert_eq!(nodes[1].op, NodeOp::IndirectJump(JumpKind::Jsr));
        assert!(nodes[1].is_exit);
    }

    #[test]
    fn r31_sources_become_immediates() {
        let b = sb(vec![seq(
            0x1000,
            Inst::Operate {
                op: OperateOp::Addq,
                ra: Reg::ZERO,
                rb: Operand::Lit(5),
                rc: Reg::new(1),
            },
        )]);
        let nodes = decompose(&b);
        assert_eq!(nodes[0].inputs[0], Some(NodeInput::Imm(0)));
    }
}
