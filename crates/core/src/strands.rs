//! Strand formation and accumulator assignment (paper §3.3, phases two
//! and three).
//!
//! **Strand formation** walks the node list in program order and assigns a
//! strand number to every node, following the paper's rules:
//!
//! * zero local inputs → a new strand starts; if the node would need two
//!   GPR source operands, a `copy-from-GPR` is planned to start the strand
//!   (the node then consumes the copied value through the accumulator);
//! * one local input → the node joins the producer's strand;
//! * two local inputs → the temp producer's strand wins; otherwise the
//!   longer strand (by instruction count); the losing value is upgraded to
//!   a **spill global**.
//!
//! **Accumulator assignment** converts the unlimited strand numbers to the
//! finite logical accumulators with a linear scan. When the translator
//! runs out of accumulators, the live strand with the farthest next touch
//! is *terminated*: its current value is spilled to a GPR and the rest of
//! the strand is re-formed from the GPR (a planned `copy-from-GPR` at the
//! resumption point). The whole plan is recomputed to a fixpoint after
//! each round of upgrades; the paper reports (and the tests confirm) that
//! terminations are rare with four accumulators.

use crate::classify::{Dataflow, Reaching, UsageCat, ValueId};
use crate::superblock::{Node, NodeOp};
use alpha_isa::Reg;
use ildp_isa::Acc;
use std::collections::HashSet;

/// How a node's input slot is delivered in the translated code.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Role {
    /// Through the node's accumulator.
    Acc,
    /// From a general-purpose register.
    Gpr(Reg),
    /// An immediate.
    Imm(i16),
}

/// The complete translation plan for one superblock.
#[derive(Clone, Debug)]
pub struct TranslationPlan {
    /// Per node: the strand it belongs to (`None` for strand-less nodes
    /// such as branches on global values).
    pub node_strand: Vec<Option<u32>>,
    /// Per node: the assigned logical accumulator.
    pub node_acc: Vec<Option<Acc>>,
    /// Per node: a planned `copy-from-GPR` to execute immediately before
    /// it (strand start from a global, or a resumption after premature
    /// termination).
    pub pre_copy: Vec<Option<Reg>>,
    /// Per node input slot: the delivery role.
    pub input_role: Vec<[Option<Role>; 3]>,
    /// Per value: final category after spill upgrades.
    pub final_category: Vec<UsageCat>,
    /// Total strands formed.
    pub strand_count: u32,
    /// Strands prematurely terminated to free an accumulator (paper: rare
    /// with four accumulators).
    pub terminations: u32,
}

impl TranslationPlan {
    /// Number of values whose final category requires GPR availability.
    pub fn global_value_count(&self) -> usize {
        self.final_category.iter().filter(|c| c.is_global()).count()
    }
}

/// Computes the strand/accumulator plan for a node list.
///
/// `acc_count` is the number of logical accumulators (the paper evaluates
/// 4, the default, and 8).
///
/// # Panics
///
/// Panics if `acc_count` is zero or exceeds [`Acc::MAX_ACCUMULATORS`].
pub fn plan(nodes: &[Node], df: &Dataflow, acc_count: usize, pei_copies: bool) -> TranslationPlan {
    assert!(
        acc_count > 0 && acc_count <= Acc::MAX_ACCUMULATORS,
        "accumulator count out of range"
    );
    let mut upgraded: HashSet<ValueId> = HashSet::new();
    let mut total_terminations = 0u32;
    // Fixpoint: spill upgrades (two-local conflicts, store/select operand
    // constraints, accumulator terminations) change localness, which
    // changes strand structure. Converges because `upgraded` only grows.
    loop {
        let mut formation = form_strands(nodes, df, &upgraded);
        let before = upgraded.len();
        upgraded.extend(formation.local_upgrades.iter().copied());
        if pei_copies {
            pei_window_upgrades(nodes, df, &formation, &mut upgraded);
        }
        total_terminations +=
            assign_accumulators(nodes, df, &mut formation, &mut upgraded, acc_count);
        if upgraded.len() == before {
            let final_category = df
                .values
                .iter()
                .enumerate()
                .map(|(i, v)| {
                    if upgraded.contains(&ValueId(i as u32)) {
                        UsageCat::Spill
                    } else {
                        v.category
                    }
                })
                .collect();
            return TranslationPlan {
                node_strand: formation.node_strand,
                node_acc: formation.node_acc,
                pre_copy: formation.pre_copy,
                input_role: formation.input_role,
                final_category,
                strand_count: formation.strand_count,
                terminations: total_terminations,
            };
        }
    }
}

struct Formation {
    node_strand: Vec<Option<u32>>,
    node_acc: Vec<Option<Acc>>,
    pre_copy: Vec<Option<Reg>>,
    input_role: Vec<[Option<Role>; 3]>,
    strand_count: u32,
    /// Per strand: ordered node touches.
    strand_touches: Vec<Vec<u32>>,
    /// Per strand: length in nodes so far (for the longer-strand
    /// heuristic), tracked during formation.
    strand_len: Vec<u32>,
    /// Per value: the strand carrying it (if acc-carried).
    value_strand: Vec<Option<u32>>,
    /// Values upgraded to spill globals during this formation pass.
    local_upgrades: HashSet<ValueId>,
}

fn is_local(df: &Dataflow, upgraded: &HashSet<ValueId>, id: ValueId) -> bool {
    df.value(id).category.is_acc_carried() && !upgraded.contains(&id)
}

fn form_strands(nodes: &[Node], df: &Dataflow, upgraded: &HashSet<ValueId>) -> Formation {
    let n = nodes.len();
    let mut f = Formation {
        node_strand: vec![None; n],
        node_acc: vec![None; n],
        pre_copy: vec![None; n],
        input_role: vec![[None; 3]; n],
        strand_count: 0,
        strand_touches: Vec::new(),
        strand_len: Vec::new(),
        value_strand: vec![None; df.values.len()],
        local_upgrades: HashSet::new(),
    };
    // Local upgrades discovered during this pass (conflicts) are applied
    // immediately — safe because an acc-carried value has exactly one
    // consumer, the node at which the conflict is discovered.
    let mut local_upgrades: HashSet<ValueId> = HashSet::new();
    let locality =
        |lu: &HashSet<ValueId>, id: ValueId| is_local(df, upgraded, id) && !lu.contains(&id);

    for (i, node) in nodes.iter().enumerate() {
        // Gather the candidate-local and global inputs.
        let mut locals: Vec<(usize, ValueId)> = Vec::new(); // (slot, value)
        let mut global_regs: Vec<(usize, Reg)> = Vec::new();
        for (slot, r) in df.reaching[i].iter().enumerate() {
            match r {
                Some(Reaching::Value(id)) => {
                    if locality(&local_upgrades, *id) {
                        locals.push((slot, *id));
                    } else {
                        let reg = df
                            .value(*id)
                            .reg
                            .expect("global value must have an architected register");
                        global_regs.push((slot, reg));
                    }
                }
                Some(Reaching::LiveIn(reg)) => global_regs.push((slot, *reg)),
                Some(Reaching::Imm(v)) => f.input_role[i][slot] = Some(Role::Imm(*v)),
                None => {}
            }
        }

        // Node-specific constraints that force values global.
        match node.op {
            NodeOp::Store(_) => {
                // At most the address operand (slot 0) stays local; a local
                // value operand is spilled unless it is the same value.
                if locals.len() == 2 && locals[0].1 != locals[1].1 {
                    let (slot, id) = locals.pop().unwrap();
                    local_upgrades.insert(id);
                    let reg = df.value(id).reg.expect("store value has a register");
                    global_regs.push((slot, reg));
                }
            }
            NodeOp::IndirectJump(_) => {
                // Chaining code (software jump prediction, dual-RAS return
                // checks, dispatch) reads the target from a GPR; force it
                // global.
                locals.retain(|(slot, id)| {
                    local_upgrades.insert(*id);
                    let reg = df.value(*id).reg.expect("jump target has a register");
                    global_regs.push((*slot, reg));
                    false
                });
            }
            NodeOp::CmovSelect(_) => {
                // The test temp (slot 0) is the accumulator input; the move
                // value and old destination are read as GPRs.
                locals.retain(|(slot, id)| {
                    if *slot == 0 {
                        true
                    } else {
                        local_upgrades.insert(*id);
                        let reg = df.value(*id).reg.expect("select operand has a register");
                        global_regs.push((*slot, reg));
                        false
                    }
                });
                // The old-destination's *reaching architected value* must be
                // current in the GPR file (implicit destination read).
            }
            _ => {
                // Generic two-local conflict: temp wins, else longer strand.
                if locals.len() == 2 {
                    let keep = {
                        let (s0, v0) = locals[0];
                        let (s1, v1) = locals[1];
                        let t0 = df.value(v0).reg.is_none();
                        let t1 = df.value(v1).reg.is_none();
                        if t0 == t1 {
                            let l0 = f.value_strand[v0.0 as usize]
                                .map(|s| f.strand_len[s as usize])
                                .unwrap_or(0);
                            let l1 = f.value_strand[v1.0 as usize]
                                .map(|s| f.strand_len[s as usize])
                                .unwrap_or(0);
                            if l1 > l0 {
                                (s1, v1)
                            } else {
                                (s0, v0)
                            }
                        } else if t0 {
                            (s0, v0)
                        } else {
                            (s1, v1)
                        }
                    };
                    locals.retain(|&(slot, id)| {
                        if (slot, id) == keep {
                            true
                        } else {
                            local_upgrades.insert(id);
                            let reg = df.value(id).reg.expect("conflicting local has a register");
                            global_regs.push((slot, reg));
                            false
                        }
                    });
                }
            }
        }

        // Resolve the strand.
        let produces = df.produced[i].is_some();
        let strand: Option<u32> = if let Some(&(slot, id)) = locals.first() {
            // Joins the local input's strand.
            f.input_role[i][slot] = Some(Role::Acc);
            f.value_strand[id.0 as usize]
        } else if produces || needs_acc(node) {
            // New strand. Two GPR sources → plan a copy-from-GPR for the
            // first; the node then consumes it through the accumulator.
            if global_regs.len() >= 2 {
                let (slot, reg) = global_regs.remove(0);
                f.pre_copy[i] = Some(reg);
                f.input_role[i][slot] = Some(Role::Acc);
            }
            let s = f.strand_count;
            f.strand_count += 1;
            f.strand_touches.push(Vec::new());
            f.strand_len.push(0);
            Some(s)
        } else {
            // Strand-less: a branch/store on global values only. Still must
            // satisfy the one-GPR rule.
            if global_regs.len() >= 2 {
                let (slot, reg) = global_regs.remove(0);
                f.pre_copy[i] = Some(reg);
                f.input_role[i][slot] = Some(Role::Acc);
                let s = f.strand_count;
                f.strand_count += 1;
                f.strand_touches.push(Vec::new());
                f.strand_len.push(0);
                Some(s)
            } else {
                None
            }
        };

        for (slot, reg) in global_regs {
            f.input_role[i][slot] = Some(Role::Gpr(reg));
        }

        if let Some(s) = strand {
            f.node_strand[i] = Some(s);
            f.strand_touches[s as usize].push(i as u32);
            f.strand_len[s as usize] += 1;
            if let Some(v) = df.produced[i] {
                f.value_strand[v.0 as usize] = Some(s);
            }
        }
    }
    f.local_upgrades = local_upgrades;
    f
}

/// Whether a non-producing node still needs an accumulator context
/// (special instructions that write the accumulator).
fn needs_acc(node: &Node) -> bool {
    // CallSave writes a GPR directly (special instruction); branches and
    // stores on globals run without an accumulator.
    let _ = node;
    false
}

/// Basic-form precise-trap rule (paper §2.2): a value whose accumulator is
/// overwritten (by the strand's next production, or potentially reused
/// after the strand's last touch) while its architected register is still
/// live at a later PEI must be copied to a GPR. Modified-form fragments
/// never need this — every producer names its destination GPR.
fn pei_window_upgrades(
    nodes: &[Node],
    df: &Dataflow,
    f: &Formation,
    upgraded: &mut HashSet<ValueId>,
) {
    let pei_positions: Vec<u32> = nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| n.is_pei)
        .map(|(i, _)| i as u32)
        .collect();
    if pei_positions.is_empty() {
        return;
    }
    for (vi, v) in df.values.iter().enumerate() {
        let id = ValueId(vi as u32);
        if v.reg.is_none() || !v.category.is_acc_carried() || upgraded.contains(&id) {
            continue;
        }
        let Some(strand) = f.value_strand[vi] else {
            continue;
        };
        let touches = &f.strand_touches[strand as usize];
        // The accumulator stops holding this value at the strand's next
        // production after it, or (conservatively) at the strand's last
        // touch, after which the accumulator may be reused.
        let clobber = touches
            .iter()
            .filter(|&&t| t > v.producer)
            .find(|&&t| df.produced[t as usize].is_some())
            .copied()
            .or_else(|| touches.last().copied())
            .unwrap_or(v.producer);
        // A PEI strictly after the clobber and before the register's
        // redefinition (or at the redefining instruction itself, if that
        // instruction can trap) makes the value unrecoverable.
        let exposed = pei_positions.iter().any(|&p| {
            let after_clobber = p > clobber;
            match v.redef {
                None => after_clobber,
                Some(rd) => after_clobber && (p < rd || (p == rd && nodes[rd as usize].is_pei)),
            }
        });
        if exposed {
            upgraded.insert(id);
        }
    }
}

/// Linear-scan conversion of strands to logical accumulators. Returns the
/// number of premature terminations; newly-spilled values are added to
/// `upgraded` (forcing a re-plan).
fn assign_accumulators(
    nodes: &[Node],
    df: &Dataflow,
    f: &mut Formation,
    upgraded: &mut HashSet<ValueId>,
    acc_count: usize,
) -> u32 {
    let _ = nodes;
    let mut terminations = 0u32;
    // Active strands: (strand, acc, touches, cursor).
    let mut active: Vec<(u32, u8, usize)> = Vec::new(); // (strand, acc, next touch cursor)
    let mut free: Vec<u8> = (0..acc_count as u8).rev().collect();
    let mut strand_acc: Vec<Option<u8>> = vec![None; f.strand_count as usize];

    for i in 0..f.node_strand.len() {
        // Expire strands whose last touch has passed.
        active.retain(|&(s, acc, cursor)| {
            if cursor >= f.strand_touches[s as usize].len() {
                free.push(acc);
                false
            } else {
                true
            }
        });
        let Some(s) = f.node_strand[i] else { continue };
        let su = s as usize;
        if strand_acc[su].is_none() {
            // Strand start: allocate.
            let acc = if let Some(a) = free.pop() {
                a
            } else {
                // Terminate the active strand with the farthest next touch.
                let (pos, _) = active
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, &(vs, _, cursor))| {
                        f.strand_touches[vs as usize]
                            .get(cursor)
                            .copied()
                            .unwrap_or(u32::MAX)
                    })
                    .expect("no free accumulator implies active strands");
                let (victim, acc, _) = active.swap_remove(pos);
                terminations += 1;
                strand_acc[victim as usize] = None;
                // Spill the victim's current (most recently produced) value
                // so the remainder of its strand re-forms from the GPR.
                if let Some(v) = last_value_of_strand(df, f, victim, i) {
                    upgraded.insert(v);
                }
                acc
            };
            strand_acc[su] = Some(acc);
            active.push((s, acc, 0));
        }
        // Advance this strand's cursor past the current touch.
        for entry in active.iter_mut() {
            if entry.0 == s {
                entry.2 += 1;
            }
        }
        f.node_acc[i] = Some(Acc::new(strand_acc[su].expect("assigned above")));
    }
    terminations
}

/// The most recent value produced by `strand` before node `before`.
fn last_value_of_strand(
    df: &Dataflow,
    f: &Formation,
    strand: u32,
    before: usize,
) -> Option<ValueId> {
    f.strand_touches[strand as usize]
        .iter()
        .filter(|&&t| (t as usize) < before)
        .rev()
        .find_map(|&t| df.produced[t as usize])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::analyze;
    use crate::superblock::{decompose, CollectedFlow, SbEnd, SbInst, Superblock};
    use alpha_isa::{Inst, MemOp, Operand, OperateOp};

    fn r(n: u8) -> Reg {
        Reg::new(n)
    }

    fn op(opr: OperateOp, ra: u8, rb: u8, rc: u8) -> Inst {
        Inst::Operate {
            op: opr,
            ra: r(ra),
            rb: Operand::Reg(r(rb)),
            rc: r(rc),
        }
    }

    fn plan_of(insts: Vec<Inst>, accs: usize) -> (TranslationPlan, Dataflow, Vec<Node>) {
        let sb = Superblock {
            start: 0x1000,
            insts: insts
                .into_iter()
                .enumerate()
                .map(|(i, inst)| SbInst {
                    vaddr: 0x1000 + (i as u64) * 4,
                    inst,
                    flow: CollectedFlow::Sequential,
                })
                .collect(),
            end: SbEnd::Halt,
        };
        let nodes = decompose(&sb);
        let df = analyze(&nodes);
        let p = plan(&nodes, &df, accs, false);
        (p, df, nodes)
    }

    #[test]
    fn figure2_loop_body_forms_expected_strands() {
        // The gzip CRC loop of the paper's Figure 2 (without the branch).
        let insts = vec![
            Inst::Mem {
                op: MemOp::Ldbu,
                ra: r(3),
                rb: r(16),
                disp: 0,
            },
            Inst::Operate {
                op: OperateOp::Subl,
                ra: r(17),
                rb: Operand::Lit(1),
                rc: r(17),
            },
            Inst::Mem {
                op: MemOp::Lda,
                ra: r(16),
                rb: r(16),
                disp: 1,
            },
            op(OperateOp::Xor, 1, 3, 3),
            Inst::Operate {
                op: OperateOp::Srl,
                ra: r(1),
                rb: Operand::Lit(8),
                rc: r(1),
            },
            Inst::Operate {
                op: OperateOp::And,
                ra: r(3),
                rb: Operand::Lit(0xff),
                rc: r(3),
            },
            op(OperateOp::S8addq, 3, 0, 3),
            Inst::Mem {
                op: MemOp::Ldq,
                ra: r(3),
                rb: r(3),
                disp: 0,
            },
            op(OperateOp::Xor, 3, 1, 1),
        ];
        let (p, df, nodes) = plan_of(insts, 4);
        assert_eq!(nodes.len(), 9);
        // Paper Fig. 2(c) shows four distinct strands; the linear-scan
        // allocator fits them in fewer physical accumulators by reusing
        // expired ones, and never terminates a strand prematurely.
        assert_eq!(p.strand_count, 4, "strands: {:?}", p.node_strand);
        let used: HashSet<Acc> = p.node_acc.iter().flatten().copied().collect();
        assert!(!used.is_empty() && used.len() <= 4, "accs used: {used:?}");
        assert_eq!(p.terminations, 0);
        // The A0 chain: ldbu, xor, and, s8addq, ldq all share one strand.
        let s_ldbu = p.node_strand[0];
        assert_eq!(p.node_strand[3], s_ldbu, "xor joins the load strand");
        assert_eq!(p.node_strand[5], s_ldbu);
        assert_eq!(p.node_strand[6], s_ldbu);
        assert_eq!(p.node_strand[7], s_ldbu);
        // r17-1 and r16+1 each start their own strands.
        assert_ne!(p.node_strand[1], s_ldbu);
        assert_ne!(p.node_strand[2], s_ldbu);
        assert_ne!(p.node_strand[1], p.node_strand[2]);
        let _ = df;
    }

    #[test]
    fn two_global_inputs_get_a_pre_copy() {
        // Both inputs live-in: r3 = r1 + r2 needs a copy-from-GPR.
        let (p, _, _) = plan_of(vec![op(OperateOp::Addq, 1, 2, 3)], 4);
        assert_eq!(p.pre_copy[0], Some(r(1)));
        assert_eq!(p.input_role[0][0], Some(Role::Acc));
        assert_eq!(p.input_role[0][1], Some(Role::Gpr(r(2))));
    }

    #[test]
    fn one_local_input_joins_strand_without_copy() {
        // r3 is overwritten at the end so its first value is Local, not
        // live-out.
        let (p, _, _) = plan_of(
            vec![
                op(OperateOp::Addq, 1, 2, 3),
                op(OperateOp::Addq, 3, 4, 5),
                op(OperateOp::Addq, 1, 1, 3),
            ],
            4,
        );
        assert_eq!(p.pre_copy[1], None);
        assert_eq!(p.node_strand[1], p.node_strand[0]);
        assert_eq!(p.input_role[1][0], Some(Role::Acc));
    }

    #[test]
    fn two_local_conflict_spills_one() {
        // v1 = r1+r2 (local), v2 = r3+r4 (local), v3 = v1+v2.
        let (p, df, _) = plan_of(
            vec![
                op(OperateOp::Addq, 1, 2, 5),
                op(OperateOp::Addq, 3, 4, 6),
                op(OperateOp::Addq, 5, 6, 7),
                // Overwrite r5/r6 so the first two values are Local.
                op(OperateOp::Addq, 1, 1, 5),
                op(OperateOp::Addq, 1, 1, 6),
            ],
            4,
        );
        // One of the two inputs of node 2 is spilled.
        let spilled = p
            .final_category
            .iter()
            .filter(|c| **c == UsageCat::Spill)
            .count();
        assert_eq!(spilled, 1);
        // Longer-strand heuristic with equal lengths keeps the first input.
        assert_eq!(p.node_strand[2], p.node_strand[0]);
        assert_eq!(p.input_role[2][0], Some(Role::Acc));
        assert!(matches!(p.input_role[2][1], Some(Role::Gpr(_))));
        let _ = df;
    }

    #[test]
    fn accumulator_exhaustion_terminates_a_strand() {
        // Five interleaved strands with only 4 accumulators: produce five
        // values, then consume all five.
        let mut insts = Vec::new();
        for k in 0..5u8 {
            insts.push(op(OperateOp::Addq, 1, 2, 10 + k)); // five new strands? no: 2 globals → pre-copy, 1 strand each
        }
        // Consume each value once so they stay Local (then overwrite).
        for k in 0..5u8 {
            insts.push(op(OperateOp::Addq, 10 + k, 1, 20 + k));
        }
        for k in 0..5u8 {
            insts.push(op(OperateOp::Addq, 1, 1, 10 + k));
        }
        for k in 0..5u8 {
            insts.push(op(OperateOp::Addq, 1, 1, 20 + k));
        }
        let (p4, _, _) = plan_of(insts.clone(), 4);
        assert!(
            p4.terminations > 0,
            "five live strands must not fit in four accumulators"
        );
        let (p8, _, _) = plan_of(insts, 8);
        assert_eq!(p8.terminations, 0, "eight accumulators suffice");
    }

    #[test]
    fn acc_count_respected() {
        for accs in [1usize, 2, 4, 8] {
            let insts: Vec<Inst> = (0..20u8)
                .map(|k| op(OperateOp::Addq, 1, 2, (k % 20) + 5))
                .collect();
            let (p, _, _) = plan_of(insts, accs);
            let max = p
                .node_acc
                .iter()
                .flatten()
                .map(|a| a.number())
                .max()
                .unwrap_or(0);
            assert!((max as usize) < accs, "acc {max} with limit {accs}");
        }
    }

    #[test]
    fn store_value_spilled_when_both_local() {
        let (p, df, nodes) = plan_of(
            vec![
                op(OperateOp::Addq, 1, 2, 5), // address value (local)
                op(OperateOp::Addq, 3, 4, 6), // store value (local)
                Inst::Mem {
                    op: MemOp::Stq,
                    ra: r(6),
                    rb: r(5),
                    disp: 0,
                },
                op(OperateOp::Addq, 1, 1, 5),
                op(OperateOp::Addq, 1, 1, 6),
            ],
            4,
        );
        // Store node is index 2: address stays acc, value is GPR.
        assert_eq!(p.input_role[2][0], Some(Role::Acc));
        assert_eq!(p.input_role[2][1], Some(Role::Gpr(r(6))));
        assert_eq!(p.node_strand[2], p.node_strand[0]);
        let _ = (df, nodes);
    }
}
