//! The translated-code execution engine.
//!
//! Stands in for the ILDP hardware's functional execution of I-ISA
//! fragments: it executes installed fragments against the architected
//! state, streams one [`DynInst`] record per retired instruction into a
//! [`TraceSink`] (the timing models), performs the runtime halves of
//! fragment chaining — the architectural dual-address RAS, the shared
//! dispatch code (modelled at its paper cost of 20 instructions), and
//! `call-translator` exits back to the VM — and delivers **precise traps**
//! by merging accumulator-resident architected values from the fragment's
//! recovery tables (paper §2.2).

use crate::fragment::{FragmentId, TranslationCache, DISPATCH_COST_INSTS, DISPATCH_IADDR};
use crate::classify::UsageCat;
use alpha_isa::{AlignPolicy, CpuState, JumpKind, Memory, Reg, Trap};
use ildp_isa::{ASrc, Acc, IInst, ITarget, MemWidth};
use ildp_uarch::{DynInst, InstClass};
use std::collections::HashMap;

/// Consumes the retired-instruction stream.
pub trait TraceSink {
    /// Receives one retired instruction.
    fn retire(&mut self, inst: &DynInst);
}

/// A sink that discards the trace (functional-only runs).
#[derive(Clone, Copy, Default, Debug)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn retire(&mut self, _inst: &DynInst) {}
}

impl<T: ildp_uarch::TimingModel> TraceSink for T {
    fn retire(&mut self, inst: &DynInst) {
        ildp_uarch::TimingModel::retire(self, inst);
    }
}

/// Why the engine returned to the VM.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FragExit {
    /// Control reached a V-address with no translated fragment (a
    /// `call-translator` exit or a dispatch miss).
    NotTranslated {
        /// The continuation V-address.
        vtarget: u64,
    },
    /// The program halted.
    Halt,
    /// The engine's V-ISA instruction budget was exhausted mid-run.
    Budget,
    /// A precise trap: the faulting V-address, the condition, and the
    /// fully recovered architected register state.
    Trap {
        /// Faulting V-ISA instruction address.
        vaddr: u64,
        /// The trap condition.
        trap: Trap,
        /// Recovered architected registers (r0..r31).
        state: Box<[u64; 32]>,
    },
}

/// Execution statistics accumulated by the engine (the dynamic side of
/// Table 2 and Figure 7).
#[derive(Clone, Debug, Default)]
pub struct EngineStats {
    /// Total I-ISA instructions executed (including dispatch expansion).
    pub executed: u64,
    /// Chaining-overhead instructions executed (including dispatch).
    pub chain_executed: u64,
    /// Copy instructions executed.
    pub copies_executed: u64,
    /// V-ISA instructions retired by translated code.
    pub v_insts: u64,
    /// Dynamic usage-category counts (Figure 7).
    pub categories: HashMap<UsageCat, u64>,
    /// Shared-dispatch executions.
    pub dispatches: u64,
    /// Architectural dual-RAS predictions that matched.
    pub ras_hits: u64,
    /// Architectural dual-RAS mismatches (fell through to dispatch).
    pub ras_misses: u64,
    /// Fragment entries.
    pub fragment_entries: u64,
}

/// Engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Instructions charged per shared-dispatch execution (paper: 20).
    pub dispatch_cost: u32,
    /// Architectural dual-RAS depth.
    pub ras_depth: usize,
    /// Alignment policy for translated memory accesses.
    pub align: AlignPolicy,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            dispatch_cost: DISPATCH_COST_INSTS,
            ras_depth: 8,
            align: AlignPolicy::Enforce,
        }
    }
}

/// Base address of the dispatch code's hash-table probes (for D-cache
/// behavior of the dispatch loads).
const DISPATCH_TABLE_BASE: u64 = 0xE000_0000;

/// The fragment execution engine. See the module documentation.
#[derive(Clone, Debug)]
pub struct Engine {
    config: EngineConfig,
    accs: [u64; Acc::MAX_ACCUMULATORS],
    ras: Vec<(u64, u64)>,
    ras_top: usize,
    ras_live: usize,
    /// Bytes written by `putchar`.
    pub output: Vec<u8>,
    /// Accumulated statistics.
    pub stats: EngineStats,
}

impl Engine {
    /// Creates an engine.
    pub fn new(config: EngineConfig) -> Engine {
        Engine {
            config,
            accs: [0; Acc::MAX_ACCUMULATORS],
            ras: vec![(0, 0); config.ras_depth],
            ras_top: 0,
            ras_live: 0,
            output: Vec::new(),
            stats: EngineStats::default(),
        }
    }

    fn ras_push(&mut self, v: u64, i: u64) {
        self.ras_top = (self.ras_top + 1) % self.ras.len();
        self.ras[self.ras_top] = (v, i);
        self.ras_live = (self.ras_live + 1).min(self.ras.len());
    }

    fn ras_pop(&mut self) -> Option<(u64, u64)> {
        if self.ras_live == 0 {
            return None;
        }
        let pair = self.ras[self.ras_top];
        self.ras_top = (self.ras_top + self.ras.len() - 1) % self.ras.len();
        self.ras_live -= 1;
        Some(pair)
    }

    fn val(&self, src: ASrc, acc: Acc, cpu: &CpuState) -> u64 {
        match src {
            ASrc::Acc => self.accs[acc.index()],
            ASrc::Gpr(r) => cpu.read(r),
            ASrc::Imm(v) => v as i64 as u64,
        }
    }

    /// Recovers the full architected register state at a PEI (paper §2.2):
    /// the GPR file merged with accumulator-resident values.
    fn recover_state(
        &self,
        cache: &TranslationCache,
        fid: FragmentId,
        idx: u32,
        cpu: &CpuState,
    ) -> Box<[u64; 32]> {
        let mut state = Box::new(cpu.registers());
        if let Some(entries) = cache.fragment(fid).recovery.get(&idx) {
            for e in entries {
                state[e.reg.number() as usize] = self.accs[e.acc.index()];
            }
        }
        state
    }

    /// Builds the base trace record for an instruction.
    fn record(&self, inst: &IInst, pc: u64, form: ildp_isa::IsaForm) -> DynInst {
        let mut d = DynInst::alu(pc, inst.size_bytes(form) as u8);
        let reads = inst.gpr_reads();
        d.srcs = [
            reads[0].map(|r| r.number()),
            reads[1].map(|r| r.number()),
            None,
        ];
        d.dst = inst.gpr_write().map(|r| r.number());
        let uses_acc = inst.reads_acc() || inst.writes_acc();
        d.acc = if uses_acc {
            inst.acc().map(|a| a.number())
        } else {
            None
        };
        d.acc_read = inst.reads_acc();
        d.acc_write = inst.writes_acc();
        d
    }

    /// Emits the shared dispatch code's cost (paper: 20 instructions,
    /// ending in the indirect jump that `no_pred` chaining stresses) and
    /// returns the I-address the final jump lands on.
    fn run_dispatch(
        &mut self,
        vtarget: u64,
        target_iaddr: Option<u64>,
        sink: &mut dyn TraceSink,
    ) {
        self.stats.dispatches += 1;
        let n = self.config.dispatch_cost.max(2);
        // A short dependence chain: hash the V-PC, probe the translation
        // table (two loads), compare, then jump indirect.
        let hash = vtarget.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 48;
        let probe = DISPATCH_TABLE_BASE + (hash & 0xfff) * 16;
        for k in 0..n {
            let pc = DISPATCH_IADDR + (k as u64) * 4;
            let mut d = DynInst::alu(pc, 4);
            d.vcount = 0;
            // Thread a dependence chain through scratch register names
            // 200.. so the dispatch has realistic ILP (~4-deep chain).
            let scratch = 200 + (k % 4) as u8;
            d.dst = Some(scratch);
            if k > 0 {
                d.srcs[0] = Some(200 + ((k - 1) % 4) as u8);
            }
            if k == 2 || k == 3 {
                d.class = InstClass::Load;
                d.mem_addr = Some(probe + (k as u64 - 2) * 8);
            }
            if k == n - 1 {
                d.class = InstClass::IndirectJump;
                d.dst = None;
                d.next_pc = target_iaddr.unwrap_or(DISPATCH_IADDR);
                d.taken = true;
            }
            self.stats.executed += 1;
            self.stats.chain_executed += 1;
            sink.retire(&d);
        }
    }

    /// Executes translated code starting at `entry` until the program
    /// halts, traps, or reaches an untranslated continuation.
    ///
    /// `cpu` is the architected GPR file (`cpu.pc` is not used while in
    /// translated code — the implementation PC sequences fragments, as in
    /// the paper's §2.2).
    pub fn run(
        &mut self,
        cache: &mut TranslationCache,
        entry: FragmentId,
        cpu: &mut CpuState,
        mem: &mut Memory,
        budget_v: u64,
        sink: &mut dyn TraceSink,
    ) -> FragExit {
        let mut fid = entry;
        let mut idx: usize = 0;
        cache.fragment_mut(fid).entries += 1;
        self.stats.fragment_entries += 1;
        loop {
            if self.stats.v_insts >= budget_v {
                return FragExit::Budget;
            }
            let frag = cache.fragment(fid);
            debug_assert!(idx < frag.insts.len(), "fragment fell off its end");
            let inst = frag.insts[idx];
            let meta = frag.meta[idx];
            let pc = frag.iaddrs[idx];
            let next_pc = frag
                .iaddrs
                .get(idx + 1)
                .copied()
                .unwrap_or(pc + inst.size_bytes(frag.form) as u64);
            let form = frag.form;

            let mut d = self.record(&inst, pc, form);
            d.next_pc = next_pc;
            d.vcount = meta.vcount;

            self.stats.executed += 1;
            self.stats.v_insts += meta.vcount as u64;
            if meta.is_chain {
                self.stats.chain_executed += 1;
            }
            if inst.is_copy() {
                self.stats.copies_executed += 1;
            }
            if let Some(cat) = meta.category {
                *self.stats.categories.entry(cat).or_insert(0) += 1;
            }

            // Control decision made while executing; `None` means fall
            // through to idx + 1.
            let mut goto: Option<u64> = None; // I-address to continue at
            let mut exit: Option<FragExit> = None;

            let acc = inst.acc().unwrap_or(Acc::new(0));
            match inst {
                IInst::Op { op, lhs, rhs, dst, .. } => {
                    let a = self.val(lhs, acc, cpu);
                    let b = self.val(rhs, acc, cpu);
                    let result = if op.is_cmov() {
                        // Defensive: cmov ops in Op form select against the
                        // current accumulator value.
                        if op.cmov_taken(a) {
                            b
                        } else {
                            self.accs[acc.index()]
                        }
                    } else {
                        op.eval(a, b)
                    };
                    if op.is_multiply() {
                        d.class = InstClass::IntMul;
                    }
                    self.accs[acc.index()] = result;
                    if let Some(r) = dst {
                        cpu.write(r, result);
                    }
                }
                IInst::AddHigh { src, imm, dst, .. } => {
                    let base = self.val(src, acc, cpu);
                    let result = base.wrapping_add(((imm as i64) << 16) as u64);
                    self.accs[acc.index()] = result;
                    if let Some(r) = dst {
                        cpu.write(r, result);
                    }
                }
                IInst::CmovSelect { lbs, value, old, dst, .. } => {
                    let test = self.accs[acc.index()];
                    let taken = (test & 1 == 1) == lbs;
                    let result = if taken {
                        self.val(value, acc, cpu)
                    } else {
                        cpu.read(old)
                    };
                    self.accs[acc.index()] = result;
                    if let Some(r) = dst {
                        cpu.write(r, result);
                    }
                }
                IInst::Load { width, addr, disp, dst, .. } => {
                    d.class = InstClass::Load;
                    let a = self
                        .val(addr, acc, cpu)
                        .wrapping_add(disp as i64 as u64);
                    match check_align(a, width, self.config.align) {
                        Err(trap) => {
                            exit = Some(FragExit::Trap {
                                vaddr: meta.vaddr,
                                trap,
                                state: self.recover_state(cache, fid, idx as u32, cpu),
                            });
                        }
                        Ok(()) => {
                            d.mem_addr = Some(a);
                            let v = match width {
                                MemWidth::U8 => mem.read_u8(a) as u64,
                                MemWidth::U16 => mem.read_u16(a) as u64,
                                MemWidth::I32 => mem.read_u32(a) as i32 as i64 as u64,
                                MemWidth::U64 => mem.read_u64(a),
                            };
                            self.accs[acc.index()] = v;
                            if let Some(r) = dst {
                                cpu.write(r, v);
                            }
                        }
                    }
                }
                IInst::Store { width, addr, disp, value, .. } => {
                    d.class = InstClass::Store;
                    let a = self
                        .val(addr, acc, cpu)
                        .wrapping_add(disp as i64 as u64);
                    match check_align(a, width, self.config.align) {
                        Err(trap) => {
                            exit = Some(FragExit::Trap {
                                vaddr: meta.vaddr,
                                trap,
                                state: self.recover_state(cache, fid, idx as u32, cpu),
                            });
                        }
                        Ok(()) => {
                            d.mem_addr = Some(a);
                            let v = self.val(value, acc, cpu);
                            match width {
                                MemWidth::U8 => mem.write_u8(a, v as u8),
                                MemWidth::U16 => mem.write_u16(a, v as u16),
                                MemWidth::I32 => mem.write_u32(a, v as u32),
                                MemWidth::U64 => mem.write_u64(a, v),
                            }
                        }
                    }
                }
                IInst::CopyToGpr { dst, .. } => {
                    cpu.write(dst, self.accs[acc.index()]);
                }
                IInst::CopyFromGpr { src, .. } => {
                    self.accs[acc.index()] = cpu.read(src);
                }
                IInst::CondBranch { cond, src, target, .. } => {
                    d.class = InstClass::CondBranch;
                    let taken = cond.eval(self.val(src, acc, cpu));
                    d.taken = taken;
                    if taken {
                        let ITarget::Addr(a) = target else {
                            panic!("unresolved local branch target")
                        };
                        d.next_pc = a;
                        goto = Some(a);
                    }
                }
                IInst::Branch { target } => {
                    d.class = InstClass::Branch;
                    d.taken = true;
                    let ITarget::Addr(a) = target else {
                        panic!("unresolved branch target")
                    };
                    d.next_pc = a;
                    goto = Some(a);
                }
                IInst::IndirectJump { kind, addr, .. } => {
                    debug_assert_eq!(kind, JumpKind::Ret, "only returns reach the engine");
                    d.class = InstClass::Return;
                    let actual_v = self.val(addr, acc, cpu) & !3u64;
                    d.v_target = actual_v;
                    match self.ras_pop() {
                        Some((v, i)) if v == actual_v => {
                            self.stats.ras_hits += 1;
                            d.taken = true;
                            d.next_pc = i;
                            // A stale I-address (the cache was flushed since
                            // the push) behaves like an unresolved push.
                            let stale =
                                i != DISPATCH_IADDR && cache.lookup_iaddr(i).is_none();
                            if i == DISPATCH_IADDR || stale {
                                // Unresolved push: architecturally correct,
                                // goes through dispatch.
                                sink.retire(&d);
                                let target = cache.lookup(actual_v);
                                let ti = target
                                    .map(|t| cache.fragment(t).istart);
                                self.run_dispatch(actual_v, ti, sink);
                                match target {
                                    Some(t) => {
                                        fid = t;
                                        idx = 0;
                                        cache.fragment_mut(fid).entries += 1;
                                        self.stats.fragment_entries += 1;
                                        continue;
                                    }
                                    None => {
                                        return FragExit::NotTranslated { vtarget: actual_v }
                                    }
                                }
                            }
                            goto = Some(i);
                        }
                        _ => {
                            // Mismatch: fall through to the dispatch
                            // instruction that follows the return.
                            self.stats.ras_misses += 1;
                            d.taken = false;
                        }
                    }
                }
                IInst::SetVpcBase { .. } => {}
                IInst::LoadEmbeddedTarget { vaddr, .. } => {
                    self.accs[acc.index()] = vaddr;
                }
                IInst::SaveVReturn { dst, vaddr } => {
                    cpu.write(dst, vaddr);
                }
                IInst::PushDualRas { vret, iret } => {
                    d.class = InstClass::DualRasPush;
                    let ITarget::Addr(i) = iret else {
                        panic!("unresolved dual-RAS push")
                    };
                    d.ras_pair = Some((vret, i));
                    self.ras_push(vret, i);
                }
                IInst::CallTranslatorIfCond { cond, src, vtarget, .. } => {
                    d.class = InstClass::CondBranch;
                    let taken = cond.eval(self.val(src, acc, cpu));
                    d.taken = taken;
                    if taken {
                        d.next_pc = DISPATCH_IADDR;
                        exit = Some(FragExit::NotTranslated { vtarget });
                    }
                }
                IInst::CallTranslator { vtarget } => {
                    d.class = InstClass::Branch;
                    d.taken = true;
                    d.next_pc = DISPATCH_IADDR;
                    exit = Some(FragExit::NotTranslated { vtarget });
                }
                IInst::Dispatch { src, .. } => {
                    d.class = InstClass::Branch;
                    d.taken = true;
                    d.next_pc = DISPATCH_IADDR;
                    let v = self.val(src, acc, cpu) & !3u64;
                    sink.retire(&d);
                    let target = cache.lookup(v);
                    let ti = target.map(|t| cache.fragment(t).istart);
                    self.run_dispatch(v, ti, sink);
                    match target {
                        Some(t) => {
                            fid = t;
                            idx = 0;
                            cache.fragment_mut(fid).entries += 1;
                            self.stats.fragment_entries += 1;
                            continue;
                        }
                        None => return FragExit::NotTranslated { vtarget: v },
                    }
                }
                IInst::GenTrap => {
                    let state = self.recover_state(cache, fid, idx as u32, cpu);
                    exit = Some(FragExit::Trap {
                        vaddr: meta.vaddr,
                        trap: Trap::GenTrap {
                            code: state[Reg::A0.number() as usize],
                        },
                        state,
                    });
                }
                IInst::PutChar { src, .. } => {
                    let b = self.val(src, acc, cpu) as u8;
                    self.output.push(b);
                }
                IInst::Halt => {
                    exit = Some(FragExit::Halt);
                }
            }

            sink.retire(&d);
            if let Some(e) = exit {
                return e;
            }
            match goto {
                None => idx += 1,
                Some(a) => match cache.lookup_iaddr(a) {
                    Some(t) => {
                        fid = t;
                        idx = 0;
                        cache.fragment_mut(fid).entries += 1;
                        self.stats.fragment_entries += 1;
                    }
                    None => panic!("branch to unmapped I-address {a:#x}"),
                },
            }
        }
    }
}

fn check_align(addr: u64, width: MemWidth, policy: AlignPolicy) -> Result<(), Trap> {
    let bytes = width.bytes();
    if policy == AlignPolicy::Enforce && bytes > 1 && addr % bytes as u64 != 0 {
        return Err(Trap::UnalignedAccess {
            addr,
            required: bytes,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::IMeta;
    use alpha_isa::OperateOp;
    use ildp_isa::IsaForm;

    /// A sink that records every retired instruction.
    #[derive(Default)]
    struct Recorder(Vec<DynInst>);

    impl TraceSink for Recorder {
        fn retire(&mut self, inst: &DynInst) {
            self.0.push(*inst);
        }
    }

    fn meta(vaddr: u64, vcount: u16) -> IMeta {
        IMeta {
            vaddr,
            vcount,
            category: None,
            is_chain: false,
        }
    }

    fn install_simple(cache: &mut TranslationCache, vstart: u64, insts: Vec<IInst>) -> FragmentId {
        let m: Vec<IMeta> = insts.iter().map(|_| meta(vstart, 1)).collect();
        let n = insts.len() as u32;
        cache.install(vstart, IsaForm::Modified, insts, m, n, HashMap::new())
    }

    #[test]
    fn dispatch_expands_to_configured_cost() {
        let mut cache = TranslationCache::new();
        // Fragment A dispatches to V-address 0x2000; fragment B is there.
        install_simple(
            &mut cache,
            0x2000,
            vec![IInst::SetVpcBase { vaddr: 0x2000 }, IInst::Halt],
        );
        let a = install_simple(
            &mut cache,
            0x1000,
            vec![
                IInst::Op {
                    op: OperateOp::Addq,
                    acc: Acc::new(0),
                    lhs: ASrc::Imm(0x2000),
                    rhs: ASrc::Imm(0),
                    dst: Some(Reg::new(5)),
                },

                IInst::Dispatch {
                    acc: Acc::new(0),
                    src: ASrc::Gpr(Reg::new(5)),
                },
            ],
        );
        let mut engine = Engine::new(EngineConfig::default());
        let mut cpu = CpuState::new(0);
        let mut mem = Memory::new();
        let mut rec = Recorder::default();
        let exit = engine.run(&mut cache, a, &mut cpu, &mut mem, u64::MAX, &mut rec);
        assert_eq!(exit, FragExit::Halt);
        assert_eq!(engine.stats.dispatches, 1);
        // The dispatch expansion contributes exactly DISPATCH_COST_INSTS
        // records at the shared dispatch PC range.
        let dispatch_records = rec
            .0
            .iter()
            .filter(|d| d.pc >= DISPATCH_IADDR && d.pc < DISPATCH_IADDR + 0x1000)
            .count();
        assert_eq!(dispatch_records, DISPATCH_COST_INSTS as usize);
        // Its final record is the shared indirect jump, landing on B.
        let last = rec
            .0
            .iter()
            .rev()
            .find(|d| d.pc >= DISPATCH_IADDR && d.pc < DISPATCH_IADDR + 0x1000)
            .unwrap();
        assert_eq!(last.class, InstClass::IndirectJump);
    }

    #[test]
    fn dispatch_to_untranslated_returns_vtarget() {
        let mut cache = TranslationCache::new();
        let a = install_simple(
            &mut cache,
            0x1000,
            vec![
                IInst::Op {
                    op: OperateOp::Addq,
                    acc: Acc::new(0),
                    lhs: ASrc::Imm(0x44),
                    rhs: ASrc::Imm(0),
                    dst: Some(Reg::new(5)),
                },
                IInst::Dispatch {
                    acc: Acc::new(0),
                    src: ASrc::Gpr(Reg::new(5)),
                },
            ],
        );
        let mut engine = Engine::new(EngineConfig::default());
        let mut cpu = CpuState::new(0);
        let mut mem = Memory::new();
        let exit = engine.run(&mut cache, a, &mut cpu, &mut mem, u64::MAX, &mut NullSink);
        assert_eq!(exit, FragExit::NotTranslated { vtarget: 0x44 });
    }

    #[test]
    fn architectural_ras_round_trip() {
        let mut engine = Engine::new(EngineConfig::default());
        engine.ras_push(0x10, 0x100);
        engine.ras_push(0x20, 0x200);
        assert_eq!(engine.ras_pop(), Some((0x20, 0x200)));
        assert_eq!(engine.ras_pop(), Some((0x10, 0x100)));
        assert_eq!(engine.ras_pop(), None);
    }

    #[test]
    fn putchar_collects_output() {
        let mut cache = TranslationCache::new();
        let a = install_simple(
            &mut cache,
            0x1000,
            vec![
                IInst::Op {
                    op: OperateOp::Addq,
                    acc: Acc::new(1),
                    lhs: ASrc::Imm(b'h' as i16),
                    rhs: ASrc::Imm(0),
                    dst: None,
                },
                IInst::PutChar {
                    acc: Acc::new(1),
                    src: ASrc::Acc,
                },
                IInst::Halt,
            ],
        );
        let mut engine = Engine::new(EngineConfig::default());
        let mut cpu = CpuState::new(0);
        let mut mem = Memory::new();
        engine.run(&mut cache, a, &mut cpu, &mut mem, u64::MAX, &mut NullSink);
        assert_eq!(engine.output, b"h");
    }

    #[test]
    fn budget_stops_infinite_fragment_loops() {
        let mut cache = TranslationCache::new();
        // A fragment that branches back to itself forever.
        let insts = vec![
            IInst::SetVpcBase { vaddr: 0x1000 },
            IInst::CallTranslator { vtarget: 0x1000 }, // self-patch on install
        ];
        let m: Vec<IMeta> = vec![meta(0x1000, 1), meta(0x1000, 1)];
        let a = cache.install(0x1000, IsaForm::Modified, insts, m, 2, HashMap::new());
        let mut engine = Engine::new(EngineConfig::default());
        let mut cpu = CpuState::new(0);
        let mut mem = Memory::new();
        let exit = engine.run(&mut cache, a, &mut cpu, &mut mem, 500, &mut NullSink);
        assert_eq!(exit, FragExit::Budget);
        assert!(engine.stats.v_insts >= 500);
    }
}
