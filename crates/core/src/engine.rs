//! The translated-code execution engine.
//!
//! Stands in for the ILDP hardware's functional execution of I-ISA
//! fragments: it executes installed fragments against the architected
//! state, streams one [`DynInst`] record per retired instruction into a
//! [`TraceSink`] (the timing models), performs the runtime halves of
//! fragment chaining — the architectural dual-address RAS, the shared
//! dispatch code (modelled at its paper cost of 20 instructions), and
//! `call-translator` exits back to the VM — and delivers **precise traps**
//! by merging accumulator-resident architected values from the fragment's
//! recovery tables (paper §2.2).

use crate::classify::{CategoryCounts, UsageCat};
use crate::error::VmError;
use crate::fragment::{FragmentId, TranslationCache, DISPATCH_COST_INSTS, DISPATCH_IADDR};
use alpha_isa::{AlignPolicy, CpuState, JumpKind, Memory, Reg, Trap};
use ildp_isa::{ASrc, Acc, IInst, ITarget, MemWidth};
use ildp_uarch::{DynInst, InstClass};

/// Consumes the retired-instruction stream.
///
/// The engine's run loop is monomorphized over the sink, so a sink that
/// declares [`TRACING`](TraceSink::TRACING) `false` compiles the whole
/// record-construction path out of the loop — functional runs pay nothing
/// for the tracing machinery.
pub trait TraceSink {
    /// Whether this sink consumes records. When `false` the engine skips
    /// building [`DynInst`]s entirely and never calls
    /// [`retire`](TraceSink::retire); trace output is unaffected for any
    /// sink that leaves this `true`.
    const TRACING: bool = true;

    /// Receives one retired instruction.
    fn retire(&mut self, inst: &DynInst);
}

/// A sink that discards the trace (functional-only runs).
#[derive(Clone, Copy, Default, Debug)]
pub struct NullSink;

impl TraceSink for NullSink {
    const TRACING: bool = false;

    fn retire(&mut self, _inst: &DynInst) {}
}

impl<T: ildp_uarch::TimingModel> TraceSink for T {
    fn retire(&mut self, inst: &DynInst) {
        ildp_uarch::TimingModel::retire(self, inst);
    }
}

/// Why the engine returned to the VM.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FragExit {
    /// Control reached a V-address with no translated fragment (a
    /// `call-translator` exit or a dispatch miss).
    NotTranslated {
        /// The continuation V-address.
        vtarget: u64,
    },
    /// The program halted.
    Halt,
    /// The engine's V-ISA instruction budget was exhausted mid-run.
    Budget,
    /// A precise trap: the faulting V-address, the condition, and the
    /// fully recovered architected register state.
    Trap {
        /// Faulting V-ISA instruction address.
        vaddr: u64,
        /// The trap condition.
        trap: Trap,
        /// Recovered architected registers (r0..r31).
        state: Box<[u64; 32]>,
    },
    /// A guest store was about to write a page holding translated source
    /// code (self-modifying code). The store has **not** executed; the VM
    /// invalidates the affected fragments and re-runs the store
    /// interpretively from `vaddr` with the recovered precise state —
    /// exactly the precise-trap discipline, reused for invalidation.
    SmcStore {
        /// Guest address the store targets.
        addr: u64,
        /// Width of the store in bytes.
        len: u64,
        /// V-address of the store instruction (the resume point).
        vaddr: u64,
        /// Recovered architected registers (r0..r31) before the store.
        state: Box<[u64; 32]>,
    },
    /// The per-dispatch fuel budget ([`EngineConfig::fuel`]) ran out. The
    /// engine preempts only at fragment boundaries, where the GPR file is
    /// architecturally complete, so the VM resumes interpretively at
    /// `vtarget` with no recovery merge.
    Preempted {
        /// Entry V-address of the fragment that was about to run.
        vtarget: u64,
    },
    /// A structural invariant failed at runtime — a corrupted or stale
    /// fragment reached execution. The VM surfaces this as
    /// [`VmExit::Fault`](crate::VmExit::Fault).
    Fault {
        /// What failed.
        error: VmError,
    },
}

/// Execution statistics accumulated by the engine (the dynamic side of
/// Table 2 and Figure 7).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct EngineStats {
    /// Total I-ISA instructions executed (including dispatch expansion).
    pub executed: u64,
    /// Chaining-overhead instructions executed (including dispatch).
    pub chain_executed: u64,
    /// Copy instructions executed.
    pub copies_executed: u64,
    /// V-ISA instructions retired by translated code.
    pub v_insts: u64,
    /// Dynamic usage-category counts (Figure 7), array-backed and shared
    /// with the static side via [`CategoryCounts`].
    pub categories: CategoryCounts,
    /// Shared-dispatch executions.
    pub dispatches: u64,
    /// Architectural dual-RAS predictions that matched.
    pub ras_hits: u64,
    /// Architectural dual-RAS mismatches (fell through to dispatch).
    pub ras_misses: u64,
    /// Fragment entries.
    pub fragment_entries: u64,
}

impl EngineStats {
    /// Dynamic count for one usage category.
    pub fn category(&self, cat: UsageCat) -> u64 {
        self.categories.category(cat)
    }

    /// Total classified values retired (the Figure 7 denominator).
    pub fn categories_total(&self) -> u64 {
        self.categories.total()
    }
}

/// Engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Instructions charged per shared-dispatch execution (paper: 20).
    pub dispatch_cost: u32,
    /// Architectural dual-RAS depth.
    pub ras_depth: usize,
    /// Alignment policy for translated memory accesses.
    pub align: AlignPolicy,
    /// Watchdog fuel: the maximum V-ISA instructions one [`Engine::run`]
    /// dispatch may retire before being preempted at the next fragment
    /// boundary ([`FragExit::Preempted`]). `None` disables the watchdog.
    pub fuel: Option<u64>,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            dispatch_cost: DISPATCH_COST_INSTS,
            ras_depth: 8,
            align: AlignPolicy::Enforce,
            fuel: None,
        }
    }
}

/// Base address of the dispatch code's hash-table probes (for D-cache
/// behavior of the dispatch loads).
const DISPATCH_TABLE_BASE: u64 = 0xE000_0000;

/// One architectural dual-RAS entry: the architected (V, I) return-address
/// pair, plus a fast-path annotation — the fragment the I-address enters,
/// stamped with the cache epoch it was captured in. The link is followed
/// directly on a RAS hit when the epoch still matches; a stale or absent
/// link falls back to dispatch, exactly as the architected pair alone
/// would.
#[derive(Clone, Copy, Default, Debug)]
struct RasEntry {
    v: u64,
    i: u64,
    link: Option<FragmentId>,
    epoch: u64,
}

/// The fragment execution engine. See the module documentation.
#[derive(Clone, Debug)]
pub struct Engine {
    config: EngineConfig,
    accs: [u64; Acc::MAX_ACCUMULATORS],
    ras: Vec<RasEntry>,
    ras_top: usize,
    ras_live: usize,
    /// Bytes written by `putchar`.
    pub output: Vec<u8>,
    /// Accumulated statistics.
    pub stats: EngineStats,
}

impl Engine {
    /// Creates an engine.
    pub fn new(config: EngineConfig) -> Engine {
        Engine {
            config,
            accs: [0; Acc::MAX_ACCUMULATORS],
            ras: vec![RasEntry::default(); config.ras_depth],
            ras_top: 0,
            ras_live: 0,
            output: Vec::new(),
            stats: EngineStats::default(),
        }
    }

    fn ras_push(&mut self, entry: RasEntry) {
        self.ras_top = (self.ras_top + 1) % self.ras.len();
        self.ras[self.ras_top] = entry;
        self.ras_live = (self.ras_live + 1).min(self.ras.len());
    }

    fn ras_pop(&mut self) -> Option<RasEntry> {
        if self.ras_live == 0 {
            return None;
        }
        let entry = self.ras[self.ras_top];
        self.ras_top = (self.ras_top + self.ras.len() - 1) % self.ras.len();
        self.ras_live -= 1;
        Some(entry)
    }

    #[inline]
    fn val(&self, src: ASrc, acc: Acc, cpu: &CpuState) -> u64 {
        match src {
            ASrc::Acc => self.accs[acc.index()],
            ASrc::Gpr(r) => cpu.read(r),
            ASrc::Imm(v) => v as i64 as u64,
        }
    }

    /// Recovers the full architected register state at a PEI (paper §2.2):
    /// the GPR file merged with accumulator-resident values.
    fn recover_state(
        &self,
        cache: &TranslationCache,
        fid: FragmentId,
        idx: u32,
        cpu: &CpuState,
    ) -> Box<[u64; 32]> {
        let mut state = Box::new(cpu.registers());
        if let Some(entries) = cache.fragment(fid).recovery.get(&idx) {
            for e in entries {
                state[e.reg.number() as usize] = self.accs[e.acc.index()];
            }
        }
        state
    }

    /// Models one pass through the shared dispatch code (paper: 20
    /// instructions, ending in the indirect jump that `no_pred` chaining
    /// stresses): charges its instruction cost to the statistics and, for
    /// tracing sinks, streams the dispatch sequence's retire records —
    /// `target_iaddr` is the I-address the final indirect jump lands on
    /// (`None` models a miss, which re-enters the dispatch address). The
    /// caller decides where control actually continues.
    fn run_dispatch<S: TraceSink>(
        &mut self,
        vtarget: u64,
        target_iaddr: Option<u64>,
        sink: &mut S,
    ) {
        self.stats.dispatches += 1;
        let n = self.config.dispatch_cost.max(2);
        self.stats.executed += n as u64;
        self.stats.chain_executed += n as u64;
        if !S::TRACING {
            return;
        }
        // A short dependence chain: hash the V-PC, probe the translation
        // table (two loads), compare, then jump indirect.
        let hash = vtarget.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 48;
        let probe = DISPATCH_TABLE_BASE + (hash & 0xfff) * 16;
        for k in 0..n {
            let pc = DISPATCH_IADDR + (k as u64) * 4;
            let mut d = DynInst::alu(pc, 4);
            d.vcount = 0;
            // Thread a dependence chain through scratch register names
            // 200.. so the dispatch has realistic ILP (~4-deep chain).
            let scratch = 200 + (k % 4) as u8;
            d.dst = Some(scratch);
            if k > 0 {
                d.srcs[0] = Some(200 + ((k - 1) % 4) as u8);
            }
            if k == 2 || k == 3 {
                d.class = InstClass::Load;
                d.mem_addr = Some(probe + (k as u64 - 2) * 8);
            }
            if k == n - 1 {
                d.class = InstClass::IndirectJump;
                d.dst = None;
                d.next_pc = target_iaddr.unwrap_or(DISPATCH_IADDR);
                d.taken = true;
            }
            sink.retire(&d);
        }
    }

    /// Executes translated code starting at `entry` until the program
    /// halts, traps, or reaches an untranslated continuation.
    ///
    /// `cpu` is the architected GPR file (`cpu.pc` is not used while in
    /// translated code — the implementation PC sequences fragments, as in
    /// the paper's §2.2).
    ///
    /// Monomorphized over the sink: with a non-tracing sink
    /// ([`NullSink`]), record construction compiles out entirely.
    pub fn run<S: TraceSink>(
        &mut self,
        cache: &mut TranslationCache,
        entry: FragmentId,
        cpu: &mut CpuState,
        mem: &mut Memory,
        budget_v: u64,
        sink: &mut S,
    ) -> FragExit {
        let mut fid = entry;
        // Watchdog: preempt at the next fragment boundary once this many
        // V-instructions have retired in this dispatch.
        let fuel_limit = self.config.fuel.map(|f| self.stats.v_insts + f.max(1));
        // Every transfer of control between fragments converges on the top
        // of this loop: it is the single site that books fragment entries,
        // and it re-borrows the new fragment's instruction / metadata /
        // link / template slices once, so the per-instruction loop below
        // indexes flat slices instead of re-resolving the fragment through
        // the cache on every iteration.
        'fragment: loop {
            // A stale direct path into an invalidated slot is a contained
            // fault, not a panic: the unlink paths should make this
            // unreachable, but a resilient engine verifies.
            let vstart = match cache.try_fragment_mut(fid) {
                None => {
                    return FragExit::Fault {
                        error: VmError::DeadFragment { fragment: fid.0 },
                    }
                }
                Some(f) => f.vstart,
            };
            // Budget and fuel are checked only at fragment boundaries,
            // where the GPR file is architecturally complete and the
            // V-PC is the fragment entry — both exits leave the VM
            // resumable. Every inter-fragment transfer converges on this
            // loop top and `idx` below only moves forward, so the
            // overshoot is bounded by one fragment.
            if self.stats.v_insts >= budget_v {
                cpu.pc = vstart;
                return FragExit::Budget;
            }
            if let Some(limit) = fuel_limit {
                if self.stats.v_insts >= limit {
                    return FragExit::Preempted { vtarget: vstart };
                }
            }
            {
                let f = cache.fragment_mut(fid);
                f.entries += 1;
                f.referenced = true;
            }
            self.stats.fragment_entries += 1;
            let frag = cache.fragment(fid);
            let insts = frag.insts.as_slice();
            let metas = frag.meta.as_slice();
            let links = frag.links.as_slice();
            let templates = frag.templates.as_slice();
            let mut idx: usize = 0;
            loop {
                let Some(&inst) = insts.get(idx) else {
                    // Ran off the fragment's end without a block terminal —
                    // only reachable through corruption.
                    return FragExit::Fault {
                        error: VmError::FragmentOverrun { fragment: fid.0 },
                    };
                };
                let meta = metas[idx];
                let link = links[idx];

                // The install-time template carries every static record field;
                // only dynamic outcomes (taken, mem_addr, v_target, the taken
                // next_pc) are patched below.
                let mut d = if S::TRACING {
                    templates[idx]
                } else {
                    DynInst::alu(0, 0)
                };

                self.stats.executed += 1;
                self.stats.v_insts += meta.vcount as u64;
                if meta.is_chain {
                    self.stats.chain_executed += 1;
                }
                if let Some(cat) = meta.category {
                    self.stats.categories.bump(cat);
                }

                // Control decision made while executing; `None` means fall
                // through to idx + 1.
                let mut goto: Option<FragmentId> = None;
                let mut exit: Option<FragExit> = None;

                match inst {
                    IInst::Op {
                        op,
                        acc,
                        lhs,
                        rhs,
                        dst,
                    } => {
                        let a = self.val(lhs, acc, cpu);
                        let b = self.val(rhs, acc, cpu);
                        let result = if op.is_cmov() {
                            // Defensive: cmov ops in Op form select against the
                            // current accumulator value.
                            if op.cmov_taken(a) {
                                b
                            } else {
                                self.accs[acc.index()]
                            }
                        } else {
                            op.eval(a, b)
                        };
                        self.accs[acc.index()] = result;
                        if let Some(r) = dst {
                            cpu.write(r, result);
                        }
                    }
                    IInst::AddHigh { acc, src, imm, dst } => {
                        let base = self.val(src, acc, cpu);
                        let result = base.wrapping_add(((imm as i64) << 16) as u64);
                        self.accs[acc.index()] = result;
                        if let Some(r) = dst {
                            cpu.write(r, result);
                        }
                    }
                    IInst::CmovSelect {
                        acc,
                        lbs,
                        value,
                        old,
                        dst,
                    } => {
                        let test = self.accs[acc.index()];
                        let taken = (test & 1 == 1) == lbs;
                        let result = if taken {
                            self.val(value, acc, cpu)
                        } else {
                            cpu.read(old)
                        };
                        self.accs[acc.index()] = result;
                        if let Some(r) = dst {
                            cpu.write(r, result);
                        }
                    }
                    IInst::Load {
                        acc,
                        width,
                        addr,
                        disp,
                        dst,
                    } => {
                        let a = self.val(addr, acc, cpu).wrapping_add(disp as i64 as u64);
                        match check_align(a, width, self.config.align) {
                            Err(trap) => {
                                exit = Some(FragExit::Trap {
                                    vaddr: meta.vaddr,
                                    trap,
                                    state: self.recover_state(cache, fid, idx as u32, cpu),
                                });
                            }
                            Ok(()) => {
                                if S::TRACING {
                                    d.mem_addr = Some(a);
                                }
                                let v = match width {
                                    MemWidth::U8 => mem.read_u8(a) as u64,
                                    MemWidth::U16 => mem.read_u16(a) as u64,
                                    MemWidth::I32 => mem.read_u32(a) as i32 as i64 as u64,
                                    MemWidth::U64 => mem.read_u64(a),
                                };
                                self.accs[acc.index()] = v;
                                if let Some(r) = dst {
                                    cpu.write(r, v);
                                }
                            }
                        }
                    }
                    IInst::Store {
                        acc,
                        width,
                        addr,
                        disp,
                        value,
                    } => {
                        let a = self.val(addr, acc, cpu).wrapping_add(disp as i64 as u64);
                        match check_align(a, width, self.config.align) {
                            Err(trap) => {
                                exit = Some(FragExit::Trap {
                                    vaddr: meta.vaddr,
                                    trap,
                                    state: self.recover_state(cache, fid, idx as u32, cpu),
                                });
                            }
                            Ok(()) => {
                                let len = width.bytes() as u64;
                                if cache.smc_hit(a, len) {
                                    // Self-modifying code: surface the store
                                    // *before* it executes, with precise state
                                    // (the store's recovery table), and roll
                                    // back its retirement accounting — the VM
                                    // re-runs it interpretively after
                                    // invalidating the affected fragments.
                                    self.stats.executed -= 1;
                                    self.stats.v_insts -= meta.vcount as u64;
                                    return FragExit::SmcStore {
                                        addr: a,
                                        len,
                                        vaddr: meta.vaddr,
                                        state: self.recover_state(cache, fid, idx as u32, cpu),
                                    };
                                }
                                if S::TRACING {
                                    d.mem_addr = Some(a);
                                }
                                let v = self.val(value, acc, cpu);
                                match width {
                                    MemWidth::U8 => mem.write_u8(a, v as u8),
                                    MemWidth::U16 => mem.write_u16(a, v as u16),
                                    MemWidth::I32 => mem.write_u32(a, v as u32),
                                    MemWidth::U64 => mem.write_u64(a, v),
                                }
                            }
                        }
                    }
                    IInst::CopyToGpr { acc, dst } => {
                        self.stats.copies_executed += 1;
                        cpu.write(dst, self.accs[acc.index()]);
                    }
                    IInst::CopyFromGpr { acc, src } => {
                        self.stats.copies_executed += 1;
                        self.accs[acc.index()] = cpu.read(src);
                    }
                    IInst::CondBranch {
                        acc,
                        cond,
                        src,
                        target,
                    } => {
                        let taken = cond.eval(self.val(src, acc, cpu));
                        if taken {
                            // Every resolved branch keeps its direct link in
                            // lockstep with the instruction word; a missing
                            // link means the target fragment vanished without
                            // this site being un-patched.
                            match link {
                                Some(t) => {
                                    if S::TRACING {
                                        d.taken = true;
                                        if let ITarget::Addr(a) = target {
                                            d.next_pc = a;
                                        }
                                    }
                                    goto = Some(t);
                                }
                                None => {
                                    exit = Some(FragExit::Fault {
                                        error: VmError::UnlinkedTransfer {
                                            fragment: fid.0,
                                            index: idx as u32,
                                        },
                                    });
                                }
                            }
                        }
                    }
                    IInst::Branch { .. } => {
                        // class, taken and next_pc are static — already in the
                        // template.
                        match link {
                            Some(t) => goto = Some(t),
                            None => {
                                exit = Some(FragExit::Fault {
                                    error: VmError::UnlinkedTransfer {
                                        fragment: fid.0,
                                        index: idx as u32,
                                    },
                                });
                            }
                        }
                    }
                    IInst::IndirectJump { acc, kind, addr } => {
                        debug_assert_eq!(kind, JumpKind::Ret, "only returns reach the engine");
                        let actual_v = self.val(addr, acc, cpu) & !3u64;
                        if S::TRACING {
                            d.v_target = actual_v;
                        }
                        match self.ras_pop() {
                            Some(e) if e.v == actual_v => {
                                self.stats.ras_hits += 1;
                                if S::TRACING {
                                    d.taken = true;
                                    d.next_pc = e.i;
                                }
                                // The direct link is valid only within the epoch
                                // it was captured in: a stale link (the cache was
                                // flushed since the push) and an unresolved push
                                // (no link) both go through dispatch,
                                // architecturally correct either way.
                                match e.link.filter(|_| e.epoch == cache.epoch()) {
                                    Some(t) => goto = Some(t),
                                    None => {
                                        if S::TRACING {
                                            sink.retire(&d);
                                        }
                                        let target = cache.lookup(actual_v);
                                        let ti = target.map(|t| cache.fragment(t).istart);
                                        self.run_dispatch(actual_v, ti, sink);
                                        match target {
                                            Some(t) => {
                                                fid = t;
                                                continue 'fragment;
                                            }
                                            None => {
                                                return FragExit::NotTranslated {
                                                    vtarget: actual_v,
                                                }
                                            }
                                        }
                                    }
                                }
                            }
                            _ => {
                                // Mismatch: fall through to the dispatch
                                // instruction that follows the return (the
                                // template's taken stays false).
                                self.stats.ras_misses += 1;
                            }
                        }
                    }
                    IInst::SetVpcBase { .. } => {}
                    IInst::LoadEmbeddedTarget { acc, vaddr } => {
                        self.accs[acc.index()] = vaddr;
                    }
                    IInst::SaveVReturn { dst, vaddr } => {
                        cpu.write(dst, vaddr);
                    }
                    IInst::PushDualRas { vret, iret } => {
                        // class and ras_pair are static — in the template.
                        match iret {
                            ITarget::Addr(i) => self.ras_push(RasEntry {
                                v: vret,
                                i,
                                link,
                                epoch: cache.epoch(),
                            }),
                            ITarget::Local(_) => {
                                exit = Some(FragExit::Fault {
                                    error: VmError::UnresolvedDualRas {
                                        fragment: fid.0,
                                        index: idx as u32,
                                    },
                                });
                            }
                        }
                    }
                    IInst::CallTranslatorIfCond {
                        acc,
                        cond,
                        src,
                        vtarget,
                    } => {
                        let taken = cond.eval(self.val(src, acc, cpu));
                        if S::TRACING {
                            d.taken = taken;
                            if taken {
                                d.next_pc = DISPATCH_IADDR;
                            }
                        }
                        if taken {
                            exit = Some(FragExit::NotTranslated { vtarget });
                        }
                    }
                    IInst::CallTranslator { vtarget } => {
                        // class, taken and next_pc are static — in the template.
                        exit = Some(FragExit::NotTranslated { vtarget });
                    }
                    IInst::Dispatch { acc, src } => {
                        let v = self.val(src, acc, cpu) & !3u64;
                        if S::TRACING {
                            sink.retire(&d);
                        }
                        let target = cache.lookup(v);
                        let ti = target.map(|t| cache.fragment(t).istart);
                        self.run_dispatch(v, ti, sink);
                        match target {
                            Some(t) => {
                                fid = t;
                                continue 'fragment;
                            }
                            None => return FragExit::NotTranslated { vtarget: v },
                        }
                    }
                    IInst::GenTrap => {
                        let state = self.recover_state(cache, fid, idx as u32, cpu);
                        exit = Some(FragExit::Trap {
                            vaddr: meta.vaddr,
                            trap: Trap::GenTrap {
                                code: state[Reg::A0.number() as usize],
                            },
                            state,
                        });
                    }
                    IInst::PutChar { acc, src } => {
                        let b = self.val(src, acc, cpu) as u8;
                        self.output.push(b);
                    }
                    IInst::Halt => {
                        exit = Some(FragExit::Halt);
                    }
                }

                if S::TRACING {
                    sink.retire(&d);
                }
                if let Some(e) = exit {
                    return e;
                }
                match goto {
                    None => idx += 1,
                    Some(t) => {
                        fid = t;
                        continue 'fragment;
                    }
                }
            }
        }
    }

    /// Severs every engine-side fast path into an invalidated fragment:
    /// dual-RAS entries whose direct link names it lose the link and fall
    /// back to dispatch on a hit. The architected (V, I) pair is kept —
    /// the stale I-address simply misses the lookup map, exactly as after
    /// a flush.
    pub fn unlink_fragment(&mut self, id: FragmentId) {
        for e in &mut self.ras {
            if e.link == Some(id) {
                e.link = None;
            }
        }
    }
}

fn check_align(addr: u64, width: MemWidth, policy: AlignPolicy) -> Result<(), Trap> {
    let bytes = width.bytes();
    if policy == AlignPolicy::Enforce && bytes > 1 && !addr.is_multiple_of(bytes as u64) {
        return Err(Trap::UnalignedAccess {
            addr,
            required: bytes,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::IMeta;
    use alpha_isa::OperateOp;
    use ildp_isa::IsaForm;
    use std::collections::HashMap;

    /// A sink that records every retired instruction.
    #[derive(Default)]
    struct Recorder(Vec<DynInst>);

    impl TraceSink for Recorder {
        fn retire(&mut self, inst: &DynInst) {
            self.0.push(*inst);
        }
    }

    fn meta(vaddr: u64, vcount: u16) -> IMeta {
        IMeta {
            vaddr,
            vcount,
            category: None,
            is_chain: false,
        }
    }

    fn install_simple(cache: &mut TranslationCache, vstart: u64, insts: Vec<IInst>) -> FragmentId {
        let m: Vec<IMeta> = insts.iter().map(|_| meta(vstart, 1)).collect();
        let n = insts.len() as u32;
        cache.install(vstart, IsaForm::Modified, insts, m, n, HashMap::new())
    }

    #[test]
    fn dispatch_expands_to_configured_cost() {
        let mut cache = TranslationCache::new();
        // Fragment A dispatches to V-address 0x2000; fragment B is there.
        install_simple(
            &mut cache,
            0x2000,
            vec![IInst::SetVpcBase { vaddr: 0x2000 }, IInst::Halt],
        );
        let a = install_simple(
            &mut cache,
            0x1000,
            vec![
                IInst::Op {
                    op: OperateOp::Addq,
                    acc: Acc::new(0),
                    lhs: ASrc::Imm(0x2000),
                    rhs: ASrc::Imm(0),
                    dst: Some(Reg::new(5)),
                },
                IInst::Dispatch {
                    acc: Acc::new(0),
                    src: ASrc::Gpr(Reg::new(5)),
                },
            ],
        );
        let mut engine = Engine::new(EngineConfig::default());
        let mut cpu = CpuState::new(0);
        let mut mem = Memory::new();
        let mut rec = Recorder::default();
        let exit = engine.run(&mut cache, a, &mut cpu, &mut mem, u64::MAX, &mut rec);
        assert_eq!(exit, FragExit::Halt);
        assert_eq!(engine.stats.dispatches, 1);
        // The dispatch expansion contributes exactly DISPATCH_COST_INSTS
        // records at the shared dispatch PC range.
        let dispatch_records = rec
            .0
            .iter()
            .filter(|d| d.pc >= DISPATCH_IADDR && d.pc < DISPATCH_IADDR + 0x1000)
            .count();
        assert_eq!(dispatch_records, DISPATCH_COST_INSTS as usize);
        // Its final record is the shared indirect jump, landing on B.
        let last = rec
            .0
            .iter()
            .rev()
            .find(|d| d.pc >= DISPATCH_IADDR && d.pc < DISPATCH_IADDR + 0x1000)
            .unwrap();
        assert_eq!(last.class, InstClass::IndirectJump);
    }

    #[test]
    fn dispatch_to_untranslated_returns_vtarget() {
        let mut cache = TranslationCache::new();
        let a = install_simple(
            &mut cache,
            0x1000,
            vec![
                IInst::Op {
                    op: OperateOp::Addq,
                    acc: Acc::new(0),
                    lhs: ASrc::Imm(0x44),
                    rhs: ASrc::Imm(0),
                    dst: Some(Reg::new(5)),
                },
                IInst::Dispatch {
                    acc: Acc::new(0),
                    src: ASrc::Gpr(Reg::new(5)),
                },
            ],
        );
        let mut engine = Engine::new(EngineConfig::default());
        let mut cpu = CpuState::new(0);
        let mut mem = Memory::new();
        let exit = engine.run(&mut cache, a, &mut cpu, &mut mem, u64::MAX, &mut NullSink);
        assert_eq!(exit, FragExit::NotTranslated { vtarget: 0x44 });
    }

    #[test]
    fn architectural_ras_round_trip() {
        let entry = |v, i| RasEntry {
            v,
            i,
            link: None,
            epoch: 0,
        };
        let mut engine = Engine::new(EngineConfig::default());
        engine.ras_push(entry(0x10, 0x100));
        engine.ras_push(entry(0x20, 0x200));
        let top = engine.ras_pop().unwrap();
        assert_eq!((top.v, top.i), (0x20, 0x200));
        let next = engine.ras_pop().unwrap();
        assert_eq!((next.v, next.i), (0x10, 0x100));
        assert!(engine.ras_pop().is_none());
    }

    #[test]
    fn putchar_collects_output() {
        let mut cache = TranslationCache::new();
        let a = install_simple(
            &mut cache,
            0x1000,
            vec![
                IInst::Op {
                    op: OperateOp::Addq,
                    acc: Acc::new(1),
                    lhs: ASrc::Imm(b'h' as i16),
                    rhs: ASrc::Imm(0),
                    dst: None,
                },
                IInst::PutChar {
                    acc: Acc::new(1),
                    src: ASrc::Acc,
                },
                IInst::Halt,
            ],
        );
        let mut engine = Engine::new(EngineConfig::default());
        let mut cpu = CpuState::new(0);
        let mut mem = Memory::new();
        engine.run(&mut cache, a, &mut cpu, &mut mem, u64::MAX, &mut NullSink);
        assert_eq!(engine.output, b"h");
    }

    #[test]
    fn budget_stops_infinite_fragment_loops() {
        let mut cache = TranslationCache::new();
        // A fragment that branches back to itself forever.
        let insts = vec![
            IInst::SetVpcBase { vaddr: 0x1000 },
            IInst::CallTranslator { vtarget: 0x1000 }, // self-patch on install
        ];
        let m: Vec<IMeta> = vec![meta(0x1000, 1), meta(0x1000, 1)];
        let a = cache.install(0x1000, IsaForm::Modified, insts, m, 2, HashMap::new());
        let mut engine = Engine::new(EngineConfig::default());
        let mut cpu = CpuState::new(0);
        let mut mem = Memory::new();
        let exit = engine.run(&mut cache, a, &mut cpu, &mut mem, 500, &mut NullSink);
        assert_eq!(exit, FragExit::Budget);
        assert!(engine.stats.v_insts >= 500);
    }
}
