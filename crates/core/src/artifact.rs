//! The shared warm-start translation cache (fragment artifact store).
//!
//! At fleet scale the translation tax is paid once per VM instance even
//! when thousands of instances run identical code. This module makes a
//! translated-and-verified fragment a *portable artifact*: keyed by the
//! digest of the exact guest bytes and collected path it was formed from
//! plus the digest of the [`Translator`] configuration that produced it,
//! serialized through the PR 4 [`wire`](crate::wire) layer, and held in
//! an in-process `Arc`-shared [`FragmentStore`] (optionally persisted to
//! disk). A second VM that heats the same region looks the key up and
//! installs the pre-verified fragment without re-translating or
//! re-verifying.
//!
//! Coherence: a shared entry is only ever *used* after the consuming VM
//! re-collects the region and recomputes the key from its **own** guest
//! memory — self-modified code or a different dynamic path produces a
//! different digest and simply misses. On top of that, SMC invalidation
//! and degradation-ladder demotion remove the victim's key from the
//! store ([`FragmentStore::remove`]), so a fragment known-bad on one VM
//! stops being served to new ones.

use crate::classify::CategoryCounts;
use crate::classify::UsageCat;
use crate::error::SnapshotError;
use crate::fragment::{IMeta, RecoveryEntry};
use crate::superblock::{CollectedFlow, SbEnd, Superblock};
use crate::translate::{ChainPolicy, TranslatedCode, Translator};
use crate::wire::{self, Cursor};
use alpha_isa::{JumpKind, OperateOp, Program, Reg};
use ildp_isa::{ASrc, Acc, CondKind, IInst, ITarget, IsaForm, MemWidth};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Magic number of a serialized fragment artifact (`"ILPF"`).
pub const ARTIFACT_MAGIC: u32 = 0x4650_4C49;

/// Current fragment-artifact format version.
pub const ARTIFACT_VERSION: u32 = 1;

/// Magic number of a serialized fragment store (`"ILPW"`).
pub const STORE_MAGIC: u32 = 0x5750_4C49;

/// Current fragment-store format version.
pub const STORE_VERSION: u32 = 1;

/// Identity of a reusable translation: what was translated (the guest
/// bytes and dynamic path of the collected superblock) and how (the
/// translator configuration). Two VMs computing equal keys would produce
/// byte-identical translations, so the artifact of one is valid for the
/// other.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ArtifactKey {
    /// FNV-1a digest of the collected superblock: entry address, each
    /// instruction's V-address and raw code word, its collected control
    /// flow, and the ending condition.
    pub code_digest: u64,
    /// FNV-1a digest of the [`Translator`] configuration (ISA form,
    /// chaining policy, accumulator count, memory fusion).
    pub config_digest: u64,
}

/// Digest of a collected superblock's guest-code span and dynamic path.
///
/// The raw code words are read back from `program` (collection already
/// fetched them, so they are in range for any collectable block); the
/// collected flow is folded in because the same static code region can
/// be collected along different dynamic paths, which translate
/// differently.
pub fn superblock_digest(program: &Program, sb: &Superblock) -> u64 {
    let mut buf = Vec::with_capacity(16 + sb.len() * 24);
    wire::put_u64(&mut buf, sb.start);
    let code = program.code();
    let base = program.code_base();
    for inst in &sb.insts {
        wire::put_u64(&mut buf, inst.vaddr);
        let idx = inst.vaddr.wrapping_sub(base) / 4;
        let raw = code.get(idx as usize).copied().unwrap_or(0);
        wire::put_u32(&mut buf, raw);
        match inst.flow {
            CollectedFlow::Sequential => wire::put_u8(&mut buf, 0),
            CollectedFlow::CondNotTaken { taken_target } => {
                wire::put_u8(&mut buf, 1);
                wire::put_u64(&mut buf, taken_target);
            }
            CollectedFlow::CondTaken {
                taken_target,
                fallthrough,
            } => {
                wire::put_u8(&mut buf, 2);
                wire::put_u64(&mut buf, taken_target);
                wire::put_u64(&mut buf, fallthrough);
            }
            CollectedFlow::Direct { target, links } => {
                wire::put_u8(&mut buf, 3);
                wire::put_u64(&mut buf, target);
                wire::put_u8(&mut buf, links as u8);
            }
            CollectedFlow::Indirect { kind, target } => {
                wire::put_u8(&mut buf, 4);
                wire::put_u8(&mut buf, kind.code() as u8);
                wire::put_u64(&mut buf, target);
            }
        }
    }
    match sb.end {
        SbEnd::IndirectJump => wire::put_u8(&mut buf, 0),
        SbEnd::BackwardTakenBranch {
            target,
            fallthrough,
        } => {
            wire::put_u8(&mut buf, 1);
            wire::put_u64(&mut buf, target);
            wire::put_u64(&mut buf, fallthrough);
        }
        SbEnd::Cycle { next } => {
            wire::put_u8(&mut buf, 2);
            wire::put_u64(&mut buf, next);
        }
        SbEnd::MaxSize { next } => {
            wire::put_u8(&mut buf, 3);
            wire::put_u64(&mut buf, next);
        }
        SbEnd::Halt => wire::put_u8(&mut buf, 4),
    }
    wire::fnv1a(&buf)
}

/// Digest of a translator configuration.
pub fn translator_digest(t: &Translator) -> u64 {
    let chain = match t.chain {
        ChainPolicy::NoPred => 0u8,
        ChainPolicy::SwPred => 1,
        ChainPolicy::SwPredDualRas => 2,
    };
    let buf = [
        match t.form {
            IsaForm::Basic => 0u8,
            IsaForm::Modified => 1,
        },
        chain,
        t.acc_count as u8,
        t.fuse_memory as u8,
    ];
    wire::fnv1a(&buf)
}

/// The store key for translating `sb` under `translator` within
/// `program`.
pub fn artifact_key(program: &Program, sb: &Superblock, translator: &Translator) -> ArtifactKey {
    ArtifactKey {
        code_digest: superblock_digest(program, sb),
        config_digest: translator_digest(translator),
    }
}

/// A translated-and-verified fragment in portable form: everything
/// [`TranslationCache::install`](crate::TranslationCache::install) needs,
/// plus the static translation statistics the installing VM merges into
/// its own [`VmStats`](crate::VmStats). The analysis trace is
/// deliberately absent — artifacts are installed pre-verified, never
/// re-verified.
#[derive(Clone, PartialEq, Debug)]
pub struct FragmentArtifact {
    /// Entry V-address.
    pub vstart: u64,
    /// The I-ISA form the fragment was emitted for.
    pub form: IsaForm,
    /// Source superblock length in V-ISA instructions.
    pub src_inst_count: u32,
    /// The emitted instructions.
    pub insts: Vec<IInst>,
    /// Parallel metadata.
    pub meta: Vec<IMeta>,
    /// Precise-trap recovery tables (basic form).
    pub recovery: HashMap<u32, Vec<RecoveryEntry>>,
    /// Copy instructions emitted.
    pub copies: u32,
    /// Strands formed.
    pub strands: u32,
    /// Strands prematurely terminated.
    pub terminations: u32,
    /// Static category counts of produced values.
    pub categories: CategoryCounts,
    /// Static category counts under oracle boundaries.
    pub oracle_categories: CategoryCounts,
}

impl FragmentArtifact {
    /// Packages a fresh translation for the store.
    pub fn from_translation(code: &TranslatedCode, form: IsaForm) -> FragmentArtifact {
        FragmentArtifact {
            vstart: code.vstart,
            form,
            src_inst_count: code.src_inst_count,
            insts: code.insts.clone(),
            meta: code.meta.clone(),
            recovery: code.recovery.clone(),
            copies: code.stats.copies,
            strands: code.stats.strands,
            terminations: code.stats.terminations,
            categories: code.stats.categories,
            oracle_categories: code.stats.oracle_categories,
        }
    }

    /// Serializes into the enveloped wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut p = Vec::new();
        wire::put_u64(&mut p, self.vstart);
        wire::put_u8(&mut p, matches!(self.form, IsaForm::Modified) as u8);
        wire::put_u32(&mut p, self.src_inst_count);
        wire::put_u32(&mut p, self.insts.len() as u32);
        for inst in &self.insts {
            put_iinst(&mut p, inst);
        }
        wire::put_u32(&mut p, self.meta.len() as u32);
        for m in &self.meta {
            wire::put_u64(&mut p, m.vaddr);
            wire::put_u16(&mut p, m.vcount);
            match m.category {
                Some(cat) => wire::put_u8(&mut p, 1 + cat as u8),
                None => wire::put_u8(&mut p, 0),
            }
            wire::put_u8(&mut p, m.is_chain as u8);
        }
        let mut slots: Vec<u32> = self.recovery.keys().copied().collect();
        slots.sort_unstable();
        wire::put_u32(&mut p, slots.len() as u32);
        for slot in slots {
            wire::put_u32(&mut p, slot);
            let entries = &self.recovery[&slot];
            wire::put_u32(&mut p, entries.len() as u32);
            for e in entries {
                wire::put_u8(&mut p, e.reg.number());
                wire::put_u8(&mut p, e.acc.number());
            }
        }
        wire::put_u32(&mut p, self.copies);
        wire::put_u32(&mut p, self.strands);
        wire::put_u32(&mut p, self.terminations);
        for v in self.categories.0 {
            wire::put_u64(&mut p, v);
        }
        for v in self.oracle_categories.0 {
            wire::put_u64(&mut p, v);
        }
        wire::seal(ARTIFACT_MAGIC, ARTIFACT_VERSION, &p)
    }

    /// Deserializes an artifact written by
    /// [`to_bytes`](FragmentArtifact::to_bytes).
    pub fn from_bytes(bytes: &[u8]) -> Result<FragmentArtifact, SnapshotError> {
        let (version, payload) = wire::open(ARTIFACT_MAGIC, bytes)?;
        if version != ARTIFACT_VERSION {
            return Err(SnapshotError::BadVersion { version });
        }
        let mut c = Cursor::new(payload);
        let vstart = c.take_u64()?;
        let form = if c.take_u8()? == 0 {
            IsaForm::Basic
        } else {
            IsaForm::Modified
        };
        let src_inst_count = c.take_u32()?;
        let n = c.take_u32()? as usize;
        let mut insts = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            insts.push(take_iinst(&mut c)?);
        }
        let n = c.take_u32()? as usize;
        let mut meta = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let vaddr = c.take_u64()?;
            let vcount = c.take_u16()?;
            let category = match c.take_u8()? {
                0 => None,
                i => Some(*UsageCat::ALL.get(i as usize - 1).ok_or(bad_tag(i))?),
            };
            let is_chain = c.take_u8()? != 0;
            meta.push(IMeta {
                vaddr,
                vcount,
                category,
                is_chain,
            });
        }
        let n = c.take_u32()? as usize;
        let mut recovery = HashMap::new();
        for _ in 0..n {
            let slot = c.take_u32()?;
            let m = c.take_u32()? as usize;
            let mut entries = Vec::with_capacity(m.min(64));
            for _ in 0..m {
                let reg = take_reg(&mut c)?;
                let acc = take_acc(&mut c)?;
                entries.push(RecoveryEntry { reg, acc });
            }
            recovery.insert(slot, entries);
        }
        let copies = c.take_u32()?;
        let strands = c.take_u32()?;
        let terminations = c.take_u32()?;
        let mut categories = CategoryCounts::default();
        for v in categories.0.iter_mut() {
            *v = c.take_u64()?;
        }
        let mut oracle_categories = CategoryCounts::default();
        for v in oracle_categories.0.iter_mut() {
            *v = c.take_u64()?;
        }
        Ok(FragmentArtifact {
            vstart,
            form,
            src_inst_count,
            insts,
            meta,
            recovery,
            copies,
            strands,
            terminations,
            categories,
            oracle_categories,
        })
    }
}

fn bad_tag(tag: u8) -> SnapshotError {
    // An out-of-range tag means the artifact came from a newer build.
    SnapshotError::BadVersion {
        version: tag as u32,
    }
}

fn put_asrc(p: &mut Vec<u8>, s: &ASrc) {
    match *s {
        ASrc::Acc => wire::put_u8(p, 0),
        ASrc::Gpr(r) => {
            wire::put_u8(p, 1);
            wire::put_u8(p, r.number());
        }
        ASrc::Imm(v) => {
            wire::put_u8(p, 2);
            wire::put_u16(p, v as u16);
        }
    }
}

fn take_asrc(c: &mut Cursor<'_>) -> Result<ASrc, SnapshotError> {
    Ok(match c.take_u8()? {
        0 => ASrc::Acc,
        1 => ASrc::Gpr(take_reg(c)?),
        2 => ASrc::Imm(c.take_u16()? as i16),
        tag => return Err(bad_tag(tag)),
    })
}

fn take_reg(c: &mut Cursor<'_>) -> Result<Reg, SnapshotError> {
    let n = c.take_u8()?;
    if n >= 32 {
        return Err(bad_tag(n));
    }
    Ok(Reg::new(n))
}

fn take_acc(c: &mut Cursor<'_>) -> Result<Acc, SnapshotError> {
    let n = c.take_u8()?;
    if n as usize >= Acc::MAX_ACCUMULATORS {
        return Err(bad_tag(n));
    }
    Ok(Acc::new(n))
}

fn put_opt_reg(p: &mut Vec<u8>, r: &Option<Reg>) {
    match r {
        Some(r) => {
            wire::put_u8(p, 1);
            wire::put_u8(p, r.number());
        }
        None => wire::put_u8(p, 0),
    }
}

fn take_opt_reg(c: &mut Cursor<'_>) -> Result<Option<Reg>, SnapshotError> {
    Ok(match c.take_u8()? {
        0 => None,
        _ => Some(take_reg(c)?),
    })
}

fn put_itarget(p: &mut Vec<u8>, t: &ITarget) {
    match *t {
        ITarget::Local(i) => {
            wire::put_u8(p, 0);
            wire::put_u32(p, i);
        }
        ITarget::Addr(a) => {
            wire::put_u8(p, 1);
            wire::put_u64(p, a);
        }
    }
}

fn take_itarget(c: &mut Cursor<'_>) -> Result<ITarget, SnapshotError> {
    Ok(match c.take_u8()? {
        0 => ITarget::Local(c.take_u32()?),
        1 => ITarget::Addr(c.take_u64()?),
        tag => return Err(bad_tag(tag)),
    })
}

/// Every `OperateOp`, in declaration order (the wire encoding is the
/// index into this table).
const OPERATE_OPS: [OperateOp; 42] = [
    OperateOp::Addl,
    OperateOp::Addq,
    OperateOp::Subl,
    OperateOp::Subq,
    OperateOp::S4addl,
    OperateOp::S4addq,
    OperateOp::S8addq,
    OperateOp::S4subq,
    OperateOp::S8subq,
    OperateOp::Cmpeq,
    OperateOp::Cmplt,
    OperateOp::Cmple,
    OperateOp::Cmpult,
    OperateOp::Cmpule,
    OperateOp::And,
    OperateOp::Bic,
    OperateOp::Bis,
    OperateOp::Ornot,
    OperateOp::Xor,
    OperateOp::Eqv,
    OperateOp::Cmoveq,
    OperateOp::Cmovne,
    OperateOp::Cmovlt,
    OperateOp::Cmovge,
    OperateOp::Cmovle,
    OperateOp::Cmovgt,
    OperateOp::Cmovlbs,
    OperateOp::Cmovlbc,
    OperateOp::Sll,
    OperateOp::Srl,
    OperateOp::Sra,
    OperateOp::Extbl,
    OperateOp::Extwl,
    OperateOp::Extll,
    OperateOp::Extql,
    OperateOp::Insbl,
    OperateOp::Mskbl,
    OperateOp::Zapnot,
    OperateOp::Zap,
    OperateOp::Mull,
    OperateOp::Mulq,
    OperateOp::Umulh,
];

const MEM_WIDTHS: [MemWidth; 4] = [MemWidth::U8, MemWidth::U16, MemWidth::I32, MemWidth::U64];

const COND_KINDS: [CondKind; 8] = [
    CondKind::Eq,
    CondKind::Ne,
    CondKind::Lt,
    CondKind::Le,
    CondKind::Gt,
    CondKind::Ge,
    CondKind::Lbc,
    CondKind::Lbs,
];

fn enum_index<T: PartialEq>(table: &[T], v: &T) -> u8 {
    table
        .iter()
        .position(|t| t == v)
        .expect("value present in its own enum table") as u8
}

fn take_indexed<T: Copy>(c: &mut Cursor<'_>, table: &[T]) -> Result<T, SnapshotError> {
    let i = c.take_u8()?;
    table.get(i as usize).copied().ok_or(bad_tag(i))
}

fn put_iinst(p: &mut Vec<u8>, inst: &IInst) {
    match *inst {
        IInst::Op {
            op,
            acc,
            lhs,
            rhs,
            dst,
        } => {
            wire::put_u8(p, 0);
            wire::put_u8(p, enum_index(&OPERATE_OPS, &op));
            wire::put_u8(p, acc.number());
            put_asrc(p, &lhs);
            put_asrc(p, &rhs);
            put_opt_reg(p, &dst);
        }
        IInst::Load {
            width,
            acc,
            addr,
            disp,
            dst,
        } => {
            wire::put_u8(p, 1);
            wire::put_u8(p, enum_index(&MEM_WIDTHS, &width));
            wire::put_u8(p, acc.number());
            put_asrc(p, &addr);
            wire::put_u16(p, disp as u16);
            put_opt_reg(p, &dst);
        }
        IInst::Store {
            width,
            acc,
            addr,
            disp,
            value,
        } => {
            wire::put_u8(p, 2);
            wire::put_u8(p, enum_index(&MEM_WIDTHS, &width));
            wire::put_u8(p, acc.number());
            put_asrc(p, &addr);
            wire::put_u16(p, disp as u16);
            put_asrc(p, &value);
        }
        IInst::AddHigh { acc, src, imm, dst } => {
            wire::put_u8(p, 3);
            wire::put_u8(p, acc.number());
            put_asrc(p, &src);
            wire::put_u16(p, imm as u16);
            put_opt_reg(p, &dst);
        }
        IInst::CmovSelect {
            lbs,
            acc,
            value,
            old,
            dst,
        } => {
            wire::put_u8(p, 4);
            wire::put_u8(p, lbs as u8);
            wire::put_u8(p, acc.number());
            put_asrc(p, &value);
            wire::put_u8(p, old.number());
            put_opt_reg(p, &dst);
        }
        IInst::Dispatch { acc, src } => {
            wire::put_u8(p, 5);
            wire::put_u8(p, acc.number());
            put_asrc(p, &src);
        }
        IInst::CopyToGpr { acc, dst } => {
            wire::put_u8(p, 6);
            wire::put_u8(p, acc.number());
            wire::put_u8(p, dst.number());
        }
        IInst::CopyFromGpr { acc, src } => {
            wire::put_u8(p, 7);
            wire::put_u8(p, acc.number());
            wire::put_u8(p, src.number());
        }
        IInst::CondBranch {
            cond,
            acc,
            src,
            target,
        } => {
            wire::put_u8(p, 8);
            wire::put_u8(p, enum_index(&COND_KINDS, &cond));
            wire::put_u8(p, acc.number());
            put_asrc(p, &src);
            put_itarget(p, &target);
        }
        IInst::Branch { target } => {
            wire::put_u8(p, 9);
            put_itarget(p, &target);
        }
        IInst::IndirectJump { kind, acc, addr } => {
            wire::put_u8(p, 10);
            wire::put_u8(p, kind.code() as u8);
            wire::put_u8(p, acc.number());
            put_asrc(p, &addr);
        }
        IInst::SetVpcBase { vaddr } => {
            wire::put_u8(p, 11);
            wire::put_u64(p, vaddr);
        }
        IInst::LoadEmbeddedTarget { acc, vaddr } => {
            wire::put_u8(p, 12);
            wire::put_u8(p, acc.number());
            wire::put_u64(p, vaddr);
        }
        IInst::SaveVReturn { dst, vaddr } => {
            wire::put_u8(p, 13);
            wire::put_u8(p, dst.number());
            wire::put_u64(p, vaddr);
        }
        IInst::PushDualRas { vret, iret } => {
            wire::put_u8(p, 14);
            wire::put_u64(p, vret);
            put_itarget(p, &iret);
        }
        IInst::CallTranslatorIfCond {
            cond,
            acc,
            src,
            vtarget,
        } => {
            wire::put_u8(p, 15);
            wire::put_u8(p, enum_index(&COND_KINDS, &cond));
            wire::put_u8(p, acc.number());
            put_asrc(p, &src);
            wire::put_u64(p, vtarget);
        }
        IInst::CallTranslator { vtarget } => {
            wire::put_u8(p, 16);
            wire::put_u64(p, vtarget);
        }
        IInst::GenTrap => wire::put_u8(p, 17),
        IInst::PutChar { acc, src } => {
            wire::put_u8(p, 18);
            wire::put_u8(p, acc.number());
            put_asrc(p, &src);
        }
        IInst::Halt => wire::put_u8(p, 19),
    }
}

fn take_iinst(c: &mut Cursor<'_>) -> Result<IInst, SnapshotError> {
    Ok(match c.take_u8()? {
        0 => IInst::Op {
            op: take_indexed(c, &OPERATE_OPS)?,
            acc: take_acc(c)?,
            lhs: take_asrc(c)?,
            rhs: take_asrc(c)?,
            dst: take_opt_reg(c)?,
        },
        1 => IInst::Load {
            width: take_indexed(c, &MEM_WIDTHS)?,
            acc: take_acc(c)?,
            addr: take_asrc(c)?,
            disp: c.take_u16()? as i16,
            dst: take_opt_reg(c)?,
        },
        2 => IInst::Store {
            width: take_indexed(c, &MEM_WIDTHS)?,
            acc: take_acc(c)?,
            addr: take_asrc(c)?,
            disp: c.take_u16()? as i16,
            value: take_asrc(c)?,
        },
        3 => IInst::AddHigh {
            acc: take_acc(c)?,
            src: take_asrc(c)?,
            imm: c.take_u16()? as i16,
            dst: take_opt_reg(c)?,
        },
        4 => IInst::CmovSelect {
            lbs: c.take_u8()? != 0,
            acc: take_acc(c)?,
            value: take_asrc(c)?,
            old: take_reg(c)?,
            dst: take_opt_reg(c)?,
        },
        5 => IInst::Dispatch {
            acc: take_acc(c)?,
            src: take_asrc(c)?,
        },
        6 => IInst::CopyToGpr {
            acc: take_acc(c)?,
            dst: take_reg(c)?,
        },
        7 => IInst::CopyFromGpr {
            acc: take_acc(c)?,
            src: take_reg(c)?,
        },
        8 => IInst::CondBranch {
            cond: take_indexed(c, &COND_KINDS)?,
            acc: take_acc(c)?,
            src: take_asrc(c)?,
            target: take_itarget(c)?,
        },
        9 => IInst::Branch {
            target: take_itarget(c)?,
        },
        10 => IInst::IndirectJump {
            kind: JumpKind::from_code(c.take_u8()? as u32),
            acc: take_acc(c)?,
            addr: take_asrc(c)?,
        },
        11 => IInst::SetVpcBase {
            vaddr: c.take_u64()?,
        },
        12 => IInst::LoadEmbeddedTarget {
            acc: take_acc(c)?,
            vaddr: c.take_u64()?,
        },
        13 => IInst::SaveVReturn {
            dst: take_reg(c)?,
            vaddr: c.take_u64()?,
        },
        14 => IInst::PushDualRas {
            vret: c.take_u64()?,
            iret: take_itarget(c)?,
        },
        15 => IInst::CallTranslatorIfCond {
            cond: take_indexed(c, &COND_KINDS)?,
            acc: take_acc(c)?,
            src: take_asrc(c)?,
            vtarget: c.take_u64()?,
        },
        16 => IInst::CallTranslator {
            vtarget: c.take_u64()?,
        },
        17 => IInst::GenTrap,
        18 => IInst::PutChar {
            acc: take_acc(c)?,
            src: take_asrc(c)?,
        },
        19 => IInst::Halt,
        tag => return Err(bad_tag(tag)),
    })
}

/// Aggregate counters of a [`FragmentStore`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct StoreStats {
    /// Lookups that found a reusable artifact.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Artifacts newly stored (duplicates not counted).
    pub stores: u64,
    /// Entries removed by coherence invalidation.
    pub invalidations: u64,
}

/// An `Arc`-shared, thread-safe store of serialized fragment artifacts.
///
/// Entries are kept in wire form (`Arc<Vec<u8>>`): producers pay one
/// serialization, consumers one deserialization, and the checksum
/// envelope travels with the artifact even in-process.
#[derive(Debug, Default)]
pub struct FragmentStore {
    entries: Mutex<HashMap<ArtifactKey, Arc<Vec<u8>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    invalidations: AtomicU64,
}

impl FragmentStore {
    /// Creates an empty store.
    pub fn new() -> FragmentStore {
        FragmentStore::default()
    }

    /// The process-wide shared store (used when
    /// [`VmConfig::shared_cache`](crate::VmConfig::shared_cache) is set
    /// without an explicit [`Vm::attach_store`](crate::Vm::attach_store)).
    pub fn global() -> &'static Arc<FragmentStore> {
        static GLOBAL: OnceLock<Arc<FragmentStore>> = OnceLock::new();
        GLOBAL.get_or_init(|| Arc::new(FragmentStore::new()))
    }

    /// Looks up and decodes the artifact under `key`, counting a hit or
    /// miss. A stored artifact that fails to decode (version skew on a
    /// disk-loaded store) counts as a miss.
    pub fn get(&self, key: &ArtifactKey) -> Option<FragmentArtifact> {
        let bytes = {
            let entries = self.entries.lock().expect("fragment store poisoned");
            entries.get(key).cloned()
        };
        match bytes.and_then(|b| FragmentArtifact::from_bytes(&b).ok()) {
            Some(art) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(art)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Serializes and stores `artifact` under `key`. Returns whether the
    /// entry is new (an equal key already present is left in place — the
    /// digests make collisions mean "same translation").
    pub fn put(&self, key: ArtifactKey, artifact: &FragmentArtifact) -> bool {
        let mut entries = self.entries.lock().expect("fragment store poisoned");
        if entries.contains_key(&key) {
            return false;
        }
        entries.insert(key, Arc::new(artifact.to_bytes()));
        self.stores.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Coherence invalidation: removes the entry under `key` (SMC or a
    /// ladder demotion proved the fragment bad on some VM). Returns
    /// whether an entry was removed.
    pub fn remove(&self, key: &ArtifactKey) -> bool {
        let removed = {
            let mut entries = self.entries.lock().expect("fragment store poisoned");
            entries.remove(key).is_some()
        };
        if removed {
            self.invalidations.fetch_add(1, Ordering::Relaxed);
        }
        removed
    }

    /// Number of stored artifacts.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("fragment store poisoned").len()
    }

    /// Whether the store holds no artifacts.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current counter values.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
        }
    }

    /// Serializes the whole store (counters excluded — they are run
    /// state, not cache content).
    pub fn to_bytes(&self) -> Vec<u8> {
        let entries = self.entries.lock().expect("fragment store poisoned");
        let mut keys: Vec<&ArtifactKey> = entries.keys().collect();
        keys.sort_unstable_by_key(|k| (k.code_digest, k.config_digest));
        let mut p = Vec::new();
        wire::put_u32(&mut p, keys.len() as u32);
        for key in keys {
            wire::put_u64(&mut p, key.code_digest);
            wire::put_u64(&mut p, key.config_digest);
            wire::put_bytes(&mut p, &entries[key]);
        }
        wire::seal(STORE_MAGIC, STORE_VERSION, &p)
    }

    /// Deserializes a store written by [`to_bytes`](FragmentStore::to_bytes).
    /// Every contained artifact is decoded eagerly so a corrupt store is
    /// rejected at load time rather than at first use.
    pub fn from_bytes(bytes: &[u8]) -> Result<FragmentStore, SnapshotError> {
        let (version, payload) = wire::open(STORE_MAGIC, bytes)?;
        if version != STORE_VERSION {
            return Err(SnapshotError::BadVersion { version });
        }
        let mut c = Cursor::new(payload);
        let n = c.take_u32()? as usize;
        let store = FragmentStore::new();
        {
            let mut entries = store.entries.lock().expect("fragment store poisoned");
            for _ in 0..n {
                let key = ArtifactKey {
                    code_digest: c.take_u64()?,
                    config_digest: c.take_u64()?,
                };
                let bytes = c.take_bytes()?.to_vec();
                FragmentArtifact::from_bytes(&bytes)?;
                entries.insert(key, Arc::new(bytes));
            }
        }
        Ok(store)
    }

    /// Persists the store to disk (the optional on-disk warm-start
    /// artifact).
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }

    /// Loads a store persisted by [`save`](FragmentStore::save).
    pub fn load(path: &std::path::Path) -> std::io::Result<FragmentStore> {
        let bytes = std::fs::read(path)?;
        FragmentStore::from_bytes(&bytes)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{collect_superblock, ProfileConfig};
    use alpha_isa::{Assembler, Reg as AReg};

    fn sample_artifact() -> FragmentArtifact {
        let a = Acc::new(1);
        let insts = vec![
            IInst::SetVpcBase { vaddr: 0x1_0000 },
            IInst::Op {
                op: OperateOp::Subq,
                acc: a,
                lhs: ASrc::Gpr(AReg::A0),
                rhs: ASrc::Imm(-1),
                dst: Some(AReg::A0),
            },
            IInst::Load {
                width: MemWidth::U64,
                acc: Acc::new(0),
                addr: ASrc::Acc,
                disp: 8,
                dst: None,
            },
            IInst::Store {
                width: MemWidth::I32,
                acc: Acc::new(0),
                addr: ASrc::Acc,
                disp: 0,
                value: ASrc::Gpr(AReg::V0),
            },
            IInst::AddHigh {
                acc: a,
                src: ASrc::Gpr(AReg::GP),
                imm: -3,
                dst: None,
            },
            IInst::CmovSelect {
                lbs: true,
                acc: a,
                value: ASrc::Imm(7),
                old: AReg::V0,
                dst: Some(AReg::V0),
            },
            IInst::Dispatch {
                acc: a,
                src: ASrc::Acc,
            },
            IInst::CopyToGpr {
                acc: a,
                dst: AReg::new(1),
            },
            IInst::CopyFromGpr {
                acc: a,
                src: AReg::new(1),
            },
            IInst::CondBranch {
                cond: CondKind::Ne,
                acc: a,
                src: ASrc::Acc,
                target: ITarget::Local(1),
            },
            IInst::Branch {
                target: ITarget::Addr(0xbeef),
            },
            IInst::IndirectJump {
                kind: JumpKind::Ret,
                acc: a,
                addr: ASrc::Acc,
            },
            IInst::LoadEmbeddedTarget {
                acc: a,
                vaddr: 0x2_0000,
            },
            IInst::SaveVReturn {
                dst: AReg::RA,
                vaddr: 0x1_0008,
            },
            IInst::PushDualRas {
                vret: 0x1_000c,
                iret: ITarget::Local(3),
            },
            IInst::CallTranslatorIfCond {
                cond: CondKind::Lbs,
                acc: a,
                src: ASrc::Acc,
                vtarget: 0x1_0040,
            },
            IInst::CallTranslator { vtarget: 0x1_0080 },
            IInst::GenTrap,
            IInst::PutChar {
                acc: a,
                src: ASrc::Imm(65),
            },
            IInst::Halt,
        ];
        let meta: Vec<IMeta> = insts
            .iter()
            .enumerate()
            .map(|(i, _)| IMeta {
                vaddr: 0x1_0000 + 4 * i as u64,
                vcount: i as u16,
                category: UsageCat::ALL.get(i % 9).copied(),
                is_chain: i % 3 == 0,
            })
            .collect();
        let mut recovery = HashMap::new();
        recovery.insert(
            2,
            vec![RecoveryEntry {
                reg: AReg::A0,
                acc: Acc::new(1),
            }],
        );
        let mut categories = CategoryCounts::default();
        categories.0[2] = 5;
        FragmentArtifact {
            vstart: 0x1_0000,
            form: IsaForm::Modified,
            src_inst_count: 12,
            insts,
            meta,
            recovery,
            copies: 3,
            strands: 4,
            terminations: 1,
            categories,
            oracle_categories: CategoryCounts::default(),
        }
    }

    #[test]
    fn artifact_roundtrip_covers_every_instruction() {
        let art = sample_artifact();
        let back = FragmentArtifact::from_bytes(&art.to_bytes()).unwrap();
        assert_eq!(back, art);
    }

    #[test]
    fn artifact_corruption_is_detected() {
        let mut bytes = sample_artifact().to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 1;
        assert!(FragmentArtifact::from_bytes(&bytes).is_err());
    }

    #[test]
    fn store_counts_hits_misses_and_coherence() {
        let art = sample_artifact();
        let key = ArtifactKey {
            code_digest: 1,
            config_digest: 2,
        };
        let store = FragmentStore::new();
        assert!(store.get(&key).is_none());
        assert!(store.put(key, &art));
        assert!(!store.put(key, &art), "duplicate put is not a new store");
        assert_eq!(store.get(&key).unwrap(), art);
        assert!(store.remove(&key));
        assert!(!store.remove(&key));
        assert!(store.get(&key).is_none());
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.stores, s.invalidations), (1, 2, 1, 1));
    }

    #[test]
    fn store_wire_roundtrip() {
        let art = sample_artifact();
        let store = FragmentStore::new();
        store.put(
            ArtifactKey {
                code_digest: 10,
                config_digest: 20,
            },
            &art,
        );
        let back = FragmentStore::from_bytes(&store.to_bytes()).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(
            back.get(&ArtifactKey {
                code_digest: 10,
                config_digest: 20,
            })
            .unwrap(),
            art
        );
    }

    #[test]
    fn keys_separate_configs_and_paths() {
        let mut asm = Assembler::new(0x1_0000);
        asm.lda_imm(AReg::A0, 9);
        let top_pc = asm.current_pc();
        let top = asm.here("top");
        asm.subq_imm(AReg::A0, 1, AReg::A0);
        asm.bne(AReg::A0, top);
        asm.halt();
        let program = asm.finish().unwrap();
        let (mut cpu, mut mem) = program.load();
        cpu.pc = top_pc;
        cpu.write(AReg::A0, 9);
        let sb = collect_superblock(&mut cpu, &mut mem, &program, &ProfileConfig::default())
            .expect("collection");
        let t1 = Translator::default();
        let t2 = Translator {
            form: IsaForm::Basic,
            ..t1
        };
        let k1 = artifact_key(&program, &sb, &t1);
        let k2 = artifact_key(&program, &sb, &t2);
        assert_eq!(k1.code_digest, k2.code_digest);
        assert_ne!(k1.config_digest, k2.config_digest);
        // The digest is a function of the collected path, so re-collecting
        // the same path reproduces it.
        let (mut cpu2, mut mem2) = program.load();
        cpu2.pc = top_pc;
        cpu2.write(AReg::A0, 9);
        let sb2 = collect_superblock(&mut cpu2, &mut mem2, &program, &ProfileConfig::default())
            .expect("collection");
        assert_eq!(artifact_key(&program, &sb2, &t1), k1);
    }
}
